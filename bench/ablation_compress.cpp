// A7 — composing self-data distillation with the other compression axes the
// paper's conclusion names: weight quantization and unstructured sparsity.
// Measures the base model, the depth-pruned+SDD model, and both under int8 /
// int4 quantization and 25% / 50% magnitude sparsity.
#include "bench_common.hpp"
#include "core/quant.hpp"
#include "core/sparsify.hpp"

using namespace sdd;
using namespace sdd::bench;

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const eval::SuiteSpec spec = standard_spec();
  const auto& tasks = eval::core_tasks();
  const std::int64_t block = env_int("SDD_A7_BLOCK", 3);
  const std::int64_t size_50k = scaled_size(50);

  const nn::TransformerLM& base = pipeline.base_model();
  const eval::SuiteScores baseline = cached_suite(pipeline, base, tasks, spec);
  const nn::TransformerLM sdd = pipeline.recovered(
      block, core::FtMethod::kSelfDataDistill, "openmathinstruct", size_50k);

  TablePrinter table{{"model", "compression", "avg score", "recovery"}};
  const auto add = [&](const std::string& name, const std::string& compression,
                       const nn::TransformerLM& model) {
    const eval::SuiteScores scores = cached_suite(pipeline, model, tasks, spec);
    table.add_row({name, compression, pct(scores.average),
                   format_float(eval::recovery_percent(scores, baseline)) + "%"});
  };

  for (const auto& [name, model] :
       std::vector<std::pair<std::string, const nn::TransformerLM*>>{
           {"baseline (16L)", &base},
           {"pruned n=" + std::to_string(block) + " + SDD", &sdd}}) {
    log_info("ablation_compress: ", name);
    add(name, "fp32", *model);
    for (const int bits : {8, 4}) {
      core::QuantConfig config;
      config.bits = bits;
      core::QuantStats stats;
      const nn::TransformerLM quantized = core::quantize_model(*model, config, &stats);
      add(name, "int" + std::to_string(bits) + " (mean err " +
                    format_float(stats.mean_abs_error, 4) + ")",
          quantized);
    }
    for (const double sparsity : {0.25, 0.5}) {
      const nn::TransformerLM sparse = core::sparsify_model(*model, sparsity);
      add(name, format_percent(sparsity, 0) + " sparse", sparse);
    }
    table.add_separator();
  }

  std::printf("== A7: SDD composed with quantization and sparsity (paper "
              "conclusion) ==\n\n%s\n",
              table.to_ascii().c_str());
  std::printf("Expected shape: int8 is near-lossless, int4 costs noticeably more;\n"
              "moderate sparsity degrades gracefully; the SDD-recovered pruned\n"
              "model tolerates compression similarly to the baseline.\n");
  return 0;
}
