// A2 — §3 / Appendix B: dataset-size scaling of self-data distillation.
//
// Paper finding: recovery improves with distilled-dataset size (8k -> 50k
// OpenMathInstruct), with SDD > SFT at both sizes. We sweep the scaled sizes
// at a fixed block size.
#include "bench_common.hpp"

using namespace sdd;
using namespace sdd::bench;

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const eval::SuiteSpec spec = standard_spec();
  const auto& tasks = eval::core_tasks();
  const std::int64_t block = env_int("SDD_A2_BLOCK", 3);  // ≙ paper n=6

  const eval::SuiteScores baseline =
      cached_suite(pipeline, pipeline.base_model(), tasks, spec);

  struct SizePoint {
    std::string label;
    std::int64_t size;
  };
  const std::vector<SizePoint> sizes{
      {"2k ≙ paper ~4k", scaled_size(8) / 2},
      {"8k (paper)", scaled_size(8)},
      {"20k-scale", (scaled_size(8) + scaled_size(50)) / 2},
      {"50k (paper)", scaled_size(50)},
  };

  TablePrinter table{{"OpenMathInstruct size", "samples (ours)", "SFT recovery",
                      "Self-Data FT recovery", "SDD - SFT"}};
  for (const SizePoint& point : sizes) {
    log_info("ablation_datasize: size=", point.size);
    const auto sft = cached_suite(
        pipeline,
        pipeline.recovered(block, core::FtMethod::kSft, "openmathinstruct",
                           point.size),
        tasks, spec);
    const auto sdd = cached_suite(
        pipeline,
        pipeline.recovered(block, core::FtMethod::kSelfDataDistill,
                           "openmathinstruct", point.size),
        tasks, spec);
    const double sft_rec = eval::recovery_percent(sft, baseline);
    const double sdd_rec = eval::recovery_percent(sdd, baseline);
    table.add_row({point.label, std::to_string(point.size),
                   format_float(sft_rec) + "%", format_float(sdd_rec) + "%",
                   format_float(sdd_rec - sft_rec) + "pp"});
  }

  std::printf("== A2: dataset-size scaling (block %lld ≙ paper 6) ==\n\n%s\n",
              static_cast<long long>(block), table.to_ascii().c_str());
  std::printf("Paper shape: recovery grows with dataset size; Self-Data FT beats\n"
              "SFT at every size.\n");
  return 0;
}
