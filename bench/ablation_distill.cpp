// A4 — distillation-prompt conditioning ablation. The paper's rewrite
// distribution is ỹ ~ f_θ(y | c, x, y): the teacher sees the reference
// response. Our default pipeline conditions on (c, x) only (the teacher
// answers blind and the Extract() rule guarantees answer preservation).
// This bench compares both variants: acceptance rate and downstream recovery.
#include "bench_common.hpp"

using namespace sdd;
using namespace sdd::bench;

int main() {
  const eval::SuiteSpec spec = standard_spec();
  const auto& tasks = eval::core_tasks();
  const std::int64_t block = env_int("SDD_A4_BLOCK", 3);
  const std::int64_t size = scaled_size(8);

  TablePrinter table{{"teacher conditioning", "acceptance", "avg score",
                      "recovery"}};
  for (const bool condition_on_reference : {false, true}) {
    core::PipelineConfig config = core::PipelineConfig::standard();
    config.distill.condition_on_reference = condition_on_reference;
    core::Pipeline pipeline{config};

    const eval::SuiteScores baseline =
        cached_suite(pipeline, pipeline.base_model(), tasks, spec);

    core::DistillStats stats;
    pipeline.distilled_dataset("gsm8k", size, &stats);
    const std::string acceptance =
        stats.total > 0 ? format_float(stats.acceptance_rate() * 100.0) + "%"
                        : "(cached)";

    const nn::TransformerLM model =
        pipeline.recovered(block, core::FtMethod::kSelfDataDistill, "gsm8k", size);
    const eval::SuiteScores scores = cached_suite(pipeline, model, tasks, spec);
    table.add_row({condition_on_reference ? "f(y | c, x, y)  [paper form]"
                                          : "f(y | c, x)     [default]",
                   acceptance, pct(scores.average),
                   format_float(eval::recovery_percent(scores, baseline)) + "%"});
  }

  std::printf("== A4: teacher-prompt conditioning in self-data distillation ==\n\n%s\n",
              table.to_ascii().c_str());
  std::printf(
      "Both variants enforce the conditional-selection rule, so answers are\n"
      "always preserved. Which prompt wins is scale-dependent: an 8B teacher\n"
      "understands a rewrite prompt containing the reference (the paper's\n"
      "form), while a tiny teacher is derailed by the unfamiliar format and\n"
      "falls back to the raw targets (acceptance collapses, recovery drops\n"
      "toward plain SFT). Low acceptance == degenerating to SFT is itself a\n"
      "faithful property of the method.\n");
  return 0;
}
