// A6 — the paper's future-work recipe: combining self-data distillation with
// teacher-logit knowledge distillation (§5, Distillation). Compares, at a
// fixed block size: SFT, data replay, KD on raw data, SDD, and SDD+KD.
#include "bench_common.hpp"

using namespace sdd;
using namespace sdd::bench;

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const eval::SuiteSpec spec = standard_spec();
  const auto& tasks = eval::core_tasks();
  const std::int64_t block = env_int("SDD_A6_BLOCK", 3);
  const std::int64_t size_50k = scaled_size(50);

  const eval::SuiteScores baseline =
      cached_suite(pipeline, pipeline.base_model(), tasks, spec);

  const std::vector<std::pair<std::string, core::FtMethod>> methods{
      {"No FT", core::FtMethod::kNone},
      {"SFT", core::FtMethod::kSft},
      {"SFT + data replay", core::FtMethod::kSftReplay},
      {"KD (teacher logits)", core::FtMethod::kKd},
      {"Self-Data FT", core::FtMethod::kSelfDataDistill},
      {"Self-Data FT + KD", core::FtMethod::kSelfDataDistillKd},
  };

  TablePrinter table{{"method", "ARC-C", "GSM8k", "MMLU", "avg", "recovery"}};
  for (const auto& [label, method] : methods) {
    log_info("ablation_kd: ", label);
    const nn::TransformerLM model =
        pipeline.recovered(block, method, "openmathinstruct", size_50k);
    const eval::SuiteScores scores = cached_suite(pipeline, model, tasks, spec);
    table.add_row({label, pct(scores.task("arc_c")), pct(scores.task("gsm8k")),
                   pct(scores.task("mmlu")), pct(scores.average),
                   format_float(eval::recovery_percent(scores, baseline)) + "%"});
  }

  std::printf("== A6: recovery strategies at block %lld (≙ paper n=6), "
              "openmathinstruct ==\n\n%s\n",
              static_cast<long long>(block), table.to_ascii().c_str());
  std::printf("Paper context: SDD is the contribution; replay is the classic\n"
              "baseline its related work discusses; SDD+KD is its stated future\n"
              "work. Expected: SDD-family >= KD/replay >= SFT.\n");
  return 0;
}
