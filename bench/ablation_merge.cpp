// A3 — Appendix D: SLERP model merging. Interpolation-factor sweep between
// the OpenMathInstruct-SDD and Alpaca-SDD models, SLERP-per-tensor vs
// whole-model SLERP vs plain LERP.
#include "bench_common.hpp"

using namespace sdd;
using namespace sdd::bench;

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const eval::SuiteSpec spec = standard_spec();
  const auto& tasks = eval::core_tasks();
  const std::int64_t block = env_int("SDD_A3_BLOCK", 3);
  const std::int64_t size_50k = scaled_size(50);

  const eval::SuiteScores baseline =
      cached_suite(pipeline, pipeline.base_model(), tasks, spec);
  const nn::TransformerLM math_model = pipeline.recovered(
      block, core::FtMethod::kSelfDataDistill, "openmathinstruct", size_50k);
  const nn::TransformerLM alpaca_model = pipeline.recovered(
      block, core::FtMethod::kSelfDataDistill, "alpaca", size_50k);

  TablePrinter table{{"merge", "t", "ARC-C", "GSM8k", "MMLU", "avg", "recovery"}};
  const auto add = [&](const std::string& name, const std::string& t_label,
                       const nn::TransformerLM& model) {
    const eval::SuiteScores scores = cached_suite(pipeline, model, tasks, spec);
    table.add_row({name, t_label, pct(scores.task("arc_c")),
                   pct(scores.task("gsm8k")), pct(scores.task("mmlu")),
                   pct(scores.average),
                   format_float(eval::recovery_percent(scores, baseline)) + "%"});
  };

  add("openmathinstruct SDD (t=0 endpoint)", "0.00", math_model);
  for (const float t : {0.25F, 0.5F, 0.75F}) {
    add("SLERP per-tensor", format_float(t, 2),
        core::merge_models(math_model, alpaca_model, t));
  }
  add("alpaca SDD (t=1 endpoint)", "1.00", alpaca_model);
  table.add_separator();
  add("SLERP whole-model", "0.50",
      core::merge_models(math_model, alpaca_model, 0.5F,
                         core::MergeMode::kSlerpWholeModel));
  add("LERP", "0.50",
      core::merge_models(math_model, alpaca_model, 0.5F, core::MergeMode::kLerp));

  std::printf("== A3: SLERP merge sweep (block %lld ≙ paper 6) ==\n\n%s\n",
              static_cast<long long>(block), table.to_ascii().c_str());
  std::printf("Paper shape: the t=0.5 SLERP merge matches or beats the best single\n"
              "parent on average (Table 1 '+ MM' rows).\n");
  return 0;
}
