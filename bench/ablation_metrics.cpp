// A1 — §3 "Effect of Layer Importance Metric": do angular cosine, Block
// Influence, and relative magnitude pick the same pruning blocks, and does
// the choice matter downstream?
//
// Paper finding: BI and angular cosine produce comparable pruning results;
// the angular metric is kept for its simplicity.
#include "bench_common.hpp"

using namespace sdd;
using namespace sdd::bench;

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const nn::TransformerLM& base = pipeline.base_model();
  const auto& calibration = pipeline.calibration();
  const eval::SuiteSpec spec = standard_spec();
  const auto& tasks = eval::core_tasks();

  const core::ImportanceMetric metrics[] = {
      core::ImportanceMetric::kAngularCosine,
      core::ImportanceMetric::kBlockInfluence,
      core::ImportanceMetric::kRelativeMagnitude};

  // 1) Block choice agreement across block sizes.
  TablePrinter choice{{"block size n", "angular l*", "block_influence l*",
                       "relative_magnitude l*", "agreement"}};
  int agree_ab = 0, total = 0;
  for (const std::int64_t n : {1, 2, 3, 4, 5}) {
    std::vector<std::int64_t> starts;
    for (const auto metric : metrics) {
      starts.push_back(
          core::compute_block_distances(base, calibration, n, metric).best_start);
    }
    const bool all_equal = starts[0] == starts[1] && starts[1] == starts[2];
    const bool ab_equal = starts[0] == starts[1];
    agree_ab += ab_equal ? 1 : 0;
    ++total;
    choice.add_row({std::to_string(n), std::to_string(starts[0]),
                    std::to_string(starts[1]), std::to_string(starts[2]),
                    all_equal ? "all" : (ab_equal ? "angular=BI" : "differ")});
  }
  std::printf("== A1: pruning-block choice per importance metric ==\n\n%s\n",
              choice.to_ascii().c_str());
  std::printf("angular vs BI agreement: %d/%d block sizes\n\n", agree_ab, total);

  // 2) Downstream accuracy of the one-shot pruned model (No FT) per metric.
  const eval::SuiteScores baseline = cached_suite(pipeline, base, tasks, spec);
  TablePrinter downstream{{"metric", "pruned layers (n=3)", "avg score",
                           "recovery"}};
  for (const auto metric : metrics) {
    const core::PruneResult result = core::prune_model(base, calibration, 3, metric);
    const eval::SuiteScores scores =
        cached_suite(pipeline, result.model, tasks, spec);
    downstream.add_row({core::metric_name(metric),
                        "[" + std::to_string(result.start) + ", " +
                            std::to_string(result.start + 3) + ")",
                        pct(scores.average),
                        format_float(eval::recovery_percent(scores, baseline)) +
                            "%"});
  }
  std::printf("== A1: one-shot pruned (No FT) quality per metric, n=3 ==\n\n%s\n",
              downstream.to_ascii().c_str());
  std::printf("Paper shape: metrics select similar blocks; downstream quality is\n"
              "comparable, so the cheaper angular metric is preferred.\n");
  return 0;
}
