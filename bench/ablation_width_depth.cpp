// A5 — depth vs width pruning at matched parameter savings (the comparison
// the paper's related work draws via Shortened Llama / LLM-Pruner), and
// whether self-data distillation also recovers width-pruned models (the
// method is pruning-structure agnostic).
#include "bench_common.hpp"
#include "core/width_prune.hpp"
#include "eval/flops.hpp"

using namespace sdd;
using namespace sdd::bench;

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const eval::SuiteSpec spec = standard_spec();
  const auto& tasks = eval::core_tasks();
  const std::int64_t size_50k = scaled_size(50);

  const nn::TransformerLM& base = pipeline.base_model();
  const eval::SuiteScores baseline = cached_suite(pipeline, base, tasks, spec);

  TablePrinter table{{"pruning", "param savings", "method", "avg score",
                      "recovery"}};
  const auto add = [&](const std::string& pruning, double savings,
                       const std::string& method, const nn::TransformerLM& model) {
    const eval::SuiteScores scores = cached_suite(pipeline, model, tasks, spec);
    table.add_row({pruning, format_percent(savings), method, pct(scores.average),
                   format_float(eval::recovery_percent(scores, baseline)) + "%"});
  };

  for (const std::int64_t blocks : {2, 3}) {
    // Depth: Algorithm 1.
    nn::ModelConfig depth_config = base.config();
    depth_config.n_layers -= blocks;
    const double depth_savings = eval::param_savings(base.config(), depth_config);
    log_info("width_depth: depth n=", blocks);
    add("depth n=" + std::to_string(blocks), depth_savings, "No FT",
        pipeline.recovered(blocks, core::FtMethod::kNone, "", 0));
    add("depth n=" + std::to_string(blocks), depth_savings, "Self-Data FT",
        pipeline.recovered(blocks, core::FtMethod::kSelfDataDistill,
                           "openmathinstruct", size_50k));

    // Width: FFN channels at the matched fraction.
    const double fraction = core::width_fraction_matching_depth(base.config(), blocks);
    log_info("width_depth: width fraction=", fraction);
    const core::WidthPruneResult width = core::width_prune_ffn(base, fraction);
    add("width " + format_percent(fraction) + " FFN", width.param_savings, "No FT",
        width.model);

    // SDD recovery of the width-pruned model (LoRA + distilled data).
    nn::TransformerLM width_sdd = width.model.clone();
    width_sdd.attach_lora(pipeline.config().lora, /*seed=*/blocks);
    const data::SftDataset distilled =
        pipeline.distilled_dataset("openmathinstruct", size_50k);
    train::sft_train(width_sdd, distilled, pipeline.config().sft);
    width_sdd.merge_lora();
    add("width " + format_percent(fraction) + " FFN", width.param_savings,
        "Self-Data FT", width_sdd);
    table.add_separator();
  }

  std::printf("== A5: depth vs width pruning at matched parameter savings ==\n\n%s\n",
              table.to_ascii().c_str());
  std::printf("Expected shape (Kim et al. 2024 / paper related work): at matched\n"
              "savings the two structures degrade differently; self-data\n"
              "distillation recovers both (it is pruning-structure agnostic).\n");
  return 0;
}
