// Shared plumbing for the table/figure benches: the standard pipeline, the
// dataset-size mapping from the paper's sample counts to repo scale, and
// cached suite evaluation (eval scores are memoized on disk keyed by model
// weights + task + spec, so figure benches reuse table runs).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "eval/suite.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace sdd::bench {

// Paper sample counts -> repo-scale counts (DESIGN.md §5).
inline std::int64_t scaled_size(std::int64_t paper_thousands) {
  switch (paper_thousands) {
    case 8:
      return env_int("SDD_SIZE_8K", 480);
    case 15:
      return env_int("SDD_SIZE_15K", 900);
    case 50:
      return env_int("SDD_SIZE_50K", 1600);
    default:
      return paper_thousands * 60;  // generic: 60 samples per paper-thousand
  }
}

// Our 16-layer model mirrors the paper's 32-layer Llama3.1-8B at half the
// block size: ours n <-> paper 2n (identical depth fraction).
inline std::string paper_block_label(std::int64_t ours) {
  return std::to_string(2 * ours);
}

inline eval::SuiteSpec standard_spec() {
  eval::SuiteSpec spec;
  spec.mc_items = env_int("SDD_EVAL_ITEMS", 60);
  spec.gen_items = env_int("SDD_EVAL_GEN_ITEMS", 60);
  return spec;
}

// Evaluate one named task with on-disk memoization.
inline double cached_task_eval(core::Pipeline& pipeline,
                               const nn::TransformerLM& model,
                               const std::string& task,
                               const eval::SuiteSpec& spec) {
  std::uint64_t key = model.weight_hash();
  key = hash_combine(key, fnv1a(task));
  key = hash_combine(key, spec.hash());
  key = hash_combine(key, fnv1a("task-eval-v1"));
  if (const auto cached = pipeline.cache().load_metric(key)) return *cached;
  const eval::TaskResult result =
      eval::evaluate_named_task(model, pipeline.world(), task, spec);
  pipeline.cache().store_metric(key, result.accuracy);
  return result.accuracy;
}

inline eval::SuiteScores cached_suite(core::Pipeline& pipeline,
                                      const nn::TransformerLM& model,
                                      const std::vector<std::string>& tasks,
                                      const eval::SuiteSpec& spec) {
  eval::SuiteScores scores;
  double total = 0.0;
  for (const std::string& task : tasks) {
    const double accuracy = cached_task_eval(pipeline, model, task, spec);
    scores.tasks.emplace_back(task, accuracy);
    total += accuracy;
  }
  scores.average = tasks.empty() ? 0.0 : total / static_cast<double>(tasks.size());
  return scores;
}

inline std::string pct(double fraction) { return format_float(fraction * 100.0); }

}  // namespace sdd::bench
