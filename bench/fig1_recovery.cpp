// F1 — Figure 1: average quality recovery (%) vs prune block size on the
// OpenLLM-v1 suite for {No FT, SFT, Self-Data FT}, fine-tuned on
// OpenMathInstruct. Rendered as a table plus an ASCII chart.
//
// All models and eval scores come from the shared cache, so this bench is
// nearly free after table1/table2 have run.
#include "bench_common.hpp"

using namespace sdd;
using namespace sdd::bench;

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const eval::SuiteSpec spec = standard_spec();
  const auto& tasks = eval::openllm_v1_tasks();
  const std::int64_t size_50k = scaled_size(50);

  const eval::SuiteScores baseline =
      cached_suite(pipeline, pipeline.base_model(), tasks, spec);

  const std::vector<std::pair<std::string, core::FtMethod>> methods{
      {"No FT", core::FtMethod::kNone},
      {"SFT", core::FtMethod::kSft},
      {"Self-Data FT", core::FtMethod::kSelfDataDistill},
  };
  const std::vector<std::int64_t> blocks{1, 2, 3, 4, 5};

  std::vector<std::vector<double>> recovery(methods.size());
  for (std::size_t m = 0; m < methods.size(); ++m) {
    for (const std::int64_t block : blocks) {
      log_info("fig1: ", methods[m].first, " block=", block);
      const nn::TransformerLM model = pipeline.recovered(
          block, methods[m].second, "openmathinstruct", size_50k);
      const eval::SuiteScores scores = cached_suite(pipeline, model, tasks, spec);
      recovery[m].push_back(eval::recovery_percent(scores, baseline));
    }
  }

  TablePrinter table{{"Prune block (ours/paper)", "No FT", "SFT", "Self-Data FT"}};
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    table.add_row({std::to_string(blocks[b]) + " / " + paper_block_label(blocks[b]),
                   format_float(recovery[0][b]) + "%",
                   format_float(recovery[1][b]) + "%",
                   format_float(recovery[2][b]) + "%"});
  }
  std::printf("== Figure 1: avg recovery vs prune block size (OpenLLM v1) ==\n\n%s\n",
              table.to_ascii().c_str());

  // ASCII chart: one column block, rows 100%..40%.
  std::printf("  recovery%%  (N = No FT, S = SFT, D = Self-Data FT)\n");
  for (int level = 100; level >= 40; level -= 5) {
    std::printf("  %3d | ", level);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      char cell[4] = {' ', ' ', ' ', '\0'};
      const char symbols[3] = {'N', 'S', 'D'};
      for (std::size_t m = 0; m < methods.size(); ++m) {
        if (recovery[m][b] >= level && recovery[m][b] < level + 5) {
          cell[m] = symbols[m];
        }
      }
      std::printf("%s  ", cell);
    }
    std::printf("\n");
  }
  std::printf("      +-");
  for (std::size_t b = 0; b < blocks.size(); ++b) std::printf("-----");
  std::printf("\n        ");
  for (const std::int64_t block : blocks) std::printf("n=%lld  ", (long long)block);
  std::printf("\n\nPaper shape: Self-Data FT dominates SFT at every block size; the\n"
              "gap widens as more layers are pruned (paper: 91.2%% vs 81.7%% at n=6).\n");
  return 0;
}
