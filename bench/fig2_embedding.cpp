// F2c — Figure 2 right: distribution of sentence-embedding similarities
// between pruned-model generations and the baseline's generations on µGSM8k,
// for SFT vs Self-Data FT (paper: block size 6 of 32 ≙ ours 3 of 16,
// OpenMathInstruct-50k).
//
// Paper result: Self-Data FT mean 0.92 with a tight distribution; SFT mean
// 0.83 with a wide spread — the distribution-shift signature of catastrophic
// forgetting.
#include "bench_common.hpp"
#include "eval/embedding.hpp"

using namespace sdd;
using namespace sdd::bench;

namespace {

void print_histogram(const char* label, const eval::SimilarityStats& stats) {
  std::printf("%s: mean=%.3f stddev=%.3f min=%.3f max=%.3f (n=%zu)\n", label,
              stats.mean, stats.stddev, stats.min, stats.max, stats.values.size());
  const auto hist = stats.histogram(10);
  for (std::size_t bin = 0; bin < hist.size(); ++bin) {
    const double lo = 0.1 * static_cast<double>(bin);
    const int width = static_cast<int>(hist[bin] * 50 + 0.5);
    std::printf("  [%.1f,%.1f) %5.1f%% |%s\n", lo, lo + 0.1, hist[bin] * 100.0,
                std::string(static_cast<std::size_t>(width), '#').c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const std::int64_t block = env_int("SDD_FIG2_BLOCK", 3);  // ≙ paper n=6
  const std::int64_t size_50k = scaled_size(50);
  const std::int64_t items = env_int("SDD_FIG2_ITEMS", 80);

  const nn::TransformerLM& baseline = pipeline.base_model();
  const nn::TransformerLM sft_model =
      pipeline.recovered(block, core::FtMethod::kSft, "openmathinstruct", size_50k);
  const nn::TransformerLM sdd_model = pipeline.recovered(
      block, core::FtMethod::kSelfDataDistill, "openmathinstruct", size_50k);

  const data::GenTask task = data::make_gsm8k_eval_task(items, 515);

  log_info("fig2c: embedding generations (", items, " prompts x 2 models)");
  const eval::SimilarityStats sft_stats =
      eval::embedding_shift(sft_model, baseline, baseline, task, items);
  const eval::SimilarityStats sdd_stats =
      eval::embedding_shift(sdd_model, baseline, baseline, task, items);

  std::printf("== Figure 2 (right): embedding similarity to baseline generations "
              "(µGSM8k, block %lld ≙ paper 6) ==\n\n",
              static_cast<long long>(block));
  print_histogram("SFT          ", sft_stats);
  print_histogram("Self-Data FT ", sdd_stats);

  std::printf("Paper shape: Self-Data FT mean (paper 0.92) > SFT mean (paper 0.83) "
              "with a tighter spread.\n");
  std::printf("Measured: Self-Data FT mean %.3f (stddev %.3f) vs SFT mean %.3f "
              "(stddev %.3f) -> %s\n",
              sdd_stats.mean, sdd_stats.stddev, sft_stats.mean, sft_stats.stddev,
              sdd_stats.mean > sft_stats.mean ? "shape HOLDS" : "shape DIFFERS");
  return 0;
}
