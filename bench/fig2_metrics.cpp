// F2a/F2b — Figure 2 left & center: per-layer importance curves under the
// angular-cosine metric and the Block Influence score, plus the block-
// distance curves for every prune block size.
#include "bench_common.hpp"

using namespace sdd;
using namespace sdd::bench;

namespace {

std::string bar(double value, double max_value, int width = 30) {
  const int fill =
      max_value > 0.0 ? static_cast<int>(value / max_value * width + 0.5) : 0;
  std::string s(static_cast<std::size_t>(std::max(fill, 0)), '#');
  s.resize(static_cast<std::size_t>(width), ' ');
  return s;
}

}  // namespace

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const nn::TransformerLM& base = pipeline.base_model();
  const auto& calibration = pipeline.calibration();

  const auto angular = core::layer_importance(
      base, calibration, core::ImportanceMetric::kAngularCosine);
  const auto influence = core::layer_importance(
      base, calibration, core::ImportanceMetric::kBlockInfluence);

  double max_angular = 0.0, max_influence = 0.0;
  for (double d : angular) max_angular = std::max(max_angular, d);
  for (double d : influence) max_influence = std::max(max_influence, d);

  std::printf("== Figure 2 (left): angular cosine distance per layer ==\n\n");
  for (std::size_t l = 0; l < angular.size(); ++l) {
    std::printf("  layer %2zu  %.4f  |%s|\n", l, angular[l],
                bar(angular[l], max_angular).c_str());
  }
  std::printf("\n== Figure 2 (center): Block Influence (BI) score per layer ==\n\n");
  for (std::size_t l = 0; l < influence.size(); ++l) {
    std::printf("  layer %2zu  %.4f  |%s|\n", l, influence[l],
                bar(influence[l], max_influence).c_str());
  }

  std::printf(
      "\n== Block-distance curves d(h^l, h^{l+n}) and Algorithm 1 argmin ==\n\n");
  TablePrinter table{{"block size n", "metric", "argmin l*", "min distance",
                      "curve (per start l)"}};
  for (const std::int64_t n : {1, 2, 3, 4, 5}) {
    for (const auto metric : {core::ImportanceMetric::kAngularCosine,
                              core::ImportanceMetric::kBlockInfluence}) {
      const core::BlockDistanceCurve curve =
          core::compute_block_distances(base, calibration, n, metric);
      std::string curve_str;
      for (double d : curve.distances) {
        if (!curve_str.empty()) curve_str += ' ';
        curve_str += format_float(d, 3);
      }
      table.add_row({std::to_string(n), core::metric_name(metric),
                     std::to_string(curve.best_start),
                     format_float(curve.best_distance, 4), curve_str});
    }
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "Paper shape: both metrics produce similar curves with the minimum in the\n"
      "middle-to-late layers, so both select comparable pruning blocks (§3).\n");
  return 0;
}
