// F3 — Figure 3: average accuracy over {MMLU, GSM8k, ARC-C} per fine-tuning
// dataset, prune block size, and strategy {Self-Data FT, SFT, No FT}.
//
// One panel per dataset, mirroring the paper's 4-panel figure. Models and
// eval results come from the shared cache (same grid as table2).
#include "bench_common.hpp"

using namespace sdd;
using namespace sdd::bench;

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const eval::SuiteSpec spec = standard_spec();
  const auto& tasks = eval::core_tasks();

  struct DatasetSpec {
    std::string name;
    std::int64_t size;
    std::string label;
  };
  const std::vector<DatasetSpec> datasets{
      {"gsm8k", scaled_size(8), "GSM8k (8k)"},
      {"openmathinstruct", scaled_size(50), "OpenMathInstruct (50k)"},
      {"dolly", scaled_size(15), "Dolly (15k)"},
      {"alpaca", scaled_size(50), "Alpaca (50k)"},
  };
  const std::vector<std::int64_t> blocks{1, 2, 3, 4, 5};

  const eval::SuiteScores baseline =
      cached_suite(pipeline, pipeline.base_model(), tasks, spec);
  std::printf("== Figure 3: avg(ARC-C, GSM8k, MMLU) by dataset x block x strategy "
              "==\n\nbaseline avg: %s\n\n",
              pct(baseline.average).c_str());

  for (const DatasetSpec& dataset : datasets) {
    TablePrinter panel{{"block (ours/paper)", "No FT", "SFT", "Self-Data FT"}};
    for (const std::int64_t block : blocks) {
      log_info("fig3: ", dataset.name, " block=", block);
      const auto none = cached_suite(
          pipeline, pipeline.recovered(block, core::FtMethod::kNone, "", 0), tasks,
          spec);
      const auto sft = cached_suite(
          pipeline,
          pipeline.recovered(block, core::FtMethod::kSft, dataset.name, dataset.size),
          tasks, spec);
      const auto sdd =
          cached_suite(pipeline,
                       pipeline.recovered(block, core::FtMethod::kSelfDataDistill,
                                          dataset.name, dataset.size),
                       tasks, spec);
      panel.add_row({std::to_string(block) + " / " + paper_block_label(block),
                     pct(none.average), pct(sft.average), pct(sdd.average)});
    }
    std::printf("-- %s --\n%s\n", dataset.label.c_str(), panel.to_ascii().c_str());
  }

  std::printf("Paper shape: Self-Data FT >= SFT >= (usually) No FT in every panel;\n"
              "the OpenMathInstruct (50k) panel shows the largest gains.\n");
  return 0;
}
