// M1: substrate microbenchmarks (google-benchmark).
//
// Measures the raw kernels and model phases that determine the wall-clock of
// every experiment bench: GEMM, fused attention, full forward/backward
// training steps, KV-cache decode throughput, and the pruning metric.
#include <benchmark/benchmark.h>

#include "core/prune.hpp"
#include "data/corpus.hpp"
#include "nn/decode.hpp"
#include "nn/speculative.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace sdd;

nn::ModelConfig bench_config() {
  nn::ModelConfig config;
  config.vocab_size = data::Vocab::instance().size();
  config.d_model = 64;
  config.n_heads = 4;
  config.n_layers = 16;
  config.d_ff = 128;
  config.max_seq_len = 160;
  return config;
}

void BM_GemmNt(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng{1};
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& x : a) x = rng.gaussian_float(0, 1);
  for (auto& x : b) x = rng.gaussian_float(0, 1);
  for (auto _ : state) {
    kernels::gemm_nt(a.data(), b.data(), c.data(), n, n, n, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNt)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNn(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng{1};
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& x : a) x = rng.gaussian_float(0, 1);
  for (auto& x : b) x = rng.gaussian_float(0, 1);
  for (auto _ : state) {
    kernels::gemm_nn(a.data(), b.data(), c.data(), n, n, n, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNn)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTn(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng{1};
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& x : a) x = rng.gaussian_float(0, 1);
  for (auto& x : b) x = rng.gaussian_float(0, 1);
  for (auto _ : state) {
    kernels::gemm_tn(a.data(), b.data(), c.data(), n, n, n, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmTn)->Arg(64)->Arg(128)->Arg(256);

void BM_AttentionForward(benchmark::State& state) {
  const std::int64_t batch = 8, seq = state.range(0), channels = 64;
  Rng rng{2};
  NoGradGuard no_grad;
  Tensor q = Tensor::randn(rng, {batch, seq, channels}, 1.0F);
  Tensor k = Tensor::randn(rng, {batch, seq, channels}, 1.0F);
  Tensor v = Tensor::randn(rng, {batch, seq, channels}, 1.0F);
  for (auto _ : state) {
    Tensor out = ops::causal_self_attention(q, k, v, 4, 10000.0F);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() * batch * seq);
}
BENCHMARK(BM_AttentionForward)->Arg(32)->Arg(80);

void BM_ModelForward(benchmark::State& state) {
  const nn::TransformerLM model{bench_config(), 1};
  const std::int64_t batch = 8, seq = state.range(0);
  Rng rng{3};
  std::vector<std::int32_t> ids(static_cast<std::size_t>(batch * seq));
  for (auto& id : ids) {
    id = static_cast<std::int32_t>(rng.uniform_int(0, model.config().vocab_size - 1));
  }
  NoGradGuard no_grad;
  for (auto _ : state) {
    Tensor logits = model.forward(ids, batch, seq);
    benchmark::DoNotOptimize(logits.data().data());
  }
  state.SetItemsProcessed(state.iterations() * batch * seq);
}
BENCHMARK(BM_ModelForward)->Arg(48)->Arg(80);

void BM_TrainStep(benchmark::State& state) {
  nn::TransformerLM model{bench_config(), 1};
  const std::int64_t batch = 8, seq = state.range(0);
  Rng rng{4};
  std::vector<std::int32_t> ids(static_cast<std::size_t>(batch * seq));
  std::vector<std::int32_t> targets(ids.size());
  std::vector<float> weights(ids.size(), 1.0F);
  for (auto& id : ids) {
    id = static_cast<std::int32_t>(rng.uniform_int(0, model.config().vocab_size - 1));
  }
  for (auto& t : targets) {
    t = static_cast<std::int32_t>(rng.uniform_int(0, model.config().vocab_size - 1));
  }
  train::AdamW optimizer{model.trainable_parameters(), {}};
  for (auto _ : state) {
    Tensor logits = model.forward(ids, batch, seq);
    Tensor loss = ops::cross_entropy(logits, targets, weights);
    optimizer.zero_grad();
    loss.backward();
    optimizer.clip_gradients(1.0F);
    optimizer.step(1e-4F);
  }
  state.SetItemsProcessed(state.iterations() * batch * seq);
}
BENCHMARK(BM_TrainStep)->Arg(48)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_DecodeTokensPerSecond(benchmark::State& state) {
  const nn::TransformerLM model{bench_config(), 1};
  NoGradGuard no_grad;
  std::int64_t tokens = 0;
  for (auto _ : state) {
    auto decode_state = model.make_decode_state();
    for (std::int64_t t = 0; t < 64; ++t) {
      auto logits = model.decode_step(decode_state, static_cast<std::int32_t>(t % 50));
      benchmark::DoNotOptimize(logits.data());
      ++tokens;
    }
  }
  state.SetItemsProcessed(tokens);
}
BENCHMARK(BM_DecodeTokensPerSecond)->Unit(benchmark::kMillisecond);

// Speculative decode is a memory-bandwidth play: the batched verify pass
// streams each target weight row once for k tokens (gemm_nt_rowwise) where
// plain decode streams it k times, so the win only exists when the weights
// don't fit in cache. The small bench_config() is compute-bound and shows
// parity by design; this config is sized so one model exceeds the LLC and
// a decode step is bound by weight traffic, the regime the serving layer
// targets.
nn::ModelConfig spec_bench_config() {
  nn::ModelConfig config;
  config.vocab_size = data::Vocab::instance().size();
  config.d_model = 1024;
  config.n_heads = 8;
  config.n_layers = 8;
  config.d_ff = 2048;
  config.max_seq_len = 96;
  return config;
}

// Plain greedy decode on spec_bench_config(): the baseline row that
// BM_SpecDecode's items_per_second is read against.
void BM_SpecDecodePlain(benchmark::State& state) {
  const nn::TransformerLM model{spec_bench_config(), 1};
  const std::vector<std::int32_t> prompt{2, 11, 29, 7};
  nn::GenerateOptions options;
  options.max_new_tokens = 48;
  options.temperature = 0.0F;
  NoGradGuard no_grad;
  std::int64_t tokens = 0;
  for (auto _ : state) {
    const auto out = nn::generate(model, prompt, options);
    benchmark::DoNotOptimize(out.data());
    tokens += static_cast<std::int64_t>(out.size());
  }
  state.SetItemsProcessed(tokens);
}
BENCHMARK(BM_SpecDecodePlain)->Unit(benchmark::kMillisecond);

// Self-speculative decode throughput (nn::speculative_generate). Arg0 is the
// number of contiguous middle blocks pruned from the draft; Arg1 selects the
// oracle variant, which zeroes those blocks' output projections in the
// target first so the residual stream passes through them unchanged — the
// pruned draft then agrees with the target exactly, the acceptance ceiling a
// perfectly self-data-distilled draft would reach. /4/0 is the random-weight
// acceptance floor; /4/1 the ceiling, which must beat BM_SpecDecodePlain's
// items_per_second (the ISSUE's acceptance>=0.7 speedup criterion). The
// acceptance counter reports accepted/proposed.
void BM_SpecDecode(benchmark::State& state) {
  const std::int64_t pruned = state.range(0);
  const bool oracle = state.range(1) != 0;
  nn::TransformerLM target{spec_bench_config(), 1};
  const std::int64_t start = (target.n_layers() - pruned) / 2;
  if (oracle) {
    for (std::int64_t b = start; b < start + pruned; ++b) {
      auto& block = target.block(static_cast<std::size_t>(b));
      for (Tensor* w : {&block.attention().wo().weight(),
                        &block.mlp().w_down().weight()}) {
        for (auto& v : w->data()) v = 0.0F;
      }
    }
  }
  const nn::TransformerLM draft =
      pruned == 0 ? target.clone() : target.pruned(start, pruned);
  const std::vector<std::int32_t> prompt{2, 11, 29, 7};
  nn::GenerateOptions options;
  options.max_new_tokens = 48;
  options.temperature = 0.0F;
  NoGradGuard no_grad;
  std::int64_t tokens = 0;
  nn::SpecCounters totals;
  for (auto _ : state) {
    nn::SpecCounters counters;
    const auto out =
        nn::speculative_generate(target, draft, prompt, options, 4, &counters);
    benchmark::DoNotOptimize(out.data());
    tokens += static_cast<std::int64_t>(out.size());
    totals.add(counters);
  }
  state.SetItemsProcessed(tokens);
  state.counters["acceptance"] = benchmark::Counter(
      totals.proposed == 0
          ? 0.0
          : static_cast<double>(totals.accepted) /
                static_cast<double>(totals.proposed));
}
BENCHMARK(BM_SpecDecode)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

void BM_PruneMetric(benchmark::State& state) {
  const nn::TransformerLM model{bench_config(), 1};
  const data::World world{42};
  const auto calibration = data::build_calibration_set(world, 4, 64, 99);
  for (auto _ : state) {
    const auto curve = core::compute_block_distances(
        model, calibration, 3, core::ImportanceMetric::kAngularCosine);
    benchmark::DoNotOptimize(curve.best_start);
  }
}
BENCHMARK(BM_PruneMetric)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
