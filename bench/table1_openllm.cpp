// T1 — Table 1: OpenLLM-Leaderboard-v1 suite for pruned models across block
// sizes and fine-tuning strategies.
//
// Paper rows: block sizes {4, 6, 8, 10} of 32 layers; methods {No FT, SFT,
// Self-Data Distillation, Self-Data Distillation + Model Merging}. SFT/SDD
// fine-tune on OpenMathInstruct-50k; MM merges with the Alpaca-50k SDD model
// via SLERP(t=0.5). We run the identical grid at half block size on the
// 16-layer model (same depth fractions) with the scaled 50k ≙ 1600-sample
// datasets, and additionally report parameter/FLOP savings per block size.
#include "bench_common.hpp"
#include "eval/flops.hpp"
#include "eval/report.hpp"

using namespace sdd;
using namespace sdd::bench;

namespace {

// Paper Table 1 average recovery (%) for shape comparison.
struct PaperRow {
  const char* method;
  double recovery[4];  // block sizes 4, 6, 8, 10
};
constexpr PaperRow kPaperRecovery[] = {
    {"No FT", {92.31, 74.67, 70.50, 66.83}},
    {"SFT", {84.52, 81.66, 76.37, 68.56}},
    {"Self-Data Distillation", {93.29, 91.24, 86.38, 80.56}},
    {"Self-Data Distillation + MM", {94.86, 93.30, 88.24, 80.70}},
};

}  // namespace

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const eval::SuiteSpec spec = standard_spec();
  const std::int64_t size_50k = scaled_size(50);
  const auto& tasks = eval::openllm_v1_tasks();

  const nn::TransformerLM& base = pipeline.base_model();
  const eval::SuiteScores baseline = cached_suite(pipeline, base, tasks, spec);

  TablePrinter table{{"Prune Block (ours/paper)", "Savings", "Method", "Dataset",
                      "ARC-C", "HellaSwag", "TruthfulQA", "MMLU", "Winogrande",
                      "GSM8k", "Avg", "Recovery"}};
  table.add_row({"baseline", "-", "No FT", "-", pct(baseline.task("arc_c")),
                 pct(baseline.task("hellaswag")), pct(baseline.task("truthfulqa")),
                 pct(baseline.task("mmlu")), pct(baseline.task("winogrande")),
                 pct(baseline.task("gsm8k")), pct(baseline.average), "-"});
  table.add_separator();

  struct MethodRow {
    std::string label;
    std::string dataset_label;
    std::function<nn::TransformerLM(std::int64_t)> make;
  };
  const std::vector<MethodRow> methods{
      {"No FT", "-",
       [&](std::int64_t n) {
         return pipeline.recovered(n, core::FtMethod::kNone, "", 0);
       }},
      {"SFT", "openmathinstruct",
       [&](std::int64_t n) {
         return pipeline.recovered(n, core::FtMethod::kSft, "openmathinstruct",
                                   size_50k);
       }},
      {"Self-Data Distillation", "openmathinstruct",
       [&](std::int64_t n) {
         return pipeline.recovered(n, core::FtMethod::kSelfDataDistill,
                                   "openmathinstruct", size_50k);
       }},
      {"Self-Data Distillation + MM", "openmathinstruct + alpaca",
       [&](std::int64_t n) {
         return pipeline.merged(n, "openmathinstruct", size_50k, "alpaca", size_50k);
       }},
  };

  // Measured recovery, indexed [method][block] for the paper-shape summary.
  std::vector<std::vector<double>> measured(methods.size());

  eval::ExperimentReport report{"table1", "OpenLLM-v1 grid with model merging"};
  report.set_baseline(baseline);

  for (const std::int64_t block : {2, 3, 4, 5}) {  // ≙ paper {4, 6, 8, 10}
    nn::ModelConfig pruned_config = base.config();
    pruned_config.n_layers = base.n_layers() - block;
    const double savings = eval::param_savings(base.config(), pruned_config);

    for (std::size_t m = 0; m < methods.size(); ++m) {
      log_info("table1: block=", block, " method=", methods[m].label);
      const nn::TransformerLM model = methods[m].make(block);
      const eval::SuiteScores scores = cached_suite(pipeline, model, tasks, spec);
      const double recovery = eval::recovery_percent(scores, baseline);
      measured[m].push_back(recovery);
      eval::ReportEntry entry;
      entry.model_label =
          "block" + std::to_string(block) + "/" + methods[m].label;
      entry.method = methods[m].label;
      entry.prune_block = block;
      entry.dataset = methods[m].dataset_label;
      entry.scores = scores;
      entry.recovery_percent = recovery;
      report.add(std::move(entry));
      table.add_row({std::to_string(block) + " / " + paper_block_label(block),
                     m == 0 ? format_percent(savings) : "",
                     methods[m].label, methods[m].dataset_label,
                     pct(scores.task("arc_c")), pct(scores.task("hellaswag")),
                     pct(scores.task("truthfulqa")), pct(scores.task("mmlu")),
                     pct(scores.task("winogrande")), pct(scores.task("gsm8k")),
                     pct(scores.average), format_float(recovery) + "%"});
    }
    table.add_separator();
  }

  const auto report_path = pipeline.cache().directory() / "table1_report.json";
  report.write(report_path);
  std::printf("== Table 1: OpenLLM-v1 suite, pruned Llama-style model ==\n\n%s\n",
              table.to_ascii().c_str());
  std::printf("(JSON report: %s)\n\n", report_path.c_str());

  TablePrinter shape{{"Method", "n=2 (ours) / paper n=4", "n=3 / 6", "n=4 / 8",
                      "n=5 / 10"}};
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row{methods[m].label};
    for (std::size_t b = 0; b < 4; ++b) {
      row.push_back(format_float(measured[m][b]) + "% (paper " +
                    format_float(kPaperRecovery[m].recovery[b]) + "%)");
    }
    shape.add_row(std::move(row));
  }
  std::printf("== Avg. recovery, measured vs paper ==\n\n%s\n",
              shape.to_ascii().c_str());
  return 0;
}
