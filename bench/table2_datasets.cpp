// T2 — Table 2 (Appendix B): {ARC-C, GSM8k, MMLU} for every combination of
// prune block size x fine-tuning dataset x {No FT, SFT, Self-Data
// Distillation}, with recovery % against the unpruned baseline.
//
// Paper grid: blocks {2,4,6,8,10} of 32; datasets GSM8k(8k), Dolly(15k),
// Alpaca(50k), OpenMathInstruct(50k). Ours: blocks {1..5} of 16 with the
// scaled dataset sizes.
#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace sdd;
using namespace sdd::bench;

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const eval::SuiteSpec spec = standard_spec();
  const auto& tasks = eval::core_tasks();

  struct DatasetSpec {
    std::string name;
    std::int64_t size;
    std::string label;
  };
  const std::vector<DatasetSpec> datasets{
      {"gsm8k", scaled_size(8), "gsm8k (8k)"},
      {"dolly", scaled_size(15), "dolly (15k)"},
      {"alpaca", scaled_size(50), "alpaca (50k)"},
      {"openmathinstruct", scaled_size(50), "openmathinstruct (50k)"},
  };

  const nn::TransformerLM& base = pipeline.base_model();
  const eval::SuiteScores baseline = cached_suite(pipeline, base, tasks, spec);

  eval::ExperimentReport report{
      "table2", "core suite across datasets, blocks, and methods"};
  report.set_baseline(baseline);

  TablePrinter table{{"Block (ours/paper)", "Method", "Dataset", "ARC-C", "GSM8k",
                      "MMLU", "Avg", "Recovery"}};
  table.add_row({"baseline", "No FT", "-", pct(baseline.task("arc_c")),
                 pct(baseline.task("gsm8k")), pct(baseline.task("mmlu")),
                 pct(baseline.average), "100.00%"});
  table.add_separator();

  const auto add_row = [&](std::int64_t block, const std::string& method,
                           const std::string& dataset_label,
                           const nn::TransformerLM& model) {
    const eval::SuiteScores scores = cached_suite(pipeline, model, tasks, spec);
    const double recovery = eval::recovery_percent(scores, baseline);
    table.add_row({std::to_string(block) + " / " + paper_block_label(block), method,
                   dataset_label, pct(scores.task("arc_c")),
                   pct(scores.task("gsm8k")), pct(scores.task("mmlu")),
                   pct(scores.average), format_float(recovery) + "%"});
    eval::ReportEntry entry;
    entry.model_label = "block" + std::to_string(block) + "/" + method + "/" +
                        dataset_label;
    entry.method = method;
    entry.prune_block = block;
    entry.dataset = dataset_label;
    entry.scores = scores;
    entry.recovery_percent = recovery;
    report.add(std::move(entry));
  };

  for (const std::int64_t block : {1, 2, 3, 4, 5}) {  // ≙ paper {2,4,6,8,10}
    log_info("table2: block=", block, " no-ft");
    add_row(block, "No FT", "-",
            pipeline.recovered(block, core::FtMethod::kNone, "", 0));
    for (const DatasetSpec& dataset : datasets) {
      log_info("table2: block=", block, " dataset=", dataset.name);
      add_row(block, "SFT", dataset.label,
              pipeline.recovered(block, core::FtMethod::kSft, dataset.name,
                                 dataset.size));
      add_row(block, "Self-Data Distillation", dataset.label,
              pipeline.recovered(block, core::FtMethod::kSelfDataDistill,
                                 dataset.name, dataset.size));
    }
    table.add_separator();
  }

  const auto report_path = pipeline.cache().directory() / "table2_report.json";
  report.write(report_path);
  std::printf(
      "== Table 2: core reasoning suite across datasets and block sizes ==\n\n%s\n",
      table.to_ascii().c_str());
  std::printf("(JSON report: %s)\n\n", report_path.c_str());
  std::printf(
      "Paper shape to verify: Self-Data Distillation > SFT at every (block, "
      "dataset); the 50k OpenMathInstruct rows recover the most (95.96%% at paper "
      "block 6); recovery decreases monotonically with block size.\n");
  return 0;
}
