file(REMOVE_RECURSE
  "CMakeFiles/ablation_compress.dir/ablation_compress.cpp.o"
  "CMakeFiles/ablation_compress.dir/ablation_compress.cpp.o.d"
  "ablation_compress"
  "ablation_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
