# Empty compiler generated dependencies file for ablation_compress.
# This may be replaced when dependencies are built.
