file(REMOVE_RECURSE
  "CMakeFiles/ablation_datasize.dir/ablation_datasize.cpp.o"
  "CMakeFiles/ablation_datasize.dir/ablation_datasize.cpp.o.d"
  "ablation_datasize"
  "ablation_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
