# Empty compiler generated dependencies file for ablation_datasize.
# This may be replaced when dependencies are built.
