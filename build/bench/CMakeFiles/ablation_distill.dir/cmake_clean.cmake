file(REMOVE_RECURSE
  "CMakeFiles/ablation_distill.dir/ablation_distill.cpp.o"
  "CMakeFiles/ablation_distill.dir/ablation_distill.cpp.o.d"
  "ablation_distill"
  "ablation_distill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
