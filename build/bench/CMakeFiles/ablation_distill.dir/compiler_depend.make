# Empty compiler generated dependencies file for ablation_distill.
# This may be replaced when dependencies are built.
