file(REMOVE_RECURSE
  "CMakeFiles/ablation_kd.dir/ablation_kd.cpp.o"
  "CMakeFiles/ablation_kd.dir/ablation_kd.cpp.o.d"
  "ablation_kd"
  "ablation_kd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
