# Empty dependencies file for ablation_kd.
# This may be replaced when dependencies are built.
