file(REMOVE_RECURSE
  "CMakeFiles/ablation_merge.dir/ablation_merge.cpp.o"
  "CMakeFiles/ablation_merge.dir/ablation_merge.cpp.o.d"
  "ablation_merge"
  "ablation_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
