file(REMOVE_RECURSE
  "CMakeFiles/ablation_width_depth.dir/ablation_width_depth.cpp.o"
  "CMakeFiles/ablation_width_depth.dir/ablation_width_depth.cpp.o.d"
  "ablation_width_depth"
  "ablation_width_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_width_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
