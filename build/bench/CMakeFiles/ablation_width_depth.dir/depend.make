# Empty dependencies file for ablation_width_depth.
# This may be replaced when dependencies are built.
