file(REMOVE_RECURSE
  "CMakeFiles/fig1_recovery.dir/fig1_recovery.cpp.o"
  "CMakeFiles/fig1_recovery.dir/fig1_recovery.cpp.o.d"
  "fig1_recovery"
  "fig1_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
