# Empty compiler generated dependencies file for fig1_recovery.
# This may be replaced when dependencies are built.
