file(REMOVE_RECURSE
  "CMakeFiles/fig2_embedding.dir/fig2_embedding.cpp.o"
  "CMakeFiles/fig2_embedding.dir/fig2_embedding.cpp.o.d"
  "fig2_embedding"
  "fig2_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
