# Empty compiler generated dependencies file for fig2_embedding.
# This may be replaced when dependencies are built.
