file(REMOVE_RECURSE
  "CMakeFiles/fig2_metrics.dir/fig2_metrics.cpp.o"
  "CMakeFiles/fig2_metrics.dir/fig2_metrics.cpp.o.d"
  "fig2_metrics"
  "fig2_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
