file(REMOVE_RECURSE
  "CMakeFiles/fig3_dataset_grid.dir/fig3_dataset_grid.cpp.o"
  "CMakeFiles/fig3_dataset_grid.dir/fig3_dataset_grid.cpp.o.d"
  "fig3_dataset_grid"
  "fig3_dataset_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dataset_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
