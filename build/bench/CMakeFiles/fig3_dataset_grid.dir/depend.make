# Empty dependencies file for fig3_dataset_grid.
# This may be replaced when dependencies are built.
