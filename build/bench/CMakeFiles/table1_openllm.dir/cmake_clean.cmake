file(REMOVE_RECURSE
  "CMakeFiles/table1_openllm.dir/table1_openllm.cpp.o"
  "CMakeFiles/table1_openllm.dir/table1_openllm.cpp.o.d"
  "table1_openllm"
  "table1_openllm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_openllm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
