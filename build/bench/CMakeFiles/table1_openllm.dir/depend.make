# Empty dependencies file for table1_openllm.
# This may be replaced when dependencies are built.
