
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_datasets.cpp" "bench/CMakeFiles/table2_datasets.dir/table2_datasets.cpp.o" "gcc" "bench/CMakeFiles/table2_datasets.dir/table2_datasets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sdd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sdd_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/sdd_train.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sdd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sdd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sdd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
