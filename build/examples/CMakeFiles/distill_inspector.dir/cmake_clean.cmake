file(REMOVE_RECURSE
  "CMakeFiles/distill_inspector.dir/distill_inspector.cpp.o"
  "CMakeFiles/distill_inspector.dir/distill_inspector.cpp.o.d"
  "distill_inspector"
  "distill_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distill_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
