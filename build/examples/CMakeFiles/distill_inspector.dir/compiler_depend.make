# Empty compiler generated dependencies file for distill_inspector.
# This may be replaced when dependencies are built.
