file(REMOVE_RECURSE
  "CMakeFiles/merge_lab.dir/merge_lab.cpp.o"
  "CMakeFiles/merge_lab.dir/merge_lab.cpp.o.d"
  "merge_lab"
  "merge_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
