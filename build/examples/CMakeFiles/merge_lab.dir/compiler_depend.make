# Empty compiler generated dependencies file for merge_lab.
# This may be replaced when dependencies are built.
