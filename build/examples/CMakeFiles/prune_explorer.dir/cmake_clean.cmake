file(REMOVE_RECURSE
  "CMakeFiles/prune_explorer.dir/prune_explorer.cpp.o"
  "CMakeFiles/prune_explorer.dir/prune_explorer.cpp.o.d"
  "prune_explorer"
  "prune_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prune_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
