# Empty compiler generated dependencies file for prune_explorer.
# This may be replaced when dependencies are built.
