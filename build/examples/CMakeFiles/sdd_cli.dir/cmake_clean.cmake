file(REMOVE_RECURSE
  "CMakeFiles/sdd_cli.dir/sdd_cli.cpp.o"
  "CMakeFiles/sdd_cli.dir/sdd_cli.cpp.o.d"
  "sdd_cli"
  "sdd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
