# Empty compiler generated dependencies file for sdd_cli.
# This may be replaced when dependencies are built.
