
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache.cpp" "src/core/CMakeFiles/sdd_core.dir/cache.cpp.o" "gcc" "src/core/CMakeFiles/sdd_core.dir/cache.cpp.o.d"
  "/root/repo/src/core/distill.cpp" "src/core/CMakeFiles/sdd_core.dir/distill.cpp.o" "gcc" "src/core/CMakeFiles/sdd_core.dir/distill.cpp.o.d"
  "/root/repo/src/core/kd.cpp" "src/core/CMakeFiles/sdd_core.dir/kd.cpp.o" "gcc" "src/core/CMakeFiles/sdd_core.dir/kd.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/core/CMakeFiles/sdd_core.dir/merge.cpp.o" "gcc" "src/core/CMakeFiles/sdd_core.dir/merge.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/sdd_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/sdd_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/prune.cpp" "src/core/CMakeFiles/sdd_core.dir/prune.cpp.o" "gcc" "src/core/CMakeFiles/sdd_core.dir/prune.cpp.o.d"
  "/root/repo/src/core/quant.cpp" "src/core/CMakeFiles/sdd_core.dir/quant.cpp.o" "gcc" "src/core/CMakeFiles/sdd_core.dir/quant.cpp.o.d"
  "/root/repo/src/core/sparsify.cpp" "src/core/CMakeFiles/sdd_core.dir/sparsify.cpp.o" "gcc" "src/core/CMakeFiles/sdd_core.dir/sparsify.cpp.o.d"
  "/root/repo/src/core/width_prune.cpp" "src/core/CMakeFiles/sdd_core.dir/width_prune.cpp.o" "gcc" "src/core/CMakeFiles/sdd_core.dir/width_prune.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/sdd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sdd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/sdd_train.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sdd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
