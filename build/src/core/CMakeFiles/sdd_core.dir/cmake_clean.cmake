file(REMOVE_RECURSE
  "CMakeFiles/sdd_core.dir/cache.cpp.o"
  "CMakeFiles/sdd_core.dir/cache.cpp.o.d"
  "CMakeFiles/sdd_core.dir/distill.cpp.o"
  "CMakeFiles/sdd_core.dir/distill.cpp.o.d"
  "CMakeFiles/sdd_core.dir/kd.cpp.o"
  "CMakeFiles/sdd_core.dir/kd.cpp.o.d"
  "CMakeFiles/sdd_core.dir/merge.cpp.o"
  "CMakeFiles/sdd_core.dir/merge.cpp.o.d"
  "CMakeFiles/sdd_core.dir/pipeline.cpp.o"
  "CMakeFiles/sdd_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/sdd_core.dir/prune.cpp.o"
  "CMakeFiles/sdd_core.dir/prune.cpp.o.d"
  "CMakeFiles/sdd_core.dir/quant.cpp.o"
  "CMakeFiles/sdd_core.dir/quant.cpp.o.d"
  "CMakeFiles/sdd_core.dir/sparsify.cpp.o"
  "CMakeFiles/sdd_core.dir/sparsify.cpp.o.d"
  "CMakeFiles/sdd_core.dir/width_prune.cpp.o"
  "CMakeFiles/sdd_core.dir/width_prune.cpp.o.d"
  "libsdd_core.a"
  "libsdd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
