file(REMOVE_RECURSE
  "libsdd_core.a"
)
