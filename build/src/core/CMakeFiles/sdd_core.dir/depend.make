# Empty dependencies file for sdd_core.
# This may be replaced when dependencies are built.
