
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/corpus.cpp" "src/data/CMakeFiles/sdd_data.dir/corpus.cpp.o" "gcc" "src/data/CMakeFiles/sdd_data.dir/corpus.cpp.o.d"
  "/root/repo/src/data/evalset.cpp" "src/data/CMakeFiles/sdd_data.dir/evalset.cpp.o" "gcc" "src/data/CMakeFiles/sdd_data.dir/evalset.cpp.o.d"
  "/root/repo/src/data/kb_gen.cpp" "src/data/CMakeFiles/sdd_data.dir/kb_gen.cpp.o" "gcc" "src/data/CMakeFiles/sdd_data.dir/kb_gen.cpp.o.d"
  "/root/repo/src/data/math_gen.cpp" "src/data/CMakeFiles/sdd_data.dir/math_gen.cpp.o" "gcc" "src/data/CMakeFiles/sdd_data.dir/math_gen.cpp.o.d"
  "/root/repo/src/data/sft.cpp" "src/data/CMakeFiles/sdd_data.dir/sft.cpp.o" "gcc" "src/data/CMakeFiles/sdd_data.dir/sft.cpp.o.d"
  "/root/repo/src/data/vocab.cpp" "src/data/CMakeFiles/sdd_data.dir/vocab.cpp.o" "gcc" "src/data/CMakeFiles/sdd_data.dir/vocab.cpp.o.d"
  "/root/repo/src/data/world.cpp" "src/data/CMakeFiles/sdd_data.dir/world.cpp.o" "gcc" "src/data/CMakeFiles/sdd_data.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sdd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
