file(REMOVE_RECURSE
  "CMakeFiles/sdd_data.dir/corpus.cpp.o"
  "CMakeFiles/sdd_data.dir/corpus.cpp.o.d"
  "CMakeFiles/sdd_data.dir/evalset.cpp.o"
  "CMakeFiles/sdd_data.dir/evalset.cpp.o.d"
  "CMakeFiles/sdd_data.dir/kb_gen.cpp.o"
  "CMakeFiles/sdd_data.dir/kb_gen.cpp.o.d"
  "CMakeFiles/sdd_data.dir/math_gen.cpp.o"
  "CMakeFiles/sdd_data.dir/math_gen.cpp.o.d"
  "CMakeFiles/sdd_data.dir/sft.cpp.o"
  "CMakeFiles/sdd_data.dir/sft.cpp.o.d"
  "CMakeFiles/sdd_data.dir/vocab.cpp.o"
  "CMakeFiles/sdd_data.dir/vocab.cpp.o.d"
  "CMakeFiles/sdd_data.dir/world.cpp.o"
  "CMakeFiles/sdd_data.dir/world.cpp.o.d"
  "libsdd_data.a"
  "libsdd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
