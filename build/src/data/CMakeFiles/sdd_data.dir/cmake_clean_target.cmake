file(REMOVE_RECURSE
  "libsdd_data.a"
)
