# Empty dependencies file for sdd_data.
# This may be replaced when dependencies are built.
