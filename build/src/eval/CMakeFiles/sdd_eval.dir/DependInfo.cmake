
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/embedding.cpp" "src/eval/CMakeFiles/sdd_eval.dir/embedding.cpp.o" "gcc" "src/eval/CMakeFiles/sdd_eval.dir/embedding.cpp.o.d"
  "/root/repo/src/eval/flops.cpp" "src/eval/CMakeFiles/sdd_eval.dir/flops.cpp.o" "gcc" "src/eval/CMakeFiles/sdd_eval.dir/flops.cpp.o.d"
  "/root/repo/src/eval/harness.cpp" "src/eval/CMakeFiles/sdd_eval.dir/harness.cpp.o" "gcc" "src/eval/CMakeFiles/sdd_eval.dir/harness.cpp.o.d"
  "/root/repo/src/eval/perplexity.cpp" "src/eval/CMakeFiles/sdd_eval.dir/perplexity.cpp.o" "gcc" "src/eval/CMakeFiles/sdd_eval.dir/perplexity.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/eval/CMakeFiles/sdd_eval.dir/report.cpp.o" "gcc" "src/eval/CMakeFiles/sdd_eval.dir/report.cpp.o.d"
  "/root/repo/src/eval/self_consistency.cpp" "src/eval/CMakeFiles/sdd_eval.dir/self_consistency.cpp.o" "gcc" "src/eval/CMakeFiles/sdd_eval.dir/self_consistency.cpp.o.d"
  "/root/repo/src/eval/suite.cpp" "src/eval/CMakeFiles/sdd_eval.dir/suite.cpp.o" "gcc" "src/eval/CMakeFiles/sdd_eval.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/sdd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sdd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sdd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
