file(REMOVE_RECURSE
  "CMakeFiles/sdd_eval.dir/embedding.cpp.o"
  "CMakeFiles/sdd_eval.dir/embedding.cpp.o.d"
  "CMakeFiles/sdd_eval.dir/flops.cpp.o"
  "CMakeFiles/sdd_eval.dir/flops.cpp.o.d"
  "CMakeFiles/sdd_eval.dir/harness.cpp.o"
  "CMakeFiles/sdd_eval.dir/harness.cpp.o.d"
  "CMakeFiles/sdd_eval.dir/perplexity.cpp.o"
  "CMakeFiles/sdd_eval.dir/perplexity.cpp.o.d"
  "CMakeFiles/sdd_eval.dir/report.cpp.o"
  "CMakeFiles/sdd_eval.dir/report.cpp.o.d"
  "CMakeFiles/sdd_eval.dir/self_consistency.cpp.o"
  "CMakeFiles/sdd_eval.dir/self_consistency.cpp.o.d"
  "CMakeFiles/sdd_eval.dir/suite.cpp.o"
  "CMakeFiles/sdd_eval.dir/suite.cpp.o.d"
  "libsdd_eval.a"
  "libsdd_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdd_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
