file(REMOVE_RECURSE
  "libsdd_eval.a"
)
