# Empty compiler generated dependencies file for sdd_eval.
# This may be replaced when dependencies are built.
