file(REMOVE_RECURSE
  "CMakeFiles/sdd_nn.dir/block.cpp.o"
  "CMakeFiles/sdd_nn.dir/block.cpp.o.d"
  "CMakeFiles/sdd_nn.dir/decode.cpp.o"
  "CMakeFiles/sdd_nn.dir/decode.cpp.o.d"
  "CMakeFiles/sdd_nn.dir/linear.cpp.o"
  "CMakeFiles/sdd_nn.dir/linear.cpp.o.d"
  "CMakeFiles/sdd_nn.dir/module.cpp.o"
  "CMakeFiles/sdd_nn.dir/module.cpp.o.d"
  "CMakeFiles/sdd_nn.dir/transformer.cpp.o"
  "CMakeFiles/sdd_nn.dir/transformer.cpp.o.d"
  "libsdd_nn.a"
  "libsdd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
