file(REMOVE_RECURSE
  "libsdd_nn.a"
)
