# Empty dependencies file for sdd_nn.
# This may be replaced when dependencies are built.
