file(REMOVE_RECURSE
  "CMakeFiles/sdd_tensor.dir/kernels.cpp.o"
  "CMakeFiles/sdd_tensor.dir/kernels.cpp.o.d"
  "CMakeFiles/sdd_tensor.dir/ops.cpp.o"
  "CMakeFiles/sdd_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/sdd_tensor.dir/tensor.cpp.o"
  "CMakeFiles/sdd_tensor.dir/tensor.cpp.o.d"
  "libsdd_tensor.a"
  "libsdd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
