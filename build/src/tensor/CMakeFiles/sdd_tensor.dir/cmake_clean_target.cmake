file(REMOVE_RECURSE
  "libsdd_tensor.a"
)
