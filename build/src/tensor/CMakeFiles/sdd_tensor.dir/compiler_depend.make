# Empty compiler generated dependencies file for sdd_tensor.
# This may be replaced when dependencies are built.
