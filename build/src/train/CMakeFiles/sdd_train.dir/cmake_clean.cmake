file(REMOVE_RECURSE
  "CMakeFiles/sdd_train.dir/optim.cpp.o"
  "CMakeFiles/sdd_train.dir/optim.cpp.o.d"
  "CMakeFiles/sdd_train.dir/trainer.cpp.o"
  "CMakeFiles/sdd_train.dir/trainer.cpp.o.d"
  "libsdd_train.a"
  "libsdd_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdd_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
