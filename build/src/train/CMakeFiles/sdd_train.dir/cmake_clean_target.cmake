file(REMOVE_RECURSE
  "libsdd_train.a"
)
