# Empty dependencies file for sdd_train.
# This may be replaced when dependencies are built.
