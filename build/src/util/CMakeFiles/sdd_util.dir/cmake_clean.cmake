file(REMOVE_RECURSE
  "CMakeFiles/sdd_util.dir/env.cpp.o"
  "CMakeFiles/sdd_util.dir/env.cpp.o.d"
  "CMakeFiles/sdd_util.dir/hash.cpp.o"
  "CMakeFiles/sdd_util.dir/hash.cpp.o.d"
  "CMakeFiles/sdd_util.dir/json.cpp.o"
  "CMakeFiles/sdd_util.dir/json.cpp.o.d"
  "CMakeFiles/sdd_util.dir/log.cpp.o"
  "CMakeFiles/sdd_util.dir/log.cpp.o.d"
  "CMakeFiles/sdd_util.dir/serialize.cpp.o"
  "CMakeFiles/sdd_util.dir/serialize.cpp.o.d"
  "CMakeFiles/sdd_util.dir/table.cpp.o"
  "CMakeFiles/sdd_util.dir/table.cpp.o.d"
  "CMakeFiles/sdd_util.dir/threadpool.cpp.o"
  "CMakeFiles/sdd_util.dir/threadpool.cpp.o.d"
  "libsdd_util.a"
  "libsdd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
