file(REMOVE_RECURSE
  "libsdd_util.a"
)
