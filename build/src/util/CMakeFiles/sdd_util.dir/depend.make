# Empty dependencies file for sdd_util.
# This may be replaced when dependencies are built.
