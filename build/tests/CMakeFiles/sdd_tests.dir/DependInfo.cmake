
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_compress.cpp" "tests/CMakeFiles/sdd_tests.dir/test_compress.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_compress.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/sdd_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/sdd_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/sdd_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_eval.cpp" "tests/CMakeFiles/sdd_tests.dir/test_eval.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_eval.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/sdd_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/sdd_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_invariants.cpp" "tests/CMakeFiles/sdd_tests.dir/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_invariants.cpp.o.d"
  "/root/repo/tests/test_kernels.cpp" "tests/CMakeFiles/sdd_tests.dir/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/sdd_tests.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_nn.cpp.o.d"
  "/root/repo/tests/test_perplexity.cpp" "tests/CMakeFiles/sdd_tests.dir/test_perplexity.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_perplexity.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/sdd_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/sdd_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_statistics.cpp" "tests/CMakeFiles/sdd_tests.dir/test_statistics.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_statistics.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/sdd_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_train.cpp" "tests/CMakeFiles/sdd_tests.dir/test_train.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_train.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/sdd_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/sdd_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sdd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sdd_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/sdd_train.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sdd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sdd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sdd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
