# Empty dependencies file for sdd_tests.
# This may be replaced when dependencies are built.
