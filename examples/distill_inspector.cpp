// Distill inspector: look at what self-data distillation actually does to a
// dataset — original (human-style) targets vs teacher rewrites, plus the
// conditional-selection statistics (paper §2.2).
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/env.hpp"

using namespace sdd;

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const data::Vocab& vocab = data::Vocab::instance();

  const std::string dataset_name = env_string("SDD_INSPECT_DATASET", "gsm8k");
  const std::int64_t size = env_int("SDD_INSPECT_SIZE", 40);
  const std::int64_t show = env_int("SDD_INSPECT_SHOW", 6);

  const data::SftDataset raw = pipeline.raw_dataset(dataset_name, size);
  core::DistillStats stats;
  const data::SftDataset distilled =
      core::self_distill_dataset(pipeline.base_model(), raw,
                                 pipeline.config().distill, &stats);

  std::printf("dataset: %s (%lld examples)\n", dataset_name.c_str(),
              static_cast<long long>(size));
  std::printf("teacher rewrites accepted: %lld/%lld (%.1f%%), fallbacks: %lld\n\n",
              static_cast<long long>(stats.accepted),
              static_cast<long long>(stats.total), stats.acceptance_rate() * 100.0,
              static_cast<long long>(stats.fallback));

  for (std::int64_t i = 0; i < show && i < size; ++i) {
    const data::SftExample& original = raw.examples[static_cast<std::size_t>(i)];
    const data::SftExample& rewritten =
        distilled.examples[static_cast<std::size_t>(i)];
    const bool kept_rewrite = original.target != rewritten.target;
    std::printf("--- example %lld %s\n", static_cast<long long>(i),
                kept_rewrite ? "(teacher rewrite accepted)"
                             : "(fallback to original target)");
    std::printf("prompt   : %s\n", vocab.decode(original.prompt).c_str());
    std::printf("original : %s\n", vocab.decode(original.target).c_str());
    std::printf("distilled: %s\n\n", vocab.decode(rewritten.target).c_str());
  }
  return 0;
}
