// Merge lab: SLERP model merging of two self-data-distilled models (paper §4
// and Appendix D) with an interpolation-factor sweep and a LERP comparison.
#include <cstdio>

#include "core/pipeline.hpp"
#include "eval/suite.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

using namespace sdd;

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};

  const std::int64_t block = env_int("SDD_MERGE_BLOCK", 3);
  const std::int64_t size_math = env_int("SDD_MERGE_SIZE_MATH", 800);
  const std::int64_t size_alpaca = env_int("SDD_MERGE_SIZE_ALPACA", 800);

  std::printf("Fine-tuning the two parents (cached if already run)...\n");
  const nn::TransformerLM math_model = pipeline.recovered(
      block, core::FtMethod::kSelfDataDistill, "openmathinstruct", size_math);
  const nn::TransformerLM alpaca_model = pipeline.recovered(
      block, core::FtMethod::kSelfDataDistill, "alpaca", size_alpaca);

  eval::SuiteSpec spec;
  spec.mc_items = env_int("SDD_MERGE_ITEMS", 40);
  spec.gen_items = spec.mc_items;

  const auto baseline = eval::evaluate_suite(pipeline.base_model(), pipeline.world(),
                                             eval::core_tasks(), spec);

  TablePrinter table{{"model", "t", "avg score", "recovery"}};
  const auto add = [&](const std::string& name, const nn::TransformerLM& model,
                       const std::string& t_label) {
    const auto scores =
        eval::evaluate_suite(model, pipeline.world(), eval::core_tasks(), spec);
    table.add_row({name, t_label, format_float(scores.average * 100.0),
                   format_float(eval::recovery_percent(scores, baseline)) + "%"});
  };

  add("SDD openmathinstruct", math_model, "-");
  add("SDD alpaca", alpaca_model, "-");
  table.add_separator();
  for (const float t : {0.25F, 0.5F, 0.75F}) {
    add("SLERP merge", core::merge_models(math_model, alpaca_model, t),
        format_float(t, 2));
  }
  add("LERP merge",
      core::merge_models(math_model, alpaca_model, 0.5F, core::MergeMode::kLerp),
      "0.50");

  std::printf("\n%s\n", table.to_ascii().c_str());
  return 0;
}
