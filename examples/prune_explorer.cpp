// Prune explorer: inspect per-layer importance under all three metrics and
// the block-distance curves Algorithm 1 minimizes (the data behind Figure 2
// left/center).
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

using namespace sdd;

namespace {

std::string bar(double value, double max_value, int width = 28) {
  const int fill =
      max_value > 0.0 ? static_cast<int>(value / max_value * width) : 0;
  std::string s(static_cast<std::size_t>(fill), '#');
  s.resize(static_cast<std::size_t>(width), ' ');
  return s;
}

}  // namespace

int main() {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const nn::TransformerLM& base = pipeline.base_model();
  const auto& calibration = pipeline.calibration();

  std::printf("Per-layer importance (lower = more redundant), %lld layers\n\n",
              static_cast<long long>(base.n_layers()));

  const core::ImportanceMetric metrics[] = {
      core::ImportanceMetric::kAngularCosine,
      core::ImportanceMetric::kBlockInfluence,
      core::ImportanceMetric::kRelativeMagnitude};
  std::vector<std::vector<double>> curves;
  for (const auto metric : metrics) {
    curves.push_back(core::layer_importance(base, calibration, metric));
  }

  TablePrinter table{{"layer", "angular", "", "block_influence", "rel_magnitude"}};
  double max_angular = 0.0;
  for (double d : curves[0]) max_angular = std::max(max_angular, d);
  for (std::size_t l = 0; l < curves[0].size(); ++l) {
    table.add_row({std::to_string(l), format_float(curves[0][l], 4),
                   bar(curves[0][l], max_angular), format_float(curves[1][l], 4),
                   format_float(curves[2][l], 4)});
  }
  std::printf("%s\n", table.to_ascii().c_str());

  std::printf("Algorithm 1 block selection per prune block size:\n\n");
  TablePrinter blocks{{"block size n", "paper n (32-layer)", "optimal start l*",
                       "pruned layers", "angular distance"}};
  for (std::int64_t n = 1; n <= 5; ++n) {
    const core::PruneResult& result = pipeline.prune(n);
    blocks.add_row({std::to_string(n), std::to_string(2 * n),
                    std::to_string(result.start),
                    "[" + std::to_string(result.start) + ", " +
                        std::to_string(result.start + n) + ")",
                    format_float(result.distance, 4)});
  }
  std::printf("%s\n", blocks.to_ascii().c_str());
  return 0;
}
