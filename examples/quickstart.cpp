// Quickstart: the paper's full loop in one small program.
//
//   1. Pre-train (or load the cached) base model on the synthetic mixture.
//   2. Depth-prune a block of decoder layers with the angular-cosine metric
//      (Algorithm 1).
//   3. Recover the pruned model with self-data distilled fine-tuning.
//   4. Compare No-FT / SFT / Self-Data FT on the core evaluation suite.
//
// Artifacts are cached under sdd_cache/ (set SDD_CACHE_DIR to move it), so a
// second run is fast and bench runs share the same base model.
#include <cstdio>

#include "core/pipeline.hpp"
#include "eval/suite.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

using namespace sdd;

int main() {
  core::PipelineConfig config = core::PipelineConfig::standard();
  core::Pipeline pipeline{config};

  const std::int64_t block = env_int("SDD_QUICKSTART_BLOCK", 3);  // ≙ paper n=6
  const std::int64_t dataset_size = env_int("SDD_QUICKSTART_DATASET_SIZE", 800);
  const std::string dataset = "openmathinstruct";

  std::printf("== base model ==\n");
  const nn::TransformerLM& base = pipeline.base_model();
  std::printf("layers=%lld params=%lld\n", static_cast<long long>(base.n_layers()),
              static_cast<long long>(base.param_count()));

  std::printf("== prune n=%lld (angular cosine, Algorithm 1) ==\n",
              static_cast<long long>(block));
  const core::PruneResult& prune = pipeline.prune(block);
  std::printf("optimal block: layers [%lld, %lld), distance %.4f\n",
              static_cast<long long>(prune.start),
              static_cast<long long>(prune.start + block), prune.distance);

  eval::SuiteSpec spec;
  spec.mc_items = env_int("SDD_QUICKSTART_ITEMS", 40);
  spec.gen_items = spec.mc_items;

  TablePrinter table{{"model", "arc_c", "gsm8k", "mmlu", "avg", "recovery"}};
  const auto baseline =
      eval::evaluate_suite(base, pipeline.world(), eval::core_tasks(), spec);

  const auto add_row = [&](const std::string& name, const nn::TransformerLM& model) {
    const auto scores =
        eval::evaluate_suite(model, pipeline.world(), eval::core_tasks(), spec);
    table.add_row({name, format_float(scores.task("arc_c") * 100.0),
                   format_float(scores.task("gsm8k") * 100.0),
                   format_float(scores.task("mmlu") * 100.0),
                   format_float(scores.average * 100.0),
                   format_float(eval::recovery_percent(scores, baseline)) + "%"});
  };

  table.add_row({"baseline (unpruned)", format_float(baseline.task("arc_c") * 100.0),
                 format_float(baseline.task("gsm8k") * 100.0),
                 format_float(baseline.task("mmlu") * 100.0),
                 format_float(baseline.average * 100.0), "100.00%"});
  add_row("pruned, no FT",
          pipeline.recovered(block, core::FtMethod::kNone, dataset, dataset_size));
  add_row("pruned + SFT",
          pipeline.recovered(block, core::FtMethod::kSft, dataset, dataset_size));
  add_row("pruned + Self-Data FT",
          pipeline.recovered(block, core::FtMethod::kSelfDataDistill, dataset,
                             dataset_size));

  std::printf("\n%s\n", table.to_ascii().c_str());
  std::printf("(items per task: %lld; dataset: %s, %lld samples)\n",
              static_cast<long long>(spec.mc_items), dataset.c_str(),
              static_cast<long long>(dataset_size));
  return 0;
}
