// Chaos soak for cross-process serving replicas (scripts/replica_soak.sh).
//
// Builds a tiny full model plus two depth-pruned variants, saves them as
// checkpoints, and hosts all three behind a VariantRouter in cross-process
// mode: each variant runs in its own `replica-worker` child (this binary
// re-execs itself — see main), supervised with heartbeat leases, crash
// respawn, and breaker quarantine. Concurrent clients then assert the
// process-isolation invariants end to end:
//   * every submitted request reaches a terminal typed RouteResponse — no
//     request is lost, even when a worker is SIGKILLed mid-decode (the
//     in-flight tickets fail over to sibling variants);
//   * stats balance: router resolved == submitted;
//   * cross-process determinism: whichever variant completed a request, its
//     tokens are byte-identical to the in-process nn::generate reference for
//     THAT variant — the process boundary never changes bytes;
//   * under worker chaos (SDD_REPLICA_FAULT = replica_kill9:at=N,
//     replica_wedge:N, or ipc_torn_frame, armed in the first worker
//     generation of variant SDD_REPLICA_FAULT_IDX only) the dead variant's
//     breaker opens, the supervisor respawns it, the router records
//     failovers, and a half-open probe readmits the respawned worker;
//   * SDD_REPLICA_SOAK_SWAP=1: a rolling upgrade (swap_model) drains the
//     `full` worker, respawns it on different weights, and pinned post-swap
//     requests decode exactly the new checkpoint's reference output.
//
// Exit codes: 0 = all invariants held, 3 = an invariant was violated,
// 2 = infra (bad workdir).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "nn/decode.hpp"
#include "nn/transformer.hpp"
#include "serve/router.hpp"
#include "util/env.hpp"
#include "util/signals.hpp"

using namespace sdd;
using namespace std::chrono_literals;

namespace {

struct Submitted {
  serve::RouteRequest request;
  serve::RouteTicketPtr ticket;
};

nn::ModelConfig soak_model_config() {
  nn::ModelConfig config;
  config.vocab_size = env_int("SDD_ROUTE_SOAK_VOCAB", 96);
  config.d_model = env_int("SDD_ROUTE_SOAK_DMODEL", 32);
  config.n_heads = env_int("SDD_ROUTE_SOAK_HEADS", 2);
  config.n_layers = env_int("SDD_ROUTE_SOAK_LAYERS", 4);
  config.d_ff = env_int("SDD_ROUTE_SOAK_DFF", 48);
  config.max_seq_len = env_int("SDD_ROUTE_SOAK_CTX", 64);
  return config;
}

serve::RouteRequest request_for(std::uint64_t index) {
  serve::RouteRequest route;
  route.request.prompt = {static_cast<std::int32_t>(1 + index % 13),
                          static_cast<std::int32_t>(2 + index % 7),
                          static_cast<std::int32_t>(5 + index % 19)};
  route.request.max_new_tokens = 6 + static_cast<std::int64_t>(index % 8);
  route.request.temperature = index % 3 == 0 ? 0.0F : 0.6F;
  route.request.seed = 9000 + index;
  route.request.priority = static_cast<std::int32_t>(index % 4);
  // Generous or absent deadlines only: cross-process hops pay spawn/IPC
  // latency, and this soak is about process supervision, not deadline
  // degradation (router_soak covers that).
  route.request.deadline_ms = index % 2 == 0 ? 0 : 20000;
  if (index % 7 == 3) route.variant = "p1";
  return route;
}

std::vector<std::int32_t> reference_tokens(const nn::TransformerLM& model,
                                           const serve::Request& request) {
  nn::GenerateOptions options;
  options.max_new_tokens = request.max_new_tokens;
  options.temperature = request.temperature;
  options.stop_token = request.stop_token;
  options.seed = request.seed;
  return nn::generate(model, request.prompt, options);
}

// Child entry: `replica_soak replica-worker --model M --name N --fd F
// --heartbeat H`, the same argv contract RemoteReplica uses to spawn
// `sdd_cli replica-worker` — self_exe() re-exec means the worker is always
// this binary, so the production spawn path is what gets soaked.
int run_worker(int argc, char** argv) {
  std::string model;
  std::string name = "replica";
  int fd = -1;
  std::int64_t heartbeat_ms = 25;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const std::string value = argv[i + 1];
    if (key == "--model") model = value;
    if (key == "--name") name = value;
    if (key == "--fd") fd = static_cast<int>(std::stol(value));
    if (key == "--heartbeat") heartbeat_ms = std::stoll(value);
  }
  signals::install_graceful_shutdown();
  return serve::replica_worker_main(model, name, fd, heartbeat_ms);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string{argv[1]} == "replica-worker") {
    return run_worker(argc, argv);
  }

  // Chaos reaches the workers through the router: it forwards
  // SDD_REPLICA_FAULT as the targeted variant's first-generation SDD_FAULT.
  // The parent only needs the spec here to pick its assertions.
  const std::string chaos = env_string("SDD_REPLICA_FAULT", "");
  const auto target =
      static_cast<std::size_t>(env_int("SDD_REPLICA_FAULT_IDX", 0));
  const bool swap_mode = env_flag("SDD_REPLICA_SOAK_SWAP", false);

  const std::filesystem::path work{
      env_string("SDD_REPLICA_SOAK_DIR", "replica_soak_work")};
  std::error_code ec;
  std::filesystem::create_directories(work, ec);
  if (ec) {
    std::fprintf(stderr, "replica_soak: cannot create workdir %s: %s\n",
                 work.string().c_str(), ec.message().c_str());
    return 2;
  }

  // The paper's variant family: full model + depth-pruned variants (random
  // weights — only supervision and byte-level determinism are under test).
  const nn::TransformerLM full{soak_model_config(), 2025};
  const nn::TransformerLM p1 = full.pruned(2, 1);
  const nn::TransformerLM p2 = full.pruned(1, 2);
  full.save(work / "full.bin");
  p1.save(work / "p1.bin");
  p2.save(work / "p2.bin");

  const std::vector<const nn::TransformerLM*> models{&full, &p1, &p2};
  const std::vector<std::string> names{"full", "p1", "p2"};

  const std::int64_t clients = env_int("SDD_ROUTE_SOAK_CLIENTS", 4);
  const std::int64_t per_client = env_int("SDD_ROUTE_SOAK_PER_CLIENT", 12);
  const auto total = static_cast<std::size_t>(clients * per_client);

  // In-process references, decoded before any worker exists: reference[v][i]
  // is the exact byte sequence request i must produce on variant v, whether
  // it lands there directly or after failover.
  std::vector<std::vector<std::vector<std::int32_t>>> reference(models.size());
  for (std::size_t v = 0; v < models.size(); ++v) {
    reference[v].resize(total);
    for (std::size_t i = 0; i < total; ++i) {
      reference[v][i] = reference_tokens(*models[v], request_for(i).request);
    }
  }

  serve::RouterConfig config = serve::RouterConfig::from_env();
  config.cross_process = true;

  std::vector<serve::VariantSpec> variants(3);
  for (std::size_t v = 0; v < 3; ++v) {
    variants[v].name = names[v];
    variants[v].path = (work / (names[v] + ".bin")).string();
    variants[v].quality = v == 0 ? 0.9 : (v == 1 ? 0.7 : 0.55);
    variants[v].cost_hint = models[v]->param_count();
  }
  serve::VariantRouter router{std::move(variants), std::move(config)};

  std::vector<Submitted> submitted(total);
  std::vector<std::thread> client_threads;
  for (std::int64_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (std::int64_t r = 0; r < per_client; ++r) {
        const auto index = static_cast<std::size_t>(c * per_client + r);
        Submitted& entry = submitted[index];
        entry.request = request_for(index);
        entry.ticket = router.submit(entry.request);
      }
    });
  }
  for (auto& thread : client_threads) thread.join();

  std::int64_t unresolved = 0;
  std::int64_t determinism_violations = 0;
  std::int64_t completed_remote = 0;
  for (std::size_t i = 0; i < submitted.size(); ++i) {
    serve::RouteTicket& ticket = *submitted[i].ticket;
    if (!ticket.wait_for(120s)) {
      ++unresolved;
      std::fprintf(stderr, "replica_soak: request %zu never resolved\n", i);
      continue;
    }
    const serve::RouteResponse& routed = ticket.wait();
    if (!serve::request_state_terminal(routed.response.state)) {
      ++unresolved;
      continue;
    }
    if (routed.variant.empty()) continue;  // never reached a replica
    const auto v = static_cast<std::size_t>(
        std::find(names.begin(), names.end(), routed.variant) - names.begin());
    if (v >= names.size()) {
      ++determinism_violations;
      std::fprintf(stderr,
                   "replica_soak: request %zu reports unknown variant '%s'\n",
                   i, routed.variant.c_str());
      continue;
    }
    // The digest invariant: tokens decoded across the process boundary are
    // byte-identical to the in-process reference for the serving variant.
    const auto& ref = reference[v][i];
    const auto& got = routed.response.tokens;
    const bool prefix = got.size() <= ref.size() &&
                        std::equal(got.begin(), got.end(), ref.begin());
    const bool full_required =
        routed.response.state == serve::RequestState::kCompleted &&
        !routed.response.degraded;
    if (!prefix || (full_required && got != ref)) {
      ++determinism_violations;
      std::fprintf(stderr,
                   "replica_soak: request %zu diverged on variant %s "
                   "(state=%s, hops=%lld, %zu tokens vs %zu reference)\n",
                   i, routed.variant.c_str(),
                   std::string{request_state_name(routed.response.state)}
                       .c_str(),
                   static_cast<long long>(routed.hops), got.size(), ref.size());
    }
    if (routed.response.state == serve::RequestState::kCompleted) {
      ++completed_remote;
    }
  }

  // Recovery phase: with worker chaos armed, keep offering traffic until the
  // respawned worker answers a half-open probe and the variant is healthy
  // again — quarantine must be temporary.
  if (!chaos.empty() && target < names.size()) {
    const auto recovery_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds{60};
    std::uint64_t extra = 0;
    while (std::chrono::steady_clock::now() < recovery_deadline) {
      const serve::ReplicaSnapshot snap = router.replicas()[target];
      if (snap.health == serve::HealthState::kHealthy &&
          snap.stats.probe_successes >= 1) {
        break;
      }
      serve::RouteRequest route = request_for(extra % total);
      route.variant.clear();
      route.request.deadline_ms = 0;
      router.submit(route)->wait_for(10s);
      ++extra;
      std::this_thread::sleep_for(20ms);
    }
  }

  // Rolling upgrade: drain `full`, come back on different weights, and serve
  // pinned traffic that must decode the NEW checkpoint's reference bytes.
  bool swap_ok = true;
  if (swap_mode) {
    const nn::TransformerLM full_v2{soak_model_config(), 4242};
    full_v2.save(work / "full_v2.bin");
    serve::Replica* replica = router.replica("full");
    if (!replica->swap_model((work / "full_v2.bin").string(), 15000)) {
      std::fprintf(stderr, "replica_soak: swap_model never saw the new "
                   "generation's HELLO\n");
      swap_ok = false;
    } else {
      for (std::uint64_t i = 0; i < 8; ++i) {
        serve::RouteRequest route = request_for(i);
        route.variant = "full";
        route.request.deadline_ms = 0;
        // Keep the ticket alive past wait(): the RouteResponse reference
        // lives inside the ticket's job.
        const serve::RouteTicketPtr ticket = router.submit(route);
        const serve::RouteResponse& routed = ticket->wait();
        if (routed.response.state != serve::RequestState::kCompleted ||
            routed.variant != "full") {
          std::fprintf(stderr,
                       "replica_soak: post-swap request %llu not completed on "
                       "'full' (state=%s, variant=%s)\n",
                       static_cast<unsigned long long>(i),
                       std::string{
                           request_state_name(routed.response.state)}.c_str(),
                       routed.variant.c_str());
          swap_ok = false;
          continue;
        }
        if (routed.response.tokens !=
            reference_tokens(full_v2, route.request)) {
          std::fprintf(stderr,
                       "replica_soak: post-swap request %llu does not match "
                       "the new checkpoint's reference\n",
                       static_cast<unsigned long long>(i));
          swap_ok = false;
        }
      }
      if (router.replicas()[0].restarts < 1) {
        std::fprintf(stderr, "replica_soak: swap completed but no restart "
                     "recorded\n");
        swap_ok = false;
      }
    }
  }

  const std::vector<serve::ReplicaSnapshot> before_stop = router.replicas();
  router.shutdown();

  const serve::RouterStats stats = router.stats();
  std::printf("replica_soak: submitted=%lld resolved=%lld completed=%lld "
              "failed=%lld failovers=%lld exhausted=%lld\n",
              static_cast<long long>(stats.submitted),
              static_cast<long long>(stats.resolved()),
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.failed),
              static_cast<long long>(stats.failovers),
              static_cast<long long>(stats.exhausted));
  for (const serve::ReplicaSnapshot& snap : before_stop) {
    std::printf("replica_soak: replica %-5s health=%-9s pid=%lld "
                "restarts=%lld beat_age=%lldms dispatched=%lld "
                "completed=%lld failures=%lld opens=%lld probes=%lld "
                "probe_ok=%lld\n",
                snap.name.c_str(),
                std::string{serve::health_state_name(snap.health)}.c_str(),
                static_cast<long long>(snap.pid),
                static_cast<long long>(snap.restarts),
                static_cast<long long>(snap.heartbeat_age_ms),
                static_cast<long long>(snap.stats.dispatched),
                static_cast<long long>(snap.stats.completed),
                static_cast<long long>(snap.stats.breaker_failures),
                static_cast<long long>(snap.stats.breaker_opens),
                static_cast<long long>(snap.stats.probes),
                static_cast<long long>(snap.stats.probe_successes));
  }

  bool ok = swap_ok;
  if (unresolved > 0) {
    std::fprintf(stderr, "replica_soak: %lld request(s) never terminated\n",
                 static_cast<long long>(unresolved));
    ok = false;
  }
  if (stats.resolved() != stats.submitted) {
    std::fprintf(stderr, "replica_soak: stats leak: %lld submitted, %lld "
                 "resolved\n", static_cast<long long>(stats.submitted),
                 static_cast<long long>(stats.resolved()));
    ok = false;
  }
  if (determinism_violations > 0) {
    std::fprintf(stderr, "replica_soak: %lld determinism violation(s)\n",
                 static_cast<long long>(determinism_violations));
    ok = false;
  }
  if (completed_remote == 0) {
    std::fprintf(stderr, "replica_soak: nothing completed — degenerate run\n");
    ok = false;
  }
  if (!chaos.empty() && target < names.size()) {
    const serve::ReplicaSnapshot& snap = before_stop[target];
    if (snap.stats.breaker_opens < 1) {
      std::fprintf(stderr, "replica_soak: chaos '%s' armed but variant '%s' "
                   "never quarantined (breaker_opens=0)\n",
                   chaos.c_str(), snap.name.c_str());
      ok = false;
    }
    if (snap.restarts < 1) {
      std::fprintf(stderr, "replica_soak: chaos '%s' armed but variant '%s' "
                   "never respawned (restarts=0)\n",
                   chaos.c_str(), snap.name.c_str());
      ok = false;
    }
    if (snap.health != serve::HealthState::kHealthy ||
        snap.stats.probe_successes < 1) {
      std::fprintf(stderr, "replica_soak: variant '%s' never probed back to "
                   "healthy (health=%s, probe_ok=%lld)\n",
                   snap.name.c_str(),
                   std::string{serve::health_state_name(snap.health)}.c_str(),
                   static_cast<long long>(snap.stats.probe_successes));
      ok = false;
    }
    if (stats.failovers < 1) {
      std::fprintf(stderr, "replica_soak: chaos armed but no failover "
                   "recorded\n");
      ok = false;
    }
  }
  std::printf("replica_soak: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 3;
}
