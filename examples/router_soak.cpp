// Chaos soak for the replicated multi-variant router (scripts/router_soak.sh).
//
// Builds a tiny full model plus two depth-pruned variants, hosts all three
// behind a VariantRouter, fires concurrent clients at it, and asserts the
// routing-layer invariants under fault injection:
//   * every submitted request reaches a terminal typed RouteResponse — no
//     request is ever lost, no deadlock, even with a dead variant;
//   * stats balance: router resolved == submitted;
//   * per-variant determinism: whichever replica completed a request —
//     including after failover rerouting — its tokens are a prefix of the
//     unloaded nn::generate reference for THAT variant (equal when the
//     request completed undegraded), i.e. byte-identical to a no-chaos run;
//   * under replica_fail chaos the dead variant's breaker opens
//     (quarantine), half-open probes eventually close it again once the
//     failure window passes, and the router recorded failovers meanwhile;
//   * under breaker_flap chaos the breaker opened at least once.
//
// Faults come from SDD_ROUTE_FAULT (same syntax as SDD_FAULT — see
// src/util/fault.hpp) and are armed only after the models are built and the
// per-variant reference outputs are decoded, so injector ordinals count
// routed dispatches, not setup work. A malformed spec exits 64 (EX_USAGE).
//
// Exit codes: 0 = all invariants held, 3 = an invariant was violated.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "nn/decode.hpp"
#include "nn/transformer.hpp"
#include "serve/router.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

using namespace sdd;
using namespace std::chrono_literals;

namespace {

struct Submitted {
  serve::RouteRequest request;
  serve::RouteTicketPtr ticket;
};

nn::ModelConfig soak_model_config() {
  nn::ModelConfig config;
  config.vocab_size = env_int("SDD_ROUTE_SOAK_VOCAB", 96);
  config.d_model = env_int("SDD_ROUTE_SOAK_DMODEL", 32);
  config.n_heads = env_int("SDD_ROUTE_SOAK_HEADS", 2);
  config.n_layers = env_int("SDD_ROUTE_SOAK_LAYERS", 4);
  config.d_ff = env_int("SDD_ROUTE_SOAK_DFF", 48);
  config.max_seq_len = env_int("SDD_ROUTE_SOAK_CTX", 64);
  return config;
}

serve::RouteRequest request_for(std::uint64_t index) {
  serve::RouteRequest route;
  route.request.prompt = {static_cast<std::int32_t>(1 + index % 13),
                          static_cast<std::int32_t>(2 + index % 7),
                          static_cast<std::int32_t>(5 + index % 19)};
  route.request.max_new_tokens = 6 + static_cast<std::int64_t>(index % 8);
  route.request.temperature = index % 3 == 0 ? 0.0F : 0.6F;
  route.request.seed = 9000 + index;
  route.request.priority = static_cast<std::int32_t>(index % 4);
  // Mixed deadlines: none, generous, and tight enough to exercise the
  // degradation-by-routing path (tight deadlines prefer cheap variants).
  route.request.deadline_ms = index % 5 == 0 ? 30 : (index % 2 == 0 ? 0 : 5000);
  // Some requests pin a specific pruned variant, like a client that already
  // knows which quality tier it wants.
  if (index % 7 == 3) route.variant = "p1";
  return route;
}

std::vector<std::int32_t> reference_tokens(const nn::TransformerLM& model,
                                           const serve::Request& request) {
  nn::GenerateOptions options;
  options.max_new_tokens = request.max_new_tokens;
  options.temperature = request.temperature;
  options.stop_token = request.stop_token;
  options.seed = request.seed;
  return nn::generate(model, request.prompt, options);
}

}  // namespace

int main() {
  // Keep lazy SDD_FAULT arming out of the setup phase: this driver arms
  // faults itself, from SDD_ROUTE_FAULT, once setup is done.
  const std::string fault_spec = env_string("SDD_ROUTE_FAULT", "");
  fault::FaultConfig fault_config;
  if (!fault_spec.empty()) {
    try {
      fault_config = fault::parse_fault_spec(fault_spec);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "router_soak: malformed SDD_ROUTE_FAULT: %s\n",
                   e.what());
      return 64;  // EX_USAGE, matching the SDD_FAULT contract
    }
  }

  // The variant family the paper produces: the full model plus depth-pruned
  // variants (which SDD recovery would fine-tune; weights here are random —
  // only routing behavior and byte-level determinism are under test).
  const nn::TransformerLM full{soak_model_config(), 2025};
  const nn::TransformerLM p1 = full.pruned(2, 1);
  const nn::TransformerLM p2 = full.pruned(1, 2);

  serve::RouterConfig config = serve::RouterConfig::from_env();
  config.server.queue_capacity = env_int("SDD_SERVE_QUEUE_CAP", 8);
  config.server.max_batch = env_int("SDD_SERVE_MAX_BATCH", 4);

  std::vector<serve::VariantSpec> variants;
  variants.push_back({"full", full.clone(), 0.9});
  variants.push_back({"p1", p1.clone(), 0.7});
  variants.push_back({"p2", p2.clone(), 0.55});
  const std::vector<const nn::TransformerLM*> models{&full, &p1, &p2};
  const std::vector<std::string> names{"full", "p1", "p2"};

  const std::int64_t clients = env_int("SDD_ROUTE_SOAK_CLIENTS", 4);
  const std::int64_t per_client = env_int("SDD_ROUTE_SOAK_PER_CLIENT", 12);
  const auto total = static_cast<std::size_t>(clients * per_client);

  // Per-variant reference outputs, decoded fault-free before arming
  // anything: reference[v][i] is what request i must produce if it lands on
  // (or fails over to) variant v.
  std::vector<std::vector<std::vector<std::int32_t>>> reference(models.size());
  for (std::size_t v = 0; v < models.size(); ++v) {
    reference[v].resize(total);
    for (std::size_t i = 0; i < total; ++i) {
      reference[v][i] = reference_tokens(*models[v], request_for(i).request);
    }
  }

  if (!fault_spec.empty()) {
    fault::configure(fault_config);
    std::printf("router_soak: armed SDD_ROUTE_FAULT=%s\n", fault_spec.c_str());
  }

  serve::VariantRouter router{std::move(variants), config};

  std::vector<Submitted> submitted(total);
  std::vector<std::thread> client_threads;
  for (std::int64_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (std::int64_t r = 0; r < per_client; ++r) {
        const auto index = static_cast<std::size_t>(c * per_client + r);
        Submitted& entry = submitted[index];
        entry.request = request_for(index);
        entry.ticket = router.submit(entry.request);
      }
    });
  }
  for (auto& thread : client_threads) thread.join();

  // Invariant 1: every request terminates (bounded wait, then hard fail).
  std::int64_t unresolved = 0;
  std::int64_t determinism_violations = 0;
  std::int64_t rerouted = 0;
  for (std::size_t i = 0; i < submitted.size(); ++i) {
    serve::RouteTicket& ticket = *submitted[i].ticket;
    if (!ticket.wait_for(120s)) {
      ++unresolved;
      std::fprintf(stderr, "router_soak: request %zu never resolved\n", i);
      continue;
    }
    const serve::RouteResponse& routed = ticket.wait();
    if (!serve::request_state_terminal(routed.response.state)) {
      ++unresolved;
      continue;
    }
    if (routed.rerouted) ++rerouted;
    if (routed.variant.empty()) continue;  // never reached a replica
    const auto v = static_cast<std::size_t>(
        std::find(names.begin(), names.end(), routed.variant) - names.begin());
    if (v >= names.size()) {
      ++determinism_violations;
      std::fprintf(stderr, "router_soak: request %zu reports unknown variant "
                   "'%s'\n", i, routed.variant.c_str());
      continue;
    }
    // Invariant 3: byte-identical to the no-chaos decode on that variant.
    const auto& ref = reference[v][i];
    const auto& got = routed.response.tokens;
    const bool prefix = got.size() <= ref.size() &&
                        std::equal(got.begin(), got.end(), ref.begin());
    const bool full_required =
        routed.response.state == serve::RequestState::kCompleted &&
        !routed.response.degraded;
    if (!prefix || (full_required && got != ref)) {
      ++determinism_violations;
      std::fprintf(stderr,
                   "router_soak: request %zu diverged on variant %s "
                   "(state=%s, hops=%lld, %zu tokens vs %zu reference)\n",
                   i, routed.variant.c_str(),
                   std::string{request_state_name(routed.response.state)}.c_str(),
                   static_cast<long long>(routed.hops), got.size(), ref.size());
    }
  }

  // Recovery phase: with a bounded replica_fail window armed, keep offering
  // traffic until the quarantined variant's half-open probes burn through
  // the window and close the breaker again.
  const bool expect_recovery = fault_config.replica_fail_at >= 0;
  const auto target =
      static_cast<std::size_t>(fault_config.replica_fault_index);
  if (expect_recovery && target < names.size()) {
    const auto recovery_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds{30};
    std::uint64_t extra = 0;
    while (std::chrono::steady_clock::now() < recovery_deadline) {
      if (router.replicas()[target].health == serve::HealthState::kHealthy) {
        break;
      }
      serve::RouteRequest route = request_for(extra % total);
      route.variant.clear();
      route.request.deadline_ms = 0;  // quality routing: probes hit `full`
      router.submit(route)->wait_for(5s);
      ++extra;
      std::this_thread::sleep_for(20ms);
    }
  }

  router.shutdown();

  const serve::RouterStats stats = router.stats();
  std::printf("router_soak: submitted=%lld resolved=%lld completed=%lld "
              "timeout=%lld cancelled=%lld shed=%lld rejected=%lld "
              "failed=%lld failovers=%lld exhausted=%lld injected=%lld "
              "rerouted_burst=%lld\n",
              static_cast<long long>(stats.submitted),
              static_cast<long long>(stats.resolved()),
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.timed_out),
              static_cast<long long>(stats.cancelled),
              static_cast<long long>(stats.shed),
              static_cast<long long>(stats.rejected),
              static_cast<long long>(stats.failed),
              static_cast<long long>(stats.failovers),
              static_cast<long long>(stats.exhausted),
              static_cast<long long>(stats.injected_failures),
              static_cast<long long>(rerouted));
  for (const serve::ReplicaSnapshot& snap : router.replicas()) {
    std::printf("router_soak: replica %-5s health=%-9s dispatched=%lld "
                "completed=%lld failures=%lld backpressure=%lld opens=%lld "
                "probes=%lld probe_ok=%lld\n",
                snap.name.c_str(),
                std::string{serve::health_state_name(snap.health)}.c_str(),
                static_cast<long long>(snap.stats.dispatched),
                static_cast<long long>(snap.stats.completed),
                static_cast<long long>(snap.stats.breaker_failures),
                static_cast<long long>(snap.stats.backpressure),
                static_cast<long long>(snap.stats.breaker_opens),
                static_cast<long long>(snap.stats.probes),
                static_cast<long long>(snap.stats.probe_successes));
  }

  bool ok = true;
  if (unresolved > 0) {
    std::fprintf(stderr, "router_soak: %lld request(s) never terminated\n",
                 static_cast<long long>(unresolved));
    ok = false;
  }
  if (stats.resolved() != stats.submitted) {
    std::fprintf(stderr, "router_soak: stats leak: %lld submitted, %lld "
                 "resolved\n", static_cast<long long>(stats.submitted),
                 static_cast<long long>(stats.resolved()));
    ok = false;
  }
  if (determinism_violations > 0) {
    std::fprintf(stderr, "router_soak: %lld determinism violation(s)\n",
                 static_cast<long long>(determinism_violations));
    ok = false;
  }
  if (stats.completed == 0) {
    std::fprintf(stderr, "router_soak: nothing completed — degenerate run\n");
    ok = false;
  }
  if (expect_recovery && target < names.size()) {
    const serve::ReplicaSnapshot snap = router.replicas()[target];
    if (snap.stats.breaker_opens < 1) {
      std::fprintf(stderr, "router_soak: dead variant '%s' never quarantined "
                   "(breaker_opens=0)\n", snap.name.c_str());
      ok = false;
    }
    if (snap.stats.probe_successes < 1 ||
        snap.health != serve::HealthState::kHealthy) {
      std::fprintf(stderr, "router_soak: variant '%s' never recovered via "
                   "half-open probe (health=%s, probe_ok=%lld)\n",
                   snap.name.c_str(),
                   std::string{serve::health_state_name(snap.health)}.c_str(),
                   static_cast<long long>(snap.stats.probe_successes));
      ok = false;
    }
    if (stats.failovers < 1) {
      std::fprintf(stderr, "router_soak: chaos armed but no failover "
                   "recorded\n");
      ok = false;
    }
  }
  if (fault_config.breaker_flap && target < names.size() &&
      router.replicas()[target].stats.breaker_opens < 1) {
    std::fprintf(stderr, "router_soak: breaker_flap armed but the breaker "
                 "never opened\n");
    ok = false;
  }
  fault::reset();
  std::printf("router_soak: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 3;
}
