// sdd_cli — command-line driver over the public API.
//
//   sdd_cli pretrain
//   sdd_cli prune    --block 3 [--metric angular|bi|relmag] [--out model.bin]
//   sdd_cli distill  --dataset openmathinstruct --size 800
//   sdd_cli recover  --block 3 --method sdd --dataset openmathinstruct
//                    --size 1600 [--out model.bin]
//   sdd_cli merge    --a a.bin --b b.bin [--t 0.5] [--mode slerp|lerp] --out m.bin
//   sdd_cli eval     --model model.bin [--suite core|openllm] [--items 60]
//                    [--out digest.txt]
//   sdd_cli generate --model model.bin --prompt "q : what does the cat say ?"
//   sdd_cli route    --models full.bin,pruned.bin [--names full,p1]
//                    [--quality digest.txt] --prompt "..." [--task gsm8k]
//                    [--count 4] [--deadline 50] [--pin p1] [--max-tokens 48]
//                    [--temperature 0] [--process 1] [--swap p1=new.bin]
//   sdd_cli speculate --target full.bin --drafts p2.bin,p4.bin [--names a,b]
//                    --prompt "..." [--k 4] [--max-tokens 48]
//   sdd_cli info     --model model.bin
//   sdd_cli fleet-worker --dir <queue dir> --worker <id>   (internal: spawned
//                    by the fleet orchestrator, not meant to be run by hand)
//   sdd_cli replica-worker --model m.bin --name full --fd 3 [--heartbeat 25]
//                    (internal: spawned by the router's RemoteReplica
//                    supervisor when cross-process serving is on)
//
// Cross-process routing: `route --process 1` (or SDD_REPLICA_PROCESS=1)
// hosts each variant in its own `replica-worker` child supervised with
// heartbeat liveness, crash respawn, and breaker quarantine; `--swap
// name=ckpt` performs a rolling upgrade of one variant mid-run and serves
// the batch again on the new weights.
//
// Pipeline-backed subcommands (pretrain/prune/distill/recover) share the
// sdd_cache/ experiment cache with the benches.
//
// Fleet mode: SDD_FLEET_WORKERS=N > 0 makes `eval` (and `distill
// --datasets a,b,...`) fan out across N worker processes through the
// crash-tolerant work queue (src/fleet). Off by default; results are
// byte-identical either way.
//
// SIGTERM/SIGINT request a graceful shutdown: in-flight stages observe the
// flag at their next heartbeat, unwind with Error{interrupted}, and the
// process exits 72 (a second signal hard-exits 128+signo immediately).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "eval/flops.hpp"
#include "eval/suite.hpp"
#include "fleet/stages.hpp"
#include "nn/decode.hpp"
#include "nn/speculative.hpp"
#include "serve/router.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"
#include "util/signals.hpp"
#include "util/table.hpp"

using namespace sdd;

namespace {

using Args = std::map<std::string, std::string>;

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got '" + key + "'");
    }
    args[key.substr(2)] = argv[i + 1];
  }
  return args;
}

std::string arg_or(const Args& args, const std::string& key,
                   const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

std::int64_t arg_int(const Args& args, const std::string& key, std::int64_t fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : std::stoll(it->second);
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t end = list.find(',', begin);
    const std::string item =
        list.substr(begin, end == std::string::npos ? end : end - begin);
    if (!item.empty()) out.push_back(item);
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return out;
}

core::ImportanceMetric parse_metric(const std::string& name) {
  if (name == "angular") return core::ImportanceMetric::kAngularCosine;
  if (name == "bi") return core::ImportanceMetric::kBlockInfluence;
  if (name == "relmag") return core::ImportanceMetric::kRelativeMagnitude;
  throw std::invalid_argument("unknown metric '" + name + "'");
}

core::FtMethod parse_method(const std::string& name) {
  if (name == "none") return core::FtMethod::kNone;
  if (name == "sft") return core::FtMethod::kSft;
  if (name == "sdd") return core::FtMethod::kSelfDataDistill;
  if (name == "replay") return core::FtMethod::kSftReplay;
  if (name == "kd") return core::FtMethod::kKd;
  if (name == "sdd_kd") return core::FtMethod::kSelfDataDistillKd;
  throw std::invalid_argument("unknown method '" + name + "'");
}

int cmd_pretrain(const Args&) {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const nn::TransformerLM& base = pipeline.base_model();
  std::printf("base model ready: %s, %lld params\n",
              base.config().to_string().c_str(),
              static_cast<long long>(base.param_count()));
  return 0;
}

int cmd_prune(const Args& args) {
  core::PipelineConfig config = core::PipelineConfig::standard();
  config.metric = parse_metric(arg_or(args, "metric", "angular"));
  core::Pipeline pipeline{config};
  const std::int64_t block = arg_int(args, "block", 3);
  const core::PruneResult& result = pipeline.prune(block);
  std::printf("pruned layers [%lld, %lld) via %s, distance %.4f\n",
              static_cast<long long>(result.start),
              static_cast<long long>(result.start + block),
              core::metric_name(config.metric).c_str(), result.distance);
  const std::string out = arg_or(args, "out", "");
  if (!out.empty()) {
    result.model.save(out);
    std::printf("saved pruned model to %s\n", out.c_str());
  }
  return 0;
}

int cmd_distill(const Args& args) {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  // --datasets a,b,c runs a grid of distillation cells, through the fleet
  // when SDD_FLEET_WORKERS > 0 (one worker process per in-flight cell).
  const auto grid_it = args.find("datasets");
  if (grid_it != args.end()) {
    std::vector<std::pair<std::string, std::int64_t>> cells;
    const std::int64_t size = arg_int(args, "size", 800);
    std::string list = grid_it->second;
    std::size_t begin = 0;
    while (begin <= list.size()) {
      const std::size_t end = list.find(',', begin);
      const std::string name =
          list.substr(begin, end == std::string::npos ? end : end - begin);
      if (!name.empty()) cells.emplace_back(name, size);
      if (end == std::string::npos) break;
      begin = end + 1;
    }
    fleet::FleetStats stats;
    const auto datasets = fleet::run_distill_grid(
        pipeline, cells, fleet::FleetConfig::from_env(), &stats);
    for (const auto& dataset : datasets) {
      std::printf("distilled dataset '%s': %zu examples\n",
                  dataset.name.c_str(), dataset.examples.size());
    }
    std::printf("fleet: %s\n", stats.to_string().c_str());
    return 0;
  }
  core::DistillStats stats;
  const data::SftDataset distilled = pipeline.distilled_dataset(
      arg_or(args, "dataset", "openmathinstruct"), arg_int(args, "size", 800), &stats);
  std::printf("distilled dataset '%s': %zu examples", distilled.name.c_str(),
              distilled.examples.size());
  if (stats.total > 0) {
    std::printf(", acceptance %.1f%%", stats.acceptance_rate() * 100.0);
  } else {
    std::printf(" (loaded from cache)");
  }
  std::printf("\n");
  return 0;
}

int cmd_recover(const Args& args) {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const nn::TransformerLM model = pipeline.recovered(
      arg_int(args, "block", 3), parse_method(arg_or(args, "method", "sdd")),
      arg_or(args, "dataset", "openmathinstruct"), arg_int(args, "size", 1600));
  std::printf("recovered model: %lld layers, %lld params\n",
              static_cast<long long>(model.n_layers()),
              static_cast<long long>(model.param_count()));
  const std::string out = arg_or(args, "out", "");
  if (!out.empty()) {
    model.save(out);
    std::printf("saved to %s\n", out.c_str());
  }
  return 0;
}

int cmd_merge(const Args& args) {
  const nn::TransformerLM a = nn::TransformerLM::load(args.at("a"));
  const nn::TransformerLM b = nn::TransformerLM::load(args.at("b"));
  const float t = std::stof(arg_or(args, "t", "0.5"));
  const std::string mode = arg_or(args, "mode", "slerp");
  const nn::TransformerLM merged = core::merge_models(
      a, b, t,
      mode == "lerp" ? core::MergeMode::kLerp : core::MergeMode::kSlerpPerTensor);
  merged.save(args.at("out"));
  std::printf("merged (%s, t=%.2f) -> %s\n", mode.c_str(), t,
              args.at("out").c_str());
  return 0;
}

int cmd_eval(const Args& args) {
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  const std::string path = arg_or(args, "model", "");
  const nn::TransformerLM model =
      path.empty() ? pipeline.base_model().clone() : nn::TransformerLM::load(path);

  eval::SuiteSpec spec;
  spec.mc_items = arg_int(args, "items", 60);
  spec.gen_items = spec.mc_items;
  const auto& tasks = arg_or(args, "suite", "core") == "openllm"
                          ? eval::openllm_v1_tasks()
                          : eval::core_tasks();
  // run_eval_suite IS evaluate_suite when the fleet is off; with
  // SDD_FLEET_WORKERS > 0 the cells run in worker processes and the
  // assembled scores are byte-identical to the serial run.
  const fleet::FleetConfig fleet_config = fleet::FleetConfig::from_env();
  fleet::FleetStats fleet_stats;
  const auto scores = fleet::run_eval_suite(
      model, pipeline.world(), tasks, spec, fleet_config,
      pipeline.cache().directory() / "fleet", &fleet_stats);
  TablePrinter table{{"task", "accuracy"}};
  for (const auto& [task, accuracy] : scores.tasks) {
    table.add_row({task, format_float(accuracy * 100.0)});
  }
  table.add_separator();
  table.add_row({"average", format_float(scores.average * 100.0)});
  std::printf("%s", table.to_ascii().c_str());
  if (fleet_config.enabled()) {
    std::printf("fleet: %s\n", fleet_stats.to_string().c_str());
  }
  // The canonical digest lets soak scripts byte-compare a fleet run against
  // a serial run without parsing the human-facing table.
  const std::string out = arg_or(args, "out", "");
  if (!out.empty()) {
    atomic_write_text(out, eval::format_suite_digest(scores));
    std::printf("digest written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_fleet_worker(const Args& args) {
  fleet::FleetConfig config = fleet::FleetConfig::from_env();
  config.lease_ms = arg_int(args, "lease", config.lease_ms);
  config.task_retry = arg_int(args, "retry", config.task_retry);
  config.poll_ms = arg_int(args, "poll", config.poll_ms);
  return fleet::worker_main(args.at("dir"), arg_or(args, "worker", "w0"),
                            config, fleet::execute_task);
}

int cmd_generate(const Args& args) {
  const nn::TransformerLM model = nn::TransformerLM::load(args.at("model"));
  const data::Vocab& vocab = data::Vocab::instance();
  std::vector<data::TokenId> prompt;
  prompt.push_back(vocab.bos());
  const auto body = vocab.encode(args.at("prompt"));
  prompt.insert(prompt.end(), body.begin(), body.end());
  prompt.push_back(vocab.sep());

  nn::GenerateOptions options;
  options.max_new_tokens = arg_int(args, "max-tokens", 48);
  options.temperature = std::stof(arg_or(args, "temperature", "0"));
  options.stop_token = vocab.eos();
  const auto output = nn::generate(model, prompt, options);
  std::printf("%s\n", vocab.decode(output).c_str());
  return 0;
}

// Serves one prompt (optionally N times) through a VariantRouter over the
// given model files: quality/deadline-aware variant choice, circuit-breaker
// health, and failover, with a per-replica health table at the end. The
// router knobs come from the SDD_ROUTE_* / SDD_SERVE_* environment
// (RouterConfig::from_env), same as the soaks. With --process 1 (or
// SDD_REPLICA_PROCESS=1) each variant runs in its own supervised
// `replica-worker` child; --swap name=ckpt then exercises a rolling upgrade.
int cmd_route(const Args& args) {
  const std::vector<std::string> paths = split_csv(args.at("models"));
  if (paths.empty()) {
    throw std::invalid_argument("--models needs at least one model file");
  }
  std::vector<std::string> names = split_csv(arg_or(args, "names", ""));
  if (!names.empty() && names.size() != paths.size()) {
    throw std::invalid_argument("--names count must match --models count");
  }

  serve::QualityTable table;
  const std::string quality_path = arg_or(args, "quality", "");
  if (!quality_path.empty()) table = serve::QualityTable::load(quality_path);

  serve::RouterConfig config = serve::RouterConfig::from_env();
  if (arg_int(args, "process", config.cross_process ? 1 : 0) > 0) {
    config.cross_process = true;
  }

  std::vector<serve::VariantSpec> variants;
  variants.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    serve::VariantSpec spec;
    spec.name = i < names.size()
                    ? names[i]
                    : std::filesystem::path{paths[i]}.stem().string();
    if (config.cross_process) {
      // The worker process loads the checkpoint; the parent stays weightless.
      spec.path = paths[i];
    } else {
      spec.model = nn::TransformerLM::load(paths[i]);
    }
    variants.push_back(std::move(spec));
  }
  serve::VariantRouter router{std::move(variants), std::move(config),
                              std::move(table)};

  const data::Vocab& vocab = data::Vocab::instance();
  std::vector<data::TokenId> prompt;
  prompt.push_back(vocab.bos());
  const auto body = vocab.encode(args.at("prompt"));
  prompt.insert(prompt.end(), body.begin(), body.end());
  prompt.push_back(vocab.sep());

  const std::int64_t count = arg_int(args, "count", 1);
  const auto serve_batch = [&](const char* tag) {
    std::vector<serve::RouteTicketPtr> tickets;
    tickets.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      serve::RouteRequest route;
      route.request.prompt = prompt;
      route.request.max_new_tokens = arg_int(args, "max-tokens", 48);
      route.request.temperature = std::stof(arg_or(args, "temperature", "0"));
      route.request.stop_token = vocab.eos();
      route.request.seed = static_cast<std::uint64_t>(1234 + i);
      route.request.deadline_ms = arg_int(args, "deadline", 0);
      route.task = arg_or(args, "task", "");
      route.variant = arg_or(args, "pin", "");
      tickets.push_back(router.submit(std::move(route)));
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const serve::RouteResponse& routed = tickets[i]->wait();
      std::printf("[%s%zu] variant=%-12s state=%-9s hops=%lld%s\n", tag, i,
                  routed.variant.empty() ? "-" : routed.variant.c_str(),
                  std::string{serve::request_state_name(routed.response.state)}
                      .c_str(),
                  static_cast<long long>(routed.hops),
                  routed.rerouted ? " (rerouted)" : "");
      if (routed.response.state == serve::RequestState::kCompleted) {
        std::printf("    %s\n", vocab.decode(routed.response.tokens).c_str());
      } else if (!routed.response.message.empty()) {
        std::printf("    %s\n", routed.response.message.c_str());
      }
    }
  };
  serve_batch("");

  // Rolling upgrade: drain one worker, respawn on the new checkpoint, then
  // serve the same batch again so the output reflects the new weights.
  const std::string swap = arg_or(args, "swap", "");
  if (!swap.empty()) {
    const std::size_t eq = swap.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("--swap expects name=checkpoint");
    }
    const std::string variant = swap.substr(0, eq);
    const std::string checkpoint = swap.substr(eq + 1);
    serve::Replica* replica = router.replica(variant);
    if (replica == nullptr) {
      throw std::invalid_argument("--swap: unknown variant '" + variant + "'");
    }
    const bool swapped = replica->swap_model(checkpoint, 10000);
    std::printf("swap %s -> %s: %s\n", variant.c_str(), checkpoint.c_str(),
                swapped ? "ok" : "FAILED (local replica or timeout)");
    if (swapped) serve_batch("post-swap ");
  }

  TablePrinter health{{"variant", "health", "dispatched", "completed",
                       "failures", "opens", "probes", "params", "pid",
                       "restarts", "beat-age"}};
  for (const auto& snap : router.replicas()) {
    health.add_row({snap.name,
                    std::string{serve::health_state_name(snap.health)},
                    std::to_string(snap.stats.dispatched),
                    std::to_string(snap.stats.completed),
                    std::to_string(snap.stats.breaker_failures),
                    std::to_string(snap.stats.breaker_opens),
                    std::to_string(snap.stats.probes),
                    std::to_string(snap.cost),
                    snap.remote ? std::to_string(snap.pid) : "-",
                    snap.remote ? std::to_string(snap.restarts) : "-",
                    snap.remote && snap.heartbeat_age_ms >= 0
                        ? std::to_string(snap.heartbeat_age_ms) + "ms"
                        : "-"});
  }
  std::printf("%s", health.to_ascii().c_str());
  const serve::RouterStats stats = router.stats();
  std::printf(
      "router: submitted=%lld completed=%lld failovers=%lld exhausted=%lld\n",
      static_cast<long long>(stats.submitted),
      static_cast<long long>(stats.completed),
      static_cast<long long>(stats.failovers),
      static_cast<long long>(stats.exhausted));
  return 0;
}

// Self-speculative decode sweep: each draft (typically the same model pruned
// at increasing depths) proposes --k tokens per round, the target verifies.
// Reports per-draft acceptance rate and the tokens/sec speedup over the
// target's plain greedy decode, and fails loudly (numeric_divergence, exit
// 76) if any speculative output is not bit-identical to the plain decode —
// the invariant the whole mode rests on.
int cmd_speculate(const Args& args) {
  using SteadyClock = std::chrono::steady_clock;
  const nn::TransformerLM target = nn::TransformerLM::load(args.at("target"));
  const std::vector<std::string> paths = split_csv(args.at("drafts"));
  if (paths.empty()) {
    throw std::invalid_argument("--drafts needs at least one model file");
  }
  std::vector<std::string> names = split_csv(arg_or(args, "names", ""));
  if (!names.empty() && names.size() != paths.size()) {
    throw std::invalid_argument("--names count must match --drafts count");
  }

  const data::Vocab& vocab = data::Vocab::instance();
  std::vector<data::TokenId> prompt;
  prompt.push_back(vocab.bos());
  const auto body = vocab.encode(args.at("prompt"));
  prompt.insert(prompt.end(), body.begin(), body.end());
  prompt.push_back(vocab.sep());

  nn::GenerateOptions options;
  options.max_new_tokens = arg_int(args, "max-tokens", 48);
  options.stop_token = vocab.eos();
  const std::int64_t k = arg_int(args, "k", 4);

  const SteadyClock::time_point plain_start = SteadyClock::now();
  const auto reference = nn::generate(target, prompt, options);
  const double plain_s =
      std::chrono::duration<double>(SteadyClock::now() - plain_start).count();
  const double plain_tps =
      plain_s > 0.0 ? static_cast<double>(reference.size()) / plain_s : 0.0;
  std::printf("target: %lld layers, %zu tokens, %.1f tok/s (plain greedy)\n",
              static_cast<long long>(target.n_layers()), reference.size(),
              plain_tps);

  TablePrinter table{{"draft", "layers", "acceptance", "accepted/proposed",
                      "tok/s", "speedup", "identical"}};
  bool all_identical = true;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const nn::TransformerLM draft = nn::TransformerLM::load(paths[i]);
    const std::string name =
        i < names.size() ? names[i]
                         : std::filesystem::path{paths[i]}.stem().string();
    nn::SpecCounters counters;
    const SteadyClock::time_point start = SteadyClock::now();
    const auto output =
        nn::speculative_generate(target, draft, prompt, options, k, &counters);
    const double spec_s =
        std::chrono::duration<double>(SteadyClock::now() - start).count();
    const double spec_tps =
        spec_s > 0.0 ? static_cast<double>(output.size()) / spec_s : 0.0;
    const bool identical = output == reference;
    all_identical = all_identical && identical;
    table.add_row({name, std::to_string(draft.n_layers()),
                   format_float(counters.acceptance_rate() * 100.0) + "%",
                   std::to_string(counters.accepted) + "/" +
                       std::to_string(counters.proposed),
                   format_float(spec_tps),
                   plain_tps > 0.0 ? format_float(spec_tps / plain_tps) + "x"
                                   : "-",
                   identical ? "yes" : "NO"});
  }
  std::printf("%s", table.to_ascii().c_str());
  if (!all_identical) {
    throw Error(ErrorKind::kNumericDivergence,
                "speculative output diverged from the target's greedy decode");
  }
  return 0;
}

// Internal: one cross-process serving replica, spawned by RemoteReplica with
// its end of the socketpair already inherited as --fd. Exits 0 on a clean
// channel close, 72 after a graceful SIGTERM drain, 71/74/... on typed
// worker errors (the supervisor only needs "died"; the code aids debugging).
int cmd_replica_worker(const Args& args) {
  return serve::replica_worker_main(
      args.at("model"), arg_or(args, "name", "replica"),
      static_cast<int>(std::stoll(args.at("fd"))),
      arg_int(args, "heartbeat", 25));
}

int cmd_info(const Args& args) {
  const nn::TransformerLM model = nn::TransformerLM::load(args.at("model"));
  const nn::ModelConfig& config = model.config();
  std::printf("%s\n", config.to_string().c_str());
  std::printf("parameters : %lld\n", static_cast<long long>(model.param_count()));
  std::printf("flops/token: %lld (context %lld)\n",
              static_cast<long long>(eval::flops_per_token(config, 64)),
              static_cast<long long>(64));
  std::printf("weight hash: %s\n", hash_hex(model.weight_hash()).c_str());
  return 0;
}

void usage() {
  std::printf(
      "usage: sdd_cli "
      "<pretrain|prune|distill|recover|merge|eval|generate|route|speculate|"
      "info|fleet-worker|replica-worker> "
      "[--flag value ...]\n(see the header comment of examples/sdd_cli.cpp)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  // First SIGTERM/SIGINT flips a flag observed at the next heartbeat (exit
  // 72 after a clean unwind); a second one hard-exits 128+signo.
  signals::install_graceful_shutdown();
  const std::string command = argv[1];
  try {
    const Args args = parse_args(argc, argv, 2);
    if (command == "pretrain") return cmd_pretrain(args);
    if (command == "prune") return cmd_prune(args);
    if (command == "distill") return cmd_distill(args);
    if (command == "recover") return cmd_recover(args);
    if (command == "merge") return cmd_merge(args);
    if (command == "eval") return cmd_eval(args);
    if (command == "generate") return cmd_generate(args);
    if (command == "route") return cmd_route(args);
    if (command == "speculate") return cmd_speculate(args);
    if (command == "info") return cmd_info(args);
    if (command == "fleet-worker") return cmd_fleet_worker(args);
    if (command == "replica-worker") return cmd_replica_worker(args);
    usage();
    return 2;
  } catch (const sdd::Error& e) {
    // Typed taxonomy failures map to stable per-kind exit codes (see
    // util/error.hpp) so scripts can assert on the failure class: transient
    // I/O 75, timeout 74, resource exhausted 69, corrupt artifact 65,
    // numeric divergence 76, worker lost 71, interrupted 72, fatal 70. 64
    // stays reserved for malformed SDD_FAULT specs, 1 for exceptions
    // outside the taxonomy.
    // what() already leads with the kind name ("corrupt_artifact: ...").
    std::fprintf(stderr, "error: %s%s\n", e.what(),
                 e.retryable() ? " (retryable)" : "");
    return sdd::error_kind_exit_code(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
