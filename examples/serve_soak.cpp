// Chaos soak for the batched inference serving layer (scripts/serve_soak.sh).
//
// Builds a tiny model, fires concurrent clients at an InferenceServer at a
// configurable multiple of queue capacity (default 4x), and asserts the
// serving-layer invariants under fault injection:
//   * every submitted request reaches a terminal state (completion, deadline
//     timeout, or a typed shed/rejection/failure) — no crash, no deadlock;
//   * stats balance: resolved == submitted;
//   * per-request determinism: every response's tokens are a prefix of the
//     unloaded-server reference output for that request (equal when the
//     request completed undegraded), regardless of batching or faults.
//
// Faults come from SDD_SERVE_FAULT (same syntax as SDD_FAULT — see
// src/util/fault.hpp) and are armed only after the model is built and the
// reference outputs are decoded, so injector counters (alloc_fail:at=N,
// hang_decode:N, nan_decode:N) are relative to serving work, not setup.
// The model is also round-tripped through the fault-instrumented artifact
// store before serving (exercising slow_io/io_fail); a failed store is
// tolerated — serving continues from the in-memory model.
//
// Exit codes: 0 = all invariants held, 3 = an invariant was violated.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "nn/decode.hpp"
#include "nn/transformer.hpp"
#include "serve/serve.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

using namespace sdd;
using namespace std::chrono_literals;

namespace {

struct Submitted {
  serve::Request request;
  serve::TicketPtr ticket;
};

nn::ModelConfig soak_model_config() {
  nn::ModelConfig config;
  config.vocab_size = env_int("SDD_SERVE_SOAK_VOCAB", 96);
  config.d_model = env_int("SDD_SERVE_SOAK_DMODEL", 32);
  config.n_heads = env_int("SDD_SERVE_SOAK_HEADS", 2);
  config.n_layers = env_int("SDD_SERVE_SOAK_LAYERS", 3);
  config.d_ff = env_int("SDD_SERVE_SOAK_DFF", 48);
  config.max_seq_len = env_int("SDD_SERVE_SOAK_CTX", 64);
  return config;
}

serve::Request request_for(std::uint64_t index) {
  serve::Request request;
  request.prompt = {static_cast<std::int32_t>(1 + index % 13),
                    static_cast<std::int32_t>(2 + index % 7),
                    static_cast<std::int32_t>(5 + index % 19)};
  request.max_new_tokens = 6 + static_cast<std::int64_t>(index % 8);
  request.temperature = index % 3 == 0 ? 0.0F : 0.6F;
  request.seed = 9000 + index;
  request.priority = static_cast<std::int32_t>(index % 4);
  // Mixed deadlines: none, generous, and tight-enough-to-sometimes-expire.
  request.deadline_ms = index % 5 == 0 ? 30 : (index % 2 == 0 ? 0 : 5000);
  return request;
}

}  // namespace

int main() {
  // Keep lazy SDD_FAULT arming out of the setup phase: this driver arms
  // faults itself, from SDD_SERVE_FAULT, once setup is done.
  const std::string fault_spec = env_string("SDD_SERVE_FAULT", "");

  const nn::TransformerLM model{soak_model_config(), 2025};

  serve::ServerConfig config = serve::ServerConfig::from_env();
  config.queue_capacity = env_int("SDD_SERVE_QUEUE_CAP", 8);
  config.max_batch = env_int("SDD_SERVE_MAX_BATCH", 4);
  config.degrade_max_new_tokens = env_int("SDD_SERVE_DEGRADE_MAX_TOKENS", 4);

  const std::int64_t clients = env_int("SDD_SERVE_SOAK_CLIENTS", 4);
  const std::int64_t load_factor = env_int("SDD_SERVE_SOAK_LOAD", 4);
  const std::int64_t total_requests = config.queue_capacity * load_factor;
  const std::int64_t per_client =
      std::max<std::int64_t>(1, total_requests / std::max<std::int64_t>(1, clients));

  // Reference outputs decoded fault-free before arming anything.
  std::vector<std::vector<std::int32_t>> reference(
      static_cast<std::size_t>(clients * per_client));
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const serve::Request request = request_for(i);
    nn::GenerateOptions options;
    options.max_new_tokens = request.max_new_tokens;
    options.temperature = request.temperature;
    options.stop_token = request.stop_token;
    options.seed = request.seed;
    reference[i] = nn::generate(model, request.prompt, options);
  }

  if (!fault_spec.empty()) {
    try {
      fault::configure(fault::parse_fault_spec(fault_spec));
      std::printf("serve_soak: armed SDD_SERVE_FAULT=%s\n", fault_spec.c_str());
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "serve_soak: malformed SDD_SERVE_FAULT: %s\n",
                   e.what());
      return 64;  // EX_USAGE, matching the SDD_FAULT contract
    }
  }

  // Round-trip the model through the fault-instrumented artifact store
  // (exercises slow_io / io faults; alloc_fail can also fire on the load
  // path). A broken or poisoned store must not stop serving: fall back to
  // the already-built in-memory model. SDD_SERVE_SOAK_STORE=0 skips the
  // round-trip so allocation faults target the serving layer instead.
  std::optional<nn::TransformerLM> loaded;
  if (env_int("SDD_SERVE_SOAK_STORE", 1) != 0) {
    const std::filesystem::path model_path =
        std::filesystem::temp_directory_path() /
        ("sdd_serve_soak_model_" + std::to_string(::getpid()) + ".bin");
    try {
      model.save(model_path);
      loaded.emplace(nn::TransformerLM::load(model_path));
      if (loaded->weight_hash() != model.weight_hash()) {
        std::fprintf(stderr, "serve_soak: model round-trip changed weights\n");
        std::filesystem::remove(model_path);
        return 3;
      }
    } catch (const std::exception& e) {
      log_warn("serve_soak: artifact store unavailable (", e.what(),
               "); serving from the in-memory model");
      loaded.reset();
    }
    std::error_code ec;
    std::filesystem::remove(model_path, ec);
  }

  serve::InferenceServer server{loaded ? *loaded : model, config};

  std::vector<Submitted> submitted(
      static_cast<std::size_t>(clients * per_client));
  std::vector<std::thread> client_threads;
  for (std::int64_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (std::int64_t r = 0; r < per_client; ++r) {
        const auto index = static_cast<std::size_t>(c * per_client + r);
        Submitted& entry = submitted[index];
        entry.request = request_for(index);
        entry.ticket = server.submit(entry.request);
      }
    });
  }
  for (auto& thread : client_threads) thread.join();

  // Invariant 1: every request terminates (bounded wait, then hard fail).
  std::int64_t prefix_violations = 0;
  std::int64_t unresolved = 0;
  std::vector<std::int64_t> by_state(8, 0);
  for (std::size_t i = 0; i < submitted.size(); ++i) {
    serve::Ticket& ticket = *submitted[i].ticket;
    if (!ticket.wait_for(120s)) {
      ++unresolved;
      std::fprintf(stderr, "serve_soak: request %zu never resolved\n", i);
      continue;
    }
    const serve::Response& response = ticket.wait();
    ++by_state[static_cast<std::size_t>(response.state)];
    if (!serve::request_state_terminal(response.state)) {
      ++unresolved;
      continue;
    }
    // Invariant 3: output is a prefix of the unloaded reference.
    const auto& ref = reference[i];
    const auto& got = response.tokens;
    const bool prefix =
        got.size() <= ref.size() && std::equal(got.begin(), got.end(), ref.begin());
    const bool full_required =
        response.state == serve::RequestState::kCompleted && !response.degraded;
    if (!prefix || (full_required && got != ref)) {
      ++prefix_violations;
      std::fprintf(stderr,
                   "serve_soak: request %zu output diverged (state=%s, "
                   "%zu tokens vs %zu reference)\n",
                   i, std::string{request_state_name(response.state)}.c_str(),
                   got.size(), ref.size());
    }
  }
  server.shutdown();

  const serve::ServerStats stats = server.stats();
  std::printf("serve_soak: submitted=%lld resolved=%lld completed=%lld "
              "timeout=%lld cancelled=%lld shed=%lld rejected=%lld "
              "failed=%lld degraded=%lld recycles=%lld peak_batch=%lld\n",
              static_cast<long long>(stats.submitted),
              static_cast<long long>(stats.resolved()),
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.timed_out),
              static_cast<long long>(stats.cancelled),
              static_cast<long long>(stats.shed),
              static_cast<long long>(stats.rejected),
              static_cast<long long>(stats.failed),
              static_cast<long long>(stats.degraded),
              static_cast<long long>(stats.worker_recycles),
              static_cast<long long>(stats.peak_active));

  bool ok = true;
  if (unresolved > 0) {
    std::fprintf(stderr, "serve_soak: %lld request(s) never terminated\n",
                 static_cast<long long>(unresolved));
    ok = false;
  }
  if (stats.resolved() != stats.submitted) {
    std::fprintf(stderr, "serve_soak: stats leak: %lld submitted, %lld resolved\n",
                 static_cast<long long>(stats.submitted),
                 static_cast<long long>(stats.resolved()));
    ok = false;
  }
  if (prefix_violations > 0) {
    std::fprintf(stderr, "serve_soak: %lld determinism violation(s)\n",
                 static_cast<long long>(prefix_violations));
    ok = false;
  }
  if (stats.completed == 0) {
    std::fprintf(stderr, "serve_soak: nothing completed — degenerate run\n");
    ok = false;
  }
  fault::reset();
  std::printf("serve_soak: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 3;
}
