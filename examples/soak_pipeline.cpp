// Soak-test driver for the durability layer (used by scripts/fault_soak.sh).
//
// Runs a complete pipeline pass — pretrain -> prune -> self-data distillation
// recovery -> table-1-style eval — at whatever scale the SDD_* environment
// overrides select, then writes a deterministic result digest (weight hashes
// + metrics) to SDD_SOAK_OUT. The soak script kills this program at injected
// fault points (SDD_FAULT=crash_at_step:N, ...), restarts it, and asserts the
// digest is byte-identical to an uninterrupted run's.
//
// Exit code 0 means the digest was written; a crash fault exits 137.
#include <cstdio>
#include <fstream>
#include <string>

#include "core/pipeline.hpp"
#include "eval/suite.hpp"
#include "util/env.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/supervisor.hpp"

using namespace sdd;

int main() {
  core::PipelineConfig config = core::PipelineConfig::standard();
  core::Pipeline pipeline{config};

  const std::int64_t block = env_int("SDD_SOAK_BLOCK", 1);
  const std::int64_t dataset_size = env_int("SDD_SOAK_DATASET_SIZE", 16);
  const std::string dataset = env_string("SDD_SOAK_DATASET", "gsm8k");

  const nn::TransformerLM& base = pipeline.base_model();
  const nn::TransformerLM recovered = pipeline.recovered(
      block, core::FtMethod::kSelfDataDistill, dataset, dataset_size);

  eval::SuiteSpec spec;
  spec.mc_items = env_int("SDD_SOAK_ITEMS", 6);
  spec.gen_items = spec.mc_items;
  const auto scores = supervisor::supervised(
      "eval", config.supervise, [&]() -> eval::SuiteScores {
        return eval::evaluate_suite(recovered, pipeline.world(),
                                    eval::core_tasks(), spec);
      });

  // The digest is written with plain stdio, outside the fault-instrumented
  // artifact path: it reports results, it is not an artifact under test.
  const std::string out_path = env_string(
      "SDD_SOAK_OUT", (pipeline.cache().directory() / "soak_result.txt").string());
  std::ofstream out{out_path, std::ios::trunc};
  out << "base_weight_hash " << hash_hex(base.weight_hash()) << '\n';
  out << "recovered_weight_hash " << hash_hex(recovered.weight_hash()) << '\n';
  char buffer[64];
  for (const auto& [name, score] : scores.tasks) {
    std::snprintf(buffer, sizeof(buffer), "%.10f", score);
    out << "metric " << name << ' ' << buffer << '\n';
  }
  std::snprintf(buffer, sizeof(buffer), "%.10f", scores.average);
  out << "metric average " << buffer << '\n';
  out.flush();
  if (!out) {
    log_error("soak: failed to write ", out_path);
    return 1;
  }
  std::printf("soak: digest written to %s\n", out_path.c_str());
  return 0;
}
