// Chaos soak for self-speculative decoding (scripts/spec_soak.sh).
//
// Builds a tiny full model plus depth-pruned drafts, then drives the
// speculative decode path three ways — the one-shot speculative_generate()
// API, an InferenceServer with a paired draft, and a VariantRouter with
// SDD_SPEC_DRAFT-style pairing — and asserts the load-bearing invariant
// under fault injection:
//
//   * bit-identity: every speculative output equals the target's unassisted
//     greedy decode, byte for byte, for every draft depth, with or without
//     injected rejection storms and draft NaNs;
//   * a rejection storm (spec_reject_storm) collapses the acceptance rate —
//     with the target drafting for itself, to exactly zero — but never
//     changes output bytes;
//   * clean self-drafting accepts everything (acceptance rate 1.0);
//   * a poisoned draft (draft_nan) degrades rounds to target-only steps
//     (draft_fallbacks > 0) instead of failing any request.
//
// Faults come from SDD_SPEC_FAULT (same syntax as SDD_FAULT — see
// src/util/fault.hpp) and are armed only after the models are built and the
// reference outputs are decoded, so injector ordinals count speculative
// work, not setup. A malformed spec exits 64 (EX_USAGE).
//
// Exit codes: 0 = all invariants held, 3 = an invariant was violated.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "nn/decode.hpp"
#include "nn/speculative.hpp"
#include "nn/transformer.hpp"
#include "serve/router.hpp"
#include "serve/serve.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"

using namespace sdd;
using namespace std::chrono_literals;

namespace {

nn::ModelConfig soak_model_config() {
  nn::ModelConfig config;
  config.vocab_size = env_int("SDD_SPEC_SOAK_VOCAB", 96);
  config.d_model = env_int("SDD_SPEC_SOAK_DMODEL", 32);
  config.n_heads = env_int("SDD_SPEC_SOAK_HEADS", 2);
  config.n_layers = env_int("SDD_SPEC_SOAK_LAYERS", 4);
  config.d_ff = env_int("SDD_SPEC_SOAK_DFF", 48);
  config.max_seq_len = env_int("SDD_SPEC_SOAK_CTX", 64);
  return config;
}

std::vector<std::int32_t> prompt_for(std::uint64_t index) {
  return {static_cast<std::int32_t>(1 + index % 13),
          static_cast<std::int32_t>(2 + index % 7),
          static_cast<std::int32_t>(5 + index % 19),
          static_cast<std::int32_t>(3 + index % 11)};
}

int failures = 0;

void expect(bool condition, const char* what) {
  if (!condition) {
    ++failures;
    std::fprintf(stderr, "spec_soak: INVARIANT VIOLATED: %s\n", what);
  }
}

}  // namespace

int main() {
  // Keep lazy SDD_FAULT arming out of the setup phase: this driver arms
  // faults itself, from SDD_SPEC_FAULT, once setup is done.
  const std::string fault_spec = env_string("SDD_SPEC_FAULT", "");
  fault::FaultConfig fault_config;
  if (!fault_spec.empty()) {
    try {
      fault_config = fault::parse_fault_spec(fault_spec);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "spec_soak: malformed SDD_SPEC_FAULT: %s\n",
                   e.what());
      return 64;  // EX_USAGE, matching the SDD_FAULT contract
    }
  }

  const std::int64_t k = env_int("SDD_SPEC_K", 4);
  const std::int64_t n_prompts = env_int("SDD_SPEC_SOAK_PROMPTS", 8);
  const std::int64_t max_new = env_int("SDD_SPEC_SOAK_MAX_NEW", 12);

  // The paper's variant family: the full model drafting for itself (the
  // acceptance-rate ceiling) plus depth-pruned drafts, deepest last.
  const nn::TransformerLM full{soak_model_config(), 2025};
  std::vector<std::pair<std::string, nn::TransformerLM>> drafts;
  drafts.emplace_back("self", full.clone());
  drafts.emplace_back("p1", full.pruned(2, 1));
  drafts.emplace_back("p2", full.pruned(1, 2));

  nn::GenerateOptions options;
  options.max_new_tokens = max_new;
  options.temperature = 0.0F;

  // Fault-free references, decoded before anything is armed.
  std::vector<std::vector<std::int32_t>> reference(
      static_cast<std::size_t>(n_prompts));
  for (std::int64_t i = 0; i < n_prompts; ++i) {
    reference[static_cast<std::size_t>(i)] = nn::generate(
        full, prompt_for(static_cast<std::uint64_t>(i)), options);
  }

  if (!fault_spec.empty()) {
    fault::configure(fault_config);
    std::printf("spec_soak: armed SDD_SPEC_FAULT=%s\n", fault_spec.c_str());
  }
  const bool storm_full = fault_config.spec_reject_p >= 1.0;
  const bool clean = fault_spec.empty();

  // ---- phase 1: one-shot API, every draft depth x every prompt ------------
  for (const auto& [name, draft] : drafts) {
    nn::SpecCounters counters;
    bool identical = true;
    for (std::int64_t i = 0; i < n_prompts; ++i) {
      const auto output = nn::speculative_generate(
          full, draft, prompt_for(static_cast<std::uint64_t>(i)), options, k,
          &counters);
      identical =
          identical && output == reference[static_cast<std::size_t>(i)];
    }
    std::printf(
        "spec_soak: draft %-4s layers=%lld rounds=%lld accepted=%lld/%lld "
        "(%.0f%%) corrections=%lld bonus=%lld solo=%lld fallbacks=%lld %s\n",
        name.c_str(), static_cast<long long>(draft.n_layers()),
        static_cast<long long>(counters.rounds),
        static_cast<long long>(counters.accepted),
        static_cast<long long>(counters.proposed),
        counters.acceptance_rate() * 100.0,
        static_cast<long long>(counters.corrections),
        static_cast<long long>(counters.bonus),
        static_cast<long long>(counters.solo),
        static_cast<long long>(counters.draft_fallbacks),
        identical ? "identical" : "DIVERGED");
    expect(identical, "speculative output diverged from plain greedy decode");
    if (name == "self") {
      if (clean) {
        expect(counters.proposed > 0 && counters.acceptance_rate() == 1.0,
               "clean self-drafting must accept every proposal");
      }
      if (storm_full && counters.proposed > 0) {
        // Corruption shifts every proposal off the target's argmax, which
        // for a self-draft IS the proposal: nothing can be accepted.
        expect(counters.accepted == 0,
               "full rejection storm must drive self-draft acceptance to 0");
      }
    }
    if (fault_config.draft_nan >= 0 && name == "self") {
      expect(counters.draft_fallbacks > 0,
             "draft_nan armed but no round degraded to a target-only step");
    }
  }

  // ---- phase 2: serving layer with a paired draft -------------------------
  for (const auto& [name, draft] : drafts) {
    if (!fault_spec.empty()) fault::configure(fault_config);  // reset counters
    serve::ServerConfig config = serve::ServerConfig::from_env();
    config.queue_capacity = std::max<std::int64_t>(n_prompts, 8);
    config.degrade_queue_depth = config.queue_capacity;  // no budget clamping
    config.spec_k = k;
    serve::InferenceServer server{full, config, &draft};
    std::vector<serve::TicketPtr> tickets;
    for (std::int64_t i = 0; i < n_prompts; ++i) {
      serve::Request request;
      request.prompt = prompt_for(static_cast<std::uint64_t>(i));
      request.max_new_tokens = max_new;
      request.temperature = 0.0F;
      request.task = "soak";
      tickets.push_back(server.submit(std::move(request)));
    }
    bool identical = true;
    std::int64_t completed = 0;
    for (std::int64_t i = 0; i < n_prompts; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (!tickets[idx]->wait_for(120s)) {
        expect(false, "serve request never resolved");
        continue;
      }
      const serve::Response& response = tickets[idx]->wait();
      if (response.state != serve::RequestState::kCompleted) continue;
      ++completed;
      identical = identical && response.tokens == reference[idx];
    }
    const serve::ServerStats stats = server.stats();
    server.shutdown();
    std::printf(
        "spec_soak: serve draft %-4s completed=%lld/%lld spec_requests=%lld "
        "acceptance=%.0f%% fallbacks=%lld %s\n",
        name.c_str(), static_cast<long long>(completed),
        static_cast<long long>(n_prompts),
        static_cast<long long>(stats.spec_requests),
        stats.spec.acceptance_rate() * 100.0,
        static_cast<long long>(stats.spec.draft_fallbacks),
        identical ? "identical" : "DIVERGED");
    expect(identical, "served speculative output diverged from reference");
    expect(completed == n_prompts, "speculative serving failed requests");
    expect(stats.spec_requests == n_prompts,
           "greedy requests on a draft-equipped server must decode "
           "speculatively");
    expect(stats.spec_by_task.count("soak") == 1,
           "per-task acceptance telemetry missing the 'soak' bucket");
  }

  // ---- phase 3: router pairing (the deepest draft serves its siblings) ----
  {
    if (!fault_spec.empty()) fault::configure(fault_config);  // reset counters
    serve::RouterConfig config = serve::RouterConfig::from_env();
    config.spec_draft = "p2";
    config.server.spec_k = k;
    config.server.queue_capacity = std::max<std::int64_t>(n_prompts, 8);
    config.server.degrade_queue_depth = config.server.queue_capacity;
    std::vector<serve::VariantSpec> variants;
    variants.push_back({"full", full.clone(), 0.9});
    variants.push_back({"p2", drafts.back().second.clone(), 0.55});
    serve::VariantRouter router{std::move(variants), config};
    std::vector<serve::RouteTicketPtr> tickets;
    for (std::int64_t i = 0; i < n_prompts; ++i) {
      serve::RouteRequest route;
      route.request.prompt = prompt_for(static_cast<std::uint64_t>(i));
      route.request.max_new_tokens = max_new;
      route.request.temperature = 0.0F;
      route.task = "soak";
      route.variant = "full";  // pin: the reference decode is the full model's
      tickets.push_back(router.submit(std::move(route)));
    }
    bool identical = true;
    std::int64_t completed = 0;
    for (std::int64_t i = 0; i < n_prompts; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (!tickets[idx]->wait_for(120s)) {
        expect(false, "routed request never resolved");
        continue;
      }
      const serve::RouteResponse& routed = tickets[idx]->wait();
      if (routed.response.state != serve::RequestState::kCompleted ||
          routed.variant != "full") {
        continue;
      }
      ++completed;
      identical = identical && routed.response.tokens == reference[idx];
    }
    std::int64_t spec_requests = 0;
    bool task_bucket = true;
    for (const serve::ReplicaSnapshot& snap : router.replicas()) {
      if (snap.name == "full") {
        spec_requests = snap.server.spec_requests;
        task_bucket = snap.server.spec_by_task.count("soak") == 1;
      }
    }
    router.shutdown();
    std::printf(
        "spec_soak: router completed=%lld/%lld full.spec_requests=%lld %s\n",
        static_cast<long long>(completed), static_cast<long long>(n_prompts),
        static_cast<long long>(spec_requests),
        identical ? "identical" : "DIVERGED");
    expect(identical, "routed speculative output diverged from reference");
    expect(completed == n_prompts, "router pairing failed requests");
    expect(spec_requests == n_prompts,
           "SDD_SPEC_DRAFT pairing did not engage speculative decode");
    expect(task_bucket, "router task label missing from serve telemetry");
  }

  fault::reset();
  std::printf("spec_soak: %s\n", failures == 0 ? "OK" : "FAILED");
  return failures == 0 ? 0 : 3;
}
