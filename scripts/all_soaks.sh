#!/usr/bin/env bash
# Run every chaos soak in one pass, each against the build flavor it was
# designed for, with one log file per soak:
#
#   fault_soak   release   pipeline stage crashes / NaN / flaky store
#   fleet_soak   release   worker kill -9, claim races, orchestrator restart
#   serve_soak   tsan      concurrent serving faults under the race detector
#   router_soak  tsan      replica kill/slow/flap under the race detector
#   spec_soak    tsan      speculative decode bit-identity under rejection
#                          storms and draft NaNs
#   replica_soak release   cross-process workers: kill -9 / wedge / torn
#                          frames / rolling swap behind the router
#
# This is a pure runner: it does not configure or compile anything, so a CI
# job (or a local run) builds the two trees once and fans the soaks out from
# them. A soak whose binary is missing fails its case with the build hint in
# the log rather than aborting the whole pass.
#
# Usage: scripts/all_soaks.sh [release-build-dir] [tsan-build-dir] [log-dir]
#
# Exit status: 0 when every soak passed, 1 otherwise. Per-soak stdout+stderr
# land in <log-dir>/<soak>.log (default: ./soak-logs) so CI can upload them
# as artifacts on failure.
set -uo pipefail

HERE="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
source "${HERE}/soak_lib.sh"

RELEASE="${1:-build}"
TSAN="${2:-build-tsan}"
LOGS="${3:-soak-logs}"
mkdir -p "${LOGS}"

run_soak() { # name script build-dir
  local name="$1" script="$2" build="$3"
  local log="${LOGS}/${name}.log"
  echo "== ${name} (${build}) -> ${log}"
  if "${HERE}/${script}" "${build}" >"${log}" 2>&1; then
    soak_report "${name}" ok
  else
    echo "   FAILED (exit $?); last lines of ${log}:"
    tail -n 20 "${log}" | sed 's/^/   | /'
    soak_report "${name}" bad
  fi
}

run_soak fault_soak fault_soak.sh "${RELEASE}"
run_soak fleet_soak fleet_soak.sh "${RELEASE}"
run_soak serve_soak serve_soak.sh "${TSAN}"
run_soak router_soak router_soak.sh "${TSAN}"
run_soak spec_soak spec_soak.sh "${TSAN}"
run_soak replica_soak replica_soak.sh "${RELEASE}"

soak_summary "all soaks"
