#!/usr/bin/env bash
# Run the substrate microbenchmarks and write a machine-readable baseline.
#
# Usage: scripts/bench_baseline.sh [build-dir] [output.json]
#
# The JSON output is the input to scripts/bench_compare.py, which diffs a
# fresh run against the committed baseline (BENCH_substrate.json at the repo
# root) and flags regressions beyond a tolerance band.
#
# Environment:
#   SDD_BENCH_FILTER    benchmark name regex (default: everything)
#   SDD_BENCH_MIN_TIME  per-benchmark min measurement time in seconds
#                       (default 0.5; CI smoke uses a smaller value)
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-BENCH_substrate.json}"
BENCH="${BUILD}/bench/micro_substrate"
if [[ ! -x "${BENCH}" ]]; then
  echo "bench_baseline: ${BENCH} not found; build it first:" >&2
  echo "  cmake -B ${BUILD} -S . -DCMAKE_BUILD_TYPE=Release && cmake --build ${BUILD} -j --target micro_substrate" >&2
  exit 2
fi

FILTER="${SDD_BENCH_FILTER:-}"
MIN_TIME="${SDD_BENCH_MIN_TIME:-0.5}"

ARGS=(
  "--benchmark_out=${OUT}"
  "--benchmark_out_format=json"
  "--benchmark_min_time=${MIN_TIME}"
)
if [[ -n "${FILTER}" ]]; then
  ARGS+=("--benchmark_filter=${FILTER}")
fi

echo "bench_baseline: running ${BENCH} -> ${OUT} (min_time=${MIN_TIME}s)" >&2
"${BENCH}" "${ARGS[@]}"
echo "bench_baseline: wrote ${OUT}" >&2
