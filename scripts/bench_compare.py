#!/usr/bin/env python3
"""Compare a fresh micro_substrate run against a committed baseline.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json [options]

Benchmarks are matched by name. For each pair the primary metric is
items_per_second (effective throughput); benchmarks that don't report it fall
back to real_time (lower is better). A benchmark is flagged when it is more
than --tolerance (default 15%) WORSE than the baseline; improvements are
reported but never flagged.

Exit status: 0 when no benchmark regressed beyond tolerance (or --mode=warn),
1 when at least one did and --mode=fail.

CI runs with --mode=warn because hosted runners have wildly different
single-core throughput than the machine that produced the committed baseline;
the committed numbers are authoritative only on comparable hardware. Use
--mode=fail locally when validating a kernel change on the same machine that
produced the baseline.
"""

from __future__ import annotations

import argparse
import json
import sys

# The kernels the perf-regression gate actually cares about. Model-level
# benches (forward, decode, train step) ride along for visibility but move
# with allocator and cache noise, so --key-only restricts flagging to these.
KEY_PREFIXES = ("BM_GemmNn", "BM_GemmNt", "BM_GemmTn")


def load_benchmarks(path: str) -> dict[str, dict]:
    """Load the benchmark rows of a Google-Benchmark JSON file.

    A missing, unreadable, or malformed file exits with a one-line error
    instead of a traceback: in CI and soak logs the traceback buries the
    actual problem (usually a bench run that never produced output).
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as err:
        sys.exit(f"bench_compare: cannot read {path}: {err.strerror or err}")
    except json.JSONDecodeError as err:
        sys.exit(f"bench_compare: {path} is not valid JSON: {err}")
    if not isinstance(doc, dict):
        sys.exit(f"bench_compare: {path} is not a benchmark JSON document")
    out: dict[str, dict] = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) from --benchmark_repetitions.
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    return out


def print_inventory(path: str, benches: dict[str, dict]) -> None:
    """Print the --list view of one file: every tracked benchmark name."""
    key = [n for n in benches if n.startswith(KEY_PREFIXES)]
    print(f"{path}: {len(benches)} benchmark(s), {len(key)} key")
    for name in sorted(benches):
        marker = "  [key]" if name.startswith(KEY_PREFIXES) else ""
        print(f"  {name}{marker}")


def metric(bench: dict) -> tuple[str, float, bool] | None:
    """Return (metric-name, value, higher_is_better), or None when the row
    reports neither items_per_second nor real_time (malformed JSON row)."""
    if "items_per_second" in bench:
        return "items_per_second", float(bench["items_per_second"]), True
    if "real_time" in bench:
        return "real_time", float(bench["real_time"]), False
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "current", nargs="?", help="fresh benchmark JSON (omit with --list)"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the benchmark names tracked in the given file(s) and exit",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="fractional slowdown allowed before flagging (default 0.15)",
    )
    parser.add_argument(
        "--mode",
        choices=("warn", "fail"),
        default="fail",
        help="'fail' exits 1 on regression; 'warn' always exits 0",
    )
    parser.add_argument(
        "--key-only",
        action="store_true",
        help=f"only flag the key kernels ({', '.join(KEY_PREFIXES)})",
    )
    parser.add_argument(
        "--missing",
        choices=("ignore", "fail"),
        default="ignore",
        help="'fail' exits 1 (even with --mode=warn) when a baseline benchmark "
        "is absent from the current run — a renamed or deleted benchmark "
        "silently drops out of the regression gate otherwise. With --key-only "
        "the check is restricted to the key kernels, so a CI run that filters "
        "to a subset still gates correctly.",
    )
    args = parser.parse_args()

    if args.list:
        for path in [args.baseline] + ([args.current] if args.current else []):
            print_inventory(path, load_benchmarks(path))
        return 0
    if args.current is None:
        parser.error("CURRENT.json is required unless --list is given")

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    if not baseline:
        print(f"bench_compare: no benchmarks in {args.baseline}", file=sys.stderr)
        return 1
    if not current:
        print(f"bench_compare: no benchmarks in {args.current}", file=sys.stderr)
        return 1

    # Benchmarks present in only one file are never comparable: report them
    # once in the summary instead of tripping a per-row KeyError. CI runs a
    # benchmark filter, so a subset current run is routine there (--mode=warn
    # keeps it green); locally (--mode=fail) a mismatch is an error.
    removed = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))

    regressions: list[str] = []
    compared = 0
    print(f"{'benchmark':<34} {'baseline':>14} {'current':>14} {'delta':>8}")
    for name in sorted(baseline):
        if name not in current:
            print(f"{name:<34} {'(missing in current run)':>38}")
            continue
        base_metric = metric(baseline[name])
        cur_metric = metric(current[name])
        if base_metric is None or cur_metric is None:
            which = args.baseline if base_metric is None else args.current
            print(
                f"bench_compare: benchmark {name!r} in {which} reports neither "
                "items_per_second nor real_time",
                file=sys.stderr,
            )
            return 1
        metric_name, base_value, higher_better = base_metric
        cur_metric_name, cur_value, _ = cur_metric
        if metric_name != cur_metric_name or base_value == 0:
            print(f"{name:<34} {'(metric mismatch)':>38}")
            continue
        compared += 1
        # Normalize so ratio > 1 always means "got faster".
        ratio = cur_value / base_value if higher_better else base_value / cur_value
        delta_pct = (ratio - 1.0) * 100.0
        flagged = ratio < 1.0 - args.tolerance
        if flagged and args.key_only and not name.startswith(KEY_PREFIXES):
            flagged = False
        marker = "  << REGRESSION" if flagged else ""
        print(
            f"{name:<34} {base_value:>14.4g} {cur_value:>14.4g} {delta_pct:>+7.1f}%{marker}"
        )
        if flagged:
            regressions.append(name)

    if removed:
        print(f"\nbench_compare: {len(removed)} benchmark(s) only in baseline "
              f"(removed?): {', '.join(removed)}")
    if added:
        print(f"bench_compare: {len(added)} benchmark(s) only in current run "
              f"(added?): {', '.join(added)}")

    if args.missing == "fail":
        gated = [
            n for n in removed
            if not args.key_only or n.startswith(KEY_PREFIXES)
        ]
        if gated:
            # Print the full name inventory (the --list view) so the failure
            # log shows exactly what each file tracks, not just the delta.
            print(
                f"\nbench_compare: {len(gated)} gated benchmark(s) "
                f"disappeared from the current run: {', '.join(gated)}",
                file=sys.stderr,
            )
            print_inventory(args.baseline, baseline)
            print_inventory(args.current, current)
            print(
                "bench_compare: a benchmark the baseline tracks no longer "
                "runs — rename the baseline entry or regenerate "
                "BENCH_substrate.json (scripts/bench_baseline.sh)",
                file=sys.stderr,
            )
            return 1

    if compared == 0:
        print("bench_compare: no comparable benchmarks found", file=sys.stderr)
        return 1
    if regressions:
        print(
            f"\nbench_compare: {len(regressions)} benchmark(s) regressed "
            f">{args.tolerance * 100:.0f}%: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1 if args.mode == "fail" else 0
    if (removed or added) and args.mode == "fail":
        print(
            f"\nbench_compare: benchmark sets differ ({len(removed)} removed, "
            f"{len(added)} added) — regenerate the baseline or pass --mode=warn",
            file=sys.stderr,
        )
        return 1
    print(f"\nbench_compare: {compared} benchmark(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
