#!/usr/bin/env bash
# Fault-injection soak test for the crash-safe artifact store and resumable
# training (ISSUE acceptance criterion): repeatedly kill a pipeline run at
# injected fault points, restart it against the same cache, and assert the
# final result digest is byte-identical to an uninterrupted run's.
#
# Usage: scripts/fault_soak.sh [build-dir]
#
# Faults exercised (see src/util/fault.hpp):
#   crash_at_step:N   _Exit(137) mid-training (pretrain and SFT step counts)
#   crash_at_io:N     _Exit(137) between tmp-file fsync and rename
#   truncate_write    artifact stores write a torn half-blob to the final path
#   io_fail:p=...     artifact stores fail outright (p=1: always; p<1: flaky)
#   hang_at_step:N    stall forever at train step N; the stage supervisor's
#                     hang watchdog (SDD_STAGE_HANG_SEC) must abort and retry
#   nan_at_step:N     poison the Nth loss with NaN; the numeric-divergence
#                     guard must roll back and replay in-process
#   slow_io:ms=M      every artifact write sleeps M ms first (latency soak)
set -euo pipefail

source "$(dirname "${BASH_SOURCE[0]}")/soak_lib.sh"

BUILD="${1:-build}"
SOAK="${BUILD}/examples/soak_pipeline"
soak_require_binary fault_soak "${SOAK}" soak_pipeline

soak_workdir sdd_soak

# Tiny but non-degenerate scale: 40 pretrain steps checkpointed every 7, 20
# SFT steps checkpointed every 5, so crash points land both before the first
# checkpoint and between checkpoints.
export SDD_LOG_LEVEL="${SDD_LOG_LEVEL:-warn}"
export SDD_DMODEL="${SDD_DMODEL:-32}" SDD_HEADS="${SDD_HEADS:-2}"
export SDD_LAYERS="${SDD_LAYERS:-4}" SDD_DFF="${SDD_DFF:-64}"
export SDD_MAX_SEQ="${SDD_MAX_SEQ:-64}"
export SDD_CORPUS_DOCS="${SDD_CORPUS_DOCS:-400}"
export SDD_PRETRAIN_STEPS="${SDD_PRETRAIN_STEPS:-40}"
export SDD_PRETRAIN_BATCH="${SDD_PRETRAIN_BATCH:-2}"
export SDD_PRETRAIN_SEQ="${SDD_PRETRAIN_SEQ:-48}"
export SDD_SFT_EPOCHS="${SDD_SFT_EPOCHS:-4}"
export SDD_SFT_MAX_STEPS="${SDD_SFT_MAX_STEPS:-20}"
export SDD_SFT_BATCH="${SDD_SFT_BATCH:-2}"
export SDD_DISTILL_MAX_TOKENS="${SDD_DISTILL_MAX_TOKENS:-8}"
export SDD_CKPT_EVERY="${SDD_CKPT_EVERY:-7}" SDD_SFT_CKPT_EVERY="${SDD_SFT_CKPT_EVERY:-5}"
export SDD_SOAK_BLOCK="${SDD_SOAK_BLOCK:-1}"
export SDD_SOAK_DATASET_SIZE="${SDD_SOAK_DATASET_SIZE:-6}"
export SDD_SOAK_ITEMS="${SDD_SOAK_ITEMS:-4}"

# The step-based crash points below assume the default 40-step pretrain /
# 12-step SFT schedule; overriding the training knobs may move them past the
# end of the run (the case then fails with "unexpected exit status").

# The driver runs directly (no pipeline, no /dev/null) so its exit code is
# what we test; output goes to a per-case log that is dumped on failure.
run_soak() { # cache-dir digest-out log-file [fault-spec]
  local cache="$1" digest="$2" log="$3" fault="${4:-}"
  if [[ -n "${fault}" ]]; then
    SDD_CACHE_DIR="${cache}" SDD_SOAK_OUT="${digest}" SDD_FAULT="${fault}" \
      "${SOAK}" >"${log}" 2>&1
  else
    SDD_CACHE_DIR="${cache}" SDD_SOAK_OUT="${digest}" "${SOAK}" >"${log}" 2>&1
  fi
}

echo "== reference run (no faults)"
REF="${WORK}/reference.txt"
run_soak "${WORK}/cache_ref" "${REF}" "${WORK}/reference.log"
[[ -s "${REF}" ]] || { echo "fault_soak: reference run produced no digest" >&2; exit 2; }

check_case() { # name fault-spec expect-crash
  local name="$1" fault="$2" expect_crash="$3"
  local cache="${WORK}/cache_${name}" digest="${WORK}/digest_${name}.txt"
  local log="${WORK}/${name}.log"
  echo "== ${name} (SDD_FAULT=${fault})"

  local crashed=ok rc=0
  run_soak "${cache}" "${digest}" "${log}" "${fault}" || rc=$?
  if [[ "${rc}" -eq 0 ]]; then
    [[ "${expect_crash}" == yes ]] && crashed=bad
  else
    [[ "${expect_crash}" == no ]] && crashed=bad
  fi
  if [[ "${crashed}" == bad ]]; then
    echo "   unexpected exit ${rc} under fault (expect_crash=${expect_crash}); last log lines:"
    tail -n 8 "${log}" | sed 's/^/   | /'
    soak_report "${name}" bad
    return
  fi

  # Restart (or re-run) without faults against the same cache: it must load
  # or quarantine what the faulted run left behind and converge on the
  # reference digest byte-for-byte.
  rc=0
  run_soak "${cache}" "${digest}" "${log}" || rc=$?
  if [[ "${rc}" -ne 0 ]]; then
    echo "   clean rerun failed after fault (exit ${rc}); last log lines:"
    tail -n 8 "${log}" | sed 's/^/   | /'
    soak_report "${name}" bad
    return
  fi
  if cmp -s "${REF}" "${digest}"; then
    soak_report "${name}" ok
  else
    echo "   digest differs from reference:"
    diff "${REF}" "${digest}" || true
    soak_report "${name}" bad
  fi
}

# Kill -9-equivalent crashes mid-pretrain (before the first checkpoint, between
# checkpoints) and mid-SFT (global step counter keeps counting across loops:
# 40 pretrain steps, then 12 SFT steps, so 48 is SFT step 8, after the SFT
# checkpoint at step 5).
check_case crash_pretrain_early   "crash_at_step:3"  yes
check_case crash_pretrain_mid     "crash_at_step:17" yes
check_case crash_pretrain_late    "crash_at_step:39" yes
check_case crash_sft              "crash_at_step:48" yes

# Crash at the worst torn point of an artifact commit: tmp file durable,
# rename not yet issued.
check_case crash_commit_first     "crash_at_io:1"    yes
check_case crash_commit_later     "crash_at_io:4"    yes

# Torn writes land directly in the final artifact path; the checksum footer
# must flag them as corrupt and the rerun must quarantine + recompute.
check_case torn_writes            "truncate_write"   no

# Every store fails: caching is best-effort, so the run still completes and
# the rerun recomputes everything from scratch.
check_case store_blackout         "io_fail:p=1"      no

# Flaky stores: each artifact store independently fails with probability
# 0.05; results must still converge on the reference digest.
check_case store_flaky            "io_fail:p=0.05"   no

# Injected hangs: training stalls at the given step and stays silent. The
# stage watchdog (1s heartbeat-silence threshold) must cancel the stage and
# the supervisor retry it in-process — resuming from the last checkpoint
# (pretrain step 9 is past the step-7 checkpoint; global step 44 is SFT local
# step 4, before the SFT checkpoint) and converging on the reference digest
# without a process restart.
SDD_STAGE_HANG_SEC=1 check_case hang_pretrain "hang_at_step:9"  no
SDD_STAGE_HANG_SEC=1 check_case hang_sft      "hang_at_step:44" no

# Injected NaN losses: the numeric-divergence guard rolls the loop back to
# its last in-memory snapshot, replays (the one-shot fault does not re-fire),
# and the run completes with bit-identical weights — no restart, no retry.
check_case nan_pretrain           "nan_at_step:11"   no
check_case nan_sft                "nan_at_step:45"   no

# Slow I/O: every artifact write is delayed 5ms. Purely a latency fault —
# nothing may time out or change results at the default (watchdogs off)
# supervision settings.
check_case slow_io                "slow_io:ms=5"     no

soak_summary "fault soak"
