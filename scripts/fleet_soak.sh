#!/usr/bin/env bash
# Chaos soak for the multi-process fleet orchestrator (ISSUE 6 acceptance
# criterion): run the eval grid through `sdd_cli eval` with worker processes
# being kill -9'd, stalled, and raced against each other, and assert every
# fleet run's suite digest is byte-identical to the serial single-process
# run's. The final scenario crashes the orchestrator itself mid-run and
# asserts the restart resumes from queue state without recomputing
# completed cells.
#
# Usage: scripts/fleet_soak.sh [build-dir]
#
# Faults exercised (see src/util/fault.hpp; armed via SDD_FLEET_FAULT so the
# orchestrator stays fault-free and only workers inherit the injector):
#   worker_kill9:at=N  the worker raises SIGKILL at its Nth task claim, once
#                      per fleet run; the lease must expire, the orphaned
#                      claim be reclaimed, and the task re-run elsewhere
#   worker_stall:N     the worker hangs forever at its Nth claim; with one
#                      worker the orchestrator must SIGKILL it on lease
#                      expiry and respawn (with siblings, leaderless reclaim
#                      may recover the task first — both are wins)
#   claim_race         every claim attempt is pinned to the same scan order
#                      and widened with a sleep so workers pile onto one
#                      task file; O_EXCL must elect exactly one winner
#   io_fail:p=...      workers' artifact commits fail with probability p;
#                      failed tasks burn retry budget and must still finish
#   orch_crash:N       (via SDD_FAULT, parent-side) the orchestrator
#                      _Exit(137)s at its Nth validated completion
set -euo pipefail

source "$(dirname "${BASH_SOURCE[0]}")/soak_lib.sh"

BUILD="${1:-build}"
CLI="${BUILD}/examples/sdd_cli"
soak_require_binary fleet_soak "${CLI}" sdd_cli

soak_workdir sdd_fleet_soak

# Tiny but non-degenerate scale; the base model is pretrained once into the
# shared cache and every scenario evaluates the same weights.
export SDD_LOG_LEVEL="${SDD_LOG_LEVEL:-info}"
export SDD_DMODEL="${SDD_DMODEL:-32}" SDD_HEADS="${SDD_HEADS:-2}"
export SDD_LAYERS="${SDD_LAYERS:-4}" SDD_DFF="${SDD_DFF:-64}"
export SDD_MAX_SEQ="${SDD_MAX_SEQ:-64}"
export SDD_CORPUS_DOCS="${SDD_CORPUS_DOCS:-400}"
export SDD_PRETRAIN_STEPS="${SDD_PRETRAIN_STEPS:-40}"
export SDD_PRETRAIN_BATCH="${SDD_PRETRAIN_BATCH:-2}"
export SDD_PRETRAIN_SEQ="${SDD_PRETRAIN_SEQ:-48}"
export SDD_CACHE_DIR="${WORK}/cache"
ITEMS="${SDD_FLEET_SOAK_ITEMS:-3}"

run_eval() { # digest-out log-file [VAR=VALUE ...]
  local digest="$1" log="$2"
  shift 2
  env "$@" "${CLI}" eval --suite openllm --items "${ITEMS}" --out "${digest}" \
    >"${log}" 2>&1
}

# Reference digest from the serial single-process path (fleet off).
echo "== reference run (serial, no fleet)"
REF="${WORK}/reference.txt"
run_eval "${REF}" "${WORK}/reference.log"
[[ -s "${REF}" ]] || { echo "fleet_soak: reference run produced no digest" >&2; exit 2; }

chaos_case() { # name fleet-fault-spec [VAR=VALUE ...]
  local name="$1" fault="$2"
  shift 2
  local digest="${WORK}/digest_${name}.txt" log="${WORK}/${name}.log"
  echo "== ${name} (SDD_FLEET_FAULT=${fault:-<none>})"
  local rc=0
  run_eval "${digest}" "${log}" \
    SDD_FLEET_WORKERS=2 SDD_FLEET_DIR="${WORK}/fleet_${name}" \
    SDD_FLEET_FAULT="${fault}" "$@" || rc=$?
  if [[ "${rc}" -ne 0 ]]; then
    echo "   fleet run failed (exit ${rc}); last log lines:"
    tail -n 8 "${log}" | sed 's/^/   | /'
    soak_report "${name}" bad
    return
  fi
  if cmp -s "${REF}" "${digest}"; then
    soak_report "${name}" ok
  else
    echo "   digest differs from serial reference:"
    diff "${REF}" "${digest}" | sed 's/^/   | /' || true
    soak_report "${name}" bad
  fi
}

# No faults: the fleet path alone must already be byte-identical to serial.
chaos_case clean ""

# kill -9 on the first claim: lease expiry, orphan reclaim, requeue, respawn.
chaos_case worker_kill9 "worker_kill9:at=0"

# One worker hangs on its first claim: the orchestrator's stale-lease sweep
# must SIGKILL it and respawn (single worker so no sibling can rescue it).
chaos_case worker_stall "worker_stall:0" \
  SDD_FLEET_WORKERS=1 SDD_FLEET_LEASE_MS=1500

# All workers funnelled onto the same task file: O_EXCL claim exclusion.
chaos_case claim_race "claim_race"

# Flaky artifact commits inside workers: tasks fail with typed transient_io
# errors, burn retry budget, and must still converge.
chaos_case flaky_store "io_fail:p=0.3" SDD_FLEET_TASK_RETRY=8

# Acceptance scenario: every process-level injector at once.
chaos_case combined "worker_kill9:at=0,worker_stall:2,claim_race" \
  SDD_FLEET_LEASE_MS=1500

# Orchestrator crash + restart: the parent _Exit(137)s after its second
# validated completion; the restart against the same queue dir must reuse
# the completed cells (reused>0) instead of recomputing them, and still
# match the serial digest byte-for-byte.
echo "== orch_restart (SDD_FAULT=orch_crash:2 on the orchestrator)"
orc_ok=ok
rc=0
run_eval "${WORK}/digest_orch_crashed.txt" "${WORK}/orch_crash.log" \
  SDD_FLEET_WORKERS=2 SDD_FLEET_DIR="${WORK}/fleet_orch" \
  SDD_FAULT="orch_crash:2" || rc=$?
if [[ "${rc}" -ne 137 ]]; then
  echo "   expected orchestrator exit 137, got ${rc}"
  orc_ok=bad
fi
# Orphaned workers may keep draining the queue briefly after the parent dies;
# give them a moment so the restart observes a quiesced queue.
sleep 2
rc=0
run_eval "${WORK}/digest_orch_restart.txt" "${WORK}/orch_restart.log" \
  SDD_FLEET_WORKERS=2 SDD_FLEET_DIR="${WORK}/fleet_orch" || rc=$?
if [[ "${rc}" -ne 0 ]]; then
  echo "   restart failed (exit ${rc}); last log lines:"
  tail -n 8 "${WORK}/orch_restart.log" | sed 's/^/   | /'
  orc_ok=bad
elif ! cmp -s "${REF}" "${WORK}/digest_orch_restart.txt"; then
  echo "   restart digest differs from serial reference:"
  diff "${REF}" "${WORK}/digest_orch_restart.txt" | sed 's/^/   | /' || true
  orc_ok=bad
elif ! grep -q "reused=[1-9]" "${WORK}/orch_restart.log"; then
  echo "   restart recomputed every cell (expected reused>0):"
  grep "fleet:" "${WORK}/orch_restart.log" | sed 's/^/   | /' || true
  orc_ok=bad
fi
soak_report orch_restart "${orc_ok}"

soak_summary "fleet soak"
