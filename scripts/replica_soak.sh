#!/usr/bin/env bash
# Chaos soak for cross-process serving replicas (ISSUE 10 acceptance
# criterion): the router spawns each variant as a `replica-worker` child
# process behind the length-prefixed checksummed IPC protocol, concurrent
# clients fire requests across the process boundary, and the driver asserts
# that no request is ever lost (every one resolves with a response or a typed
# error), that a killed/wedged worker is quarantined by its breaker,
# respawned, and probed back to healthy, and that per-variant outputs stay
# byte-identical to the in-process reference decode with and without chaos.
#
# Usage: scripts/replica_soak.sh [build-dir]
#
# Faults exercised (see src/util/fault.hpp; armed via SDD_REPLICA_FAULT +
# SDD_REPLICA_FAULT_IDX so only one worker's environment carries the spec):
#   replica_kill9:at=N  the worker _Exit(137)s on its Nth request, mid-decode
#                       from the router's point of view: in-flight requests
#                       must fail over to sibling variants, the breaker opens,
#                       and the supervisor respawns + probes the worker back
#   replica_wedge:N     the worker stops heartbeating and reading after N
#                       requests; the liveness lease must expire, the
#                       supervisor SIGKILLs and respawns it
#   ipc_torn_frame      the worker writes a torn half-frame then dies; the
#                       parent must classify it as worker_lost (never decode
#                       garbage) and fail the in-flight requests over
#
# The swap case exercises the rolling variant upgrade path instead of a
# fault: mid-traffic, swap_model() drains the 'full' worker, respawns it on a
# new checkpoint, and post-swap pinned requests must match the new
# checkpoint's reference decode bit-for-bit.
set -euo pipefail

source "$(dirname "${BASH_SOURCE[0]}")/soak_lib.sh"

BUILD="${1:-build}"
SOAK="${BUILD}/examples/replica_soak"
soak_require_binary replica_soak "${SOAK}" replica_soak

soak_workdir sdd_replica_soak
export TMPDIR="${WORK}"

export SDD_LOG_LEVEL="${SDD_LOG_LEVEL:-warn}"
# Small queues so failover actually redistributes load, and a fast breaker /
# respawn backoff so open -> respawn -> half-open -> healthy fits in a short
# soak.
export SDD_SERVE_QUEUE_CAP="${SDD_SERVE_QUEUE_CAP:-8}"
export SDD_SERVE_MAX_BATCH="${SDD_SERVE_MAX_BATCH:-4}"
export SDD_ROUTE_BREAKER_FAILS="${SDD_ROUTE_BREAKER_FAILS:-3}"
export SDD_ROUTE_BREAKER_COOLDOWN_MS="${SDD_ROUTE_BREAKER_COOLDOWN_MS:-150}"
export SDD_ROUTE_PROBE_MAX="${SDD_ROUTE_PROBE_MAX:-1}"
export SDD_REPLICA_BACKOFF_MS="${SDD_REPLICA_BACKOFF_MS:-50}"
export SDD_REPLICA_BACKOFF_CAP_MS="${SDD_REPLICA_BACKOFF_CAP_MS:-500}"

check_case() { # name fault-spec [extra VAR=VAL ...]
  local name="$1" fault="$2"
  shift 2
  echo "== ${name} (SDD_REPLICA_FAULT=${fault:-<none>}${*:+ $*})"
  local dir="${WORK}/${name}"
  mkdir -p "${dir}"
  local rc=0
  env SDD_REPLICA_SOAK_DIR="${dir}" SDD_REPLICA_FAULT="${fault}" \
    SDD_REPLICA_FAULT_IDX=0 "$@" "${SOAK}" || rc=$?
  if [[ "${rc}" -eq 0 ]]; then
    soak_report "${name}" ok
  else
    echo "   invariant violated (exit ${rc})"
    soak_report "${name}" bad
  fi
}

# Baseline: three worker processes under concurrent load, no faults. Every
# per-variant output must be byte-identical to the in-process reference
# decode (the same weights generated without crossing a process boundary).
check_case clean ""

# kill -9 equivalent mid-decode: the 'full' worker _Exit(137)s on its second
# request while siblings keep serving. The driver asserts zero lost requests,
# failovers >= 1, breaker_opens >= 1, restarts >= 1, and the worker probed
# back to healthy with probe_successes >= 1.
check_case kill9 "replica_kill9:at=2"

# Wedged worker: stops heartbeating after two requests. A short liveness
# lease makes the supervisor detect the silence, SIGKILL, and respawn.
check_case wedge "replica_wedge:2" SDD_REPLICA_LEASE_MS=300

# Torn frame: the worker writes a truncated frame then dies. The checksum /
# framing layer must surface worker_lost (never garbage tokens) and the
# requests must fail over and still match the reference decode.
check_case torn_frame "ipc_torn_frame"

# Rolling upgrade: mid-traffic swap of the 'full' variant onto a new
# checkpoint. Post-swap pinned requests must complete on 'full' and match
# the NEW checkpoint's reference decode bit-for-bit (restarts >= 1).
check_case swap "" SDD_REPLICA_SOAK_SWAP=1

soak_summary "replica soak"
