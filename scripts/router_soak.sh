#!/usr/bin/env bash
# Chaos soak for the replicated multi-variant serving router (ISSUE 8
# acceptance criterion): fire concurrent clients at a VariantRouter hosting
# the full model plus two depth-pruned variants while killing, slowing, and
# flapping one replica, and assert that no request is ever lost (every one
# resolves with a response or a typed error), that a dead variant is
# quarantined by its circuit breaker and probed back to healthy, and that
# per-variant outputs stay bit-identical with and without failover.
#
# Usage: scripts/router_soak.sh [build-dir]
#
# Faults exercised (see src/util/fault.hpp; armed via SDD_ROUTE_FAULT so
# model construction and the per-variant reference decodes stay fault-free):
#   replica_fail:at=N  dispatches to the target replica die pre-queue for a
#                      window of replica_fail_n ordinals; the breaker must
#                      open, requests fail over, and half-open probes must
#                      bring the replica back once the window passes
#   replica_slow:MS    transit to the target replica is delayed; routing
#                      must absorb the latency without stalling other jobs
#   breaker_flap       the target replica fails in bursts of three, so the
#                      breaker repeatedly opens, probes closed, and re-opens
set -euo pipefail

source "$(dirname "${BASH_SOURCE[0]}")/soak_lib.sh"

BUILD="${1:-build}"
SOAK="${BUILD}/examples/router_soak"
soak_require_binary router_soak "${SOAK}" router_soak

soak_workdir sdd_router_soak
export TMPDIR="${WORK}"

export SDD_LOG_LEVEL="${SDD_LOG_LEVEL:-warn}"
# Small queues so the offered load actually produces backpressure routing,
# and a fast breaker so open -> half-open -> healthy fits in a short soak.
export SDD_SERVE_QUEUE_CAP="${SDD_SERVE_QUEUE_CAP:-8}"
export SDD_SERVE_MAX_BATCH="${SDD_SERVE_MAX_BATCH:-4}"
export SDD_ROUTE_BREAKER_FAILS="${SDD_ROUTE_BREAKER_FAILS:-3}"
export SDD_ROUTE_BREAKER_COOLDOWN_MS="${SDD_ROUTE_BREAKER_COOLDOWN_MS:-100}"
export SDD_ROUTE_PROBE_MAX="${SDD_ROUTE_PROBE_MAX:-1}"

check_case() { # name fault-spec
  local name="$1" fault="$2"
  echo "== ${name} (SDD_ROUTE_FAULT=${fault:-<none>})"
  local rc=0
  SDD_ROUTE_FAULT="${fault}" "${SOAK}" || rc=$?
  if [[ "${rc}" -eq 0 ]]; then
    soak_report "${name}" ok
  else
    echo "   invariant violated (exit ${rc})"
    soak_report "${name}" bad
  fi
}

# Baseline: three variants under concurrent load, no faults. Exercises
# quality routing, deadline-pressure degradation, and backpressure failover.
check_case clean ""

# The primary replica dies for six consecutive dispatches: breaker opens,
# requests fail over to the pruned variants, probes bring it back. The
# driver additionally asserts breaker_opens >= 1, probe_successes >= 1, and
# final health == healthy for the target replica.
check_case replica_fail "replica_fail:at=2"

# Slow transit to the primary: latency only; every request still resolves
# and outputs stay bit-identical.
check_case replica_slow "replica_slow:30"

# The primary flaps (fails in bursts of three): the breaker must open at
# least once and the router must keep every request terminal throughout.
check_case breaker_flap "breaker_flap"

# Dead-then-slow primary: failure window and transit delay at once.
check_case combined "replica_fail:at=4,replica_slow:10"

soak_summary "router soak"
