#!/usr/bin/env bash
# Run the complete table/figure/ablation suite in a cache-friendly order
# (tables first so the figure benches reuse their fine-tuned checkpoints),
# then the microbenchmarks. Usage: scripts/run_suite.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"

BENCHES=(
  table2_datasets
  table1_openllm
  fig1_recovery
  fig2_metrics
  fig2_embedding
  fig3_dataset_grid
  ablation_metrics
  ablation_datasize
  ablation_merge
  ablation_distill
  ablation_width_depth
  ablation_kd
  micro_substrate
)

declare -a results
failed=0
for bench in "${BENCHES[@]}"; do
  echo "=============================================================="
  echo "== ${bench}"
  echo "=============================================================="
  if [[ ! -x "${BUILD}/bench/${bench}" ]]; then
    echo "!! ${bench} MISSING (not built?)"
    results+=("MISSING  ${bench}")
    failed=$((failed + 1))
    continue
  fi
  # A failing bench must not abort the suite under `set -e`; record and go on.
  if "${BUILD}/bench/${bench}"; then
    results+=("PASS     ${bench}")
  else
    echo "!! ${bench} FAILED (exit $?)"
    results+=("FAIL     ${bench}")
    failed=$((failed + 1))
  fi
done

echo "=============================================================="
echo "== suite summary"
echo "=============================================================="
printf '%s\n' "${results[@]}"
echo "-- $((${#BENCHES[@]} - failed))/${#BENCHES[@]} benches passed"
exit "$((failed > 0 ? 1 : 0))"
