#!/usr/bin/env bash
# Run the complete table/figure/ablation suite in a cache-friendly order
# (tables first so the figure benches reuse their fine-tuned checkpoints),
# then the microbenchmarks. Usage: scripts/run_suite.sh [build-dir]
set -u
BUILD="${1:-build}"

BENCHES=(
  table2_datasets
  table1_openllm
  fig1_recovery
  fig2_metrics
  fig2_embedding
  fig3_dataset_grid
  ablation_metrics
  ablation_datasize
  ablation_merge
  ablation_distill
  ablation_width_depth
  ablation_kd
  micro_substrate
)

status=0
for bench in "${BENCHES[@]}"; do
  echo "=============================================================="
  echo "== ${bench}"
  echo "=============================================================="
  if ! "${BUILD}/bench/${bench}"; then
    echo "!! ${bench} FAILED (exit $?)"
    status=1
  fi
done
exit "${status}"
