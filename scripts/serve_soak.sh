#!/usr/bin/env bash
# Chaos soak for the batched inference serving layer (ISSUE acceptance
# criterion): fire concurrent clients at an InferenceServer at 4x queue
# capacity while injecting decode hangs, NaN logits, allocation failures,
# and slow artifact I/O, and assert that every request reaches a terminal
# state (response or typed error), outputs stay bit-deterministic per
# request, and the server neither crashes nor leaks requests.
#
# Usage: scripts/serve_soak.sh [build-dir]
#
# Faults exercised (see src/util/fault.hpp; armed via SDD_SERVE_FAULT so
# model construction and reference decoding stay fault-free):
#   alloc_fail:at=N   Nth guarded tensor allocation throws resource_exhausted;
#                     the server must shrink its admissible batch, not crash
#   hang_decode:N     decode stalls at the Nth token; the worker watchdog
#                     (SDD_SERVE_HANG_MS) must recycle the worker, fail the
#                     hung request with a typed timeout, and keep serving
#   nan_decode:N      Nth decode emits NaN logits; the NaN guard must fail
#                     that one request as numeric_divergence and carry on
#   slow_io:ms=M      artifact-store round-trip of the served model is slowed
#                     (latency soak for the loading path)
set -euo pipefail

source "$(dirname "${BASH_SOURCE[0]}")/soak_lib.sh"

BUILD="${1:-build}"
SOAK="${BUILD}/examples/serve_soak"
soak_require_binary serve_soak "${SOAK}" serve_soak

# Everything the soak driver writes (model caches, artifact-store scratch)
# lands under the trapped work dir so no run leaks into the caller's TMPDIR.
soak_workdir sdd_serve_soak
export TMPDIR="${WORK}"
export SDD_CACHE_DIR="${SDD_CACHE_DIR:-${WORK}/cache}"

export SDD_LOG_LEVEL="${SDD_LOG_LEVEL:-warn}"
# Small queue + batch so 4x-capacity offered load (the driver's default
# SDD_SERVE_SOAK_LOAD=4) actually trips shedding, rejection, and degradation.
export SDD_SERVE_QUEUE_CAP="${SDD_SERVE_QUEUE_CAP:-8}"
export SDD_SERVE_MAX_BATCH="${SDD_SERVE_MAX_BATCH:-4}"
export SDD_SERVE_SOAK_CLIENTS="${SDD_SERVE_SOAK_CLIENTS:-4}"
export SDD_SERVE_SOAK_LOAD="${SDD_SERVE_SOAK_LOAD:-4}"

check_case() { # name [env VAR=VALUE ...] -- fault-spec
  local name="$1"
  shift
  local -a extra_env=()
  while [[ "$1" != "--" ]]; do
    extra_env+=("$1")
    shift
  done
  shift
  local fault="${1:-}"
  echo "== ${name} (SDD_SERVE_FAULT=${fault:-<none>})"
  # Run the driver directly (no pipeline) so its exit code is what we test,
  # and capture it explicitly rather than trusting $? after other commands.
  local rc=0
  env "${extra_env[@]}" SDD_SERVE_FAULT="${fault}" "${SOAK}" || rc=$?
  if [[ "${rc}" -eq 0 ]]; then
    soak_report "${name}" ok
  else
    echo "   invariant violated (exit ${rc})"
    soak_report "${name}" bad
  fi
}

# Baseline: overload alone (shedding/rejection/degradation, no faults).
check_case clean -- ""

# Allocation failure during the artifact-store load of the served model:
# tolerated, serving falls back to the in-memory model.
check_case alloc_fail_load -- "alloc_fail:at=3"

# Allocation failure while admitting a decode slot: the batch limit shrinks
# and recovers as slots retire; nothing OOMs or crashes.
check_case alloc_fail_serve SDD_SERVE_SOAK_STORE=0 -- "alloc_fail:at=2"

# A decode hangs mid-batch: the hang watchdog recycles the worker, the hung
# request fails with a typed timeout, and the surviving slots complete with
# bit-identical outputs.
check_case hang_decode SDD_SERVE_HANG_MS=200 -- "hang_decode:5"

# NaN logits mid-decode: exactly that request fails (numeric_divergence),
# everything else is unaffected.
check_case nan_decode -- "nan_decode:10"

# Slow artifact I/O on the model load path: latency only, no behavior change.
check_case slow_io -- "slow_io:ms=50"

# Everything at once, aimed at the serving layer.
check_case combined SDD_SERVE_HANG_MS=200 SDD_SERVE_SOAK_STORE=0 -- \
  "hang_decode:20,nan_decode:40,alloc_fail:at=6"

soak_summary "serve soak"
