# Shared helpers for the chaos soak scripts (serve_soak.sh, fleet_soak.sh,
# router_soak.sh): binary lookup with a build hint, a trapped scratch dir,
# per-case pass/fail accounting, and a uniform summary/exit contract.
#
# Source it, then:
#   soak_require_binary LABEL PATH TARGET  # exit 2 with a build hint if absent
#   soak_workdir PREFIX                    # sets $WORK; removed by an EXIT trap
#   soak_report NAME ok|bad                # tally one case
#   soak_summary TITLE                     # print the table; false if any failed

soak_pass=0
soak_fail=0
declare -a soak_cases=()

# Fails fast (exit 2, the soaks' "infrastructure problem" code) when the
# required executable has not been built, with the exact build command.
soak_require_binary() { # label path cmake-target
  local label="$1" path="$2" target="$3"
  if [[ ! -x "${path}" ]]; then
    echo "${label}: ${path} not found; build it first (cmake --build ${BUILD:-build} --target ${target})" >&2
    exit 2
  fi
}

# One scratch dir per run, removed on every exit path. Everything a soak
# writes (model caches, digests, logs) must land under $WORK so a failed run
# never leaks scratch into the caller's TMPDIR.
soak_workdir() { # prefix
  WORK="$(mktemp -d "${TMPDIR:-/tmp}/$1.XXXXXX")"
  trap 'rm -rf "${WORK}"' EXIT
}

soak_report() { # name ok|bad
  if [[ "$2" == ok ]]; then
    soak_pass=$((soak_pass + 1)); soak_cases+=("PASS  $1")
  else
    soak_fail=$((soak_fail + 1)); soak_cases+=("FAIL  $1")
  fi
}

soak_summary() { # title
  echo
  echo "== $1 summary"
  printf '%s\n' "${soak_cases[@]}"
  echo "-- ${soak_pass} passed, ${soak_fail} failed"
  [[ "${soak_fail}" -eq 0 ]]
}
