#!/usr/bin/env bash
# Chaos soak for self-speculative decoding (ISSUE acceptance criterion):
# drive the draft-and-verify loop through the one-shot API, a draft-equipped
# InferenceServer, and a VariantRouter with SDD_SPEC_DRAFT pairing, and
# assert that every speculative output is bit-identical to the target's
# plain greedy decode — with and without injected rejection storms and
# draft-model NaNs. A fault may collapse the acceptance rate or degrade a
# round to a target-only step; it must never change output bytes or fail a
# request.
#
# Usage: scripts/spec_soak.sh [build-dir]
#
# Faults exercised (see src/util/fault.hpp; armed via SDD_SPEC_FAULT so
# model construction and reference decoding stay fault-free):
#   spec_reject_storm        every draft proposal is corrupted; acceptance
#                            collapses (self-draft: to exactly 0), bytes don't
#   spec_reject_storm:p=0.5  probabilistic rejection storm
#   draft_nan:N              Nth draft logits row is NaN; the round degrades
#                            to a target-only step, the request still completes
set -euo pipefail

source "$(dirname "${BASH_SOURCE[0]}")/soak_lib.sh"

BUILD="${1:-build}"
SOAK="${BUILD}/examples/spec_soak"
soak_require_binary spec_soak "${SOAK}" spec_soak

soak_workdir sdd_spec_soak
export TMPDIR="${WORK}"

export SDD_LOG_LEVEL="${SDD_LOG_LEVEL:-warn}"
export SDD_SPEC_K="${SDD_SPEC_K:-4}"

check_case() { # name -- fault-spec
  local name="$1"
  shift
  [[ "$1" == "--" ]] && shift
  local fault="${1:-}"
  echo "== ${name} (SDD_SPEC_FAULT=${fault:-<none>})"
  local rc=0
  SDD_SPEC_FAULT="${fault}" "${SOAK}" || rc=$?
  if [[ "${rc}" -eq 0 ]]; then
    soak_report "${name}" ok
  else
    echo "   invariant violated (exit ${rc})"
    soak_report "${name}" bad
  fi
}

# Baseline: no faults. Self-drafting must accept 100% of proposals.
check_case clean -- ""

# Every proposal corrupted: acceptance collapses to zero on the self-draft,
# output bytes identical everywhere.
check_case reject_storm -- "spec_reject_storm"

# Half the proposals corrupted: partial-prefix acceptance and KV rollback on
# every round, still bit-identical.
check_case reject_half -- "spec_reject_storm:p=0.5"

# Draft model emits NaN logits: the round degrades to a target-only step
# (draft_fallbacks > 0); no request fails, bytes identical.
check_case draft_nan -- "draft_nan:3"

# Storm and NaN together.
check_case combined -- "spec_reject_storm:p=0.7,draft_nan:5"

soak_summary "spec soak"
