#include "core/cache.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>
#include <vector>

#include "util/env.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"

namespace sdd::core {
namespace {
constexpr std::string_view kDatasetMagic = "SDDDATA1";
constexpr std::uint32_t kDatasetVersion = 1;
}  // namespace

ExperimentCache::ExperimentCache(std::filesystem::path directory,
                                 std::int64_t quarantine_keep)
    : directory_{std::move(directory)} {
  std::filesystem::create_directories(directory_ / "models");
  std::filesystem::create_directories(directory_ / "datasets");
  std::filesystem::create_directories(directory_ / "metrics");
  std::filesystem::create_directories(directory_ / "checkpoints");
  if (quarantine_keep < 0) quarantine_keep = env_int("SDD_QUARANTINE_KEEP", 8);
  prune_quarantine(quarantine_keep);
}

void ExperimentCache::prune_quarantine(std::int64_t keep) const {
  // Collect every *.corrupt file under the cache; errors (races with
  // concurrent processes, permissions) only shrink the list — pruning the
  // quarantine is best-effort hygiene, never a correctness requirement.
  std::vector<std::pair<std::filesystem::file_time_type, std::filesystem::path>>
      corrupt;
  std::error_code ec;
  for (std::filesystem::recursive_directory_iterator
           it{directory_, std::filesystem::directory_options::skip_permission_denied,
              ec},
       end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec) || ec) continue;
    if (it->path().extension() != ".corrupt") continue;
    const auto mtime = it->last_write_time(ec);
    if (ec) continue;
    corrupt.emplace_back(mtime, it->path());
  }
  if (std::cmp_less_equal(corrupt.size(), keep)) return;
  std::sort(corrupt.begin(), corrupt.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::int64_t removed = 0;
  for (std::size_t i = static_cast<std::size_t>(std::max<std::int64_t>(keep, 0));
       i < corrupt.size(); ++i) {
    std::error_code rm_ec;
    if (std::filesystem::remove(corrupt[i].second, rm_ec) && !rm_ec) ++removed;
  }
  if (removed > 0) {
    log_info("cache: pruned ", removed, " quarantined artifact(s), keeping the ",
             keep, " newest (SDD_QUARANTINE_KEEP)");
  }
}

std::filesystem::path ExperimentCache::model_path(std::uint64_t key) const {
  return directory_ / "models" / (hash_hex(key) + ".bin");
}
std::filesystem::path ExperimentCache::dataset_path(std::uint64_t key) const {
  return directory_ / "datasets" / (hash_hex(key) + ".bin");
}
std::filesystem::path ExperimentCache::metric_path(std::uint64_t key) const {
  return directory_ / "metrics" / (hash_hex(key) + ".txt");
}
std::filesystem::path ExperimentCache::checkpoint_path(std::uint64_t key) const {
  return directory_ / "checkpoints" / (hash_hex(key) + ".ckpt");
}

void ExperimentCache::quarantine(const std::filesystem::path& path,
                                 const char* kind, const char* reason) const {
  ++quarantined_;
  log_warn("cache: corrupt ", kind, " artifact ", path.string(), ": ", reason,
           " — quarantined to *.corrupt, treating as cache miss");
  quarantine_artifact(path);
}

std::optional<nn::TransformerLM> ExperimentCache::load_model(std::uint64_t key) const {
  const auto path = model_path(key);
  if (!std::filesystem::exists(path)) return std::nullopt;
  try {
    return nn::TransformerLM::load(path);
  } catch (const SerializeError& e) {
    quarantine(path, "model", e.what());
    return std::nullopt;
  }
}

void ExperimentCache::store_model(std::uint64_t key,
                                  const nn::TransformerLM& model) const {
  model.save(model_path(key));
}

std::optional<data::SftDataset> ExperimentCache::load_dataset(
    std::uint64_t key) const {
  const auto path = dataset_path(key);
  if (!std::filesystem::exists(path)) return std::nullopt;
  try {
    BinaryReader reader{path};
    reader.expect_magic(kDatasetMagic, kDatasetVersion);
    data::SftDataset dataset;
    dataset.name = reader.read_string();
    dataset.family = static_cast<data::TaskFamily>(reader.read_u32());
    const std::uint64_t n = reader.read_u64();
    dataset.examples.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      data::SftExample example;
      example.prompt = reader.read_vector<data::TokenId>();
      example.target = reader.read_vector<data::TokenId>();
      example.extract = static_cast<data::ExtractKind>(reader.read_u32());
      example.numeric_answer = reader.read_i64();
      example.answer_key = reader.read_vector<data::TokenId>();
      dataset.examples.push_back(std::move(example));
    }
    return dataset;
  } catch (const SerializeError& e) {
    quarantine(path, "dataset", e.what());
    return std::nullopt;
  }
}

void ExperimentCache::store_dataset(std::uint64_t key,
                                    const data::SftDataset& dataset) const {
  BinaryWriter writer{dataset_path(key)};
  writer.write_magic(kDatasetMagic, kDatasetVersion);
  writer.write_string(dataset.name);
  writer.write_u32(static_cast<std::uint32_t>(dataset.family));
  writer.write_u64(dataset.examples.size());
  for (const data::SftExample& example : dataset.examples) {
    writer.write_vector(example.prompt);
    writer.write_vector(example.target);
    writer.write_u32(static_cast<std::uint32_t>(example.extract));
    writer.write_i64(example.numeric_answer);
    writer.write_vector(example.answer_key);
  }
  writer.flush();
}

std::optional<double> ExperimentCache::load_metric(std::uint64_t key) const {
  const auto path = metric_path(key);
  if (!std::filesystem::exists(path)) return std::nullopt;
  std::ifstream in{path};
  double value = 0.0;
  std::string trailing;
  if (!(in >> value) || (in >> trailing)) {
    quarantine(path, "metric", "unparseable scalar");
    return std::nullopt;
  }
  return value;
}

void ExperimentCache::store_metric(std::uint64_t key, double value) const {
  std::ostringstream out;
  out.precision(17);
  out << value << '\n';
  atomic_write_text(metric_path(key), out.str());
}

}  // namespace sdd::core
