#include "core/cache.hpp"

#include <fstream>
#include <sstream>

#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"

namespace sdd::core {
namespace {
constexpr std::string_view kDatasetMagic = "SDDDATA1";
constexpr std::uint32_t kDatasetVersion = 1;
}  // namespace

ExperimentCache::ExperimentCache(std::filesystem::path directory)
    : directory_{std::move(directory)} {
  std::filesystem::create_directories(directory_ / "models");
  std::filesystem::create_directories(directory_ / "datasets");
  std::filesystem::create_directories(directory_ / "metrics");
  std::filesystem::create_directories(directory_ / "checkpoints");
}

std::filesystem::path ExperimentCache::model_path(std::uint64_t key) const {
  return directory_ / "models" / (hash_hex(key) + ".bin");
}
std::filesystem::path ExperimentCache::dataset_path(std::uint64_t key) const {
  return directory_ / "datasets" / (hash_hex(key) + ".bin");
}
std::filesystem::path ExperimentCache::metric_path(std::uint64_t key) const {
  return directory_ / "metrics" / (hash_hex(key) + ".txt");
}
std::filesystem::path ExperimentCache::checkpoint_path(std::uint64_t key) const {
  return directory_ / "checkpoints" / (hash_hex(key) + ".ckpt");
}

void ExperimentCache::quarantine(const std::filesystem::path& path,
                                 const char* kind, const char* reason) const {
  ++quarantined_;
  log_warn("cache: corrupt ", kind, " artifact ", path.string(), ": ", reason,
           " — quarantined to *.corrupt, treating as cache miss");
  quarantine_artifact(path);
}

std::optional<nn::TransformerLM> ExperimentCache::load_model(std::uint64_t key) const {
  const auto path = model_path(key);
  if (!std::filesystem::exists(path)) return std::nullopt;
  try {
    return nn::TransformerLM::load(path);
  } catch (const SerializeError& e) {
    quarantine(path, "model", e.what());
    return std::nullopt;
  }
}

void ExperimentCache::store_model(std::uint64_t key,
                                  const nn::TransformerLM& model) const {
  model.save(model_path(key));
}

std::optional<data::SftDataset> ExperimentCache::load_dataset(
    std::uint64_t key) const {
  const auto path = dataset_path(key);
  if (!std::filesystem::exists(path)) return std::nullopt;
  try {
    BinaryReader reader{path};
    reader.expect_magic(kDatasetMagic, kDatasetVersion);
    data::SftDataset dataset;
    dataset.name = reader.read_string();
    dataset.family = static_cast<data::TaskFamily>(reader.read_u32());
    const std::uint64_t n = reader.read_u64();
    dataset.examples.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      data::SftExample example;
      example.prompt = reader.read_vector<data::TokenId>();
      example.target = reader.read_vector<data::TokenId>();
      example.extract = static_cast<data::ExtractKind>(reader.read_u32());
      example.numeric_answer = reader.read_i64();
      example.answer_key = reader.read_vector<data::TokenId>();
      dataset.examples.push_back(std::move(example));
    }
    return dataset;
  } catch (const SerializeError& e) {
    quarantine(path, "dataset", e.what());
    return std::nullopt;
  }
}

void ExperimentCache::store_dataset(std::uint64_t key,
                                    const data::SftDataset& dataset) const {
  BinaryWriter writer{dataset_path(key)};
  writer.write_magic(kDatasetMagic, kDatasetVersion);
  writer.write_string(dataset.name);
  writer.write_u32(static_cast<std::uint32_t>(dataset.family));
  writer.write_u64(dataset.examples.size());
  for (const data::SftExample& example : dataset.examples) {
    writer.write_vector(example.prompt);
    writer.write_vector(example.target);
    writer.write_u32(static_cast<std::uint32_t>(example.extract));
    writer.write_i64(example.numeric_answer);
    writer.write_vector(example.answer_key);
  }
  writer.flush();
}

std::optional<double> ExperimentCache::load_metric(std::uint64_t key) const {
  const auto path = metric_path(key);
  if (!std::filesystem::exists(path)) return std::nullopt;
  std::ifstream in{path};
  double value = 0.0;
  std::string trailing;
  if (!(in >> value) || (in >> trailing)) {
    quarantine(path, "metric", "unparseable scalar");
    return std::nullopt;
  }
  return value;
}

void ExperimentCache::store_metric(std::uint64_t key, double value) const {
  std::ostringstream out;
  out.precision(17);
  out << value << '\n';
  atomic_write_text(metric_path(key), out.str());
}

}  // namespace sdd::core
