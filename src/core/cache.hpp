// On-disk experiment cache.
//
// Every expensive artifact (pre-trained base model, distilled dataset,
// fine-tuned checkpoint, evaluation score) is stored under a content-derived
// 64-bit key so that benches share work: the figure benches reuse the table
// benches' models, and re-runs are incremental. Delete the cache directory
// for a cold run.
//
// Durability contract: stores are atomic (tmp + fsync + rename through
// util/serialize) and loads treat a corrupt, truncated, or version-stale
// artifact as a cache miss — the file is logged, quarantined to
// `<name>.corrupt`, and the caller recomputes. A killed process or a torn
// write can therefore never poison the cache or crash a bench.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>

#include "data/sft.hpp"
#include "nn/transformer.hpp"

namespace sdd::core {

class ExperimentCache {
 public:
  // `quarantine_keep` bounds how many `*.corrupt` quarantine files survive
  // under the cache directory: opening the store keeps the newest N (by
  // last-write time) and deletes the rest, so repeated fault-injection runs
  // cannot grow the cache without bound. -1 (the default) reads
  // SDD_QUARANTINE_KEEP (default 8); 0 keeps none.
  explicit ExperimentCache(std::filesystem::path directory,
                           std::int64_t quarantine_keep = -1);

  const std::filesystem::path& directory() const { return directory_; }

  std::optional<nn::TransformerLM> load_model(std::uint64_t key) const;
  void store_model(std::uint64_t key, const nn::TransformerLM& model) const;

  std::optional<data::SftDataset> load_dataset(std::uint64_t key) const;
  void store_dataset(std::uint64_t key, const data::SftDataset& dataset) const;

  // Scalar results (eval accuracies etc.).
  std::optional<double> load_metric(std::uint64_t key) const;
  void store_metric(std::uint64_t key, double value) const;

  // Where a training loop keyed by `key` keeps its mid-run checkpoint (see
  // train::PretrainConfig::checkpoint_path).
  std::filesystem::path checkpoint_path(std::uint64_t key) const;

  // Number of artifacts quarantined by this cache instance (observability +
  // test hook).
  std::int64_t quarantined_count() const { return quarantined_; }

  std::filesystem::path model_path(std::uint64_t key) const;
  std::filesystem::path dataset_path(std::uint64_t key) const;
  std::filesystem::path metric_path(std::uint64_t key) const;

 private:
  void quarantine(const std::filesystem::path& path, const char* kind,
                  const char* reason) const;
  void prune_quarantine(std::int64_t keep) const;

  std::filesystem::path directory_;
  mutable std::int64_t quarantined_ = 0;
};

}  // namespace sdd::core
