// On-disk experiment cache.
//
// Every expensive artifact (pre-trained base model, distilled dataset,
// fine-tuned checkpoint, evaluation score) is stored under a content-derived
// 64-bit key so that benches share work: the figure benches reuse the table
// benches' models, and re-runs are incremental. Delete the cache directory
// for a cold run.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>

#include "data/sft.hpp"
#include "nn/transformer.hpp"

namespace sdd::core {

class ExperimentCache {
 public:
  explicit ExperimentCache(std::filesystem::path directory);

  const std::filesystem::path& directory() const { return directory_; }

  std::optional<nn::TransformerLM> load_model(std::uint64_t key) const;
  void store_model(std::uint64_t key, const nn::TransformerLM& model) const;

  std::optional<data::SftDataset> load_dataset(std::uint64_t key) const;
  void store_dataset(std::uint64_t key, const data::SftDataset& dataset) const;

  // Scalar results (eval accuracies etc.).
  std::optional<double> load_metric(std::uint64_t key) const;
  void store_metric(std::uint64_t key, double value) const;

 private:
  std::filesystem::path model_path(std::uint64_t key) const;
  std::filesystem::path dataset_path(std::uint64_t key) const;
  std::filesystem::path metric_path(std::uint64_t key) const;

  std::filesystem::path directory_;
};

}  // namespace sdd::core
