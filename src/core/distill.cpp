#include "core/distill.hpp"

#include "nn/decode.hpp"
#include "util/log.hpp"
#include "util/supervisor.hpp"

namespace sdd::core {

data::SftDataset self_distill_dataset(const nn::TransformerLM& seed_model,
                                      const data::SftDataset& dataset,
                                      const DistillConfig& config,
                                      DistillStats* stats) {
  const data::Vocab& vocab = data::Vocab::instance();
  data::SftDataset distilled;
  distilled.name = dataset.name + "+selfdistilled";
  distilled.family = dataset.family;
  distilled.examples.reserve(dataset.examples.size());

  DistillStats local;
  nn::GenerateOptions gen;
  gen.max_new_tokens = config.max_new_tokens;
  gen.temperature = config.temperature;
  gen.stop_token = vocab.eos();

  for (std::size_t i = 0; i < dataset.examples.size(); ++i) {
    supervisor::heartbeat();  // one teacher generation per example
    const data::SftExample& example = dataset.examples[i];
    ++local.total;

    // Teacher prompt: (c, x) — optionally also conditioned on the reference
    // response y, mirroring f_θ(y | c^t, x^t, y^t).
    std::vector<data::TokenId> prompt{example.prompt};
    if (config.condition_on_reference) {
      // Insert the reference response before the trailing <sep> so the
      // teacher rewrites it rather than answering blind.
      prompt.pop_back();  // drop <sep>
      for (data::TokenId token : example.target) {
        if (token != vocab.eos()) prompt.push_back(token);
      }
      prompt.push_back(vocab.sep());
    }

    gen.seed = config.seed + i;
    std::vector<data::TokenId> rewrite = nn::generate(seed_model, prompt, gen);

    data::SftExample out = example;  // same prompt, extraction key, metadata
    if (data::response_matches(vocab, example, rewrite)) {
      rewrite.push_back(vocab.eos());
      out.target = std::move(rewrite);
      ++local.accepted;
    } else {
      ++local.fallback;  // conditional selection: keep the original y
    }
    distilled.examples.push_back(std::move(out));
  }

  log_info("self-distill[", dataset.name, "]: ", local.accepted, "/", local.total,
           " teacher rewrites accepted (",
           static_cast<int>(local.acceptance_rate() * 100.0), "%)");
  if (stats != nullptr) *stats = local;
  return distilled;
}

}  // namespace sdd::core
