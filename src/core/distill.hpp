// Self-data distillation (paper §2.2).
//
// For each fine-tuning example (c, x, y), the *original unpruned* seed model
// generates a rewritten response ỹ ~ f_θ(y | c, x [, y]). The conditional
// selection rule keeps ỹ only when Extract(ỹ) = y (the rewrite preserves the
// reference answer) and falls back to the original y otherwise. The result
// is a distilled dataset aligned with the seed model's output distribution,
// which the pruned model is then fine-tuned on.
#pragma once

#include <cstdint>

#include "data/sft.hpp"
#include "nn/transformer.hpp"

namespace sdd::core {

struct DistillConfig {
  std::int64_t max_new_tokens = 48;
  float temperature = 0.0F;  // greedy by default (deterministic, cacheable)
  std::uint64_t seed = 99;
  // When true, the teacher prompt additionally conditions on the reference
  // response y (the paper's ỹ ~ f(y | c, x, y)); when false the teacher sees
  // only (c, x). Both satisfy the selection rule; the flag feeds the prompt-
  // conditioning ablation bench.
  bool condition_on_reference = false;

  std::uint64_t hash() const {
    std::uint64_t h = kFnvOffset;
    h = fnv1a_value(max_new_tokens, h);
    h = fnv1a_value(temperature, h);
    h = fnv1a_value(seed, h);
    h = fnv1a_value(condition_on_reference, h);
    return h;
  }
};

struct DistillStats {
  std::int64_t total = 0;
  std::int64_t accepted = 0;   // teacher rewrite kept
  std::int64_t fallback = 0;   // Extract mismatch -> original target kept
  double acceptance_rate() const {
    return total > 0 ? static_cast<double>(accepted) / static_cast<double>(total) : 0.0;
  }
};

// Build the distilled dataset. Prompts are preserved; targets are replaced by
// verified teacher generations (or kept as-is on verification failure).
data::SftDataset self_distill_dataset(const nn::TransformerLM& seed_model,
                                      const data::SftDataset& dataset,
                                      const DistillConfig& config,
                                      DistillStats* stats = nullptr);

}  // namespace sdd::core
