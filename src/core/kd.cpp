#include "core/kd.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "train/optim.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/supervisor.hpp"

namespace sdd::core {
namespace {

// Teacher probabilities at temperature tau over every position of the batch
// (constant w.r.t. the student's autograd tape).
std::vector<float> teacher_soft_targets(const nn::TransformerLM& teacher,
                                        const train::SftBatch& batch,
                                        float temperature) {
  NoGradGuard no_grad;
  const Tensor logits = teacher.forward(batch.inputs, batch.batch, batch.seq);
  std::vector<float> probs(logits.data().begin(), logits.data().end());
  const float inv_tau = 1.0F / temperature;
  for (float& v : probs) v *= inv_tau;
  const std::int64_t vocab = teacher.config().vocab_size;
  kernels::softmax_rows(probs.data(), batch.batch * batch.seq, vocab);
  return probs;
}

}  // namespace

train::TrainStats kd_train(nn::TransformerLM& student,
                           const nn::TransformerLM& teacher,
                           const data::SftDataset& dataset,
                           const train::SftTrainConfig& config, const KdConfig& kd) {
  if (dataset.examples.empty()) throw std::invalid_argument("kd_train: empty dataset");
  if (!(student.config().vocab_size == teacher.config().vocab_size)) {
    throw std::invalid_argument("kd_train: teacher/student vocab mismatch");
  }
  if (kd.alpha < 0.0F || kd.alpha > 1.0F) {
    throw std::invalid_argument("kd_train: alpha must be in [0, 1]");
  }

  train::AdamW optimizer{student.trainable_parameters(), config.optimizer};
  Rng rng{config.seed};
  train::TrainStats stats;

  const auto n = static_cast<std::int64_t>(dataset.examples.size());
  const std::int64_t steps_per_epoch = std::max<std::int64_t>(1, n / config.batch_size);
  const std::int64_t steps = std::min(config.max_steps, config.epochs * steps_per_epoch);
  const std::int64_t max_len = student.config().max_seq_len;
  const float tau = kd.temperature;

  for (std::int64_t step = 0; step < steps; ++step) {
    std::vector<const data::SftExample*> picked;
    picked.reserve(static_cast<std::size_t>(config.batch_size));
    for (std::int64_t b = 0; b < config.batch_size; ++b) {
      picked.push_back(&dataset.examples[rng.index(dataset.examples.size())]);
    }
    const train::SftBatch batch =
        train::pack_sft_batch(picked, data::Vocab::instance().pad(), max_len);
    const std::vector<float> soft_targets =
        teacher_soft_targets(teacher, batch, tau);

    const Tensor logits = student.forward(batch.inputs, batch.batch, batch.seq);
    // Soft term at temperature tau (the tau^2 factor keeps gradient scale
    // comparable to the hard term, as in Hinton et al. 2015).
    const Tensor scaled_logits = ops::scale(logits, 1.0F / tau);
    const Tensor soft_loss =
        ops::soft_cross_entropy(scaled_logits, soft_targets, batch.weights);
    const Tensor hard_loss =
        ops::cross_entropy(logits, batch.targets, batch.weights);
    Tensor loss = ops::add_scaled(ops::scale(soft_loss, kd.alpha * tau * tau),
                                  hard_loss, 1.0F - kd.alpha);

    const float loss_value = loss.item();
    optimizer.zero_grad();
    loss.backward();
    optimizer.clip_gradients(config.clip_norm);
    const float lr = train::cosine_lr(step, steps, config.warmup_steps,
                                      config.optimizer.lr,
                                      config.optimizer.lr * config.min_lr_fraction);
    optimizer.step(lr);

    stats.losses.push_back(loss_value);
    if (step == 0) stats.initial_loss = loss_value;
    if (config.log_every > 0 && step % config.log_every == 0) {
      log_info("kd[", dataset.name, "] step ", step, "/", steps, " loss=", loss_value);
    }
    fault::on_train_step();
    supervisor::heartbeat();
  }
  stats.final_loss = stats.losses.empty()
                         ? 0.0F
                         : std::accumulate(stats.losses.end() -
                                               static_cast<std::ptrdiff_t>(std::max<
                                                   std::size_t>(1, stats.losses.size() /
                                                                       10)),
                                           stats.losses.end(), 0.0F) /
                               static_cast<float>(
                                   std::max<std::size_t>(1, stats.losses.size() / 10));
  return stats;
}

}  // namespace sdd::core
