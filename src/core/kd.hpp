// Teacher logit distillation (KD) for pruned-model recovery.
//
// The paper leaves "combining self-data distillation with standard KD
// techniques" as future work (§5, Distillation). This module implements the
// standard recipe — the unpruned model provides temperature-softened token
// distributions over the response positions, and the pruned student
// minimizes  alpha * tau^2 * H(teacher_tau, student_tau)
//          + (1 - alpha) * NLL(hard targets)
// — so the ablation bench can measure KD, SDD, and SDD+KD side by side.
#pragma once

#include <cstdint>

#include "data/sft.hpp"
#include "nn/transformer.hpp"
#include "train/trainer.hpp"

namespace sdd::core {

struct KdConfig {
  float temperature = 2.0F;
  float alpha = 0.7F;  // weight of the soft (teacher) term

  std::uint64_t hash() const {
    std::uint64_t h = kFnvOffset;
    h = fnv1a_value(temperature, h);
    h = fnv1a_value(alpha, h);
    return h;
  }
};

// Fine-tune `student` on the dataset with teacher-logit distillation. The
// optimizer setup (LoRA vs full, steps, schedule, clipping) reuses the SFT
// configuration; the loss mixes soft and hard terms per `kd`.
train::TrainStats kd_train(nn::TransformerLM& student,
                           const nn::TransformerLM& teacher,
                           const data::SftDataset& dataset,
                           const train::SftTrainConfig& config, const KdConfig& kd);

}  // namespace sdd::core
