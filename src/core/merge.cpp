#include "core/merge.hpp"

#include <cmath>
#include <stdexcept>

namespace sdd::core {
namespace {

// Angle between a and b after normalization to the unit sphere.
double vector_angle(std::span<const float> a, std::span<const float> b) {
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    norm_a += static_cast<double>(a[i]) * a[i];
    norm_b += static_cast<double>(b[i]) * b[i];
  }
  const double denom = std::sqrt(norm_a) * std::sqrt(norm_b);
  if (denom == 0.0) return 0.0;
  const double cos_angle = std::min(1.0, std::max(-1.0, dot / denom));
  return std::acos(cos_angle);
}

}  // namespace

std::vector<float> lerp(std::span<const float> a, std::span<const float> b, float t) {
  if (a.size() != b.size()) throw std::invalid_argument("lerp: size mismatch");
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = (1.0F - t) * a[i] + t * b[i];
  return out;
}

std::vector<float> slerp(std::span<const float> a, std::span<const float> b, float t) {
  if (a.size() != b.size()) throw std::invalid_argument("slerp: size mismatch");
  const double angle = vector_angle(a, b);
  constexpr double kParallelEps = 1e-4;
  if (angle < kParallelEps || std::sin(angle) < kParallelEps) {
    return lerp(a, b, t);  // mergekit's degenerate-angle fallback
  }
  const double inv_sin = 1.0 / std::sin(angle);
  const auto w_a = static_cast<float>(std::sin((1.0 - t) * angle) * inv_sin);
  const auto w_b = static_cast<float>(std::sin(t * angle) * inv_sin);
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = w_a * a[i] + w_b * b[i];
  return out;
}

nn::TransformerLM merge_models(const nn::TransformerLM& a, const nn::TransformerLM& b,
                               float t, MergeMode mode) {
  if (!(a.config() == b.config())) {
    throw std::invalid_argument("merge_models: architecture mismatch: " +
                                a.config().to_string() + " vs " +
                                b.config().to_string());
  }
  if (t < 0.0F || t > 1.0F) {
    throw std::invalid_argument("merge_models: t must be in [0, 1]");
  }

  nn::TransformerLM merged = a.clone();
  const nn::ParamList params_a = a.parameters();
  const nn::ParamList params_b = b.parameters();
  const nn::ParamList params_out = merged.parameters();

  if (mode == MergeMode::kSlerpWholeModel) {
    const std::vector<float> flat_a = nn::flatten_params(params_a);
    const std::vector<float> flat_b = nn::flatten_params(params_b);
    nn::unflatten_params(params_out, slerp(flat_a, flat_b, t));
    return merged;
  }

  for (std::size_t i = 0; i < params_out.size(); ++i) {
    if (params_a[i].name != params_b[i].name) {
      throw std::logic_error("merge_models: parameter name mismatch at index " +
                             std::to_string(i));
    }
    const auto data_a = params_a[i].tensor.data();
    const auto data_b = params_b[i].tensor.data();
    const std::vector<float> mixed = mode == MergeMode::kLerp
                                         ? lerp(data_a, data_b, t)
                                         : slerp(data_a, data_b, t);
    Tensor target = params_out[i].tensor;
    target.copy_from(mixed);
  }
  return merged;
}

}  // namespace sdd::core
