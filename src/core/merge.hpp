// Model merging via Spherical Linear Interpolation (paper §4 "Improving
// Self-Data Distillation with Model Merging" and Appendix D).
//
// SLERP interpolates along the great circle between two parameter vectors:
//     theta_t = [sin((1-t)*Omega) * theta_0 + sin(t*Omega) * theta_1] / sin(Omega)
// with Omega the angle between the normalized vectors. Following mergekit
// (the tool the paper uses), interpolation is applied per tensor on the raw
// (unnormalized) parameters — which preserves parameter scale — and falls
// back to linear interpolation when the vectors are nearly (anti)parallel.
#pragma once

#include <span>
#include <vector>

#include "nn/transformer.hpp"

namespace sdd::core {

// Core SLERP on flat vectors; exposed for tests and the merge ablation.
std::vector<float> slerp(std::span<const float> a, std::span<const float> b, float t);
std::vector<float> lerp(std::span<const float> a, std::span<const float> b, float t);

enum class MergeMode { kSlerpPerTensor, kSlerpWholeModel, kLerp };

// Merge two models with identical architectures; t=0 returns a's weights,
// t=1 returns b's.
nn::TransformerLM merge_models(const nn::TransformerLM& a, const nn::TransformerLM& b,
                               float t, MergeMode mode = MergeMode::kSlerpPerTensor);

}  // namespace sdd::core
