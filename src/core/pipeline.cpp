#include "core/pipeline.hpp"

#include <stdexcept>

#include "data/kb_gen.hpp"

#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"

namespace sdd::core {

std::string method_name(FtMethod method) {
  switch (method) {
    case FtMethod::kNone:
      return "no_ft";
    case FtMethod::kSft:
      return "sft";
    case FtMethod::kSelfDataDistill:
      return "self_data_distill";
    case FtMethod::kSftReplay:
      return "sft_replay";
    case FtMethod::kKd:
      return "kd";
    case FtMethod::kSelfDataDistillKd:
      return "self_data_distill_kd";
  }
  return "unknown";
}

PipelineConfig PipelineConfig::standard() {
  PipelineConfig config;
  config.model.vocab_size = data::Vocab::instance().size();
  config.model.d_model = env_int("SDD_DMODEL", 64);
  config.model.n_heads = env_int("SDD_HEADS", 4);
  config.model.n_layers = env_int("SDD_LAYERS", 16);
  config.model.d_ff = env_int("SDD_DFF", 128);
  config.model.max_seq_len = env_int("SDD_MAX_SEQ", 160);

  config.corpus.n_documents = env_int("SDD_CORPUS_DOCS", 24000);

  config.pretrain.steps = env_int("SDD_PRETRAIN_STEPS", 4000);
  config.pretrain.batch_size = env_int("SDD_PRETRAIN_BATCH", 8);
  config.pretrain.seq_len = env_int("SDD_PRETRAIN_SEQ", 96);
  config.pretrain.optimizer.lr =
      static_cast<float>(env_double("SDD_PRETRAIN_LR", 3e-3));

  config.sft.epochs = env_int("SDD_SFT_EPOCHS", 1);
  config.sft.max_steps = env_int("SDD_SFT_MAX_STEPS", 120);
  config.sft.batch_size = env_int("SDD_SFT_BATCH", 8);
  config.sft.optimizer.lr = static_cast<float>(env_double("SDD_SFT_LR", 1e-3));

  config.lora.rank = env_int("SDD_LORA_RANK", 8);
  config.lora.alpha = static_cast<float>(env_double("SDD_LORA_ALPHA", 16.0));

  config.distill.max_new_tokens = env_int("SDD_DISTILL_MAX_TOKENS", 48);

  // Crash safety: how often (in steps) the training loops checkpoint; 0
  // disables. The checkpoint files live under <cache_dir>/checkpoints and are
  // removed when a run completes.
  config.pretrain.checkpoint_every = env_int("SDD_CKPT_EVERY", 500);
  config.sft.checkpoint_every = env_int("SDD_SFT_CKPT_EVERY", 25);

  // Numeric-divergence guard policy shared by the pretrain and SFT loops
  // (rollback to last snapshot on non-finite loss/exploding grad norm; see
  // docs/robustness.md). SDD_NUMERIC_GUARD=0 disables.
  const bool guard = env_int("SDD_NUMERIC_GUARD", 1) != 0;
  const auto grad_limit =
      static_cast<float>(env_double("SDD_GRAD_NORM_LIMIT", 1e8));
  const std::int64_t max_rollbacks = env_int("SDD_MAX_ROLLBACKS", 2);
  config.pretrain.numeric_guard = guard;
  config.pretrain.grad_norm_limit = grad_limit;
  config.pretrain.max_rollbacks = max_rollbacks;
  config.sft.numeric_guard = guard;
  config.sft.grad_norm_limit = grad_limit;
  config.sft.max_rollbacks = max_rollbacks;

  // Stage supervision (retry/backoff, deadline, hang watchdog) from
  // SDD_RETRY_MAX / SDD_BACKOFF_MS / SDD_STAGE_DEADLINE_SEC /
  // SDD_STAGE_HANG_SEC.
  config.supervise = supervisor::SupervisorConfig::from_env();

  config.cache_dir = env_string("SDD_CACHE_DIR", "sdd_cache");
  return config;
}

std::uint64_t PipelineConfig::base_key() const {
  std::uint64_t h = model.hash();
  h = hash_combine(h, corpus.hash());
  h = hash_combine(h, fnv1a_value(pretrain.steps));
  h = hash_combine(h, fnv1a_value(pretrain.batch_size));
  h = hash_combine(h, fnv1a_value(pretrain.seq_len));
  h = hash_combine(h, fnv1a_value(pretrain.optimizer.lr));
  h = hash_combine(h, fnv1a_value(pretrain.seed));
  h = hash_combine(h, fnv1a_value(world_seed));
  h = hash_combine(h, fnv1a_value(base_seed));
  h = hash_combine(h, fnv1a_value(version));
  return h;
}

Pipeline::Pipeline(PipelineConfig config)
    : config_{std::move(config)},
      world_{config_.world_seed},
      cache_{config_.cache_dir} {
  if (config_.model.vocab_size == 0) {
    config_.model.vocab_size = data::Vocab::instance().size();
  }
  // Forces SDD_FAULT parsing now: a malformed spec must abort before any
  // stage runs, not minutes in at the first fault hook.
  fault::enabled();
}

const nn::TransformerLM& Pipeline::base_model() {
  if (base_ != nullptr) return *base_;
  const std::uint64_t key = config_.base_key();
  // The cache probe lives inside the supervised body so a retried attempt
  // picks up whatever an interrupted predecessor managed to persist (e.g.
  // a mid-run checkpoint after a watchdog abort).
  base_ = supervisor::supervised(
      "pretrain", config_.supervise,
      [&]() -> std::unique_ptr<nn::TransformerLM> {
        if (auto cached = cache_.load_model(key)) {
          log_info("pipeline: loaded cached base model (key=", hash_hex(key), ")");
          return std::make_unique<nn::TransformerLM>(std::move(*cached));
        }
        log_info("pipeline: pre-training base model ", config_.model.to_string());
        const std::vector<data::TokenId> stream =
            data::build_pretraining_stream(world_, config_.corpus);
        auto model =
            std::make_unique<nn::TransformerLM>(config_.model, config_.base_seed);
        train::PretrainConfig pretrain_config = config_.pretrain;
        pretrain_config.checkpoint_path = cache_.checkpoint_path(key);
        const train::TrainStats stats =
            train::pretrain(*model, stream, pretrain_config);
        log_info("pipeline: pre-training done, loss ", stats.initial_loss, " -> ",
                 stats.final_loss);
        store_model_best_effort(key, *model, "base model");
        return model;
      });
  return *base_;
}

void Pipeline::store_model_best_effort(std::uint64_t key,
                                       const nn::TransformerLM& model,
                                       const char* what) {
  try {
    cache_.store_model(key, model);
  } catch (const SerializeError& e) {
    log_warn("pipeline: failed to cache ", what, " (key=", hash_hex(key),
             "): ", e.what(), " — continuing uncached");
  }
}

const std::vector<std::vector<data::TokenId>>& Pipeline::calibration() {
  if (calibration_.empty()) {
    calibration_ = data::build_calibration_set(world_, config_.calib_samples,
                                               config_.calib_seq, config_.calib_seed);
  }
  return calibration_;
}

const PruneResult& Pipeline::prune(std::int64_t block_size) {
  const auto it = prune_results_.find(block_size);
  if (it != prune_results_.end()) return it->second;
  PruneResult result = supervisor::supervised(
      "prune", config_.supervise, [&]() -> PruneResult {
        return prune_model(base_model(), calibration(), block_size, config_.metric);
      });
  log_info("pipeline: prune n=", block_size, " -> layers [", result.start, ", ",
           result.start + block_size, "), distance=", result.distance);
  return prune_results_.emplace(block_size, std::move(result)).first->second;
}

data::SftDataset Pipeline::raw_dataset(const std::string& name, std::int64_t size) {
  return data::make_dataset_by_name(world_, name, size,
                                    config_.dataset_seed + fnv1a(name));
}

std::uint64_t Pipeline::distilled_key(const std::string& name,
                                      std::int64_t size) const {
  std::uint64_t key = config_.base_key();
  key = hash_combine(key, fnv1a(name));
  key = hash_combine(key, fnv1a_value(size));
  key = hash_combine(key, fnv1a_value(config_.dataset_seed));
  key = hash_combine(key, config_.distill.hash());
  key = hash_combine(key, fnv1a("distilled-dataset"));
  return key;
}

data::SftDataset Pipeline::distilled_dataset(const std::string& name,
                                             std::int64_t size, DistillStats* stats) {
  const std::uint64_t key = distilled_key(name, size);
  return supervisor::supervised(
      "distill", config_.supervise, [&]() -> data::SftDataset {
        if (auto cached = cache_.load_dataset(key)) {
          if (stats != nullptr) *stats = DistillStats{};  // stats only on fresh runs
          return std::move(*cached);
        }
        const data::SftDataset raw = raw_dataset(name, size);
        const data::SftDataset distilled =
            self_distill_dataset(base_model(), raw, config_.distill, stats);
        try {
          cache_.store_dataset(key, distilled);
        } catch (const SerializeError& e) {
          log_warn("pipeline: failed to cache distilled dataset ", distilled.name,
                   ": ", e.what(), " — continuing uncached");
        }
        return distilled;
      });
}

data::SftDataset Pipeline::replay_dataset(const std::string& name,
                                          std::int64_t size) {
  data::SftDataset mixture = raw_dataset(name, size);
  mixture.name = name + "+replay";
  const auto n_replay = static_cast<std::int64_t>(
      config_.replay_ratio * static_cast<double>(size));
  Rng rng{config_.dataset_seed ^ 0x5EB1A7ULL};
  const data::Vocab& vocab = data::Vocab::instance();
  for (std::int64_t i = 0; i < n_replay; ++i) {
    const data::QaPair qa = data::render_kb_qa(world_, rng);
    data::SftExample example;
    example.prompt = vocab.encode(qa.question);
    example.prompt.insert(example.prompt.begin(), vocab.bos());
    example.prompt.push_back(vocab.sep());
    example.target = vocab.encode(qa.answer);
    example.target.push_back(vocab.eos());
    example.extract = data::ExtractKind::kOpenEnded;
    mixture.examples.push_back(std::move(example));
  }
  return mixture;
}

std::uint64_t Pipeline::recovered_key(std::int64_t block_size, FtMethod method,
                                      const std::string& dataset_name,
                                      std::int64_t size) const {
  std::uint64_t key = config_.base_key();
  key = hash_combine(key, fnv1a_value(block_size));
  key = hash_combine(key, fnv1a_value(static_cast<int>(config_.metric)));
  key = hash_combine(key, fnv1a(method_name(method)));
  if (method != FtMethod::kNone) {
    key = hash_combine(key, fnv1a(dataset_name));
    key = hash_combine(key, fnv1a_value(size));
    key = hash_combine(key, fnv1a_value(config_.dataset_seed));
    key = hash_combine(key, config_.sft.hash());
    key = hash_combine(key, config_.lora.hash());
    if (method == FtMethod::kSelfDataDistill ||
        method == FtMethod::kSelfDataDistillKd) {
      key = hash_combine(key, config_.distill.hash());
    }
    if (method == FtMethod::kKd || method == FtMethod::kSelfDataDistillKd) {
      key = hash_combine(key, config_.kd.hash());
    }
    if (method == FtMethod::kSftReplay) {
      key = hash_combine(key, fnv1a_value(config_.replay_ratio));
    }
  }
  return key;
}

nn::TransformerLM Pipeline::recovered(std::int64_t block_size, FtMethod method,
                                      const std::string& dataset_name,
                                      std::int64_t size) {
  if (method == FtMethod::kNone) return prune(block_size).model.clone();

  const std::uint64_t key = recovered_key(block_size, method, dataset_name, size);
  // Dataset construction (which may itself run the supervised "distill"
  // stage) stays outside so the recover stage's deadline covers fine-tuning
  // only, and nested stages keep distinct names in logs.
  if (auto cached = cache_.load_model(key)) return std::move(*cached);

  const auto make_dataset = [&]() -> data::SftDataset {
    switch (method) {
      case FtMethod::kSelfDataDistill:
      case FtMethod::kSelfDataDistillKd:
        return distilled_dataset(dataset_name, size);
      case FtMethod::kSftReplay:
        return replay_dataset(dataset_name, size);
      default:
        return raw_dataset(dataset_name, size);
    }
  };
  const data::SftDataset dataset = make_dataset();

  return supervisor::supervised(
      "recover:" + method_name(method), config_.supervise,
      [&]() -> nn::TransformerLM {
        if (auto cached = cache_.load_model(key)) return std::move(*cached);

        nn::TransformerLM model = prune(block_size).model.clone();
        model.attach_lora(config_.lora, /*seed=*/key);
        const bool use_kd =
            method == FtMethod::kKd || method == FtMethod::kSelfDataDistillKd;
        train::SftTrainConfig sft_config = config_.sft;
        sft_config.checkpoint_path = cache_.checkpoint_path(key);
        const train::TrainStats stats =
            use_kd ? kd_train(model, base_model(), dataset, sft_config, config_.kd)
                   : train::sft_train(model, dataset, sft_config);
        model.merge_lora();
        log_info("pipeline: ", method_name(method), " on ", dataset.name,
                 " n=", block_size, " loss ", stats.initial_loss, " -> ",
                 stats.final_loss);
        store_model_best_effort(key, model, "recovered model");
        return model;
      });
}

nn::TransformerLM Pipeline::merged(std::int64_t block_size, const std::string& dataset_a,
                                   std::int64_t size_a, const std::string& dataset_b,
                                   std::int64_t size_b, float t) {
  const nn::TransformerLM model_a =
      recovered(block_size, FtMethod::kSelfDataDistill, dataset_a, size_a);
  const nn::TransformerLM model_b =
      recovered(block_size, FtMethod::kSelfDataDistill, dataset_b, size_b);
  return merge_models(model_a, model_b, t, MergeMode::kSlerpPerTensor);
}

}  // namespace sdd::core
