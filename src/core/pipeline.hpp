// End-to-end experiment pipeline: pretrain (once, cached) -> prune ->
// {No FT | SFT | Self-Data Distillation [+ model merging]} -> hand the model
// to the evaluation harness.
//
// This is the orchestration layer behind every table and figure bench. All
// heavyweight stages are cached on disk through ExperimentCache; in-process
// memoization covers the cheap ones (calibration set, prune curves).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/cache.hpp"
#include "core/distill.hpp"
#include "core/kd.hpp"
#include "core/merge.hpp"
#include "core/prune.hpp"
#include "data/corpus.hpp"
#include "data/world.hpp"
#include "train/trainer.hpp"
#include "util/supervisor.hpp"

namespace sdd::core {

// Recovery strategies for a pruned model:
//   kNone              - one-shot pruning, no fine-tuning
//   kSft               - LoRA SFT on the raw (human-style) dataset
//   kSelfDataDistill   - LoRA SFT on the self-distilled dataset (the paper)
//   kSftReplay         - SFT on raw data mixed with replayed pre-training-
//                        style examples (the classic forgetting baseline the
//                        paper's related work discusses)
//   kKd                - teacher-logit distillation on the raw dataset
//   kSelfDataDistillKd - SDD data + teacher-logit distillation (the paper's
//                        "combine with KD" future-work recipe)
enum class FtMethod {
  kNone,
  kSft,
  kSelfDataDistill,
  kSftReplay,
  kKd,
  kSelfDataDistillKd,
};
std::string method_name(FtMethod method);

struct PipelineConfig {
  nn::ModelConfig model;           // vocab_size is filled from the Vocab
  data::CorpusConfig corpus;
  train::PretrainConfig pretrain;
  nn::LoraConfig lora;
  train::SftTrainConfig sft;
  DistillConfig distill;
  KdConfig kd;
  double replay_ratio = 0.5;  // replayed examples per raw example (kSftReplay)
  ImportanceMetric metric = ImportanceMetric::kAngularCosine;
  std::uint64_t world_seed = 42;
  std::uint64_t dataset_seed = 1001;
  std::int64_t calib_samples = 8;
  std::int64_t calib_seq = 64;
  std::uint64_t calib_seed = 4242;
  std::uint64_t base_seed = 7;     // weight init seed for pre-training
  std::filesystem::path cache_dir = "sdd_cache";
  std::uint64_t version = 1;       // bump to invalidate all cached artifacts

  // Stage supervision policy (retry/backoff + watchdog; util/supervisor).
  // standard() fills it from SDD_RETRY_MAX / SDD_BACKOFF_MS /
  // SDD_STAGE_DEADLINE_SEC / SDD_STAGE_HANG_SEC. Never part of cache keys:
  // supervision cannot change what a stage computes, only whether it
  // survives faults.
  supervisor::SupervisorConfig supervise;

  // Default scaled configuration used by all benches (see DESIGN.md §5).
  // Reads SDD_* environment overrides (SDD_LAYERS, SDD_DMODEL,
  // SDD_PRETRAIN_STEPS, SDD_CACHE_DIR, ...) so the suite can be scaled up or
  // down without recompiling.
  static PipelineConfig standard();

  std::uint64_t base_key() const;  // identifies the pre-trained base model
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config);

  const PipelineConfig& config() const { return config_; }
  const data::World& world() const { return world_; }
  ExperimentCache& cache() { return cache_; }

  // The pre-trained (unpruned) base model; trains on first use, then loads
  // from the cache.
  const nn::TransformerLM& base_model();

  // Calibration set (the RedPajama stand-in) for the pruning metrics.
  const std::vector<std::vector<data::TokenId>>& calibration();

  // Algorithm 1 for the configured metric; memoized per block size.
  const PruneResult& prune(std::int64_t block_size);

  // Raw fine-tuning dataset by name ("gsm8k", "openmathinstruct", "dolly",
  // "alpaca") at a given sample count.
  data::SftDataset raw_dataset(const std::string& name, std::int64_t size);

  // Self-distilled version of the raw dataset (teacher = unpruned base
  // model); disk cached.
  data::SftDataset distilled_dataset(const std::string& name, std::int64_t size,
                                     DistillStats* stats = nullptr);

  // Cache key of a distilled dataset. The fleet layer uses it to validate
  // that a worker actually published the artifact (a cache load through the
  // checksum) without recomputing anything in the orchestrator.
  std::uint64_t distilled_key(const std::string& name, std::int64_t size) const;

  // Raw dataset mixed with `replay_ratio * size` house-style pre-training
  // examples (data-replay forgetting baseline).
  data::SftDataset replay_dataset(const std::string& name, std::int64_t size);

  // Pruned model recovered with the given method; disk cached. For kNone the
  // pruned model is returned as-is.
  nn::TransformerLM recovered(std::int64_t block_size, FtMethod method,
                              const std::string& dataset_name, std::int64_t size);

  // Self-data distillation + model merging: SLERP(t) of two SDD-recovered
  // models fine-tuned on different datasets (paper merges OpenMathInstruct
  // and Alpaca at block level).
  nn::TransformerLM merged(std::int64_t block_size, const std::string& dataset_a,
                           std::int64_t size_a, const std::string& dataset_b,
                           std::int64_t size_b, float t = 0.5F);

  // Cache key for a recovered model (used by benches to key eval results).
  std::uint64_t recovered_key(std::int64_t block_size, FtMethod method,
                              const std::string& dataset_name,
                              std::int64_t size) const;

 private:
  // Caching an artifact is an optimization, never a correctness requirement:
  // a failed store (full disk, injected fault) is logged and the in-memory
  // result is used as-is.
  void store_model_best_effort(std::uint64_t key, const nn::TransformerLM& model,
                               const char* what);

  PipelineConfig config_;
  data::World world_;
  ExperimentCache cache_;
  std::unique_ptr<nn::TransformerLM> base_;
  std::vector<std::vector<data::TokenId>> calibration_;
  std::map<std::int64_t, PruneResult> prune_results_;
};

}  // namespace sdd::core
