#include "core/prune.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sdd::core {
namespace {

double cosine_similarity(const float* a, const float* b, std::int64_t n) {
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    norm_a += static_cast<double>(a[i]) * a[i];
    norm_b += static_cast<double>(b[i]) * b[i];
  }
  const double denom = std::sqrt(norm_a) * std::sqrt(norm_b);
  if (denom == 0.0) return 0.0;
  return std::clamp(dot / denom, -1.0, 1.0);
}

// Metric between two residual-stream snapshots (flat [batch*seq, C]).
double boundary_distance(const std::vector<float>& lower,
                         const std::vector<float>& upper, std::int64_t seq,
                         std::int64_t channels, ImportanceMetric metric) {
  const std::int64_t positions = static_cast<std::int64_t>(lower.size()) / channels;
  switch (metric) {
    case ImportanceMetric::kAngularCosine: {
      // Final token of each sequence only (Eq. 1).
      double total = 0.0;
      std::int64_t count = 0;
      for (std::int64_t p = seq - 1; p < positions; p += seq) {
        const double cos_sim = cosine_similarity(lower.data() + p * channels,
                                                 upper.data() + p * channels, channels);
        total += std::acos(cos_sim) / std::numbers::pi;
        ++count;
      }
      return total / static_cast<double>(count);
    }
    case ImportanceMetric::kBlockInfluence: {
      double total = 0.0;
      for (std::int64_t p = 0; p < positions; ++p) {
        total += 1.0 - cosine_similarity(lower.data() + p * channels,
                                         upper.data() + p * channels, channels);
      }
      return total / static_cast<double>(positions);
    }
    case ImportanceMetric::kRelativeMagnitude: {
      double total = 0.0;
      for (std::int64_t p = 0; p < positions; ++p) {
        double diff_sq = 0.0, upper_sq = 0.0;
        const float* lo = lower.data() + p * channels;
        const float* up = upper.data() + p * channels;
        for (std::int64_t c = 0; c < channels; ++c) {
          const double d = static_cast<double>(up[c]) - lo[c];
          diff_sq += d * d;
          upper_sq += static_cast<double>(up[c]) * up[c];
        }
        total += upper_sq > 0.0 ? std::sqrt(diff_sq / upper_sq) : 0.0;
      }
      return total / static_cast<double>(positions);
    }
  }
  throw std::logic_error("boundary_distance: unknown metric");
}

}  // namespace

std::string metric_name(ImportanceMetric metric) {
  switch (metric) {
    case ImportanceMetric::kAngularCosine:
      return "angular_cosine";
    case ImportanceMetric::kBlockInfluence:
      return "block_influence";
    case ImportanceMetric::kRelativeMagnitude:
      return "relative_magnitude";
  }
  return "unknown";
}

BlockDistanceCurve compute_block_distances(
    const nn::TransformerLM& model,
    const std::vector<std::vector<data::TokenId>>& calibration,
    std::int64_t block_size, ImportanceMetric metric) {
  const std::int64_t n_layers = model.n_layers();
  if (block_size <= 0 || block_size >= n_layers) {
    throw std::invalid_argument("compute_block_distances: bad block size");
  }
  if (calibration.empty()) {
    throw std::invalid_argument("compute_block_distances: empty calibration set");
  }
  const std::int64_t seq = static_cast<std::int64_t>(calibration.front().size());
  const std::int64_t channels = model.config().d_model;

  BlockDistanceCurve curve;
  curve.block_size = block_size;
  curve.metric = metric;
  // Accumulate per-start distances across calibration sequences. Candidate
  // starts l run over block boundaries [0, L-n]; states[l] is the input of
  // block l, states[l+n] the input of block l+n (Algorithm 1 lines 2-5).
  const std::int64_t n_candidates = n_layers - block_size + 1;
  std::vector<double> sums(static_cast<std::size_t>(n_candidates), 0.0);

  for (const std::vector<data::TokenId>& sample : calibration) {
    if (static_cast<std::int64_t>(sample.size()) != seq) {
      throw std::invalid_argument("compute_block_distances: ragged calibration set");
    }
    const auto states = model.hidden_states(sample, /*batch=*/1, seq);
    for (std::int64_t start = 0; start < n_candidates; ++start) {
      sums[static_cast<std::size_t>(start)] += boundary_distance(
          states[static_cast<std::size_t>(start)],
          states[static_cast<std::size_t>(start + block_size)], seq, channels, metric);
    }
  }
  curve.distances.resize(sums.size());
  for (std::size_t i = 0; i < sums.size(); ++i) {
    curve.distances[i] = sums[i] / static_cast<double>(calibration.size());
  }

  const auto best = std::min_element(curve.distances.begin(), curve.distances.end());
  curve.best_start = best - curve.distances.begin();
  curve.best_distance = *best;
  return curve;
}

std::vector<double> layer_importance(
    const nn::TransformerLM& model,
    const std::vector<std::vector<data::TokenId>>& calibration,
    ImportanceMetric metric) {
  const BlockDistanceCurve curve =
      compute_block_distances(model, calibration, /*block_size=*/1, metric);
  // distances has L candidates for block size 1 (starts 0..L-1); each is the
  // importance of the single layer at that start.
  std::vector<double> importance{curve.distances};
  importance.resize(static_cast<std::size_t>(model.n_layers()));
  return importance;
}

PruneResult prune_model(const nn::TransformerLM& model,
                        const std::vector<std::vector<data::TokenId>>& calibration,
                        std::int64_t block_size, ImportanceMetric metric) {
  PruneResult result;
  result.curve = compute_block_distances(model, calibration, block_size, metric);
  result.start = result.curve.best_start;
  result.block_size = block_size;
  result.distance = result.curve.best_distance;
  result.model = model.pruned(result.start, block_size);
  return result;
}

}  // namespace sdd::core
