// Structured depth pruning (paper §2.1, Algorithm 1).
//
// Three layer-importance metrics are implemented:
//   kAngularCosine    - Eq. 1: angular distance between the residual stream at
//                       block boundary l and l+n, measured at the final token
//                       position (Gromov et al., 2024). Used by default.
//   kBlockInfluence   - 1 - E_{X,i} cos(x_i^(l), x_i^(l+n)); the BI score of
//                       Men et al. (2024), averaged over all token positions.
//   kRelativeMagnitude- ||h^(l+n) - h^(l)|| / ||h^(l+n)|| (Samragh et al.,
//                       2023), averaged over all token positions.
// All metrics are computed on a representative calibration set (the repo's
// RedPajama stand-in; see data::build_calibration_set).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/vocab.hpp"
#include "nn/transformer.hpp"

namespace sdd::core {

enum class ImportanceMetric { kAngularCosine, kBlockInfluence, kRelativeMagnitude };

std::string metric_name(ImportanceMetric metric);

// Distance curve for a fixed block size n: distances[l] is the metric value
// for removing blocks [l, l+n), l in [0, L-n]. Lower = more redundant.
struct BlockDistanceCurve {
  std::int64_t block_size = 0;
  ImportanceMetric metric = ImportanceMetric::kAngularCosine;
  std::vector<double> distances;
  std::int64_t best_start = 0;  // argmin (Algorithm 1 line 8)
  double best_distance = 0.0;
};

BlockDistanceCurve compute_block_distances(
    const nn::TransformerLM& model,
    const std::vector<std::vector<data::TokenId>>& calibration, std::int64_t block_size,
    ImportanceMetric metric);

// Per-layer importance (block size 1) — the curves in Figure 2 left/center.
std::vector<double> layer_importance(
    const nn::TransformerLM& model,
    const std::vector<std::vector<data::TokenId>>& calibration,
    ImportanceMetric metric);

// Algorithm 1 end to end: find the optimal block and return the pruned model.
struct PruneResult {
  std::int64_t start = 0;
  std::int64_t block_size = 0;
  double distance = 0.0;
  BlockDistanceCurve curve;
  nn::TransformerLM model;
};

PruneResult prune_model(const nn::TransformerLM& model,
                        const std::vector<std::vector<data::TokenId>>& calibration,
                        std::int64_t block_size,
                        ImportanceMetric metric = ImportanceMetric::kAngularCosine);

}  // namespace sdd::core
