#include "core/quant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sdd::core {

void quantize_dequantize(std::span<float> values, std::int64_t row_size, int bits,
                         QuantStats* stats) {
  if (bits < 2 || bits > 8) {
    throw std::invalid_argument("quantize_dequantize: bits must be in [2, 8]");
  }
  if (row_size <= 0 || values.size() % static_cast<std::size_t>(row_size) != 0) {
    throw std::invalid_argument("quantize_dequantize: bad row size");
  }
  const auto q_max = static_cast<float>((1 << (bits - 1)) - 1);  // e.g. 127 for 8b

  for (std::size_t begin = 0; begin < values.size();
       begin += static_cast<std::size_t>(row_size)) {
    float max_abs = 0.0F;
    for (std::int64_t i = 0; i < row_size; ++i) {
      max_abs = std::max(max_abs, std::fabs(values[begin + static_cast<std::size_t>(i)]));
    }
    const float scale = max_abs > 0.0F ? max_abs / q_max : 1.0F;
    const float inv_scale = 1.0F / scale;
    for (std::int64_t i = 0; i < row_size; ++i) {
      float& v = values[begin + static_cast<std::size_t>(i)];
      const float quantized =
          std::clamp(std::round(v * inv_scale), -q_max - 1.0F, q_max);
      const float restored = quantized * scale;
      if (stats != nullptr) {
        const double err = std::fabs(static_cast<double>(restored) - v);
        stats->max_abs_error = std::max(stats->max_abs_error, err);
        stats->mean_abs_error += err;
        ++stats->values_quantized;
      }
      v = restored;
    }
  }
}

nn::TransformerLM quantize_model(const nn::TransformerLM& model,
                                 const QuantConfig& config, QuantStats* stats) {
  nn::TransformerLM quantized = model.clone();
  QuantStats local;

  for (const nn::NamedParam& param : quantized.parameters()) {
    const Shape& shape = param.tensor.shape();
    if (shape.size() != 2) continue;  // norm gains stay fp32
    if (!config.quantize_embedding && param.name == "tok_embed.weight") continue;
    Tensor tensor = param.tensor;
    const std::int64_t row_size = config.per_row ? shape[1] : tensor.numel();
    quantize_dequantize(tensor.data(), row_size, config.bits, &local);
    ++local.tensors_quantized;
  }
  if (local.values_quantized > 0) {
    local.mean_abs_error /= static_cast<double>(local.values_quantized);
  }
  if (stats != nullptr) *stats = local;
  return quantized;
}

}  // namespace sdd::core
