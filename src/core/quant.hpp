// Post-training weight quantization (the paper's conclusion proposes
// combining self-data distillation with quantization).
//
// Implements symmetric per-row integer quantization of the 2-D projection
// weights (attention + MLP + embedding) in the standard simulated-
// quantization form: weights are rounded to the b-bit grid and dequantized
// in place, so the resulting model measures exactly the quality a real
// integer kernel would see while keeping the fp32 execution path. Norm gains
// are left in fp32 (as all practical schemes do).
#pragma once

#include <cstdint>

#include "nn/transformer.hpp"

namespace sdd::core {

struct QuantConfig {
  int bits = 8;             // 2..8 supported
  bool per_row = true;      // per-output-channel scales (vs per-tensor)
  bool quantize_embedding = true;

  std::uint64_t hash() const {
    std::uint64_t h = kFnvOffset;
    h = fnv1a_value(bits, h);
    h = fnv1a_value(per_row, h);
    h = fnv1a_value(quantize_embedding, h);
    return h;
  }
};

struct QuantStats {
  std::int64_t tensors_quantized = 0;
  std::int64_t values_quantized = 0;
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
};

// Quantize-dequantize all projection weights of a copy of `model`.
nn::TransformerLM quantize_model(const nn::TransformerLM& model,
                                 const QuantConfig& config,
                                 QuantStats* stats = nullptr);

// Round-trip a single flat buffer (exposed for tests): returns the
// dequantized values for a symmetric b-bit grid with one scale per
// `row_size` chunk (row_size == n for per-tensor).
void quantize_dequantize(std::span<float> values, std::int64_t row_size, int bits,
                         QuantStats* stats);

}  // namespace sdd::core
