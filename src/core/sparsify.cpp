#include "core/sparsify.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace sdd::core {

nn::TransformerLM sparsify_model(const nn::TransformerLM& model, double sparsity,
                                 SparsifyStats* stats) {
  if (sparsity < 0.0 || sparsity >= 1.0) {
    throw std::invalid_argument("sparsify_model: sparsity must be in [0, 1)");
  }
  nn::TransformerLM sparse = model.clone();
  SparsifyStats local;
  std::int64_t considered = 0;

  for (const nn::NamedParam& param : sparse.parameters()) {
    if (param.tensor.shape().size() != 2) continue;
    Tensor tensor = param.tensor;
    auto data = tensor.data();
    considered += static_cast<std::int64_t>(data.size());
    const auto k = static_cast<std::size_t>(
        sparsity * static_cast<double>(data.size()));
    if (k == 0) {
      ++local.tensors_sparsified;
      continue;
    }
    // Per-tensor magnitude threshold via nth_element on |w|.
    std::vector<float> magnitudes(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) magnitudes[i] = std::fabs(data[i]);
    std::nth_element(magnitudes.begin(),
                     magnitudes.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     magnitudes.end());
    const float threshold = magnitudes[k - 1];
    std::size_t zeroed = 0;
    for (std::size_t i = 0; i < data.size() && zeroed < k; ++i) {
      if (std::fabs(data[i]) <= threshold) {
        data[i] = 0.0F;
        ++zeroed;
      }
    }
    local.zeros_written += static_cast<std::int64_t>(zeroed);
    ++local.tensors_sparsified;
  }

  local.achieved_sparsity =
      considered > 0
          ? static_cast<double>(local.zeros_written) / static_cast<double>(considered)
          : 0.0;
  if (stats != nullptr) *stats = local;
  return sparse;
}

double measured_sparsity(const nn::TransformerLM& model) {
  std::int64_t zeros = 0, total = 0;
  for (const nn::NamedParam& param : model.parameters()) {
    if (param.tensor.shape().size() != 2) continue;
    for (float v : param.tensor.data()) {
      zeros += v == 0.0F ? 1 : 0;
      ++total;
    }
  }
  return total > 0 ? static_cast<double>(zeros) / static_cast<double>(total) : 0.0;
}

}  // namespace sdd::core
