// Unstructured magnitude sparsification (the paper's conclusion proposes
// combining self-data distillation with sparsity; its related work discusses
// unstructured pruning on sparsity-exploiting hardware like the CS-3).
//
// Zeroes the lowest-magnitude fraction of each 2-D projection weight
// (per-tensor thresholding, the standard one-shot magnitude baseline).
// The zeros are "soft" (fp32 execution); a helper reports achieved sparsity
// so experiments can verify masks survive LoRA-based recovery (the frozen
// base keeps its zeros until adapters are merged).
#pragma once

#include <cstdint>

#include "nn/transformer.hpp"

namespace sdd::core {

struct SparsifyStats {
  std::int64_t tensors_sparsified = 0;
  std::int64_t zeros_written = 0;
  double achieved_sparsity = 0.0;  // zeros / considered values
};

// Zero the `sparsity` fraction of lowest-|w| entries of every 2-D weight.
nn::TransformerLM sparsify_model(const nn::TransformerLM& model, double sparsity,
                                 SparsifyStats* stats = nullptr);

// Fraction of exactly-zero values among the model's 2-D weights.
double measured_sparsity(const nn::TransformerLM& model);

}  // namespace sdd::core
