#include "core/width_prune.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sdd::core {
namespace {

// L2 norm of row r of a [rows, cols] matrix.
double row_norm(std::span<const float> data, std::int64_t cols, std::int64_t row) {
  double sum = 0.0;
  for (std::int64_t c = 0; c < cols; ++c) {
    const float v = data[static_cast<std::size_t>(row * cols + c)];
    sum += static_cast<double>(v) * v;
  }
  return std::sqrt(sum);
}

// L2 norm of column c of a [rows, cols] matrix.
double col_norm(std::span<const float> data, std::int64_t rows, std::int64_t cols,
                std::int64_t col) {
  double sum = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float v = data[static_cast<std::size_t>(r * cols + col)];
    sum += static_cast<double>(v) * v;
  }
  return std::sqrt(sum);
}

// Build a Linear from selected rows (keep[i] gives source row of new row i).
Tensor select_rows(const Tensor& weight, const std::vector<std::int64_t>& keep) {
  const std::int64_t cols = weight.dim(1);
  Tensor out = Tensor::zeros({static_cast<std::int64_t>(keep.size()), cols},
                             /*requires_grad=*/true);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const float* src = weight.data().data() + keep[i] * cols;
    std::copy(src, src + cols,
              out.data().data() + static_cast<std::int64_t>(i) * cols);
  }
  return out;
}

Tensor select_cols(const Tensor& weight, const std::vector<std::int64_t>& keep) {
  const std::int64_t rows = weight.dim(0);
  const std::int64_t cols = weight.dim(1);
  Tensor out = Tensor::zeros({rows, static_cast<std::int64_t>(keep.size())},
                             /*requires_grad=*/true);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < keep.size(); ++i) {
      out.data()[static_cast<std::size_t>(r) * keep.size() + i] =
          weight.data()[static_cast<std::size_t>(r * cols + keep[i])];
    }
  }
  return out;
}

}  // namespace

WidthPruneResult width_prune_ffn(const nn::TransformerLM& model, double fraction) {
  if (fraction < 0.0 || fraction >= 1.0) {
    throw std::invalid_argument("width_prune_ffn: fraction must be in [0, 1)");
  }
  WidthPruneResult result;
  result.model = model.clone();

  const std::int64_t params_before = model.param_count();
  const std::int64_t d_ff = model.config().d_ff;
  const auto remove =
      static_cast<std::int64_t>(std::floor(fraction * static_cast<double>(d_ff)));
  result.channels_removed_per_layer = remove;
  if (remove == 0) return result;

  for (std::int64_t l = 0; l < result.model.n_layers(); ++l) {
    nn::SwiGluMlp& mlp = result.model.block(static_cast<std::size_t>(l)).mlp();
    const Tensor& gate = mlp.w_gate().weight();
    const Tensor& up = mlp.w_up().weight();
    const Tensor& down = mlp.w_down().weight();
    const std::int64_t d_model = gate.dim(1);
    const std::int64_t layer_ff = gate.dim(0);

    // Channel importance: product of the three connected weight norms.
    std::vector<double> scores(static_cast<std::size_t>(layer_ff));
    for (std::int64_t j = 0; j < layer_ff; ++j) {
      scores[static_cast<std::size_t>(j)] =
          row_norm(gate.data(), d_model, j) * row_norm(up.data(), d_model, j) *
          col_norm(down.data(), d_model, layer_ff, j);
    }

    // Keep the top (layer_ff - remove) channels, preserving original order so
    // the projection layout stays stable.
    std::vector<std::int64_t> order(static_cast<std::size_t>(layer_ff));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
      return scores[static_cast<std::size_t>(a)] > scores[static_cast<std::size_t>(b)];
    });
    std::vector<std::int64_t> keep(order.begin(),
                                   order.begin() + (layer_ff - remove));
    std::sort(keep.begin(), keep.end());

    mlp.w_gate().weight() = select_rows(gate, keep);
    mlp.w_up().weight() = select_rows(up, keep);
    mlp.w_down().weight() = select_cols(down, keep);
  }

  result.param_savings =
      static_cast<double>(params_before - result.model.param_count()) /
      static_cast<double>(params_before);
  return result;
}

double width_fraction_matching_depth(const nn::ModelConfig& config,
                                     std::int64_t depth_blocks) {
  const std::int64_t d = config.d_model;
  const double per_layer_ffn = static_cast<double>(3 * d * config.d_ff);
  const double per_layer_total =
      static_cast<double>(4 * d * d) + per_layer_ffn + static_cast<double>(2 * d);
  const double removed = static_cast<double>(depth_blocks) * per_layer_total;
  const double ffn_total = static_cast<double>(config.n_layers) * per_layer_ffn;
  return std::min(0.95, removed / ffn_total);
}

}  // namespace sdd::core
