// Width pruning baseline (structured FFN-channel pruning).
//
// The paper's related work contrasts depth pruning (removing whole decoder
// blocks — Algorithm 1) with width pruning (removing units inside layers,
// e.g. Shortened-Llama / LLM-Pruner). This module implements the classic
// magnitude-based width baseline: per layer, score every SwiGLU hidden
// channel j by ||w_gate[j,:]|| * ||w_up[j,:]|| * ||w_down[:,j]|| and remove
// the lowest-scoring fraction, shrinking the three projections consistently.
// Attention heads are left intact (removing them changes the residual-stream
// interface; the paper's width baselines also predominantly prune FFN
// width). The result is a drop-in TransformerLM with per-layer d_ff reduced,
// directly comparable to depth pruning at matched parameter savings.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/transformer.hpp"

namespace sdd::core {

struct WidthPruneResult {
  nn::TransformerLM model;
  std::int64_t channels_removed_per_layer = 0;
  double param_savings = 0.0;  // fraction of total parameters removed
};

// Remove `fraction` of each layer's SwiGLU hidden channels (rounded down).
WidthPruneResult width_prune_ffn(const nn::TransformerLM& model, double fraction);

// The FFN-width fraction that matches the parameter savings of removing
// `depth_blocks` whole layers (for like-for-like depth-vs-width comparisons).
double width_fraction_matching_depth(const nn::ModelConfig& config,
                                     std::int64_t depth_blocks);

}  // namespace sdd::core
