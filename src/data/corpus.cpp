#include "data/corpus.hpp"

#include <array>
#include <stdexcept>

#include "util/hash.hpp"

#include "data/kb_gen.hpp"
#include "data/math_gen.hpp"

namespace sdd::data {
namespace {

std::string render_document(const World& world, Rng& rng, const CorpusConfig& config) {
  const std::array<double, 7> weights{
      config.w_math_qa, config.w_equation_drill, config.w_kb_facts, config.w_kb_qa,
      config.w_routines, config.w_colors, config.w_instructions};
  switch (rng.weighted_index(std::span<const double>{weights})) {
    case 0: {  // solved math problem, house style
      MathGenOptions options;
      options.min_steps = 1;
      options.max_steps = 4;
      const MathProblem problem = make_math_problem(rng, options);
      return render_math_question(problem) + " <sep> " +
             render_math_solution(problem, SolutionStyle::kModel);
    }
    case 1: {  // arithmetic drill block of 3-5 equations
      const std::int64_t n = rng.uniform_int(3, 5);
      std::string text;
      for (std::int64_t i = 0; i < n; ++i) {
        if (i > 0) text += " . ";
        text += render_equation_drill(rng);
      }
      return text;
    }
    case 2: {  // 2-3 declarative facts
      const std::int64_t n = rng.uniform_int(2, 3);
      std::string text;
      for (std::int64_t i = 0; i < n; ++i) {
        if (i > 0) text += ' ';
        text += render_fact_statement(world, rng);
      }
      return text;
    }
    case 3: {  // KB QA pair
      const QaPair qa = render_kb_qa(world, rng);
      return qa.question + " <sep> " + qa.answer;
    }
    case 4:
      return render_routine_story(rng.choice(world.routines()));
    case 5:
      return render_color_statement(world, rng, config.myth_rate);
    default:
      return rng.bernoulli(0.5) ? render_alpaca_document(world, rng)
                                : render_dolly_document(world, rng);
  }
}

}  // namespace

std::uint64_t CorpusConfig::hash() const {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_value(n_documents, h);
  h = fnv1a_value(seed, h);
  h = fnv1a_value(w_math_qa, h);
  h = fnv1a_value(w_equation_drill, h);
  h = fnv1a_value(w_kb_facts, h);
  h = fnv1a_value(w_kb_qa, h);
  h = fnv1a_value(w_routines, h);
  h = fnv1a_value(w_colors, h);
  h = fnv1a_value(w_instructions, h);
  h = fnv1a_value(myth_rate, h);
  return h;
}

std::vector<TokenId> build_pretraining_stream(const World& world,
                                              const CorpusConfig& config) {
  const Vocab& vocab = Vocab::instance();
  Rng rng{config.seed};
  std::vector<TokenId> stream;
  stream.reserve(static_cast<std::size_t>(config.n_documents) * 32);
  for (std::int64_t i = 0; i < config.n_documents; ++i) {
    stream.push_back(vocab.bos());
    const std::vector<TokenId> body =
        vocab.encode(render_document(world, rng, config));
    stream.insert(stream.end(), body.begin(), body.end());
    stream.push_back(vocab.eos());
  }
  return stream;
}

std::vector<std::vector<TokenId>> build_calibration_set(const World& world,
                                                        std::int64_t n_samples,
                                                        std::int64_t seq_len,
                                                        std::uint64_t seed) {
  CorpusConfig config;
  config.seed = seed;
  config.n_documents = n_samples * 4;  // more than enough tokens
  const std::vector<TokenId> stream = build_pretraining_stream(world, config);
  if (static_cast<std::int64_t>(stream.size()) < n_samples * seq_len) {
    throw std::logic_error("build_calibration_set: stream too short");
  }
  std::vector<std::vector<TokenId>> samples;
  samples.reserve(static_cast<std::size_t>(n_samples));
  for (std::int64_t i = 0; i < n_samples; ++i) {
    const auto begin = stream.begin() + i * seq_len;
    samples.emplace_back(begin, begin + seq_len);
  }
  return samples;
}

}  // namespace sdd::data
