// Pre-training corpus: a mixture of synthetic document families rendered in
// the model's house style (the stand-in for the paper's pre-training
// distribution), plus the held-out calibration slice that plays the role of
// RedPajama for the pruning metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "data/vocab.hpp"
#include "data/world.hpp"

namespace sdd::data {

struct CorpusConfig {
  std::int64_t n_documents = 20000;
  std::uint64_t seed = 7;
  // Mixture weights (normalized internally).
  double w_math_qa = 0.34;       // solved word problems (house style)
  double w_equation_drill = 0.16;  // bare arithmetic tables
  double w_kb_facts = 0.20;      // declarative world facts
  double w_kb_qa = 0.14;         // KB question/answer pairs
  double w_routines = 0.06;      // routine stories
  double w_colors = 0.05;        // color facts + popular misconceptions
  double w_instructions = 0.05;  // dolly/alpaca-style instruction documents
  double myth_rate = 0.3;        // share of color docs that state the misconception

  std::uint64_t hash() const;
};

// A flat token stream of <bos> doc <eos> documents.
std::vector<TokenId> build_pretraining_stream(const World& world,
                                              const CorpusConfig& config);

// Deterministic held-out slice (different seed) used as the representative
// dataset D for the pruning metrics (Eq. 1). Returns `n_samples` sequences of
// exactly `seq_len` tokens.
std::vector<std::vector<TokenId>> build_calibration_set(const World& world,
                                                        std::int64_t n_samples,
                                                        std::int64_t seq_len,
                                                        std::uint64_t seed);

}  // namespace sdd::data
