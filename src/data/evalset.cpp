#include "data/evalset.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "data/math_gen.hpp"

namespace sdd::data {
namespace {

constexpr std::int64_t kFewshotPoolSize = 8;

std::vector<TokenId> encode_context(const Vocab& vocab, const std::string& question) {
  std::vector<TokenId> ids = vocab.encode(question);
  ids.push_back(vocab.sep());
  return ids;
}

// Sample `n` distinct distractors from `pool`, excluding `correct`.
std::vector<std::string> sample_distractors(Rng& rng,
                                            const std::vector<std::string>& pool,
                                            const std::string& correct,
                                            std::size_t n) {
  std::vector<std::string> candidates;
  for (const std::string& word : pool) {
    if (word != correct) candidates.push_back(word);
  }
  if (candidates.size() < n) {
    throw std::logic_error("sample_distractors: pool too small");
  }
  rng.shuffle(candidates);
  candidates.resize(n);
  return candidates;
}

McItem assemble_item(const Vocab& vocab, Rng& rng, const std::string& question,
                     const std::string& correct_option,
                     std::vector<std::string> distractor_options) {
  McItem item;
  item.context = encode_context(vocab, question);
  std::vector<std::string> all_options = std::move(distractor_options);
  const std::size_t correct_slot = rng.index(all_options.size() + 1);
  all_options.insert(all_options.begin() + static_cast<std::ptrdiff_t>(correct_slot),
                     correct_option);
  for (const std::string& option : all_options) {
    item.options.push_back(vocab.encode(option));
  }
  item.correct = correct_slot;
  return item;
}

McTask build_mc_task(std::string name, int default_shots, std::int64_t n_items,
                     std::uint64_t seed,
                     const std::function<McItem(Rng&)>& make_item) {
  McTask task;
  task.name = std::move(name);
  task.default_shots = default_shots;
  Rng rng{seed};
  for (std::int64_t i = 0; i < kFewshotPoolSize; ++i) {
    task.fewshot_pool.push_back(make_item(rng));
  }
  for (std::int64_t i = 0; i < n_items; ++i) {
    task.items.push_back(make_item(rng));
  }
  return task;
}

}  // namespace

McTask make_arc_task(const World& world, std::int64_t n_items, std::uint64_t seed) {
  const Vocab& vocab = Vocab::instance();
  return build_mc_task("arc_c", /*default_shots=*/3, n_items, seed, [&](Rng& rng) {
    const CauseEffectFact& fact = rng.choice(world.cause_effects());
    const std::string question =
        "q : what happens when you " + fact.process + " " + fact.substance + " ?";
    const std::string correct = "a : it " + fact.effect + " .";
    std::vector<std::string> distractors;
    for (const std::string& effect :
         sample_distractors(rng, world.effect_pool(), fact.effect, 3)) {
      distractors.push_back("a : it " + effect + " .");
    }
    return assemble_item(vocab, rng, question, correct, std::move(distractors));
  });
}

McTask make_hellaswag_task(const World& world, std::int64_t n_items,
                           std::uint64_t seed) {
  const Vocab& vocab = Vocab::instance();
  return build_mc_task("hellaswag", /*default_shots=*/3, n_items, seed, [&](Rng& rng) {
    const Routine& routine = rng.choice(world.routines());
    const std::size_t i = rng.index(routine.actions.size() - 1);
    const std::string question = "q : " + routine.actor + " " + routine.actions[i] +
                                 " . then what does " + routine.actor + " do ?";
    const std::string& next_action = routine.actions[i + 1];
    const std::string correct = "a : " + routine.actor + " " + next_action + " .";
    std::vector<std::string> distractors;
    for (const std::string& action :
         sample_distractors(rng, world.action_pool(), next_action, 3)) {
      distractors.push_back("a : " + routine.actor + " " + action + " .");
    }
    return assemble_item(vocab, rng, question, correct, std::move(distractors));
  });
}

McTask make_truthfulqa_task(const World& world, std::int64_t n_items,
                            std::uint64_t seed) {
  const Vocab& vocab = Vocab::instance();
  return build_mc_task("truthfulqa", /*default_shots=*/0, n_items, seed,
                       [&](Rng& rng) {
    const ColorFact& fact = rng.choice(world.color_facts());
    const std::string question = "q : what color is the " + fact.thing + " really ?";
    const std::string correct = "a : the " + fact.thing + " is " + fact.color + " .";
    // The popular misconception is always present among the distractors.
    std::vector<std::string> distractors;
    distractors.push_back("a : the " + fact.thing + " is " + fact.popular_error + " .");
    std::vector<std::string> pool;
    for (const std::string& color : world.color_pool()) {
      if (color != fact.color && color != fact.popular_error) pool.push_back(color);
    }
    for (const std::string& color : sample_distractors(rng, pool, fact.color, 2)) {
      distractors.push_back("a : the " + fact.thing + " is " + color + " .");
    }
    return assemble_item(vocab, rng, question, correct, std::move(distractors));
  });
}

McTask make_mmlu_task(const World& world, std::int64_t n_items, std::uint64_t seed) {
  const Vocab& vocab = Vocab::instance();
  return build_mc_task("mmlu", /*default_shots=*/3, n_items, seed, [&](Rng& rng) {
    const ClassificationFact& fact = rng.choice(world.classifications());
    const std::string question =
        "q : in " + fact.domain + " what class is " + fact.item + " ?";
    const std::string correct = "a : " + fact.item + " is " + fact.klass + " .";
    std::vector<std::string> distractors;
    for (const std::string& klass :
         sample_distractors(rng, world.class_pool(), fact.klass, 3)) {
      distractors.push_back("a : " + fact.item + " is " + klass + " .");
    }
    return assemble_item(vocab, rng, question, correct, std::move(distractors));
  });
}

McTask make_winogrande_task(const World& world, std::int64_t n_items,
                            std::uint64_t seed) {
  const Vocab& vocab = Vocab::instance();
  return build_mc_task("winogrande", /*default_shots=*/3, n_items, seed,
                       [&](Rng& rng) {
    const std::string& animal = rng.choice(world.animals());
    const std::string& sound = world.sound_of(animal);
    const std::string question = "q : what does the " + animal + " say ?";
    const std::string correct = "a : the " + animal + " " + sound + " .";
    std::vector<std::string> distractors;
    for (const std::string& other :
         sample_distractors(rng, world.sound_pool(), sound, 1)) {
      distractors.push_back("a : the " + animal + " " + other + " .");
    }
    return assemble_item(vocab, rng, question, correct, std::move(distractors));
  });
}

GenTask make_gsm8k_eval_task(std::int64_t n_items, std::uint64_t seed) {
  const Vocab& vocab = Vocab::instance();
  GenTask task;
  task.name = "gsm8k";
  task.default_shots = 2;
  Rng rng{seed};
  MathGenOptions options;
  options.min_steps = 1;
  options.max_steps = 3;
  const auto make_item = [&](Rng& item_rng) {
    const MathProblem problem = make_math_problem(item_rng, options);
    GenItem item;
    item.prompt = encode_context(vocab, render_math_question(problem));
    item.reference =
        vocab.encode(render_math_solution(problem, SolutionStyle::kModel));
    item.answer = problem.answer;
    return item;
  };
  for (std::int64_t i = 0; i < kFewshotPoolSize; ++i) {
    task.fewshot_pool.push_back(make_item(rng));
  }
  for (std::int64_t i = 0; i < n_items; ++i) task.items.push_back(make_item(rng));
  return task;
}

}  // namespace sdd::data
