// Evaluation task item builders — the µ analogues of the OpenLLM
// Leaderboard v1 suite.
//
// Multiple-choice tasks follow lm-eval-harness conventions: a context string
// (with k-shot exemplars prepended by the harness) and N answer
// continuations scored by length-normalized log-likelihood. µGSM8k is
// generative: greedy decode then extract the final number.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/vocab.hpp"
#include "data/world.hpp"
#include "util/rng.hpp"

namespace sdd::data {

struct McItem {
  std::vector<TokenId> context;                 // <bos> ... <sep> ("a :" follows in options)
  std::vector<std::vector<TokenId>> options;    // candidate continuations
  std::size_t correct = 0;
};

struct McTask {
  std::string name;
  std::vector<McItem> items;          // scored items
  std::vector<McItem> fewshot_pool;   // exemplars for k-shot prompts
  int default_shots = 0;
};

struct GenItem {
  std::vector<TokenId> prompt;        // question, ends with <sep>
  std::vector<TokenId> reference;     // gold solution (for few-shot exemplars)
  std::int64_t answer = 0;
};

struct GenTask {
  std::string name;
  std::vector<GenItem> items;
  std::vector<GenItem> fewshot_pool;
  int default_shots = 0;
};

// The six OpenLLM-v1 µ-tasks. `n_items` bounds the number of scored items.
McTask make_arc_task(const World& world, std::int64_t n_items, std::uint64_t seed);
McTask make_hellaswag_task(const World& world, std::int64_t n_items, std::uint64_t seed);
McTask make_truthfulqa_task(const World& world, std::int64_t n_items, std::uint64_t seed);
McTask make_mmlu_task(const World& world, std::int64_t n_items, std::uint64_t seed);
McTask make_winogrande_task(const World& world, std::int64_t n_items, std::uint64_t seed);
GenTask make_gsm8k_eval_task(std::int64_t n_items, std::uint64_t seed);

}  // namespace sdd::data
