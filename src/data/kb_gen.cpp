#include "data/kb_gen.hpp"

#include <stdexcept>

#include "data/vocab.hpp"

namespace sdd::data {
namespace {

std::string num(std::int64_t value) { return std::to_string(value); }

}  // namespace

std::string render_fact_statement(const World& world, Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // animal sound
      const std::string& animal = rng.choice(world.animals());
      const std::string& sound = world.sound_of(animal);
      return rng.bernoulli(0.5) ? "the " + animal + " " + sound + " ."
                                : "a " + animal + " " + sound + " .";
    }
    case 1: {  // cause/effect
      const CauseEffectFact& fact = rng.choice(world.cause_effects());
      return rng.bernoulli(0.5)
                 ? "when you " + fact.process + " " + fact.substance + " it " +
                       fact.effect + " ."
                 : fact.process + " " + fact.substance + " and it " + fact.effect +
                       " .";
    }
    case 2: {  // classification
      const ClassificationFact& fact = rng.choice(world.classifications());
      return rng.bernoulli(0.5)
                 ? "in " + fact.domain + " " + fact.item + " is classified as " +
                       fact.klass + " ."
                 : fact.item + " belongs to class " + fact.klass + " in " +
                       fact.domain + " .";
    }
    default: {  // routine fragment (adjacent action pair)
      const Routine& routine = rng.choice(world.routines());
      const std::size_t i = rng.index(routine.actions.size() - 1);
      return routine.actor + " " + routine.actions[i] + " . then " + routine.actor +
             " " + routine.actions[i + 1] + " .";
    }
  }
}

std::string render_routine_story(const Routine& routine) {
  std::string text = routine.actor + " " + routine.actions[0] + " .";
  for (std::size_t i = 1; i < routine.actions.size(); ++i) {
    text += " then " + routine.actor + " " + routine.actions[i] + " .";
  }
  return text;
}

std::string render_color_statement(const World& world, Rng& rng, double myth_rate) {
  const ColorFact& fact = rng.choice(world.color_facts());
  if (rng.bernoulli(myth_rate)) {
    return "people say the " + fact.thing + " is " + fact.popular_error + " .";
  }
  return "fact : the " + fact.thing + " is " + fact.color + " .";
}

QaPair render_kb_qa(const World& world, Rng& rng) {
  switch (rng.uniform_int(0, 4)) {
    case 0: {
      const std::string& animal = rng.choice(world.animals());
      return QaPair{"q : what does the " + animal + " say ?",
                    "a : the " + animal + " " + world.sound_of(animal) + " ."};
    }
    case 1: {
      const CauseEffectFact& fact = rng.choice(world.cause_effects());
      return QaPair{
          "q : what happens when you " + fact.process + " " + fact.substance + " ?",
          "a : it " + fact.effect + " ."};
    }
    case 2: {
      const ClassificationFact& fact = rng.choice(world.classifications());
      return QaPair{"q : in " + fact.domain + " what class is " + fact.item + " ?",
                    "a : " + fact.item + " is " + fact.klass + " ."};
    }
    case 3: {
      const ColorFact& fact = rng.choice(world.color_facts());
      return QaPair{"q : what color is the " + fact.thing + " really ?",
                    "a : the " + fact.thing + " is " + fact.color + " ."};
    }
    default: {
      const Routine& routine = rng.choice(world.routines());
      const std::size_t i = rng.index(routine.actions.size() - 1);
      return QaPair{"q : " + routine.actor + " " + routine.actions[i] +
                        " . then what does " + routine.actor + " do ?",
                    "a : " + routine.actor + " " + routine.actions[i + 1] + " ."};
    }
  }
}

DollyExample make_dolly_example(const World& world, Rng& rng) {
  DollyExample example;
  switch (rng.uniform_int(0, 2)) {
    case 0: {
      const std::string& animal = rng.choice(world.animals());
      const std::string& sound = world.sound_of(animal);
      example.question = "q : tell me about the " + animal + " ?";
      example.response_model = "a : the " + animal + " " + sound + " .";
      example.response_human = "it is an animal and it " + sound + " now";
      break;
    }
    case 1: {
      const CauseEffectFact& fact = rng.choice(world.cause_effects());
      example.question =
          "q : tell me what happens when you " + fact.process + " " + fact.substance +
          " ?";
      example.response_model = "a : it " + fact.effect + " .";
      example.response_human =
          "the " + fact.substance + " " + fact.effect + " because you " + fact.process +
          " it";
      break;
    }
    default: {
      const ColorFact& fact = rng.choice(world.color_facts());
      example.question = "q : tell me the color of the " + fact.thing + " ?";
      example.response_model = "a : the " + fact.thing + " is " + fact.color + " .";
      example.response_human = fact.color + " is the color of the " + fact.thing;
      break;
    }
  }
  return example;
}

AlpacaExample make_alpaca_example(const World& world, Rng& rng) {
  AlpacaExample example;
  const auto kind = static_cast<AlpacaKind>(rng.uniform_int(0, 4));
  example.kind = kind;
  switch (kind) {
    case AlpacaKind::kRepeat: {
      const std::string& word = rng.choice(world.animals());
      const std::int64_t times = rng.uniform_int(2, 4);
      std::string payload;
      for (std::int64_t i = 0; i < times; ++i) {
        if (i > 0) payload += ' ';
        payload += word;
      }
      example.question = "q : repeat the word " + word + " " + num(times) + " times ?";
      example.response_model = "a : " + payload + " .";
      example.response_human = "now : " + payload;
      example.answer_key = payload;
      break;
    }
    case AlpacaKind::kCountWords: {
      const std::int64_t count = rng.uniform_int(2, 5);
      std::string items;
      for (std::int64_t i = 0; i < count; ++i) {
        if (i > 0) items += ' ';
        items += rng.choice(world.effect_pool());
      }
      example.question = "q : count the words : " + items + " ?";
      example.response_model = "a : ans " + num(count);
      example.response_human = "the answer is " + num(count);
      example.answer_key = num(count);
      example.numeric = true;
      example.numeric_answer = count;
      break;
    }
    case AlpacaKind::kColorOf: {
      const ColorFact& fact = rng.choice(world.color_facts());
      example.question = "q : list the color of the " + fact.thing + " ?";
      example.response_model = "a : the " + fact.thing + " is " + fact.color + " .";
      example.response_human = "it is really " + fact.color;
      example.answer_key = fact.color;
      break;
    }
    case AlpacaKind::kFirstWord:
    case AlpacaKind::kLastWord: {
      const std::int64_t count = rng.uniform_int(3, 5);
      std::vector<std::string> items;
      for (std::int64_t i = 0; i < count; ++i) {
        items.push_back(rng.choice(world.class_pool()));
      }
      std::string list;
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) list += ' ';
        list += items[i];
      }
      const bool first = kind == AlpacaKind::kFirstWord;
      const std::string& key = first ? items.front() : items.back();
      example.question = std::string{"q : say the "} + (first ? "first" : "last") +
                         " word : " + list + " ?";
      example.response_model = "a : " + key + " .";
      example.response_human = "it is " + key;
      example.answer_key = key;
      break;
    }
  }
  return example;
}

std::string render_alpaca_document(const World& world, Rng& rng) {
  const AlpacaExample example = make_alpaca_example(world, rng);
  return example.question + " <sep> " + example.response_model;
}

std::string render_dolly_document(const World& world, Rng& rng) {
  const DollyExample example = make_dolly_example(world, rng);
  return example.question + " <sep> " + example.response_model;
}

}  // namespace sdd::data
