// Renderers over the World knowledge base: pre-training fact statements,
// question/answer pairs, routine stories, and the µDolly / µAlpaca
// instruction grammars.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/world.hpp"
#include "util/rng.hpp"

namespace sdd::data {

enum class ResponseStyle { kModel, kHuman };

// ---- pre-training documents ------------------------------------------------

// One declarative statement of a random fact (varied templates).
std::string render_fact_statement(const World& world, Rng& rng);

// A full routine story: "tom opens . then tom walks . then tom sits . ..."
std::string render_routine_story(const Routine& routine);

// "fact : the sky is blue ." or (with probability `myth_rate`)
// "people say the sky is <popular_error> ." — the misconception exposure that
// makes µTruthfulQA non-trivial.
std::string render_color_statement(const World& world, Rng& rng, double myth_rate);

// A QA document in the model's house style ("q : ... ? <sep> a : ... .").
// Returns question and answer separately so callers can also build prompts.
struct QaPair {
  std::string question;  // "q : what does the cat say ?"
  std::string answer;    // "a : the cat meows ."
};
QaPair render_kb_qa(const World& world, Rng& rng);

// ---- µDolly (open-domain instruction data) ---------------------------------

struct DollyExample {
  std::string question;        // "q : tell me about the cat ?"
  std::string response_model;  // house-style response
  std::string response_human;  // divergent human-style response
};
DollyExample make_dolly_example(const World& world, Rng& rng);

// ---- µAlpaca (verifiable instruction following) -----------------------------

enum class AlpacaKind { kRepeat, kCountWords, kColorOf, kFirstWord, kLastWord };

struct AlpacaExample {
  AlpacaKind kind = AlpacaKind::kRepeat;
  std::string question;
  std::string response_model;
  std::string response_human;
  // Verification key: the exact payload tokens that must appear in a correct
  // response (e.g. "gold gold gold" or "3" or "blue").
  std::string answer_key;
  bool numeric = false;          // answer_key is a number (Extract by last number)
  std::int64_t numeric_answer = 0;
};
AlpacaExample make_alpaca_example(const World& world, Rng& rng);

// Instruction statement documents so the base model learns these formats
// during pre-training (in house style).
std::string render_alpaca_document(const World& world, Rng& rng);
std::string render_dolly_document(const World& world, Rng& rng);

}  // namespace sdd::data
