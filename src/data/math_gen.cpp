#include "data/math_gen.hpp"

#include <algorithm>
#include <stdexcept>

#include "data/vocab.hpp"

namespace sdd::data {
namespace {

const std::vector<std::string> kPeople = {"tom", "sam", "mia", "leo", "ana", "max",
                                          "eva", "ben", "zoe", "kai", "lily", "rex"};
const std::vector<std::string> kObjects = {"apples", "coins",  "books",  "pens",
                                           "cards",  "shells", "stones", "stars"};
const std::vector<std::string> kGainVerbs = {"buys", "finds", "gets", "makes"};
const std::vector<std::string> kLossVerbs = {"loses", "eats", "gives", "sells"};

std::string num(std::int64_t value) { return std::to_string(value); }

}  // namespace

MathProblem make_math_problem(Rng& rng, const MathGenOptions& options) {
  if (options.min_steps < 1 || options.max_steps < options.min_steps) {
    throw std::invalid_argument("make_math_problem: bad step bounds");
  }
  MathProblem problem;
  problem.person = rng.choice(kPeople);
  problem.object = rng.choice(kObjects);
  problem.start = rng.uniform_int(2, 10);

  const auto n_steps =
      static_cast<int>(rng.uniform_int(options.min_steps, options.max_steps));
  std::int64_t value = problem.start;
  for (int s = 0; s < n_steps; ++s) {
    MathStep step;
    step.before = value;
    // Pick an op that keeps the running value in [0, 99].
    for (int attempt = 0;; ++attempt) {
      // Operands stay small (single-digit-ish) so a sub-million-parameter
      // model can actually acquire the arithmetic tables from the corpus;
      // multi-step difficulty comes from chaining, as in GSM8k.
      const std::int64_t pick = rng.uniform_int(0, 9);
      if (pick < 4) {  // add
        const std::int64_t operand = rng.uniform_int(2, 10);
        if (value + operand <= 48) {
          step.op = MathOp::kAdd;
          step.operand = operand;
          step.after = value + operand;
          break;
        }
      } else if (pick < 8) {  // sub
        if (value >= 2) {
          const std::int64_t operand =
              rng.uniform_int(1, std::min<std::int64_t>(10, value - 1));
          step.op = MathOp::kSub;
          step.operand = operand;
          step.after = value - operand;
          break;
        }
      } else {  // double
        if (2 * value <= 48) {
          step.op = MathOp::kDouble;
          step.operand = 0;
          step.after = 2 * value;
          break;
        }
      }
      if (attempt > 64) {  // pathological value; fall back to subtracting 1
        step.op = MathOp::kSub;
        step.operand = 1;
        step.after = value - 1;
        break;
      }
    }
    value = step.after;
    problem.steps.push_back(step);
  }
  problem.answer = value;
  return problem;
}

std::string render_math_question(const MathProblem& problem) {
  std::string text = "q : " + problem.person + " has " + num(problem.start) + " " +
                     problem.object + " .";
  // Deterministic verb choice keyed on step values keeps rendering a pure
  // function of the problem.
  for (const MathStep& step : problem.steps) {
    switch (step.op) {
      case MathOp::kAdd: {
        const std::string& verb =
            kGainVerbs[static_cast<std::size_t>(step.operand) % kGainVerbs.size()];
        text += " " + problem.person + " " + verb + " " + num(step.operand) +
                " more " + problem.object + " .";
        break;
      }
      case MathOp::kSub: {
        const std::string& verb =
            kLossVerbs[static_cast<std::size_t>(step.operand) % kLossVerbs.size()];
        text += " " + problem.person + " " + verb + " " + num(step.operand) + " " +
                problem.object + " .";
        break;
      }
      case MathOp::kDouble:
        text += " then " + problem.person + " makes double the " + problem.object +
                " .";
        break;
    }
  }
  text += " how many " + problem.object + " does " + problem.person + " have ?";
  return text;
}

std::string render_math_solution(const MathProblem& problem, SolutionStyle style) {
  std::string text;
  const auto equation = [](const MathStep& step) {
    switch (step.op) {
      case MathOp::kAdd:
        return num(step.before) + " + " + num(step.operand) + " = " + num(step.after);
      case MathOp::kSub:
        return num(step.before) + " - " + num(step.operand) + " = " + num(step.after);
      case MathOp::kDouble:
        return num(step.before) + " * 2 = " + num(step.after);
    }
    return std::string{};
  };

  switch (style) {
    case SolutionStyle::kModel:
      text = "a :";
      for (std::size_t s = 0; s < problem.steps.size(); ++s) {
        text += s == 0 ? " we compute " : " then ";
        text += equation(problem.steps[s]);
        text += " .";
      }
      text += " ans " + num(problem.answer);
      break;
    case SolutionStyle::kHuman:
      for (std::size_t s = 0; s < problem.steps.size(); ++s) {
        if (s > 0) text += " ; ";
        text += equation(problem.steps[s]);
      }
      text += " ; so the answer is " + num(problem.answer);
      break;
    case SolutionStyle::kHumanAlt:
      for (std::size_t s = 0; s < problem.steps.size(); ++s) {
        text += "step : " + equation(problem.steps[s]) + " ; ";
      }
      text += "therefore the result is " + num(problem.answer);
      break;
  }
  return text;
}

std::string render_equation_drill(Rng& rng) {
  const std::int64_t a = rng.uniform_int(0, 40);
  if (rng.bernoulli(0.5)) {
    const std::int64_t b =
        rng.uniform_int(0, std::min<std::int64_t>(10, Vocab::kMaxNumber - a));
    return num(a) + " + " + num(b) + " = " + num(a + b);
  }
  const std::int64_t b = rng.uniform_int(0, std::min<std::int64_t>(10, a));
  return num(a) + " - " + num(b) + " = " + num(a - b);
}

}  // namespace sdd::data
