// Multi-step arithmetic word-problem grammar (the µGSM8k / µOpenMathInstruct
// substrate).
//
// A problem is a short story over a start quantity and 1-4 operations whose
// intermediate results stay within the single-token number range [0, 99].
// Solutions can be rendered in three surface styles:
//   kModel    - the pre-training "house style"  ("we compute 3 + 4 = 7 . ans 7")
//   kHuman    - the raw fine-tuning dataset style (µGSM8k)
//   kHumanAlt - a second human style (µOpenMathInstruct)
// The style gap between kModel and the human styles is what reproduces the
// paper's distribution-shift / catastrophic-forgetting mechanism: standard
// SFT trains the pruned model on a style the base model never produced,
// while self-data distillation rewrites targets back into kModel style.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sdd::data {

enum class MathOp { kAdd, kSub, kDouble };

struct MathStep {
  MathOp op = MathOp::kAdd;
  std::int64_t operand = 0;  // unused for kDouble
  std::int64_t before = 0;
  std::int64_t after = 0;
};

struct MathProblem {
  std::string person;
  std::string object;
  std::int64_t start = 0;
  std::vector<MathStep> steps;
  std::int64_t answer = 0;
};

enum class SolutionStyle { kModel, kHuman, kHumanAlt };

struct MathGenOptions {
  int min_steps = 1;
  int max_steps = 3;
};

MathProblem make_math_problem(Rng& rng, const MathGenOptions& options = {});

// "q : tom has 7 apples . tom buys 5 more apples . how many apples does tom
//  have ?"
std::string render_math_question(const MathProblem& problem);

// Chain-of-thought solution ending in an extractable final number.
std::string render_math_solution(const MathProblem& problem, SolutionStyle style);

// Bare equation drill ("7 + 5 = 12") used to teach arithmetic tables during
// pre-training.
std::string render_equation_drill(Rng& rng);

}  // namespace sdd::data
