#include "data/sft.hpp"

#include <algorithm>
#include <stdexcept>

#include "data/kb_gen.hpp"
#include "data/math_gen.hpp"

namespace sdd::data {
namespace {

std::vector<TokenId> encode_prompt(const Vocab& vocab, const std::string& question) {
  std::vector<TokenId> ids;
  ids.push_back(vocab.bos());
  const std::vector<TokenId> body = vocab.encode(question);
  ids.insert(ids.end(), body.begin(), body.end());
  ids.push_back(vocab.sep());
  return ids;
}

std::vector<TokenId> encode_target(const Vocab& vocab, const std::string& response) {
  std::vector<TokenId> ids = vocab.encode(response);
  ids.push_back(vocab.eos());
  return ids;
}

SftDataset make_math_family(const World& /*world*/, std::int64_t n, std::uint64_t seed,
                            TaskFamily family, SolutionStyle style,
                            const MathGenOptions& gen, const std::string& name) {
  const Vocab& vocab = Vocab::instance();
  SftDataset dataset;
  dataset.name = name;
  dataset.family = family;
  dataset.examples.reserve(static_cast<std::size_t>(n));
  Rng rng{seed};
  for (std::int64_t i = 0; i < n; ++i) {
    const MathProblem problem = make_math_problem(rng, gen);
    SftExample example;
    example.prompt = encode_prompt(vocab, render_math_question(problem));
    example.target = encode_target(vocab, render_math_solution(problem, style));
    example.extract = ExtractKind::kNumeric;
    example.numeric_answer = problem.answer;
    dataset.examples.push_back(std::move(example));
  }
  return dataset;
}

}  // namespace

std::uint64_t SftDataset::hash() const {
  std::uint64_t h = fnv1a(name);
  h = hash_combine(h, static_cast<std::uint64_t>(examples.size()));
  for (const SftExample& example : examples) {
    const auto hash_ids = [&h](const std::vector<TokenId>& ids) {
      const auto* bytes = reinterpret_cast<const std::byte*>(ids.data());
      h = hash_combine(h, fnv1a_bytes({bytes, ids.size() * sizeof(TokenId)}));
    };
    hash_ids(example.prompt);
    hash_ids(example.target);
    h = hash_combine(h, static_cast<std::uint64_t>(example.numeric_answer));
  }
  return h;
}

SftDataset make_gsm8k_dataset(const World& world, std::int64_t n, std::uint64_t seed) {
  MathGenOptions gen;
  gen.min_steps = 1;
  gen.max_steps = 3;
  return make_math_family(world, n, seed, TaskFamily::kGsm8k, SolutionStyle::kHuman,
                          gen, "gsm8k");
}

SftDataset make_openmathinstruct_dataset(const World& world, std::int64_t n,
                                         std::uint64_t seed) {
  MathGenOptions gen;
  gen.min_steps = 1;
  gen.max_steps = 4;  // broader difficulty mix than µGSM8k
  return make_math_family(world, n, seed, TaskFamily::kOpenMathInstruct,
                          SolutionStyle::kHumanAlt, gen, "openmathinstruct");
}

SftDataset make_dolly_dataset(const World& world, std::int64_t n, std::uint64_t seed) {
  const Vocab& vocab = Vocab::instance();
  SftDataset dataset;
  dataset.name = "dolly";
  dataset.family = TaskFamily::kDolly;
  Rng rng{seed};
  for (std::int64_t i = 0; i < n; ++i) {
    const DollyExample source = make_dolly_example(world, rng);
    SftExample example;
    example.prompt = encode_prompt(vocab, source.question);
    example.target = encode_target(vocab, source.response_human);
    example.extract = ExtractKind::kOpenEnded;
    dataset.examples.push_back(std::move(example));
  }
  return dataset;
}

SftDataset make_alpaca_dataset(const World& world, std::int64_t n, std::uint64_t seed) {
  const Vocab& vocab = Vocab::instance();
  SftDataset dataset;
  dataset.name = "alpaca";
  dataset.family = TaskFamily::kAlpaca;
  Rng rng{seed};
  for (std::int64_t i = 0; i < n; ++i) {
    const AlpacaExample source = make_alpaca_example(world, rng);
    SftExample example;
    example.prompt = encode_prompt(vocab, source.question);
    example.target = encode_target(vocab, source.response_human);
    if (source.numeric) {
      example.extract = ExtractKind::kNumeric;
      example.numeric_answer = source.numeric_answer;
    } else {
      example.extract = ExtractKind::kContains;
      example.answer_key = vocab.encode(source.answer_key);
    }
    dataset.examples.push_back(std::move(example));
  }
  return dataset;
}

SftDataset make_dataset_by_name(const World& world, const std::string& name,
                                std::int64_t n, std::uint64_t seed) {
  if (name == "gsm8k") return make_gsm8k_dataset(world, n, seed);
  if (name == "openmathinstruct") return make_openmathinstruct_dataset(world, n, seed);
  if (name == "dolly") return make_dolly_dataset(world, n, seed);
  if (name == "alpaca") return make_alpaca_dataset(world, n, seed);
  throw std::invalid_argument("unknown dataset name: " + name);
}

bool response_matches(const Vocab& vocab, const SftExample& example,
                      std::span<const TokenId> response) {
  switch (example.extract) {
    case ExtractKind::kNumeric: {
      const auto value = last_number(vocab, response);
      return value.has_value() && *value == example.numeric_answer;
    }
    case ExtractKind::kContains: {
      if (example.answer_key.empty()) return false;
      if (response.size() < example.answer_key.size()) return false;
      const auto it = std::search(response.begin(), response.end(),
                                  example.answer_key.begin(),
                                  example.answer_key.end());
      return it != response.end();
    }
    case ExtractKind::kOpenEnded: {
      // Reject degenerate rewrites: too short or no sentence structure at all.
      return response.size() >= 3;
    }
  }
  return false;
}

}  // namespace sdd::data
