// Supervised fine-tuning datasets (tokenized prompt/target pairs) and the
// Extract() verification keys used by self-data distillation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/vocab.hpp"
#include "data/world.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace sdd::data {

enum class TaskFamily { kGsm8k, kOpenMathInstruct, kDolly, kAlpaca };

// How a response is verified against the reference answer (paper Eq. for the
// conditional selection rule in §2.2):
//   kNumeric   - compare the last number token (math, counting)
//   kContains  - response must contain the key token sequence (alpaca keys)
//   kOpenEnded - no hard key; any well-formed rewrite is accepted
enum class ExtractKind { kNumeric, kContains, kOpenEnded };

struct SftExample {
  std::vector<TokenId> prompt;  // <bos> q : ... ? <sep>
  std::vector<TokenId> target;  // style-specific response ... <eos>
  ExtractKind extract = ExtractKind::kNumeric;
  std::int64_t numeric_answer = 0;      // kNumeric
  std::vector<TokenId> answer_key;      // kContains
};

struct SftDataset {
  std::string name;
  TaskFamily family = TaskFamily::kGsm8k;
  std::vector<SftExample> examples;

  // Stable content hash for the experiment cache.
  std::uint64_t hash() const;
};

// Dataset builders. `n` is the sample count; the paper's 8k/15k/50k sizes map
// to 800/1500/2000 (see DESIGN.md scale table). Styles: µGSM8k and
// µOpenMathInstruct use the two divergent human styles; µDolly and µAlpaca
// use their human response variants.
SftDataset make_gsm8k_dataset(const World& world, std::int64_t n, std::uint64_t seed);
SftDataset make_openmathinstruct_dataset(const World& world, std::int64_t n,
                                         std::uint64_t seed);
SftDataset make_dolly_dataset(const World& world, std::int64_t n, std::uint64_t seed);
SftDataset make_alpaca_dataset(const World& world, std::int64_t n, std::uint64_t seed);

// Named lookup used by benches ("gsm8k", "openmathinstruct", "dolly",
// "alpaca").
SftDataset make_dataset_by_name(const World& world, const std::string& name,
                                std::int64_t n, std::uint64_t seed);

// Verify a candidate response against an example's key. This is Extract():
// returns true when the response preserves the reference answer.
bool response_matches(const Vocab& vocab, const SftExample& example,
                      std::span<const TokenId> response);

}  // namespace sdd::data
