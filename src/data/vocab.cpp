#include "data/vocab.hpp"

#include <sstream>
#include <stdexcept>

namespace sdd::data {
namespace {

// Word lists shared by the task grammars in world.cpp / math_gen.cpp. Adding
// a word here is the only way to grow the language.
const char* const kSpecials[] = {"<pad>", "<bos>", "<eos>", "<sep>"};

const char* const kWords[] = {
    // punctuation & operators
    ".", ",", "?", ";", ":", "+", "-", "*", "=",
    // prompt markers
    "q", "a", "ans",
    // math narrative
    "has", "had", "buys", "gives", "loses", "finds", "eats", "makes", "sells",
    "more", "each", "twice", "double", "now", "left", "total", "altogether",
    "how", "many", "does", "do", "have", "we", "compute", "then", "so", "the",
    "answer", "is", "step", "start", "with", "solve", "therefore", "result",
    "thus", "final", "get", "gets",
    // people
    "tom", "sam", "mia", "leo", "ana", "max", "eva", "ben", "zoe", "kai",
    "lily", "rex",
    // countable objects
    "apples", "coins", "books", "pens", "cards", "shells", "stones", "stars",
    // animals & their sounds
    "cat", "dog", "cow", "duck", "fox", "owl", "bee", "frog",
    "meows", "barks", "moos", "quacks", "yips", "hoots", "buzzes", "croaks",
    // science world: substances, processes, effects
    "ice", "iron", "wood", "gold", "salt", "wax", "snow", "glass",
    "heat", "cool", "strike", "soak",
    "melts", "rusts", "burns", "shines", "dissolves", "hardens", "freezes",
    "breaks", "bends", "cracks", "glows", "shatters",
    // classification domains and classes
    "chemistry", "biology", "physics", "history",
    "metal", "liquid", "gas", "solid", "plant", "animal", "ancient", "modern",
    "classified", "as", "in", "belongs", "class", "of",
    // routine stories
    "opens", "closes", "walks", "sits", "reads", "writes", "sleeps", "runs",
    "jumps", "swims", "climbs", "rests", "cooks", "drinks", "sings", "paints",
    "door", "down", "up", "out", "home", "away",
    // colors and things
    "sky", "grass", "sun", "blood", "coal", "cloud",
    "blue", "green", "yellow", "red", "white", "black", "gray", "brown",
    // truthfulness framing
    "fact", "myth", "people", "say", "really", "what", "happens", "when",
    "you", "it", "to", "about", "tell", "me", "true", "that",
    // instructions (alpaca-style)
    "repeat", "word", "times", "count", "words", "list", "color", "first",
    "last", "reverse", "items", "letter", "begins",
    // glue
    "and", "an", "because", "was", "hungry", "tired", "happy", "big", "small",
    "his", "her", "their", "they", "he", "she", "at", "on", "by",
};

}  // namespace

Vocab::Vocab() {
  const auto add = [this](std::string word) {
    const TokenId id = static_cast<TokenId>(tokens_.size());
    auto [it, inserted] = index_.emplace(std::move(word), id);
    if (!inserted) throw std::logic_error("Vocab: duplicate word " + it->first);
    tokens_.push_back(it->first);
    return id;
  };

  pad_ = add(kSpecials[0]);
  bos_ = add(kSpecials[1]);
  eos_ = add(kSpecials[2]);
  sep_ = add(kSpecials[3]);

  first_number_ = static_cast<TokenId>(tokens_.size());
  for (std::int64_t n = 0; n <= kMaxNumber; ++n) add(std::to_string(n));

  for (const char* word : kWords) add(word);
}

const Vocab& Vocab::instance() {
  static const Vocab vocab;
  return vocab;
}

TokenId Vocab::id(std::string_view word) const {
  const auto it = index_.find(std::string{word});
  if (it == index_.end()) {
    throw std::invalid_argument("Vocab: unknown word '" + std::string{word} + "'");
  }
  return it->second;
}

std::optional<TokenId> Vocab::try_id(std::string_view word) const {
  const auto it = index_.find(std::string{word});
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Vocab::word(TokenId id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("Vocab: bad token id");
  return tokens_[static_cast<std::size_t>(id)];
}

std::vector<TokenId> Vocab::encode(std::string_view text) const {
  std::vector<TokenId> ids;
  std::istringstream stream{std::string{text}};
  std::string word;
  while (stream >> word) ids.push_back(id(word));
  return ids;
}

std::string Vocab::decode(std::span<const TokenId> ids) const {
  std::string text;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) text += ' ';
    text += word(ids[i]);
  }
  return text;
}

TokenId Vocab::number_token(std::int64_t value) const {
  if (value < 0 || value > kMaxNumber) {
    throw std::out_of_range("Vocab: number out of range: " + std::to_string(value));
  }
  return first_number_ + static_cast<TokenId>(value);
}

std::optional<std::int64_t> Vocab::token_number(TokenId id) const {
  if (id >= first_number_ && id < first_number_ + kMaxNumber + 1) {
    return id - first_number_;
  }
  return std::nullopt;
}

std::string join_words(std::initializer_list<std::string_view> words) {
  std::string text;
  for (const std::string_view word : words) {
    if (!text.empty()) text += ' ';
    text += word;
  }
  return text;
}

std::optional<std::int64_t> last_number(const Vocab& vocab,
                                        std::span<const TokenId> ids) {
  for (std::size_t i = ids.size(); i > 0; --i) {
    if (const auto value = vocab.token_number(ids[i - 1])) return value;
  }
  return std::nullopt;
}

}  // namespace sdd::data
