// Closed word-level vocabulary for the synthetic language.
//
// Every dataset, prompt, and generation in this repository is built from this
// fixed vocabulary, which plays the role of the paper's tokenizer. Unknown
// words throw, which turns template typos into immediate test failures
// instead of silent <unk> degradation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sdd::data {

using TokenId = std::int32_t;

class Vocab {
 public:
  // The canonical vocabulary shared by all experiments (process-wide const).
  static const Vocab& instance();

  std::int64_t size() const { return static_cast<std::int64_t>(tokens_.size()); }

  TokenId id(std::string_view word) const;             // throws on unknown words
  std::optional<TokenId> try_id(std::string_view word) const;
  const std::string& word(TokenId id) const;           // throws on bad id

  // Encode a space-separated string. No normalization: callers build text
  // from vocabulary words by construction.
  std::vector<TokenId> encode(std::string_view text) const;
  std::string decode(std::span<const TokenId> ids) const;

  // Special tokens.
  TokenId pad() const { return pad_; }
  TokenId bos() const { return bos_; }
  TokenId eos() const { return eos_; }
  TokenId sep() const { return sep_; }

  // Numbers 0..99 are single tokens; these helpers map between the numeric
  // value and its token id.
  TokenId number_token(std::int64_t value) const;      // throws outside [0, 99]
  std::optional<std::int64_t> token_number(TokenId id) const;
  static constexpr std::int64_t kMaxNumber = 99;

 private:
  Vocab();

  std::vector<std::string> tokens_;
  std::unordered_map<std::string, TokenId> index_;
  TokenId pad_ = 0, bos_ = 0, eos_ = 0, sep_ = 0;
  TokenId first_number_ = 0;  // token id of "0"
};

// Join vocabulary words with single spaces (template building helper).
std::string join_words(std::initializer_list<std::string_view> words);

// The numeric value of the last number token in `ids`, if any. This is the
// Extract() primitive for math-style tasks.
std::optional<std::int64_t> last_number(const Vocab& vocab,
                                        std::span<const TokenId> ids);

}  // namespace sdd::data
