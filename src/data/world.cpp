#include "data/world.hpp"

#include <stdexcept>

#include "data/vocab.hpp"

namespace sdd::data {
namespace {

const std::vector<std::string> kAnimals = {"cat", "dog",  "cow", "duck",
                                           "fox", "owl", "bee", "frog"};
const std::vector<std::string> kSounds = {"meows", "barks",  "moos",   "quacks",
                                          "yips",  "hoots", "buzzes", "croaks"};
const std::vector<std::string> kSubstances = {"ice",  "iron", "wood", "gold",
                                              "salt", "wax",  "snow", "glass"};
const std::vector<std::string> kProcesses = {"heat", "cool", "strike", "soak"};
const std::vector<std::string> kEffects = {
    "melts",   "rusts",   "burns",  "shines", "dissolves", "hardens",
    "freezes", "breaks",  "bends",  "cracks", "glows",     "shatters"};
const std::vector<std::string> kDomains = {"chemistry", "biology", "physics",
                                           "history"};
const std::vector<std::string> kClasses = {"metal", "liquid", "gas",     "solid",
                                           "plant", "animal", "ancient", "modern"};
const std::vector<std::string> kActors = {"tom", "sam", "mia", "leo", "ana", "max"};
const std::vector<std::string> kActions = {
    "opens", "closes", "walks", "sits",   "reads",  "writes", "sleeps", "runs",
    "jumps", "swims",  "climbs", "rests", "cooks",  "drinks", "sings",  "paints"};
const std::vector<std::string> kThings = {"sky", "grass", "sun", "blood", "coal",
                                          "cloud", "snow", "gold"};
const std::vector<std::string> kColors = {"blue",  "green", "yellow", "red",
                                          "white", "black", "gray",   "brown"};

// Sanity check that every world word exists in the vocabulary; this runs once
// per world and converts grammar drift into a loud failure.
void check_in_vocab(const std::vector<std::string>& words) {
  const Vocab& vocab = Vocab::instance();
  for (const std::string& word : words) (void)vocab.id(word);
}

}  // namespace

World::World(std::uint64_t seed) : seed_{seed} {
  check_in_vocab(kAnimals);
  check_in_vocab(kSounds);
  check_in_vocab(kSubstances);
  check_in_vocab(kProcesses);
  check_in_vocab(kEffects);
  check_in_vocab(kDomains);
  check_in_vocab(kClasses);
  check_in_vocab(kActors);
  check_in_vocab(kActions);
  check_in_vocab(kThings);
  check_in_vocab(kColors);

  Rng rng{seed};

  // Animal sounds: a seeded bijection between animals and sounds.
  animals_ = kAnimals;
  sound_pool_ = kSounds;
  animal_sounds_ = kSounds;
  rng.shuffle(animal_sounds_);

  // Cause/effect: every (process, substance) pair maps to one effect, chosen
  // so that the same substance reacts differently to different processes.
  effect_pool_ = kEffects;
  for (const std::string& process : kProcesses) {
    std::vector<std::string> effects = kEffects;
    rng.shuffle(effects);
    for (std::size_t i = 0; i < kSubstances.size(); ++i) {
      cause_effects_.push_back(CauseEffectFact{process, kSubstances[i], effects[i]});
    }
  }

  // Domain classification: each domain classifies every substance/animal-like
  // item into one of two domain-specific classes.
  class_pool_ = kClasses;
  for (std::size_t d = 0; d < kDomains.size(); ++d) {
    const std::string& class_a = kClasses[2 * d];
    const std::string& class_b = kClasses[2 * d + 1];
    for (const std::string& item : kSubstances) {
      const std::string& klass = rng.bernoulli(0.5) ? class_a : class_b;
      classifications_.push_back(ClassificationFact{kDomains[d], item, klass});
    }
  }

  // Routines: each actor has a fixed 4-action daily routine. Continuations
  // are predictable for a model that learned the routine.
  action_pool_ = kActions;
  for (const std::string& actor : kActors) {
    std::vector<std::string> actions = kActions;
    rng.shuffle(actions);
    actions.resize(4);
    routines_.push_back(Routine{actor, std::move(actions)});
  }

  // Color facts with a designated popular misconception.
  color_pool_ = kColors;
  for (std::size_t i = 0; i < kThings.size(); ++i) {
    std::vector<std::string> colors = kColors;
    rng.shuffle(colors);
    color_facts_.push_back(ColorFact{kThings[i], colors[0], colors[1]});
  }
}

const std::string& World::sound_of(const std::string& animal) const {
  for (std::size_t i = 0; i < animals_.size(); ++i) {
    if (animals_[i] == animal) return animal_sounds_[i];
  }
  throw std::invalid_argument("World: unknown animal " + animal);
}

}  // namespace sdd::data
