// The seeded synthetic knowledge base ("world") that plays the role of the
// factual content of the paper's pre-training data.
//
// Every fact family below backs one of the µ-evaluation tasks:
//   animal sounds            -> µWinogrande-style binary choice
//   substance x process      -> µARC-C cause/effect multiple choice
//   domain classification    -> µMMLU multiple choice
//   daily routines           -> µHellaSwag continuation choice
//   colors + misconceptions  -> µTruthfulQA
// The same world instance generates the pre-training corpus, so eval items
// test knowledge the base model actually acquired (and pruning can destroy).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sdd::data {

struct CauseEffectFact {
  std::string process;    // e.g. "heat"
  std::string substance;  // e.g. "ice"
  std::string effect;     // e.g. "melts"
};

struct ClassificationFact {
  std::string domain;  // e.g. "chemistry"
  std::string item;    // e.g. "gold"
  std::string klass;   // e.g. "metal"
};

struct Routine {
  std::string actor;                 // e.g. "tom"
  std::vector<std::string> actions;  // ordered verbs, length >= 3
};

struct ColorFact {
  std::string thing;          // e.g. "sky"
  std::string color;          // true color
  std::string popular_error;  // the tempting wrong answer people "say"
};

class World {
 public:
  explicit World(std::uint64_t seed = 42);

  const std::vector<std::string>& animals() const { return animals_; }
  const std::string& sound_of(const std::string& animal) const;

  const std::vector<CauseEffectFact>& cause_effects() const { return cause_effects_; }
  const std::vector<ClassificationFact>& classifications() const {
    return classifications_;
  }
  const std::vector<Routine>& routines() const { return routines_; }
  const std::vector<ColorFact>& color_facts() const { return color_facts_; }

  // All effect words / class words (used as distractor pools).
  const std::vector<std::string>& effect_pool() const { return effect_pool_; }
  const std::vector<std::string>& class_pool() const { return class_pool_; }
  const std::vector<std::string>& sound_pool() const { return sound_pool_; }
  const std::vector<std::string>& action_pool() const { return action_pool_; }
  const std::vector<std::string>& color_pool() const { return color_pool_; }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::vector<std::string> animals_;
  std::vector<std::string> sound_pool_;
  std::vector<std::string> animal_sounds_;  // parallel to animals_
  std::vector<CauseEffectFact> cause_effects_;
  std::vector<ClassificationFact> classifications_;
  std::vector<Routine> routines_;
  std::vector<ColorFact> color_facts_;
  std::vector<std::string> effect_pool_;
  std::vector<std::string> class_pool_;
  std::vector<std::string> action_pool_;
  std::vector<std::string> color_pool_;
};

}  // namespace sdd::data
