#include "eval/embedding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "eval/harness.hpp"

namespace sdd::eval {

std::vector<float> sentence_embedding(const nn::TransformerLM& embedder,
                                      std::span<const data::TokenId> ids) {
  if (ids.empty()) {
    // Degenerate generation: embed the <eos> token alone.
    const std::vector<data::TokenId> fallback{data::Vocab::instance().eos()};
    return sentence_embedding(embedder, fallback);
  }
  NoGradGuard no_grad;
  const std::vector<data::TokenId> tokens{ids.begin(), ids.end()};
  const auto states = embedder.hidden_states(
      tokens, /*batch=*/1, static_cast<std::int64_t>(tokens.size()));
  const std::vector<float>& last = states.back();
  const std::int64_t channels = embedder.config().d_model;
  const auto positions = static_cast<std::int64_t>(tokens.size());

  std::vector<float> pooled(static_cast<std::size_t>(channels), 0.0F);
  for (std::int64_t p = 0; p < positions; ++p) {
    for (std::int64_t c = 0; c < channels; ++c) {
      pooled[static_cast<std::size_t>(c)] +=
          last[static_cast<std::size_t>(p * channels + c)];
    }
  }
  for (float& v : pooled) v /= static_cast<float>(positions);
  return pooled;
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("cosine_similarity: size mismatch");
  }
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    norm_a += static_cast<double>(a[i]) * a[i];
    norm_b += static_cast<double>(b[i]) * b[i];
  }
  const double denom = std::sqrt(norm_a) * std::sqrt(norm_b);
  return denom > 0.0 ? dot / denom : 0.0;
}

SimilarityStats summarize(std::vector<double> values) {
  SimilarityStats stats;
  stats.values = std::move(values);
  if (stats.values.empty()) return stats;
  double total = 0.0;
  stats.min = stats.values.front();
  stats.max = stats.values.front();
  for (double v : stats.values) {
    total += v;
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = total / static_cast<double>(stats.values.size());
  double sq = 0.0;
  for (double v : stats.values) sq += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(sq / static_cast<double>(stats.values.size()));
  return stats;
}

std::vector<double> SimilarityStats::histogram(int bins, double lo, double hi) const {
  if (bins <= 0 || hi <= lo) throw std::invalid_argument("histogram: bad bins/range");
  std::vector<double> counts(static_cast<std::size_t>(bins), 0.0);
  for (double v : values) {
    const double unit = (v - lo) / (hi - lo);
    const int bin = std::clamp(static_cast<int>(unit * bins), 0, bins - 1);
    counts[static_cast<std::size_t>(bin)] += 1.0;
  }
  if (!values.empty()) {
    for (double& c : counts) c /= static_cast<double>(values.size());
  }
  return counts;
}

SimilarityStats embedding_shift(const nn::TransformerLM& test_model,
                                const nn::TransformerLM& baseline,
                                const nn::TransformerLM& embedder,
                                const data::GenTask& task, std::int64_t max_items) {
  const data::Vocab& vocab = data::Vocab::instance();
  const auto n = std::min<std::int64_t>(
      max_items, static_cast<std::int64_t>(task.items.size()));
  std::vector<double> similarities;
  similarities.reserve(static_cast<std::size_t>(n));

  for (std::int64_t i = 0; i < n; ++i) {
    const data::GenItem& item = task.items[static_cast<std::size_t>(i)];
    std::vector<data::TokenId> prompt;
    prompt.push_back(vocab.bos());
    prompt.insert(prompt.end(), item.prompt.begin(), item.prompt.end());

    const std::vector<data::TokenId> test_response =
        answer_generative(test_model, prompt);
    const std::vector<data::TokenId> base_response =
        answer_generative(baseline, prompt);
    const std::vector<float> test_embedding =
        sentence_embedding(embedder, test_response);
    const std::vector<float> base_embedding =
        sentence_embedding(embedder, base_response);
    similarities.push_back(cosine_similarity(test_embedding, base_embedding));
  }
  return summarize(std::move(similarities));
}

}  // namespace sdd::eval
