// Distribution-shift diagnostics (paper Figure 2 right, Appendix C).
//
// The paper embeds model generations with Sentence-BERT and measures their
// cosine similarity to the baseline model's generations. Our stand-in
// embedder is the unpruned baseline LM itself: a sentence embedding is the
// mean-pooled final residual-stream state over the sentence tokens. The
// comparison is relative (same embedder for every model), which is all the
// figure needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/evalset.hpp"
#include "nn/transformer.hpp"

namespace sdd::eval {

std::vector<float> sentence_embedding(const nn::TransformerLM& embedder,
                                      std::span<const data::TokenId> ids);

double cosine_similarity(std::span<const float> a, std::span<const float> b);

struct SimilarityStats {
  std::vector<double> values;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  // Normalized histogram over [lo, hi].
  std::vector<double> histogram(int bins, double lo = 0.0, double hi = 1.0) const;
};

SimilarityStats summarize(std::vector<double> values);

// For up to `max_items` task prompts: generate with `test_model` and with
// `baseline`, embed both generations with `embedder`, and record the cosine
// similarity. Higher/tighter = less distribution shift.
SimilarityStats embedding_shift(const nn::TransformerLM& test_model,
                                const nn::TransformerLM& baseline,
                                const nn::TransformerLM& embedder,
                                const data::GenTask& task, std::int64_t max_items);

}  // namespace sdd::eval
