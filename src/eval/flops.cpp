#include "eval/flops.hpp"

#include <stdexcept>

namespace sdd::eval {

std::int64_t analytic_param_count(const nn::ModelConfig& config) {
  const std::int64_t d = config.d_model;
  const std::int64_t per_layer = 4 * d * d        // wq, wk, wv, wo
                                 + 3 * d * config.d_ff  // gate, up, down
                                 + 2 * d;          // two RMSNorm gains
  return config.vocab_size * d      // tied embedding / output head
         + config.n_layers * per_layer
         + d;                        // final RMSNorm
}

std::int64_t flops_per_token(const nn::ModelConfig& config, std::int64_t context_len) {
  if (context_len <= 0) throw std::invalid_argument("flops_per_token: bad context");
  const std::int64_t d = config.d_model;
  // Per layer: 4 projections (2*d*d mult-adds each counted as 2 FLOPs),
  // attention scores + mixing over the context, and the SwiGLU MLP.
  const std::int64_t proj = 4 * 2 * d * d;
  const std::int64_t attn = 2 * 2 * context_len * d;
  const std::int64_t mlp = 3 * 2 * d * config.d_ff;
  const std::int64_t per_layer = proj + attn + mlp;
  const std::int64_t head = 2 * config.vocab_size * d;
  return config.n_layers * per_layer + head;
}

ModelCost model_cost(const nn::ModelConfig& config, std::int64_t context_len) {
  return ModelCost{analytic_param_count(config), flops_per_token(config, context_len)};
}

double param_savings(const nn::ModelConfig& base, const nn::ModelConfig& pruned) {
  const auto base_params = static_cast<double>(analytic_param_count(base));
  return (base_params - static_cast<double>(analytic_param_count(pruned))) /
         base_params;
}

double flop_savings(const nn::ModelConfig& base, const nn::ModelConfig& pruned,
                    std::int64_t context_len) {
  const auto base_flops = static_cast<double>(flops_per_token(base, context_len));
  return (base_flops - static_cast<double>(flops_per_token(pruned, context_len))) /
         base_flops;
}

}  // namespace sdd::eval
