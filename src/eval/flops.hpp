// Parameter and FLOP accounting for the "Model Savings" column of Table 1
// (paper reports parameter reduction and real-world FLOP savings per pruned
// block size).
#pragma once

#include <cstdint>

#include "nn/config.hpp"

namespace sdd::eval {

struct ModelCost {
  std::int64_t params = 0;            // total trainable parameters
  std::int64_t flops_per_token = 0;   // forward FLOPs for one token at a
                                      // given context length (mults+adds)
};

// Analytic parameter count for a config (matches TransformerLM::param_count).
std::int64_t analytic_param_count(const nn::ModelConfig& config);

// Forward FLOPs per generated token with `context_len` tokens of KV context.
std::int64_t flops_per_token(const nn::ModelConfig& config, std::int64_t context_len);

ModelCost model_cost(const nn::ModelConfig& config, std::int64_t context_len);

// Fractional savings of `pruned` relative to `base` (e.g. 0.1630 = 16.30%).
double param_savings(const nn::ModelConfig& base, const nn::ModelConfig& pruned);
double flop_savings(const nn::ModelConfig& base, const nn::ModelConfig& pruned,
                    std::int64_t context_len);

}  // namespace sdd::eval
