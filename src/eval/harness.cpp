#include "eval/harness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace sdd::eval {
namespace {

using data::TokenId;

// Assemble "<bos> [exemplar]* item-context" and truncate exemplars (from the
// front) if the longest option would overflow the context window.
std::vector<TokenId> build_mc_context(const data::McTask& task,
                                      const data::McItem& item, int shots,
                                      std::int64_t max_seq, Rng& rng) {
  std::int64_t longest_option = 0;
  for (const auto& option : item.options) {
    longest_option =
        std::max(longest_option, static_cast<std::int64_t>(option.size()));
  }

  std::vector<std::vector<TokenId>> exemplars;
  for (int s = 0; s < shots && !task.fewshot_pool.empty(); ++s) {
    const data::McItem& shot = task.fewshot_pool[rng.index(task.fewshot_pool.size())];
    std::vector<TokenId> block{shot.context};
    const auto& gold = shot.options[shot.correct];
    block.insert(block.end(), gold.begin(), gold.end());
    exemplars.push_back(std::move(block));
  }

  std::vector<TokenId> context;
  context.push_back(data::Vocab::instance().bos());
  for (;;) {
    std::int64_t total = 1 + static_cast<std::int64_t>(item.context.size()) +
                         longest_option;
    for (const auto& exemplar : exemplars) {
      total += static_cast<std::int64_t>(exemplar.size());
    }
    if (total <= max_seq || exemplars.empty()) break;
    exemplars.erase(exemplars.begin());
  }
  for (const auto& exemplar : exemplars) {
    context.insert(context.end(), exemplar.begin(), exemplar.end());
  }
  context.insert(context.end(), item.context.begin(), item.context.end());
  return context;
}

// Score all options of one item with a single padded batch forward; returns
// the argmax option by mean token log-likelihood.
std::size_t score_mc_item(const nn::TransformerLM& model,
                          const std::vector<TokenId>& context,
                          const std::vector<std::vector<TokenId>>& options) {
  const auto n_options = static_cast<std::int64_t>(options.size());
  const auto context_len = static_cast<std::int64_t>(context.size());
  std::int64_t seq = 0;
  for (const auto& option : options) {
    seq = std::max(seq, context_len + static_cast<std::int64_t>(option.size()));
  }

  const TokenId pad = data::Vocab::instance().pad();
  std::vector<TokenId> ids(static_cast<std::size_t>(n_options * seq), pad);
  for (std::int64_t o = 0; o < n_options; ++o) {
    std::copy(context.begin(), context.end(), ids.begin() + o * seq);
    const auto& option = options[static_cast<std::size_t>(o)];
    std::copy(option.begin(), option.end(), ids.begin() + o * seq + context_len);
  }

  const Tensor logits = model.forward(ids, n_options, seq);
  const std::int64_t vocab = model.config().vocab_size;
  const float* data = logits.data().data();

  double best_score = -1e300;
  std::size_t best_option = 0;
  for (std::int64_t o = 0; o < n_options; ++o) {
    const auto& option = options[static_cast<std::size_t>(o)];
    double total = 0.0;
    for (std::int64_t k = 0; k < static_cast<std::int64_t>(option.size()); ++k) {
      // Position (context_len - 1 + k) predicts option token k.
      const float* row = data + (o * seq + context_len - 1 + k) * vocab;
      const float max_logit = *std::max_element(row, row + vocab);
      double sum = 0.0;
      for (std::int64_t v = 0; v < vocab; ++v) {
        sum += std::exp(static_cast<double>(row[v] - max_logit));
      }
      const TokenId target = option[static_cast<std::size_t>(k)];
      total += static_cast<double>(row[target] - max_logit) - std::log(sum);
    }
    const double normalized = total / static_cast<double>(option.size());
    if (normalized > best_score) {
      best_score = normalized;
      best_option = static_cast<std::size_t>(o);
    }
  }
  return best_option;
}

}  // namespace

TaskResult evaluate_mc(const nn::TransformerLM& model, const data::McTask& task,
                       const EvalOptions& options) {
  NoGradGuard no_grad;
  const int shots = options.shots >= 0 ? options.shots : task.default_shots;
  const auto n = options.max_items >= 0
                     ? std::min<std::int64_t>(options.max_items,
                                              static_cast<std::int64_t>(task.items.size()))
                     : static_cast<std::int64_t>(task.items.size());
  Rng rng{options.seed};

  TaskResult result;
  result.task = task.name;
  result.n_items = n;
  for (std::int64_t i = 0; i < n; ++i) {
    const data::McItem& item = task.items[static_cast<std::size_t>(i)];
    const std::vector<TokenId> context =
        build_mc_context(task, item, shots, model.config().max_seq_len, rng);
    if (score_mc_item(model, context, item.options) == item.correct) {
      ++result.n_correct;
    }
  }
  result.accuracy =
      n > 0 ? static_cast<double>(result.n_correct) / static_cast<double>(n) : 0.0;
  return result;
}

std::vector<data::TokenId> answer_generative(const nn::TransformerLM& model,
                                             std::span<const data::TokenId> prompt,
                                             std::int64_t max_new_tokens) {
  NoGradGuard no_grad;
  const data::Vocab& vocab = data::Vocab::instance();
  const TokenId stop_eos = vocab.eos();
  const TokenId stop_q = vocab.id("q");

  auto state = model.make_decode_state();
  std::vector<float> logits;
  for (TokenId token : prompt) logits = model.decode_step(state, token);

  std::vector<TokenId> generated;
  const std::int64_t budget =
      std::min(max_new_tokens, model.config().max_seq_len -
                                   static_cast<std::int64_t>(prompt.size()));
  for (std::int64_t i = 0; i < budget; ++i) {
    const auto next = static_cast<TokenId>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    if (next == stop_eos || next == stop_q) break;
    generated.push_back(next);
    if (i + 1 < budget) logits = model.decode_step(state, next);
  }
  return generated;
}

TaskResult evaluate_gen(const nn::TransformerLM& model, const data::GenTask& task,
                        const EvalOptions& options) {
  NoGradGuard no_grad;
  const data::Vocab& vocab = data::Vocab::instance();
  const int shots = options.shots >= 0 ? options.shots : task.default_shots;
  const auto n = options.max_items >= 0
                     ? std::min<std::int64_t>(options.max_items,
                                              static_cast<std::int64_t>(task.items.size()))
                     : static_cast<std::int64_t>(task.items.size());
  Rng rng{options.seed};

  TaskResult result;
  result.task = task.name;
  result.n_items = n;
  for (std::int64_t i = 0; i < n; ++i) {
    const data::GenItem& item = task.items[static_cast<std::size_t>(i)];

    std::vector<TokenId> prompt;
    prompt.push_back(vocab.bos());
    std::vector<std::vector<TokenId>> exemplars;
    for (int s = 0; s < shots && !task.fewshot_pool.empty(); ++s) {
      const data::GenItem& shot =
          task.fewshot_pool[rng.index(task.fewshot_pool.size())];
      std::vector<TokenId> block{shot.prompt};
      block.insert(block.end(), shot.reference.begin(), shot.reference.end());
      exemplars.push_back(std::move(block));
    }
    // Keep room for the generation budget.
    constexpr std::int64_t kGenBudget = 40;
    for (;;) {
      std::int64_t total = 1 + static_cast<std::int64_t>(item.prompt.size()) +
                           kGenBudget;
      for (const auto& exemplar : exemplars) {
        total += static_cast<std::int64_t>(exemplar.size());
      }
      if (total <= model.config().max_seq_len || exemplars.empty()) break;
      exemplars.erase(exemplars.begin());
    }
    for (const auto& exemplar : exemplars) {
      prompt.insert(prompt.end(), exemplar.begin(), exemplar.end());
    }
    prompt.insert(prompt.end(), item.prompt.begin(), item.prompt.end());

    const std::vector<TokenId> response =
        answer_generative(model, prompt, kGenBudget);
    const auto extracted = data::last_number(vocab, response);
    if (extracted.has_value() && *extracted == item.answer) ++result.n_correct;
  }
  result.accuracy =
      n > 0 ? static_cast<double>(result.n_correct) / static_cast<double>(n) : 0.0;
  return result;
}

}  // namespace sdd::eval
