// Evaluation harness following lm-eval-harness conventions:
//   - multiple-choice tasks: k-shot prompt, options scored by
//     length-normalized log-likelihood of the continuation (acc_norm)
//   - generative tasks: k-shot prompt, greedy decode, exact match on the
//     extracted final answer
#pragma once

#include <cstdint>
#include <string>

#include "data/evalset.hpp"
#include "nn/transformer.hpp"

namespace sdd::eval {

struct EvalOptions {
  int shots = -1;               // -1 => task default
  std::int64_t max_items = -1;  // -1 => all items
  std::uint64_t seed = 3407;    // few-shot exemplar sampling
};

struct TaskResult {
  std::string task;
  double accuracy = 0.0;
  std::int64_t n_items = 0;
  std::int64_t n_correct = 0;
};

TaskResult evaluate_mc(const nn::TransformerLM& model, const data::McTask& task,
                       const EvalOptions& options = {});

TaskResult evaluate_gen(const nn::TransformerLM& model, const data::GenTask& task,
                        const EvalOptions& options = {});

// Greedy-decode a response for one generative item (used by the embedding
// diagnostics); stops at <eos>, at the start of a new "q" turn, or after
// `max_new_tokens`.
std::vector<data::TokenId> answer_generative(const nn::TransformerLM& model,
                                             std::span<const data::TokenId> prompt,
                                             std::int64_t max_new_tokens = 40);

}  // namespace sdd::eval
