#include "eval/perplexity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sdd::eval {

PerplexityResult perplexity(
    const nn::TransformerLM& model,
    const std::vector<std::vector<data::TokenId>>& sequences) {
  if (sequences.empty()) throw std::invalid_argument("perplexity: no sequences");
  NoGradGuard no_grad;

  double total_nll = 0.0;
  std::int64_t total_tokens = 0;
  const std::int64_t vocab = model.config().vocab_size;

  for (const std::vector<data::TokenId>& sequence : sequences) {
    if (sequence.size() < 2) continue;
    const auto seq = static_cast<std::int64_t>(sequence.size());
    if (seq > model.config().max_seq_len) {
      throw std::invalid_argument("perplexity: sequence exceeds context window");
    }
    const Tensor logits = model.forward(sequence, 1, seq);
    const float* data = logits.data().data();
    for (std::int64_t t = 0; t + 1 < seq; ++t) {
      const float* row = data + t * vocab;
      const float max_logit = *std::max_element(row, row + vocab);
      double sum = 0.0;
      for (std::int64_t v = 0; v < vocab; ++v) {
        sum += std::exp(static_cast<double>(row[v] - max_logit));
      }
      const data::TokenId target = sequence[static_cast<std::size_t>(t + 1)];
      total_nll -= static_cast<double>(row[target] - max_logit) - std::log(sum);
      ++total_tokens;
    }
  }
  if (total_tokens == 0) throw std::invalid_argument("perplexity: nothing to score");

  PerplexityResult result;
  result.tokens = total_tokens;
  result.nll = total_nll / static_cast<double>(total_tokens);
  result.perplexity = std::exp(result.nll);
  return result;
}

}  // namespace sdd::eval
