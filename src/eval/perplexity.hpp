// Held-out perplexity diagnostics.
//
// Perplexity on the calibration slice is the cheapest global-quality signal
// for a pruned/recovered model and complements the task suite (the paper's
// related work routinely reports it alongside accuracy).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/vocab.hpp"
#include "nn/transformer.hpp"

namespace sdd::eval {

struct PerplexityResult {
  double nll = 0.0;         // mean negative log-likelihood per predicted token
  double perplexity = 1.0;  // exp(nll)
  std::int64_t tokens = 0;  // number of predictions scored
};

// Mean next-token NLL/perplexity over the given sequences (each scored with
// one batched forward; sequences may have different lengths).
PerplexityResult perplexity(const nn::TransformerLM& model,
                            const std::vector<std::vector<data::TokenId>>& sequences);

}  // namespace sdd::eval
