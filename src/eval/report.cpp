#include "eval/report.hpp"

#include <fstream>
#include <stdexcept>

#include "util/json.hpp"

namespace sdd::eval {
namespace {

void write_scores(JsonWriter& json, const SuiteScores& scores) {
  json.begin_object();
  json.key("tasks").begin_object();
  for (const auto& [task, accuracy] : scores.tasks) json.field(task, accuracy);
  json.end_object();
  json.field("average", scores.average);
  json.end_object();
}

}  // namespace

ExperimentReport::ExperimentReport(std::string experiment_id, std::string description)
    : experiment_id_{std::move(experiment_id)},
      description_{std::move(description)} {}

void ExperimentReport::set_baseline(const SuiteScores& scores) {
  baseline_ = scores;
  has_baseline_ = true;
}

void ExperimentReport::add(ReportEntry entry) { entries_.push_back(std::move(entry)); }

std::string ExperimentReport::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.field("experiment", experiment_id_);
  json.field("description", description_);
  if (has_baseline_) {
    json.key("baseline");
    write_scores(json, baseline_);
  }
  json.key("entries").begin_array();
  for (const ReportEntry& entry : entries_) {
    json.begin_object();
    json.field("label", entry.model_label);
    json.field("method", entry.method);
    json.field("prune_block", entry.prune_block);
    json.field("dataset", entry.dataset);
    json.field("dataset_size", entry.dataset_size);
    json.key("scores");
    write_scores(json, entry.scores);
    json.field("recovery_percent", entry.recovery_percent);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

void ExperimentReport::write(const std::filesystem::path& path) const {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("ExperimentReport: cannot write " + path.string());
  out << to_json() << '\n';
}

}  // namespace sdd::eval
