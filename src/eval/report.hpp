// Machine-readable experiment reports (lm-eval-harness-style JSON), so bench
// results can be post-processed/plotted outside this repo.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "eval/suite.hpp"

namespace sdd::eval {

struct ReportEntry {
  std::string model_label;           // e.g. "block3/self_data_distill/omi-1600"
  std::string method;                // "no_ft", "sft", "self_data_distill", ...
  std::int64_t prune_block = 0;
  std::string dataset;
  std::int64_t dataset_size = 0;
  SuiteScores scores;
  double recovery_percent = 0.0;
};

class ExperimentReport {
 public:
  ExperimentReport(std::string experiment_id, std::string description);

  void set_baseline(const SuiteScores& scores);
  void add(ReportEntry entry);

  std::size_t size() const { return entries_.size(); }

  // Serialized JSON document with metadata, baseline, and all entries.
  std::string to_json() const;
  void write(const std::filesystem::path& path) const;

 private:
  std::string experiment_id_;
  std::string description_;
  SuiteScores baseline_;
  bool has_baseline_ = false;
  std::vector<ReportEntry> entries_;
};

}  // namespace sdd::eval
