#include "eval/self_consistency.hpp"

#include <algorithm>
#include <map>

#include "nn/decode.hpp"

namespace sdd::eval {

std::optional<std::int64_t> self_consistent_answer(
    const nn::TransformerLM& model, std::span<const data::TokenId> prompt,
    const SelfConsistencyOptions& options) {
  NoGradGuard no_grad;
  const data::Vocab& vocab = data::Vocab::instance();

  std::map<std::int64_t, int> votes;
  for (int s = 0; s < std::max(1, options.samples); ++s) {
    nn::GenerateOptions gen;
    gen.max_new_tokens = options.max_new_tokens;
    gen.temperature = options.samples <= 1 ? 0.0F : options.temperature;
    gen.stop_token = vocab.eos();
    gen.seed = options.seed + static_cast<std::uint64_t>(s);
    const std::vector<data::TokenId> response = nn::generate(model, prompt, gen);
    if (const auto answer = data::last_number(vocab, response)) {
      ++votes[*answer];
    }
  }
  if (votes.empty()) return std::nullopt;
  const auto best = std::max_element(
      votes.begin(), votes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return best->first;
}

TaskResult evaluate_gen_self_consistent(const nn::TransformerLM& model,
                                        const data::GenTask& task,
                                        const SelfConsistencyOptions& options,
                                        const EvalOptions& eval_options) {
  NoGradGuard no_grad;
  const data::Vocab& vocab = data::Vocab::instance();
  const int shots =
      eval_options.shots >= 0 ? eval_options.shots : task.default_shots;
  const auto n = eval_options.max_items >= 0
                     ? std::min<std::int64_t>(
                           eval_options.max_items,
                           static_cast<std::int64_t>(task.items.size()))
                     : static_cast<std::int64_t>(task.items.size());
  Rng rng{eval_options.seed};

  TaskResult result;
  result.task = task.name + "+self_consistency";
  result.n_items = n;
  for (std::int64_t i = 0; i < n; ++i) {
    const data::GenItem& item = task.items[static_cast<std::size_t>(i)];
    std::vector<data::TokenId> prompt{vocab.bos()};
    for (int s = 0; s < shots && !task.fewshot_pool.empty(); ++s) {
      const data::GenItem& shot =
          task.fewshot_pool[rng.index(task.fewshot_pool.size())];
      prompt.insert(prompt.end(), shot.prompt.begin(), shot.prompt.end());
      prompt.insert(prompt.end(), shot.reference.begin(), shot.reference.end());
    }
    prompt.insert(prompt.end(), item.prompt.begin(), item.prompt.end());
    // Respect the context window (drop to zero-shot if needed).
    if (static_cast<std::int64_t>(prompt.size()) + options.max_new_tokens >
        model.config().max_seq_len) {
      prompt.assign({vocab.bos()});
      prompt.insert(prompt.end(), item.prompt.begin(), item.prompt.end());
    }
    const auto answer = self_consistent_answer(model, prompt, options);
    if (answer.has_value() && *answer == item.answer) ++result.n_correct;
  }
  result.accuracy =
      n > 0 ? static_cast<double>(result.n_correct) / static_cast<double>(n) : 0.0;
  return result;
}

}  // namespace sdd::eval
