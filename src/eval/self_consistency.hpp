// Self-consistency decoding for generative math evaluation (Wang et al.
// style majority voting): sample k solutions at temperature, extract each
// final answer, return the modal answer. An inference-time quality lever
// that composes with pruning + self-data distillation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "data/evalset.hpp"
#include "eval/harness.hpp"
#include "nn/transformer.hpp"

namespace sdd::eval {

struct SelfConsistencyOptions {
  int samples = 5;            // k sampled chains (1 => plain greedy)
  float temperature = 0.7F;
  std::int64_t max_new_tokens = 40;
  std::uint64_t seed = 777;
};

// Majority-vote answer for one prompt; nullopt when no sample yields a
// parseable number. Greedy decoding is used when samples == 1.
std::optional<std::int64_t> self_consistent_answer(
    const nn::TransformerLM& model, std::span<const data::TokenId> prompt,
    const SelfConsistencyOptions& options);

// µGSM8k accuracy under self-consistency (same k-shot protocol as
// evaluate_gen).
TaskResult evaluate_gen_self_consistent(const nn::TransformerLM& model,
                                        const data::GenTask& task,
                                        const SelfConsistencyOptions& options,
                                        const EvalOptions& eval_options = {});

}  // namespace sdd::eval
