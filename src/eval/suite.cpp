#include "eval/suite.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/supervisor.hpp"

namespace sdd::eval {

std::uint64_t SuiteSpec::hash() const {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_value(mc_items, h);
  h = fnv1a_value(gen_items, h);
  h = fnv1a_value(task_seed, h);
  h = fnv1a_value(options.shots, h);
  h = fnv1a_value(options.max_items, h);
  h = fnv1a_value(options.seed, h);
  return h;
}

double SuiteScores::task(const std::string& name) const {
  for (const auto& [task_name, accuracy] : tasks) {
    if (task_name == name) return accuracy;
  }
  throw std::invalid_argument("SuiteScores: no task named " + name);
}

const std::vector<std::string>& openllm_v1_tasks() {
  static const std::vector<std::string> tasks{
      "arc_c", "hellaswag", "truthfulqa", "mmlu", "winogrande", "gsm8k"};
  return tasks;
}

const std::vector<std::string>& core_tasks() {
  static const std::vector<std::string> tasks{"arc_c", "gsm8k", "mmlu"};
  return tasks;
}

TaskResult evaluate_named_task(const nn::TransformerLM& model,
                               const data::World& world, const std::string& task,
                               const SuiteSpec& spec) {
  if (task == "gsm8k") {
    const data::GenTask gen_task =
        data::make_gsm8k_eval_task(spec.gen_items, spec.task_seed);
    return evaluate_gen(model, gen_task, spec.options);
  }
  data::McTask mc_task;
  if (task == "arc_c") {
    mc_task = data::make_arc_task(world, spec.mc_items, spec.task_seed);
  } else if (task == "hellaswag") {
    mc_task = data::make_hellaswag_task(world, spec.mc_items, spec.task_seed);
  } else if (task == "truthfulqa") {
    mc_task = data::make_truthfulqa_task(world, spec.mc_items, spec.task_seed);
  } else if (task == "mmlu") {
    mc_task = data::make_mmlu_task(world, spec.mc_items, spec.task_seed);
  } else if (task == "winogrande") {
    mc_task = data::make_winogrande_task(world, spec.mc_items, spec.task_seed);
  } else {
    throw std::invalid_argument("evaluate_named_task: unknown task " + task);
  }
  return evaluate_mc(model, mc_task, spec.options);
}

SuiteScores evaluate_suite(const nn::TransformerLM& model, const data::World& world,
                           const std::vector<std::string>& tasks,
                           const SuiteSpec& spec) {
  SuiteScores scores;
  double total = 0.0;
  for (const std::string& task : tasks) {
    supervisor::heartbeat();  // liveness signal when run under a watchdog
    const TaskResult result = evaluate_named_task(model, world, task, spec);
    scores.tasks.emplace_back(task, result.accuracy);
    total += result.accuracy;
  }
  scores.average = tasks.empty() ? 0.0 : total / static_cast<double>(tasks.size());
  return scores;
}

double recovery_percent(const SuiteScores& model_scores,
                        const SuiteScores& baseline_scores) {
  if (baseline_scores.average <= 0.0) {
    throw std::invalid_argument("recovery_percent: baseline average is zero");
  }
  return 100.0 * model_scores.average / baseline_scores.average;
}

std::string format_suite_digest(const SuiteScores& scores) {
  std::string out;
  char buffer[64];
  for (const auto& [name, score] : scores.tasks) {
    std::snprintf(buffer, sizeof(buffer), "%.10f", score);
    out += "metric " + name + ' ' + buffer + '\n';
  }
  std::snprintf(buffer, sizeof(buffer), "%.10f", scores.average);
  out += std::string{"metric average "} + buffer + '\n';
  return out;
}

}  // namespace sdd::eval
