// Benchmark suites mirroring the paper's evaluation:
//   - OpenLLM-v1 suite (Table 1): ARC-C, HellaSwag, TruthfulQA, MMLU,
//     Winogrande, GSM8k
//   - core reasoning suite (Table 2 / Figure 3): ARC-C, GSM8k, MMLU
// plus the average-score and recovery-% aggregation used throughout.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/world.hpp"
#include "eval/harness.hpp"
#include "nn/transformer.hpp"

namespace sdd::eval {

struct SuiteSpec {
  std::int64_t mc_items = 60;    // items per multiple-choice task
  std::int64_t gen_items = 60;   // items for µGSM8k
  std::uint64_t task_seed = 2025;
  EvalOptions options;

  std::uint64_t hash() const;
};

struct SuiteScores {
  // Task name -> accuracy, in suite order.
  std::vector<std::pair<std::string, double>> tasks;
  double average = 0.0;

  double task(const std::string& name) const;
};

// Task name lists for the two suites (fixed order, matches the paper tables).
const std::vector<std::string>& openllm_v1_tasks();  // 6 tasks
const std::vector<std::string>& core_tasks();        // arc_c, gsm8k, mmlu

// Evaluate a named task ("arc_c", "hellaswag", "truthfulqa", "mmlu",
// "winogrande", "gsm8k").
TaskResult evaluate_named_task(const nn::TransformerLM& model,
                               const data::World& world, const std::string& task,
                               const SuiteSpec& spec);

SuiteScores evaluate_suite(const nn::TransformerLM& model, const data::World& world,
                           const std::vector<std::string>& tasks,
                           const SuiteSpec& spec);

// Recovery % relative to the baseline (paper: avg pruned / avg baseline).
double recovery_percent(const SuiteScores& model_scores,
                        const SuiteScores& baseline_scores);

// Canonical text digest of a suite run, one "metric <task> <accuracy>" line
// per task plus "metric average ...", accuracies at %.10f (the soak digest
// format). Byte-for-byte comparable: the fleet soak asserts a fleet run's
// digest is identical to the serial run's.
std::string format_suite_digest(const SuiteScores& scores);

}  // namespace sdd::eval
