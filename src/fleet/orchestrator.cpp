#include "fleet/orchestrator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <set>
#include <thread>

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/proc.hpp"
#include "util/signals.hpp"
#include "util/supervisor.hpp"

namespace sdd::fleet {

namespace fs = std::filesystem;

FleetConfig FleetConfig::from_env() {
  FleetConfig config;
  config.workers = env_int("SDD_FLEET_WORKERS", config.workers);
  config.lease_ms = env_int("SDD_FLEET_LEASE_MS", config.lease_ms);
  config.task_retry = env_int("SDD_FLEET_TASK_RETRY", config.task_retry);
  config.respawn_max = env_int("SDD_FLEET_RESPAWN_MAX", config.respawn_max);
  config.poll_ms = env_int("SDD_FLEET_POLL_MS", config.poll_ms);
  config.dir_override = env_string("SDD_FLEET_DIR", "");
  return config;
}

std::string FleetStats::to_string() const {
  return "enqueued=" + std::to_string(enqueued) +
         " reused=" + std::to_string(reused) +
         " completed=" + std::to_string(completed) +
         " rejected=" + std::to_string(rejected) +
         " reclaimed=" + std::to_string(reclaimed) +
         " respawned=" + std::to_string(respawned) +
         " dead=" + std::to_string(dead);
}

namespace {

struct WorkerSlot {
  std::int64_t pid = -1;  // -1 = no live process
};

// SIGTERM then SIGKILL every live child; used on every exit path so an
// orchestrator failure never leaks worker processes it owns. (Workers
// orphaned by a SIGKILLed orchestrator are a different story: their leases
// either complete or go stale and get reclaimed by the next run.)
void shutdown_workers(std::vector<WorkerSlot>& slots, std::int64_t grace_ms) {
  for (WorkerSlot& slot : slots) {
    if (slot.pid < 0) continue;
    try {
      proc::terminate(slot.pid, grace_ms);
    } catch (const std::exception&) {
      // Reaping can legitimately fail if the child was already collected.
    }
    slot.pid = -1;
  }
}

std::int64_t spawn_worker(const fs::path& dir, const FleetConfig& config,
                          std::int64_t slot, std::int64_t generation) {
  const std::string worker_id =
      "w" + std::to_string(slot) + "-g" + std::to_string(generation);
  std::vector<std::string> argv = {
      proc::self_exe().string(), "fleet-worker",
      "--dir",    dir.string(),
      "--worker", worker_id,
      "--lease",  std::to_string(config.lease_ms),
      "--retry",  std::to_string(config.task_retry),
      "--poll",   std::to_string(config.poll_ms),
  };
  std::vector<std::string> env;
  // Worker-side faults arrive via SDD_FLEET_FAULT so the orchestrator's own
  // process (and any model construction done before orchestrate()) stays
  // fault-free — the same split SDD_SERVE_FAULT uses for the serving soak.
  if (const char* fleet_fault = std::getenv("SDD_FLEET_FAULT")) {
    env.push_back(std::string{"SDD_FAULT="} + fleet_fault);
  }
  return proc::spawn(argv, env);
}

}  // namespace

FleetStats orchestrate(const fs::path& dir, const std::vector<TaskSpec>& tasks,
                       const FleetConfig& config, const ValidateFn& validate) {
  if (!config.enabled()) {
    throw Error(ErrorKind::kFatal,
                "orchestrate() called with fleet disabled (workers=0)");
  }
  WorkQueue queue{dir};
  FleetStats stats;
  for (const TaskSpec& task : tasks) {
    if (queue.enqueue(task)) {
      ++stats.enqueued;
    } else if (queue.is_done(task.id)) {
      ++stats.reused;  // completed by a previous run; skipped bit-identically
    }
  }
  log_info("fleet: orchestrating ", tasks.size(), " task(s) in ", dir.string(),
           " (", stats.reused, " already done) with ", config.workers,
           " worker(s), lease ", config.lease_ms, " ms");

  std::vector<WorkerSlot> slots{static_cast<std::size_t>(config.workers)};
  std::int64_t generation = 0;
  std::set<std::string> validated;  // done markers already accepted this run

  try {
    while (true) {
      supervisor::heartbeat();  // graceful shutdown + watchdog liveness

      // Reap exited workers without blocking.
      for (WorkerSlot& slot : slots) {
        if (slot.pid < 0) continue;
        if (const auto status = proc::try_reap(slot.pid)) {
          if (!status->clean()) {
            log_warn("fleet: worker pid ", slot.pid, " died (exit ",
                     status->exit_code, ", signal ", status->term_signal, ")");
          }
          slot.pid = -1;
        }
      }

      // Break stale leases; SIGKILL stalled-but-alive owners we spawned so
      // the slot frees up (a worker that still renews is never stale).
      for (const ReclaimedLease& lease :
           queue.reclaim_stale(config.lease_ms, config.task_retry)) {
        ++stats.reclaimed;
        for (WorkerSlot& slot : slots) {
          if (slot.pid == lease.claim.pid) {
            log_warn("fleet: SIGKILLing stalled worker pid ", slot.pid);
            proc::send_signal(slot.pid, SIGKILL);
          }
        }
      }

      // Validate newly published results before they count as complete.
      for (const std::string& id : queue.task_ids()) {
        if (!queue.is_done(id) || validated.count(id) > 0) continue;
        const TaskSpec task = queue.read_task(id);
        if (validate && !validate(task)) {
          ++stats.rejected;
          log_warn("fleet: rejected result for '", id,
                   "' (validation failed); requeueing");
          queue.requeue_done(id, config.task_retry, "result failed validation");
          continue;
        }
        validated.insert(id);
        ++stats.completed;
        fault::on_fleet_completion();
      }

      const QueueCounts counts = queue.counts();
      if (queue.all_terminal() &&
          static_cast<std::int64_t>(validated.size()) == counts.done) {
        break;
      }

      // Refill empty slots while work remains, under the respawn budget.
      // The initial spawns are "free"; only restarts after the first
      // generation count against the budget.
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].pid >= 0) continue;
        const bool is_respawn = generation >= config.workers;
        if (is_respawn && stats.respawned >= config.respawn_max) continue;
        slots[i].pid = spawn_worker(dir, config, static_cast<std::int64_t>(i),
                                    generation++);
        if (is_respawn) ++stats.respawned;
      }

      bool any_live = false;
      for (const WorkerSlot& slot : slots) any_live |= slot.pid >= 0;
      if (!any_live) {
        throw Error(ErrorKind::kWorkerLost,
                    "fleet: all workers gone, respawn budget (" +
                        std::to_string(config.respawn_max) +
                        ") exhausted with work remaining in " + dir.string());
      }

      std::this_thread::sleep_for(std::chrono::milliseconds{config.poll_ms});
    }
  } catch (...) {
    shutdown_workers(slots, config.lease_ms);
    throw;
  }
  shutdown_workers(slots, config.lease_ms);
  stats.dead = queue.counts().dead;
  log_info("fleet: run finished: ", stats.to_string());
  return stats;
}

int worker_main(const fs::path& dir, const std::string& worker_id,
                const FleetConfig& config, const ExecuteFn& execute) {
  WorkQueue queue{dir};
  const std::int64_t renew_ms = std::max<std::int64_t>(config.lease_ms / 4, 10);
  while (true) {
    supervisor::heartbeat();  // throws Error{kInterrupted} on SIGTERM/SIGINT
    // Leaderless recovery: any worker may break a stale lease; the O_EXCL
    // re-claim race elects exactly one new owner.
    queue.reclaim_stale(config.lease_ms, config.task_retry);
    const auto task = queue.try_claim(worker_id);
    if (!task) {
      if (queue.all_terminal()) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds{config.poll_ms});
      continue;
    }
    log_info("fleet[", worker_id, "]: claimed '", task->id, "'");
    fault::on_fleet_claim(dir);  // worker_kill9 / worker_stall fire here

    // Renew the lease on a background thread so a long task execution never
    // goes stale. Renewal failures are swallowed: a missed beat risks a
    // benign duplicate execution, never a wrong result.
    std::atomic<bool> running{true};
    std::thread renewer{[&] {
      std::int64_t slept = 0;
      while (running.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds{5});
        slept += 5;
        if (slept < renew_ms) continue;
        slept = 0;
        try {
          queue.renew(task->id, worker_id);
        } catch (const std::exception&) {
        }
      }
    }};
    const auto stop_renewer = [&] {
      running.store(false, std::memory_order_release);
      renewer.join();
    };

    try {
      execute(*task);
      stop_renewer();
      queue.complete(task->id, worker_id);
      log_info("fleet[", worker_id, "]: completed '", task->id, "'");
    } catch (const Error& e) {
      stop_renewer();
      if (e.kind() == ErrorKind::kInterrupted) {
        queue.release(task->id);  // graceful stop: no failure counted
        throw;
      }
      queue.release_failed(task->id, config.task_retry, e.what());
    } catch (const std::exception& e) {
      stop_renewer();
      queue.release_failed(task->id, config.task_retry, e.what());
    }
  }
}

}  // namespace sdd::fleet
