// Crash-tolerant fleet orchestration over the filesystem work queue.
//
// The orchestrator enqueues tasks, forks/execs worker processes (the same
// binary re-run with a `fleet-worker` subcommand), and supervises them:
// stale leases are reclaimed (the stalled owner is SIGKILLed when it is one
// of our children), dead workers are respawned under a bounded budget,
// published results are validated before they count, and poison tasks land
// in dead/ after a bounded number of failures. The orchestrator itself keeps
// no authoritative state — everything lives in the queue directory — so a
// killed orchestrator can simply be re-run over the same directory and
// resumes where it left off, reusing every completed task.
//
// Fleet execution is OFF by default (SDD_FLEET_WORKERS=0 preserves the
// single-process behavior); results are byte-identical either way because
// task execution is deterministic and the assembly replays the serial
// floating-point order.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "fleet/queue.hpp"

namespace sdd::fleet {

struct FleetConfig {
  std::int64_t workers = 0;       // 0 = fleet off, run single-process
  std::int64_t lease_ms = 2000;   // heartbeat lease window
  std::int64_t task_retry = 3;    // failures before a task is quarantined
  std::int64_t respawn_max = 16;  // worker respawns before giving up
  std::int64_t poll_ms = 50;      // queue poll / reap interval
  std::filesystem::path dir_override;  // SDD_FLEET_DIR (else derived per run)

  bool enabled() const { return workers > 0; }

  // SDD_FLEET_WORKERS / SDD_FLEET_LEASE_MS / SDD_FLEET_TASK_RETRY /
  // SDD_FLEET_RESPAWN_MAX / SDD_FLEET_POLL_MS / SDD_FLEET_DIR.
  static FleetConfig from_env();
};

struct FleetStats {
  std::int64_t enqueued = 0;   // tasks newly added this run
  std::int64_t reused = 0;     // tasks already done when enqueued (resume)
  std::int64_t completed = 0;  // results validated this run
  std::int64_t rejected = 0;   // published results that failed validation
  std::int64_t reclaimed = 0;  // stale leases broken
  std::int64_t respawned = 0;  // workers restarted after dying
  std::int64_t dead = 0;       // tasks quarantined (queue total at exit)

  std::string to_string() const;
};

// Validates a published result in the orchestrator before it counts as
// complete (e.g. re-read the artifact through its checksum). Returning false
// rejects the result: the done marker is removed and the task requeued
// against its failure budget. An empty function accepts everything.
using ValidateFn = std::function<bool(const TaskSpec&)>;

// Executes one claimed task inside a worker process; throwing fails the
// task (release + retry budget). fleet::execute_task (fleet/stages.hpp) is
// the production executor; tests inject counting/failing lambdas.
using ExecuteFn = std::function<void(const TaskSpec&)>;

// Runs `tasks` to terminal state (done or dead) with `config.workers`
// spawned worker processes. Throws Error{kWorkerLost} when every worker is
// gone and the respawn budget is exhausted with work remaining, and
// Error{kInterrupted} on graceful shutdown (live workers are SIGTERMed
// first). Quarantined tasks do NOT throw — callers inspect stats.dead.
// When SDD_FLEET_FAULT is set, its value is forwarded to workers as their
// SDD_FAULT (the orchestrator's own SDD_FAULT is not touched), mirroring how
// SDD_SERVE_FAULT keeps parent model construction fault-free.
FleetStats orchestrate(const std::filesystem::path& dir,
                       const std::vector<TaskSpec>& tasks,
                       const FleetConfig& config,
                       const ValidateFn& validate = {});

// Worker loop: claim -> renew lease on a background thread -> execute ->
// complete, until every live task is terminal (returns 0) or a graceful
// shutdown is requested (throws Error{kInterrupted}). Also performs
// leaderless stale-lease reclaim so the fleet makes progress even when the
// orchestrator is gone.
int worker_main(const std::filesystem::path& dir, const std::string& worker_id,
                const FleetConfig& config, const ExecuteFn& execute);

}  // namespace sdd::fleet
