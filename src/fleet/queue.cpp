#include "fleet/queue.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/proc.hpp"
#include "util/serialize.hpp"

namespace sdd::fleet {

namespace fs = std::filesystem;

namespace {

bool valid_id(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

std::optional<std::string> read_text(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return out.str();
}

std::string claim_text(const std::string& worker_id) {
  return "pid=" + std::to_string(static_cast<long long>(::getpid())) +
         "\nworker=" + worker_id +
         "\nbeat=" + std::to_string(proc::monotonic_ms()) + "\n";
}

std::map<std::string, std::string> parse_kv_lines(const std::string& text) {
  std::map<std::string, std::string> fields;
  std::istringstream in{text};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    fields[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return fields;
}

}  // namespace

std::string TaskSpec::serialize() const {
  std::string out;
  for (const auto& [key, value] : fields) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

TaskSpec TaskSpec::parse(const std::string& id, const std::string& text) {
  TaskSpec spec;
  spec.id = id;
  spec.fields = parse_kv_lines(text);
  return spec;
}

const std::string& TaskSpec::field(const std::string& key) const {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    throw Error(ErrorKind::kFatal,
                "task '" + id + "' is missing field '" + key + "'");
  }
  return it->second;
}

std::int64_t TaskSpec::field_int(const std::string& key) const {
  const std::string& text = field(key);
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw Error(ErrorKind::kFatal, "task '" + id + "' field '" + key +
                                       "' is not an integer: '" + text + "'");
  }
}

WorkQueue::WorkQueue(fs::path dir) : dir_{std::move(dir)} {
  std::error_code ec;
  for (const char* sub : {"tasks", "claims", "done", "dead", "attempts"}) {
    fs::create_directories(dir_ / sub, ec);
    if (ec) {
      throw Error(ErrorKind::kTransientIo, "work queue: cannot create " +
                                               (dir_ / sub).string() + ": " +
                                               ec.message());
    }
  }
}

fs::path WorkQueue::task_path(const std::string& id) const {
  return dir_ / "tasks" / (id + ".task");
}
fs::path WorkQueue::claim_path(const std::string& id) const {
  return dir_ / "claims" / (id + ".claim");
}
fs::path WorkQueue::done_path(const std::string& id) const {
  return dir_ / "done" / (id + ".done");
}
fs::path WorkQueue::dead_path(const std::string& id) const {
  return dir_ / "dead" / (id + ".task");
}

bool WorkQueue::enqueue(const TaskSpec& task) {
  if (!valid_id(task.id)) {
    throw Error(ErrorKind::kFatal, "work queue: invalid task id '" + task.id +
                                       "' (use [A-Za-z0-9._-], <=128 chars)");
  }
  if (fs::exists(task_path(task.id)) || fs::exists(done_path(task.id)) ||
      fs::exists(dead_path(task.id))) {
    return false;
  }
  atomic_write_text(task_path(task.id), task.serialize());
  return true;
}

std::vector<std::string> WorkQueue::task_ids() const {
  std::vector<std::string> ids;
  for (const auto& entry : fs::directory_iterator{dir_ / "tasks"}) {
    if (entry.path().extension() == ".task") {
      ids.push_back(entry.path().stem().string());
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

TaskSpec WorkQueue::read_task(const std::string& id) const {
  const auto text = read_text(task_path(id));
  if (!text) {
    throw Error(ErrorKind::kWorkerLost,
                "work queue: task '" + id + "' vanished (quarantined?)");
  }
  return TaskSpec::parse(id, *text);
}

std::optional<TaskSpec> WorkQueue::try_claim(const std::string& worker_id) {
  const std::vector<std::string> ids = task_ids();
  if (ids.empty()) return std::nullopt;
  const bool race = fault::claim_race_armed();
  // Rotating the scan start by worker id spreads contention; the claim_race
  // fault pins everyone to index 0 so they all fight for the same file.
  const std::size_t start = race ? 0 : fnv1a(worker_id) % ids.size();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::string& id = ids[(start + i) % ids.size()];
    if (is_done(id)) continue;
    if (fs::exists(claim_path(id))) continue;
    if (race) {
      // Widen the select-to-claim window so concurrent workers pile onto the
      // same O_EXCL create. Exactly one open() below may succeed.
      std::this_thread::sleep_for(std::chrono::milliseconds{2});
    }
    const fs::path claim = claim_path(id);
    const int fd =
        ::open(claim.string().c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
      if (errno == EEXIST) continue;  // lost the race for this task
      throw Error(ErrorKind::kTransientIo,
                  "work queue: cannot create claim " + claim.string());
    }
    const std::string text = claim_text(worker_id);
    const ssize_t written = ::write(fd, text.data(), text.size());
    ::close(fd);
    if (written != static_cast<ssize_t>(text.size())) {
      std::error_code ec;
      fs::remove(claim, ec);
      throw Error(ErrorKind::kTransientIo,
                  "work queue: short write on claim " + claim.string());
    }
    if (!fs::exists(task_path(id))) {
      // The task was quarantined between the scan and the claim; back out.
      std::error_code ec;
      fs::remove(claim, ec);
      continue;
    }
    return read_task(id);
  }
  return std::nullopt;
}

void WorkQueue::renew(const std::string& id, const std::string& worker_id) {
  const auto current = read_claim(id);
  // Lease already reclaimed (or handed to someone else): the old owner lost;
  // do not resurrect the claim file.
  if (!current || current->worker != worker_id) return;
  atomic_write_text(claim_path(id), claim_text(worker_id));
}

void WorkQueue::complete(const std::string& id, const std::string& worker_id) {
  atomic_write_text(done_path(id),
                    "worker=" + worker_id +
                        "\nms=" + std::to_string(proc::monotonic_ms()) + "\n");
  std::error_code ec;
  fs::remove(claim_path(id), ec);
}

void WorkQueue::release(const std::string& id) {
  std::error_code ec;
  fs::remove(claim_path(id), ec);
}

bool WorkQueue::release_failed(const std::string& id,
                               std::int64_t retry_budget,
                               const std::string& why) {
  if (is_done(id)) {  // completion already published; nothing failed
    release(id);
    return false;
  }
  std::error_code ec;
  if (!fs::remove(claim_path(id), ec)) {
    // Someone else (a reclaim) already broke this lease and counted the
    // failure; the unlink is the mutex.
    return false;
  }
  return bump_attempts(id, retry_budget, why);
}

std::vector<ReclaimedLease> WorkQueue::reclaim_stale(std::int64_t lease_ms,
                                                     std::int64_t retry_budget) {
  std::vector<ReclaimedLease> reclaimed;
  const std::int64_t now = proc::monotonic_ms();
  std::vector<std::string> ids;
  for (const auto& entry : fs::directory_iterator{dir_ / "claims"}) {
    if (entry.path().extension() == ".claim") {
      ids.push_back(entry.path().stem().string());
    }
  }
  std::sort(ids.begin(), ids.end());
  for (const std::string& id : ids) {
    std::error_code ec;
    if (is_done(id)) {  // crash between done marker and claim release
      fs::remove(claim_path(id), ec);
      continue;
    }
    const auto claim = read_claim(id);
    if (!claim) continue;
    if (now - claim->beat_ms <= lease_ms) continue;
    if (!fs::remove(claim_path(id), ec)) continue;  // lost the reclaim race
    ReclaimedLease lease;
    lease.id = id;
    lease.claim = *claim;
    lease.quarantined = bump_attempts(
        id, retry_budget,
        "lease expired (worker " + claim->worker + ", pid " +
            std::to_string(claim->pid) + ", silent for " +
            std::to_string(now - claim->beat_ms) + " ms)");
    log_warn("fleet: reclaimed stale lease on '", id, "' from worker ",
             claim->worker, " (pid ", claim->pid, ")",
             lease.quarantined ? " — task quarantined" : "");
    reclaimed.push_back(std::move(lease));
  }
  return reclaimed;
}

bool WorkQueue::requeue_done(const std::string& id, std::int64_t retry_budget,
                             const std::string& why) {
  std::error_code ec;
  if (!fs::remove(done_path(id), ec)) return false;
  release(id);  // drop any lingering claim from the crash window
  return bump_attempts(id, retry_budget, why);
}

bool WorkQueue::is_done(const std::string& id) const {
  return fs::exists(done_path(id));
}

std::optional<ClaimInfo> WorkQueue::read_claim(const std::string& id) const {
  const auto text = read_text(claim_path(id));
  if (!text) return std::nullopt;
  const auto fields = parse_kv_lines(*text);
  ClaimInfo info;
  try {
    info.pid = std::stoll(fields.at("pid"));
    info.worker = fields.at("worker");
    info.beat_ms = std::stoll(fields.at("beat"));
  } catch (const std::exception&) {
    return std::nullopt;  // torn claim write; treated as absent
  }
  return info;
}

std::int64_t WorkQueue::attempts(const std::string& id) const {
  const auto text = read_text(dir_ / "attempts" / (id + ".n"));
  if (!text) return 0;
  try {
    return std::stoll(*text);
  } catch (const std::exception&) {
    return 0;
  }
}

bool WorkQueue::bump_attempts(const std::string& id, std::int64_t retry_budget,
                              const std::string& why) {
  std::int64_t n = attempts(id) + 1;
  try {
    atomic_write_text(dir_ / "attempts" / (id + ".n"), std::to_string(n));
  } catch (const Error& e) {
    // Best effort: an uncountable failure costs one extra retry, never a
    // lost task.
    log_warn("fleet: could not record attempt for '", id, "': ", e.what());
  }
  log_warn("fleet: task '", id, "' failed (attempt ", n, "/", retry_budget,
           "): ", why);
  if (n < retry_budget) return false;
  quarantine_task(id, why);
  return true;
}

void WorkQueue::quarantine_task(const std::string& id, const std::string& why) {
  std::error_code ec;
  fs::rename(task_path(id), dead_path(id), ec);
  if (ec) {
    // Already quarantined by a racing process, or the file vanished; either
    // way the task is out of the live queue.
    fs::remove(task_path(id), ec);
  }
  try {
    atomic_write_text(dir_ / "dead" / (id + ".reason"), why + "\n");
  } catch (const Error&) {
    // The rename above already removed the task from the queue.
  }
  log_error("fleet: quarantined poison task '", id, "': ", why);
}

QueueCounts WorkQueue::counts() const {
  QueueCounts c;
  for (const auto& entry : fs::directory_iterator{dir_ / "tasks"}) {
    if (entry.path().extension() == ".task") ++c.tasks;
  }
  for (const auto& entry : fs::directory_iterator{dir_ / "claims"}) {
    if (entry.path().extension() == ".claim") ++c.claimed;
  }
  for (const auto& entry : fs::directory_iterator{dir_ / "done"}) {
    if (entry.path().extension() == ".done") ++c.done;
  }
  for (const auto& entry : fs::directory_iterator{dir_ / "dead"}) {
    if (entry.path().extension() == ".task") ++c.dead;
  }
  return c;
}

bool WorkQueue::all_terminal() const {
  for (const std::string& id : task_ids()) {
    if (!is_done(id)) return false;
  }
  return true;
}

}  // namespace sdd::fleet
