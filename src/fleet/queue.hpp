// Filesystem-backed work queue for the multi-process fleet.
//
// Layout under the queue directory:
//
//   tasks/<id>.task     task spec, sorted `key=value` lines. Never deleted on
//                       completion — the done marker is the terminal state —
//                       and moved to dead/ when the task is quarantined.
//   claims/<id>.claim   lease: `pid=`, `worker=`, `beat=` (CLOCK_MONOTONIC
//                       ms). Created with O_CREAT|O_EXCL, so exactly one
//                       worker wins a claim; renewed by atomically rewriting
//                       the file with a fresh beat.
//   done/<id>.done      completion marker, written atomically BEFORE the
//                       claim is released. Idempotent: a late duplicate
//                       completion of a reclaimed task is benign because task
//                       results are deterministic and written atomically.
//   dead/<id>.task      poison quarantine (plus `<id>.reason`): the task
//                       failed `retry_budget` times and is out of the queue.
//   attempts/<id>.n     failure counter. Incremented only by whoever actually
//                       removed the claim file (the unlink is the mutex), so
//                       a worker-side release and an orchestrator-side
//                       reclaim of the same lease count one failure, not two.
//
// Liveness is leaderless: any process (worker or orchestrator) may reclaim a
// lease whose beat is older than the lease window. That is safe because the
// claim removal + O_CREAT|O_EXCL re-claim race always elects exactly one new
// owner, and duplicate execution of a task is benign (see done/ above). Only
// the orchestrator ever signals pids — workers never kill anything.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sdd::fleet {

struct TaskSpec {
  std::string id;  // file-name stem; [A-Za-z0-9._-] only
  std::map<std::string, std::string> fields;

  // Sorted `key=value` lines (std::map order), stable across runs.
  std::string serialize() const;
  static TaskSpec parse(const std::string& id, const std::string& text);

  // Field access; throws Error{kFatal} on a missing key (a malformed task
  // spec is a bug, not a transient condition).
  const std::string& field(const std::string& key) const;
  std::int64_t field_int(const std::string& key) const;
};

struct ClaimInfo {
  std::int64_t pid = -1;
  std::string worker;
  std::int64_t beat_ms = -1;  // proc::monotonic_ms() at last renewal
};

struct QueueCounts {
  std::int64_t tasks = 0;    // live task files (quarantined ones excluded)
  std::int64_t claimed = 0;
  std::int64_t done = 0;
  std::int64_t dead = 0;
};

// One stale lease broken by reclaim_stale().
struct ReclaimedLease {
  std::string id;
  ClaimInfo claim;          // the dead owner (pid lets the orchestrator kill
                            // a stalled-but-alive child)
  bool quarantined = false; // true when the failure exhausted the budget
};

class WorkQueue {
 public:
  // Creates the directory layout; safe to construct over an existing queue
  // (orchestrator restart resumes from whatever state is on disk).
  explicit WorkQueue(std::filesystem::path dir);

  const std::filesystem::path& dir() const { return dir_; }

  // Adds a task. Returns false (and writes nothing) when the task already
  // exists, is done, or is quarantined — re-enqueueing after a restart is a
  // no-op that lets completed work be reused.
  bool enqueue(const TaskSpec& task);

  // Scans live tasks in sorted id order and O_EXCL-creates a claim for the
  // first unclaimed, not-done one. Workers normally start the scan at an
  // offset derived from `worker_id` to spread contention; under the
  // claim_race fault every worker starts at index 0 and pauses between
  // selecting a task and creating the claim, forcing a many-way race that
  // exactly one worker may win.
  std::optional<TaskSpec> try_claim(const std::string& worker_id);

  // Rewrites the claim with a fresh beat. A renewal that discovers the claim
  // gone or owned by someone else (the lease was reclaimed) is a silent
  // no-op: the old owner has lost, and its eventual duplicate completion is
  // benign.
  void renew(const std::string& id, const std::string& worker_id);

  // Publishes the done marker, then releases the claim. A crash between the
  // two leaves a done task with a stale claim; reclaim_stale() sees the done
  // marker and just drops the claim without counting a failure.
  void complete(const std::string& id, const std::string& worker_id);

  // Releases a claim after a failed execution and counts one failure.
  // Returns true when the failure budget is exhausted and the task was
  // quarantined to dead/.
  bool release_failed(const std::string& id, std::int64_t retry_budget,
                      const std::string& why);

  // Releases a claim without counting a failure (graceful shutdown: the task
  // didn't fail, the worker was asked to stop).
  void release(const std::string& id);

  // Breaks every lease whose beat is older than `lease_ms`. Claims on done
  // tasks are dropped silently; the rest count one failure each (possibly
  // quarantining). Returns the broken leases so the orchestrator can SIGKILL
  // stalled-but-alive children.
  std::vector<ReclaimedLease> reclaim_stale(std::int64_t lease_ms,
                                            std::int64_t retry_budget);

  // Rejects a published result (the orchestrator's validator failed it):
  // removes the done marker and counts one failure. Returns true when the
  // task was quarantined.
  bool requeue_done(const std::string& id, std::int64_t retry_budget,
                    const std::string& why);

  bool is_done(const std::string& id) const;
  std::optional<ClaimInfo> read_claim(const std::string& id) const;
  std::int64_t attempts(const std::string& id) const;
  QueueCounts counts() const;

  // True when every live task has a done marker (quarantined tasks left the
  // queue, so a fully-drained queue with dead tasks is still terminal; the
  // caller decides whether dead > 0 is an error).
  bool all_terminal() const;

  std::vector<std::string> task_ids() const;  // sorted
  TaskSpec read_task(const std::string& id) const;

  std::filesystem::path task_path(const std::string& id) const;
  std::filesystem::path claim_path(const std::string& id) const;
  std::filesystem::path done_path(const std::string& id) const;
  std::filesystem::path dead_path(const std::string& id) const;

 private:
  // Counts one failure against `id`; quarantines when the budget is
  // exhausted. Best-effort on I/O errors (an uncountable failure means one
  // extra retry, never a lost task).
  bool bump_attempts(const std::string& id, std::int64_t retry_budget,
                     const std::string& why);
  void quarantine_task(const std::string& id, const std::string& why);

  std::filesystem::path dir_;
};

}  // namespace sdd::fleet
