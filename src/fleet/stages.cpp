#include "fleet/stages.hpp"

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"

namespace sdd::fleet {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kMetricMagic = "SDDMTRC1";
constexpr std::uint32_t kMetricVersion = 1;

void execute_eval_cell(const TaskSpec& task) {
  const nn::TransformerLM model = nn::TransformerLM::load(task.field("model"));
  const data::World world{
      static_cast<std::uint64_t>(task.field_int("world_seed"))};
  eval::SuiteSpec spec;
  spec.mc_items = task.field_int("mc_items");
  spec.gen_items = task.field_int("gen_items");
  spec.task_seed = static_cast<std::uint64_t>(task.field_int("task_seed"));
  spec.options.shots = static_cast<int>(task.field_int("shots"));
  spec.options.max_items = task.field_int("max_items");
  spec.options.seed = static_cast<std::uint64_t>(task.field_int("eval_seed"));
  const eval::TaskResult result =
      eval::evaluate_named_task(model, world, task.field("task"), spec);
  write_metric(task.field("out"), result);
}

void execute_distill_cell(const TaskSpec& task) {
  // PipelineConfig::standard() reads the SDD_* environment, which workers
  // inherit from the orchestrator — so this cell computes exactly the
  // artifact the orchestrator's own pipeline would, into the shared cache.
  core::Pipeline pipeline{core::PipelineConfig::standard()};
  pipeline.distilled_dataset(task.field("dataset"), task.field_int("size"));
}

std::uint64_t eval_run_key(const nn::TransformerLM& model,
                           const data::World& world,
                           const std::vector<std::string>& tasks,
                           const eval::SuiteSpec& spec) {
  std::uint64_t key = hash_combine(model.weight_hash(), spec.hash());
  key = hash_combine(key, fnv1a_value(world.seed()));
  for (const std::string& task : tasks) key = hash_combine(key, fnv1a(task));
  return key;
}

}  // namespace

void execute_task(const TaskSpec& task) {
  const std::string& kind = task.field("kind");
  if (kind == "eval_cell") {
    execute_eval_cell(task);
  } else if (kind == "distill_cell") {
    execute_distill_cell(task);
  } else {
    throw Error(ErrorKind::kFatal,
                "fleet: unknown task kind '" + kind + "' in '" + task.id + "'");
  }
}

void write_metric(const fs::path& path, const eval::TaskResult& result) {
  BinaryWriter writer{path};
  writer.write_magic(kMetricMagic, kMetricVersion);
  writer.write_string(result.task);
  writer.write_f64(result.accuracy);
  writer.write_i64(result.n_items);
  writer.write_i64(result.n_correct);
  writer.flush();
}

eval::TaskResult read_metric(const fs::path& path) {
  BinaryReader reader{path};
  reader.expect_magic(kMetricMagic, kMetricVersion);
  eval::TaskResult result;
  result.task = reader.read_string();
  result.accuracy = reader.read_f64();
  result.n_items = reader.read_i64();
  result.n_correct = reader.read_i64();
  return result;
}

eval::SuiteScores run_eval_suite(const nn::TransformerLM& model,
                                 const data::World& world,
                                 const std::vector<std::string>& tasks,
                                 const eval::SuiteSpec& spec,
                                 const FleetConfig& fleet,
                                 const fs::path& work_root,
                                 FleetStats* stats_out) {
  if (!fleet.enabled()) {
    return eval::evaluate_suite(model, world, tasks, spec);
  }
  // The queue directory is keyed by everything that determines the grid, so
  // an orchestrator restart finds the same directory and resumes: completed
  // cells are enqueue-time no-ops and their artifacts are reused as-is.
  const std::uint64_t run_key = eval_run_key(model, world, tasks, spec);
  const fs::path base =
      fleet.dir_override.empty() ? work_root : fleet.dir_override;
  const fs::path dir = base / ("eval_" + hash_hex(run_key));
  const fs::path results = dir / "results";
  fs::create_directories(results);

  // Checkpoint the model once for all workers. Same run key ⇒ same weights,
  // so an artifact left by a previous (possibly crashed) run is reusable —
  // a torn save is impossible (BinaryWriter publishes atomically).
  const fs::path model_path = dir / "model.bin";
  if (!fs::exists(model_path)) model.save(model_path);

  std::vector<TaskSpec> specs;
  for (const std::string& task : tasks) {
    TaskSpec cell;
    cell.id = "eval_" + task;
    cell.fields["kind"] = "eval_cell";
    cell.fields["task"] = task;
    cell.fields["model"] = model_path.string();
    cell.fields["out"] = (results / (task + ".metric")).string();
    cell.fields["mc_items"] = std::to_string(spec.mc_items);
    cell.fields["gen_items"] = std::to_string(spec.gen_items);
    cell.fields["task_seed"] = std::to_string(spec.task_seed);
    cell.fields["shots"] = std::to_string(spec.options.shots);
    cell.fields["max_items"] = std::to_string(spec.options.max_items);
    cell.fields["eval_seed"] = std::to_string(spec.options.seed);
    cell.fields["world_seed"] = std::to_string(world.seed());
    specs.push_back(std::move(cell));
  }

  // A published result only counts once it re-reads through its checksum
  // and names the right task — a torn or corrupt write is requeued.
  const ValidateFn validate = [](const TaskSpec& cell) {
    const fs::path out = cell.field("out");
    try {
      const eval::TaskResult result = read_metric(out);
      if (result.task != cell.field("task")) {
        quarantine_artifact(out);
        return false;
      }
      return true;
    } catch (const SerializeError& e) {
      log_warn("fleet: metric ", out.string(), " failed validation: ",
               e.what());
      quarantine_artifact(out);
      return false;
    }
  };

  const FleetStats stats = orchestrate(dir, specs, fleet, validate);
  if (stats_out != nullptr) *stats_out = stats;
  if (stats.dead > 0) {
    throw Error(ErrorKind::kWorkerLost,
                "fleet: eval grid incomplete: " + std::to_string(stats.dead) +
                    " cell(s) quarantined in " + (dir / "dead").string());
  }

  // Assemble in serial task order with the identical floating-point
  // accumulation evaluate_suite uses, so fleet and serial runs produce
  // byte-identical scores.
  eval::SuiteScores scores;
  double total = 0.0;
  for (const std::string& task : tasks) {
    const eval::TaskResult result = read_metric(results / (task + ".metric"));
    scores.tasks.emplace_back(task, result.accuracy);
    total += result.accuracy;
  }
  scores.average =
      tasks.empty() ? 0.0 : total / static_cast<double>(tasks.size());
  return scores;
}

std::vector<data::SftDataset> run_distill_grid(
    core::Pipeline& pipeline,
    const std::vector<std::pair<std::string, std::int64_t>>& cells,
    const FleetConfig& fleet, FleetStats* stats_out) {
  std::vector<data::SftDataset> datasets;
  if (!fleet.enabled()) {
    for (const auto& [name, size] : cells) {
      datasets.push_back(pipeline.distilled_dataset(name, size));
    }
    return datasets;
  }

  // Train (or load) the teacher before any worker spawns: workers then hit
  // the cached base model instead of racing to pretrain it.
  pipeline.base_model();

  std::uint64_t run_key = fnv1a("distill-grid");
  for (const auto& [name, size] : cells) {
    run_key = hash_combine(run_key, pipeline.distilled_key(name, size));
  }
  const fs::path base = fleet.dir_override.empty()
                            ? pipeline.config().cache_dir / "fleet"
                            : fleet.dir_override;
  const fs::path dir = base / ("distill_" + hash_hex(run_key));

  std::vector<TaskSpec> specs;
  for (const auto& [name, size] : cells) {
    TaskSpec cell;
    cell.id = "distill_" + name + "_" + std::to_string(size);
    cell.fields["kind"] = "distill_cell";
    cell.fields["dataset"] = name;
    cell.fields["size"] = std::to_string(size);
    specs.push_back(std::move(cell));
  }

  // The artifact lands in the shared experiment cache; validation is a
  // checksummed load (load_dataset quarantines a corrupt file itself and
  // reports a miss, which rejects the result and requeues the cell).
  const ValidateFn validate = [&pipeline](const TaskSpec& cell) {
    const std::uint64_t key = pipeline.distilled_key(
        cell.field("dataset"), cell.field_int("size"));
    return pipeline.cache().load_dataset(key).has_value();
  };

  const FleetStats stats = orchestrate(dir, specs, fleet, validate);
  if (stats_out != nullptr) *stats_out = stats;
  if (stats.dead > 0) {
    throw Error(ErrorKind::kWorkerLost,
                "fleet: distill grid incomplete: " + std::to_string(stats.dead) +
                    " cell(s) quarantined in " + (dir / "dead").string());
  }
  for (const auto& [name, size] : cells) {
    datasets.push_back(pipeline.distilled_dataset(name, size));  // cache hit
  }
  return datasets;
}

}  // namespace sdd::fleet
