// SDD pipeline stages wired through the fleet: the production task executor
// run inside worker processes, plus orchestrator-side entry points that fan
// an eval suite or a distillation grid out across workers and assemble
// results byte-identically to the single-process path.
//
// Task kinds (TaskSpec fields["kind"]):
//
//   eval_cell     one (model, benchmark task) evaluation. The worker loads
//                 the checkpointed model, evaluates the named task, and
//                 publishes a checksummed metric artifact ("SDDMTRC1") at
//                 fields["out"]. A torn or corrupt result is rejected by the
//                 orchestrator's validator (checksum re-read) and requeued.
//
//   distill_cell  one self-distilled dataset cell. The worker constructs a
//                 Pipeline from PipelineConfig::standard() — so it MUST run
//                 with the same SDD_* environment as the orchestrator — and
//                 the artifact lands in the shared experiment cache, where
//                 the orchestrator validates it via a checksummed load.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "eval/suite.hpp"
#include "fleet/orchestrator.hpp"

namespace sdd::fleet {

// Production executor for worker processes; dispatches on fields["kind"].
// Throws (failing the task against its retry budget) on any error.
void execute_task(const TaskSpec& task);

// Checksummed metric artifact (magic "SDDMTRC1") written by eval_cell
// workers. read_metric throws SerializeError on a missing, torn, or corrupt
// file — the orchestrator treats that as "result not published".
void write_metric(const std::filesystem::path& path,
                  const eval::TaskResult& result);
eval::TaskResult read_metric(const std::filesystem::path& path);

// Fleet-parallel eval::evaluate_suite. With fleet disabled this IS
// evaluate_suite; with workers the per-task cells run in worker processes
// and the scores are assembled in serial task order (same floating-point
// accumulation), so the result is byte-identical either way. The queue
// directory is derived from (weight hash, spec hash, tasks, world seed)
// under `work_root`, so re-running after an orchestrator crash resumes and
// completed cells are reused. Throws Error{kWorkerLost} when cells were
// quarantined (the grid is incomplete).
eval::SuiteScores run_eval_suite(const nn::TransformerLM& model,
                                 const data::World& world,
                                 const std::vector<std::string>& tasks,
                                 const eval::SuiteSpec& spec,
                                 const FleetConfig& fleet,
                                 const std::filesystem::path& work_root,
                                 FleetStats* stats_out = nullptr);

// Fleet-parallel distilled-dataset grid over (dataset name, size) cells.
// The base (teacher) model is trained/loaded in the orchestrator BEFORE
// workers spawn so they all hit the cache instead of racing to pretrain.
// Returns the datasets in cell order (loaded through the shared cache).
std::vector<data::SftDataset> run_distill_grid(
    core::Pipeline& pipeline,
    const std::vector<std::pair<std::string, std::int64_t>>& cells,
    const FleetConfig& fleet, FleetStats* stats_out = nullptr);

}  // namespace sdd::fleet
