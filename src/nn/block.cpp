#include "nn/block.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace sdd::nn {

// ---------------------------------------------------------------- RMSNorm

RMSNorm::RMSNorm(std::int64_t dim) {
  weight_ = Tensor::full(Shape{dim}, 1.0F, /*requires_grad=*/true);
}

Tensor RMSNorm::forward(const Tensor& x, float eps) const {
  return ops::rmsnorm(x, weight_, eps);
}

void RMSNorm::apply(const float* x, float* out, std::int64_t rows, float eps) const {
  kernels::rmsnorm_forward(x, weight_.data().data(), out, rows, weight_.dim(0), eps,
                           /*inv_rms=*/nullptr);
}

void RMSNorm::collect_parameters(const std::string& prefix, ParamList& out) const {
  out.push_back({prefix + ".weight", weight_});
}

void RMSNorm::collect_trainable(const std::string& prefix, ParamList& out) const {
  if (weight_.requires_grad()) out.push_back({prefix + ".weight", weight_});
}

RMSNorm RMSNorm::clone() const {
  RMSNorm copy;
  copy.weight_ = weight_.clone();
  return copy;
}

// --------------------------------------------------- CausalSelfAttention

CausalSelfAttention::CausalSelfAttention(const ModelConfig& config, Rng& rng)
    : wq_{config.d_model, config.d_model, rng},
      wk_{config.d_model, config.d_model, rng},
      wv_{config.d_model, config.d_model, rng},
      wo_{config.d_model, config.d_model, rng},
      n_heads_{config.n_heads},
      rope_base_{config.rope_base} {}

Tensor CausalSelfAttention::forward(const Tensor& x) const {
  const Tensor q = wq_.forward(x);
  const Tensor k = wk_.forward(x);
  const Tensor v = wv_.forward(x);
  const Tensor attn = ops::causal_self_attention(q, k, v, n_heads_, rope_base_);
  return wo_.forward(attn);
}

void CausalSelfAttention::step(const float* x, float* out, LayerKVCache& cache,
                               std::int64_t pos) const {
  const std::int64_t channels = wq_.out_features();
  const std::int64_t head_dim = channels / n_heads_;
  const float inv_sqrt_d = 1.0F / std::sqrt(static_cast<float>(head_dim));

  if (static_cast<std::size_t>((pos + 1) * channels) > cache.keys.size()) {
    throw std::logic_error("attention step: KV cache overflow");
  }
  if (pos != cache.length) {
    throw std::logic_error("attention step: position does not match cache length");
  }

  if (!cache.rope || cache.rope->positions() <= pos ||
      cache.rope->head_dim() != head_dim) {
    cache.rope = kernels::RopeTable::get(head_dim, rope_base_, pos + 1);
  }

  std::vector<float> q(static_cast<std::size_t>(channels));
  float* k_slot = cache.keys.data() + pos * channels;
  float* v_slot = cache.values.data() + pos * channels;
  wq_.apply(x, q.data(), 1);
  wk_.apply(x, k_slot, 1);
  wv_.apply(x, v_slot, 1);
  cache.rope->apply(q.data(), n_heads_, pos, 1.0F);
  cache.rope->apply(k_slot, n_heads_, pos, 1.0F);
  cache.length = pos + 1;

  std::vector<float> mixed(static_cast<std::size_t>(channels), 0.0F);
  std::vector<float> scores(static_cast<std::size_t>(pos + 1));
  for (std::int64_t h = 0; h < n_heads_; ++h) {
    const float* q_head = q.data() + h * head_dim;
    float max_score = -1e30F;
    for (std::int64_t t = 0; t <= pos; ++t) {
      const float s =
          kernels::dot(q_head, cache.keys.data() + t * channels + h * head_dim,
                       head_dim) *
          inv_sqrt_d;
      scores[static_cast<std::size_t>(t)] = s;
      max_score = std::max(max_score, s);
    }
    float sum = 0.0F;
    for (std::int64_t t = 0; t <= pos; ++t) {
      scores[static_cast<std::size_t>(t)] =
          std::exp(scores[static_cast<std::size_t>(t)] - max_score);
      sum += scores[static_cast<std::size_t>(t)];
    }
    const float inv_sum = 1.0F / sum;
    float* mixed_head = mixed.data() + h * head_dim;
    for (std::int64_t t = 0; t <= pos; ++t) {
      kernels::axpy(scores[static_cast<std::size_t>(t)] * inv_sum,
                    cache.values.data() + t * channels + h * head_dim, mixed_head,
                    head_dim, /*accumulate=*/true);
    }
  }
  wo_.apply(mixed.data(), out, 1);
}

void CausalSelfAttention::step_span(const float* x, float* out, LayerKVCache& cache,
                                    std::int64_t pos, std::int64_t count) const {
  const std::int64_t channels = wq_.out_features();
  const std::int64_t head_dim = channels / n_heads_;
  const float inv_sqrt_d = 1.0F / std::sqrt(static_cast<float>(head_dim));

  if (static_cast<std::size_t>((pos + count) * channels) > cache.keys.size()) {
    throw std::logic_error("attention span: KV cache overflow");
  }
  if (pos != cache.length) {
    throw std::logic_error("attention span: position does not match cache length");
  }

  if (!cache.rope || cache.rope->positions() < pos + count ||
      cache.rope->head_dim() != head_dim) {
    cache.rope = kernels::RopeTable::get(head_dim, rope_base_, pos + count);
  }

  // Batched projections: each weight row streams through the cache once for
  // the whole span, with per-row results bitwise-identical to the
  // single-token step (apply_rowwise). The K/V rows for the span are
  // consecutive cache slots, so they project straight into place.
  std::vector<float> q(static_cast<std::size_t>(count * channels));
  float* k_rows = cache.keys.data() + pos * channels;
  float* v_rows = cache.values.data() + pos * channels;
  wq_.apply_rowwise(x, q.data(), count);
  wk_.apply_rowwise(x, k_rows, count);
  wv_.apply_rowwise(x, v_rows, count);
  for (std::int64_t t = 0; t < count; ++t) {
    cache.rope->apply(q.data() + t * channels, n_heads_, pos + t, 1.0F);
    cache.rope->apply(k_rows + t * channels, n_heads_, pos + t, 1.0F);
  }
  cache.length = pos + count;

  // The attention mixing is causally sequential: token t attends to
  // positions [0, pos+t], which include the earlier span tokens — whose
  // keys/values are already in the cache exactly as a per-token loop would
  // have left them, so every score below matches the step() path bitwise.
  std::vector<float> mixed(static_cast<std::size_t>(count * channels), 0.0F);
  std::vector<float> scores(static_cast<std::size_t>(pos + count));
  for (std::int64_t t = 0; t < count; ++t) {
    const std::int64_t here = pos + t;
    for (std::int64_t h = 0; h < n_heads_; ++h) {
      const float* q_head = q.data() + t * channels + h * head_dim;
      float max_score = -1e30F;
      for (std::int64_t s = 0; s <= here; ++s) {
        const float sc =
            kernels::dot(q_head, cache.keys.data() + s * channels + h * head_dim,
                         head_dim) *
            inv_sqrt_d;
        scores[static_cast<std::size_t>(s)] = sc;
        max_score = std::max(max_score, sc);
      }
      float sum = 0.0F;
      for (std::int64_t s = 0; s <= here; ++s) {
        scores[static_cast<std::size_t>(s)] =
            std::exp(scores[static_cast<std::size_t>(s)] - max_score);
        sum += scores[static_cast<std::size_t>(s)];
      }
      const float inv_sum = 1.0F / sum;
      float* mixed_head = mixed.data() + t * channels + h * head_dim;
      for (std::int64_t s = 0; s <= here; ++s) {
        kernels::axpy(scores[static_cast<std::size_t>(s)] * inv_sum,
                      cache.values.data() + s * channels + h * head_dim, mixed_head,
                      head_dim, /*accumulate=*/true);
      }
    }
  }
  wo_.apply_rowwise(mixed.data(), out, count);
}

void CausalSelfAttention::collect_parameters(const std::string& prefix,
                                             ParamList& out) const {
  wq_.collect_parameters(prefix + ".wq", out);
  wk_.collect_parameters(prefix + ".wk", out);
  wv_.collect_parameters(prefix + ".wv", out);
  wo_.collect_parameters(prefix + ".wo", out);
}

void CausalSelfAttention::collect_trainable(const std::string& prefix,
                                            ParamList& out) const {
  wq_.collect_trainable(prefix + ".wq", out);
  wk_.collect_trainable(prefix + ".wk", out);
  wv_.collect_trainable(prefix + ".wv", out);
  wo_.collect_trainable(prefix + ".wo", out);
}

CausalSelfAttention CausalSelfAttention::clone() const {
  CausalSelfAttention copy;
  copy.wq_ = wq_.clone();
  copy.wk_ = wk_.clone();
  copy.wv_ = wv_.clone();
  copy.wo_ = wo_.clone();
  copy.n_heads_ = n_heads_;
  copy.rope_base_ = rope_base_;
  return copy;
}

// ------------------------------------------------------------- SwiGluMlp

SwiGluMlp::SwiGluMlp(const ModelConfig& config, Rng& rng)
    : w_gate_{config.d_model, config.d_ff, rng},
      w_up_{config.d_model, config.d_ff, rng},
      w_down_{config.d_ff, config.d_model, rng} {}

Tensor SwiGluMlp::forward(const Tensor& x) const {
  const Tensor gate = w_gate_.forward(x);
  const Tensor up = w_up_.forward(x);
  return w_down_.forward(ops::swiglu(gate, up));
}

void SwiGluMlp::step(const float* x, float* out) const {
  const std::int64_t d_ff = w_gate_.out_features();
  std::vector<float> gate(static_cast<std::size_t>(d_ff));
  std::vector<float> up(static_cast<std::size_t>(d_ff));
  w_gate_.apply(x, gate.data(), 1);
  w_up_.apply(x, up.data(), 1);
  for (std::int64_t i = 0; i < d_ff; ++i) {
    gate[static_cast<std::size_t>(i)] =
        kernels::silu(gate[static_cast<std::size_t>(i)]) *
        up[static_cast<std::size_t>(i)];
  }
  w_down_.apply(gate.data(), out, 1);
}

void SwiGluMlp::step_span(const float* x, float* out, std::int64_t count) const {
  const std::int64_t d_ff = w_gate_.out_features();
  std::vector<float> gate(static_cast<std::size_t>(count * d_ff));
  std::vector<float> up(static_cast<std::size_t>(count * d_ff));
  w_gate_.apply_rowwise(x, gate.data(), count);
  w_up_.apply_rowwise(x, up.data(), count);
  for (std::int64_t i = 0; i < count * d_ff; ++i) {
    gate[static_cast<std::size_t>(i)] =
        kernels::silu(gate[static_cast<std::size_t>(i)]) *
        up[static_cast<std::size_t>(i)];
  }
  w_down_.apply_rowwise(gate.data(), out, count);
}

void SwiGluMlp::collect_parameters(const std::string& prefix, ParamList& out) const {
  w_gate_.collect_parameters(prefix + ".gate", out);
  w_up_.collect_parameters(prefix + ".up", out);
  w_down_.collect_parameters(prefix + ".down", out);
}

void SwiGluMlp::collect_trainable(const std::string& prefix, ParamList& out) const {
  w_gate_.collect_trainable(prefix + ".gate", out);
  w_up_.collect_trainable(prefix + ".up", out);
  w_down_.collect_trainable(prefix + ".down", out);
}

SwiGluMlp SwiGluMlp::clone() const {
  SwiGluMlp copy;
  copy.w_gate_ = w_gate_.clone();
  copy.w_up_ = w_up_.clone();
  copy.w_down_ = w_down_.clone();
  return copy;
}

// ------------------------------------------------------ TransformerBlock

TransformerBlock::TransformerBlock(const ModelConfig& config, Rng& rng)
    : norm1_{config.d_model},
      norm2_{config.d_model},
      attn_{config, rng},
      mlp_{config, rng},
      eps_{config.rmsnorm_eps} {}

Tensor TransformerBlock::forward(const Tensor& x) const {
  const Tensor attn_out = attn_.forward(norm1_.forward(x, eps_));
  const Tensor mid = ops::add(x, attn_out);
  const Tensor mlp_out = mlp_.forward(norm2_.forward(mid, eps_));
  return ops::add(mid, mlp_out);
}

void TransformerBlock::step(float* x, LayerKVCache& cache, std::int64_t pos) const {
  const std::int64_t channels = norm1_.weight().dim(0);
  std::vector<float> normed(static_cast<std::size_t>(channels));
  std::vector<float> delta(static_cast<std::size_t>(channels));

  norm1_.apply(x, normed.data(), 1, eps_);
  attn_.step(normed.data(), delta.data(), cache, pos);
  kernels::axpy(1.0F, delta.data(), x, channels, /*accumulate=*/true);

  norm2_.apply(x, normed.data(), 1, eps_);
  mlp_.step(normed.data(), delta.data());
  kernels::axpy(1.0F, delta.data(), x, channels, /*accumulate=*/true);
}

void TransformerBlock::step_span(float* x, LayerKVCache& cache, std::int64_t pos,
                                 std::int64_t count) const {
  const std::int64_t channels = norm1_.weight().dim(0);
  std::vector<float> normed(static_cast<std::size_t>(count * channels));
  std::vector<float> delta(static_cast<std::size_t>(count * channels));

  // rmsnorm_forward computes rows independently through one shared row body,
  // so the count-row calls below are bitwise-identical to per-row calls.
  norm1_.apply(x, normed.data(), count, eps_);
  attn_.step_span(normed.data(), delta.data(), cache, pos, count);
  kernels::axpy(1.0F, delta.data(), x, count * channels, /*accumulate=*/true);

  norm2_.apply(x, normed.data(), count, eps_);
  mlp_.step_span(normed.data(), delta.data(), count);
  kernels::axpy(1.0F, delta.data(), x, count * channels, /*accumulate=*/true);
}

void TransformerBlock::collect_parameters(const std::string& prefix,
                                          ParamList& out) const {
  norm1_.collect_parameters(prefix + ".norm1", out);
  attn_.collect_parameters(prefix + ".attn", out);
  norm2_.collect_parameters(prefix + ".norm2", out);
  mlp_.collect_parameters(prefix + ".mlp", out);
}

void TransformerBlock::collect_trainable(const std::string& prefix,
                                         ParamList& out) const {
  norm1_.collect_trainable(prefix + ".norm1", out);
  attn_.collect_trainable(prefix + ".attn", out);
  norm2_.collect_trainable(prefix + ".norm2", out);
  mlp_.collect_trainable(prefix + ".mlp", out);
}

TransformerBlock TransformerBlock::clone() const {
  TransformerBlock copy;
  copy.norm1_ = norm1_.clone();
  copy.norm2_ = norm2_.clone();
  copy.attn_ = attn_.clone();
  copy.mlp_ = mlp_.clone();
  copy.eps_ = eps_;
  return copy;
}

}  // namespace sdd::nn
