// Decoder block: pre-norm causal self-attention + SwiGLU MLP with residuals,
// the same block structure as Llama-family models (RMSNorm, RoPE, no biases).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/config.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "tensor/rope_cache.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace sdd::nn {

// Per-layer key/value cache for incremental decoding. Keys are stored
// *post-RoPE* so each step only rotates the new position. The decode session
// also pins the precomputed RoPE cos/sin table here (sized to max_seq_len by
// make_decode_state) so per-token steps never touch the table cache mutex.
struct LayerKVCache {
  std::vector<float> keys;    // [max_seq, C], rotated
  std::vector<float> values;  // [max_seq, C]
  std::shared_ptr<const kernels::RopeTable> rope;
  std::int64_t length = 0;

  void reset() noexcept { length = 0; }
};

class RMSNorm {
 public:
  RMSNorm() = default;
  explicit RMSNorm(std::int64_t dim);

  Tensor forward(const Tensor& x, float eps) const;
  void apply(const float* x, float* out, std::int64_t rows, float eps) const;

  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }

  void collect_parameters(const std::string& prefix, ParamList& out) const;
  void collect_trainable(const std::string& prefix, ParamList& out) const;
  RMSNorm clone() const;

 private:
  Tensor weight_;  // [dim], initialized to ones
};

class CausalSelfAttention {
 public:
  CausalSelfAttention() = default;
  CausalSelfAttention(const ModelConfig& config, Rng& rng);

  Tensor forward(const Tensor& x) const;  // x: [B, T, C]

  // Single-token decode step: x is one [C] vector at position `pos`.
  void step(const float* x, float* out, LayerKVCache& cache, std::int64_t pos) const;

  // Multi-token decode span: x/out are [count, C] rows for consecutive
  // positions pos..pos+count-1. The linear projections batch over the span
  // (each weight row streamed once) while the attention mixing itself stays
  // causally sequential per token; the result is bitwise-identical to
  // `count` successive step() calls. Used by the speculative verify pass.
  void step_span(const float* x, float* out, LayerKVCache& cache, std::int64_t pos,
                 std::int64_t count) const;

  Linear& wq() { return wq_; }
  Linear& wk() { return wk_; }
  Linear& wv() { return wv_; }
  Linear& wo() { return wo_; }
  const Linear& wq() const { return wq_; }
  const Linear& wo() const { return wo_; }

  void collect_parameters(const std::string& prefix, ParamList& out) const;
  void collect_trainable(const std::string& prefix, ParamList& out) const;
  CausalSelfAttention clone() const;

 private:
  Linear wq_, wk_, wv_, wo_;
  std::int64_t n_heads_ = 0;
  float rope_base_ = 10000.0F;
};

class SwiGluMlp {
 public:
  SwiGluMlp() = default;
  SwiGluMlp(const ModelConfig& config, Rng& rng);

  Tensor forward(const Tensor& x) const;
  void step(const float* x, float* out) const;  // single [C] vector
  // Row-batched step, bitwise-identical to `count` single-row step() calls.
  void step_span(const float* x, float* out, std::int64_t count) const;

  Linear& w_gate() { return w_gate_; }
  Linear& w_up() { return w_up_; }
  Linear& w_down() { return w_down_; }
  const Linear& w_gate() const { return w_gate_; }

  void collect_parameters(const std::string& prefix, ParamList& out) const;
  void collect_trainable(const std::string& prefix, ParamList& out) const;
  SwiGluMlp clone() const;

 private:
  Linear w_gate_, w_up_, w_down_;
};

class TransformerBlock {
 public:
  TransformerBlock() = default;
  TransformerBlock(const ModelConfig& config, Rng& rng);

  Tensor forward(const Tensor& x) const;

  // In-place single-token decode step on x[C].
  void step(float* x, LayerKVCache& cache, std::int64_t pos) const;

  // In-place decode over `count` consecutive tokens x[count, C] at positions
  // pos..pos+count-1; bitwise-identical to `count` step() calls.
  void step_span(float* x, LayerKVCache& cache, std::int64_t pos,
                 std::int64_t count) const;

  CausalSelfAttention& attention() { return attn_; }
  SwiGluMlp& mlp() { return mlp_; }
  const CausalSelfAttention& attention() const { return attn_; }
  const SwiGluMlp& mlp() const { return mlp_; }
  RMSNorm& norm1() { return norm1_; }
  RMSNorm& norm2() { return norm2_; }

  void collect_parameters(const std::string& prefix, ParamList& out) const;
  void collect_trainable(const std::string& prefix, ParamList& out) const;
  TransformerBlock clone() const;

 private:
  RMSNorm norm1_, norm2_;
  CausalSelfAttention attn_;
  SwiGluMlp mlp_;
  float eps_ = 1e-5F;
};

}  // namespace sdd::nn
