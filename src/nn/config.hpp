// Transformer hyper-parameter configuration.
#pragma once

#include <cstdint>
#include <string>

#include "util/hash.hpp"

namespace sdd::nn {

struct ModelConfig {
  std::int64_t vocab_size = 0;
  std::int64_t d_model = 64;
  std::int64_t n_heads = 4;
  std::int64_t n_layers = 16;
  std::int64_t d_ff = 128;
  std::int64_t max_seq_len = 96;
  float rope_base = 10000.0F;
  float rmsnorm_eps = 1e-5F;

  std::int64_t head_dim() const { return d_model / n_heads; }

  bool operator==(const ModelConfig&) const = default;

  std::uint64_t hash() const {
    std::uint64_t h = kFnvOffset;
    h = fnv1a_value(vocab_size, h);
    h = fnv1a_value(d_model, h);
    h = fnv1a_value(n_heads, h);
    h = fnv1a_value(n_layers, h);
    h = fnv1a_value(d_ff, h);
    h = fnv1a_value(max_seq_len, h);
    h = fnv1a_value(rope_base, h);
    h = fnv1a_value(rmsnorm_eps, h);
    return h;
  }

  std::string to_string() const {
    return "ModelConfig{vocab=" + std::to_string(vocab_size) +
           ", d=" + std::to_string(d_model) + ", heads=" + std::to_string(n_heads) +
           ", layers=" + std::to_string(n_layers) + ", ff=" + std::to_string(d_ff) +
           ", ctx=" + std::to_string(max_seq_len) + "}";
  }
};

}  // namespace sdd::nn
