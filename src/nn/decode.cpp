#include "nn/decode.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/supervisor.hpp"

namespace sdd::nn {
namespace {

std::int32_t argmax(std::span<const float> logits) {
  return static_cast<std::int32_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

std::int32_t sample_with_temperature(std::span<const float> logits, float temperature,
                                     Rng& rng) {
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<double> probs(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(static_cast<double>((logits[i] - max_logit) / temperature));
    sum += probs[i];
  }
  double target = rng.uniform() * sum;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    target -= probs[i];
    if (target < 0.0) return static_cast<std::int32_t>(i);
  }
  return static_cast<std::int32_t>(probs.size() - 1);
}

}  // namespace

std::int32_t sample_token(std::span<const float> logits, float temperature,
                          Rng& rng) {
  return temperature <= 0.0F ? argmax(logits)
                             : sample_with_temperature(logits, temperature, rng);
}

std::vector<std::int32_t> generate(const TransformerLM& model,
                                   std::span<const std::int32_t> prompt,
                                   const GenerateOptions& options) {
  if (prompt.empty()) throw std::invalid_argument("generate: empty prompt");
  NoGradGuard no_grad;
  Rng rng{options.seed};

  auto state = model.make_decode_state();
  supervisor::heartbeat();
  if (options.cancel.cancelled()) return {};
  // Batched prefill: one decode_span pass streams each weight row once for
  // the whole prompt (bitwise-identical to per-token decode_step); only the
  // final row predicts the first generated token.
  const std::vector<float> rows = model.decode_span(state, prompt);
  const std::size_t vocab = static_cast<std::size_t>(model.config().vocab_size);
  std::vector<float> logits(rows.end() - static_cast<std::ptrdiff_t>(vocab),
                            rows.end());

  std::vector<std::int32_t> generated;
  const std::int64_t budget =
      std::min(options.max_new_tokens,
               model.config().max_seq_len - static_cast<std::int64_t>(prompt.size()));
  for (std::int64_t i = 0; i < budget; ++i) {
    supervisor::heartbeat();
    fault::on_decode_token();
    if (options.cancel.cancelled()) break;
    const std::int32_t next = sample_token(logits, options.temperature, rng);
    if (next == options.stop_token) break;
    generated.push_back(next);
    if (i + 1 < budget) logits = model.decode_step(state, next);
  }
  return generated;
}

double sequence_logprob(const TransformerLM& model,
                        std::span<const std::int32_t> prompt,
                        std::span<const std::int32_t> continuation,
                        const CancelToken& cancel) {
  if (prompt.empty() || continuation.empty()) {
    throw std::invalid_argument("sequence_logprob: empty prompt or continuation");
  }
  NoGradGuard no_grad;

  std::vector<std::int32_t> ids(prompt.begin(), prompt.end());
  ids.insert(ids.end(), continuation.begin(), continuation.end());
  const auto total = static_cast<std::int64_t>(ids.size());
  if (total > model.config().max_seq_len) {
    throw std::invalid_argument("sequence_logprob: sequence exceeds context window");
  }

  supervisor::heartbeat();
  if (cancel.cancelled()) {
    throw Error(ErrorKind::kTimeout,
                std::string{"sequence_logprob: "} + cancel.reason());
  }
  const Tensor logits = model.forward(ids, /*batch=*/1, /*seq=*/total);
  const std::int64_t vocab = model.config().vocab_size;
  const float* data = logits.data().data();

  double total_logprob = 0.0;
  const auto prompt_len = static_cast<std::int64_t>(prompt.size());
  for (std::int64_t pos = prompt_len - 1; pos < total - 1; ++pos) {
    supervisor::heartbeat();
    if (cancel.cancelled()) {
      throw Error(ErrorKind::kTimeout,
                  std::string{"sequence_logprob: "} + cancel.reason());
    }
    const float* row = data + pos * vocab;
    const float max_logit = *std::max_element(row, row + vocab);
    double sum = 0.0;
    for (std::int64_t v = 0; v < vocab; ++v) {
      sum += std::exp(static_cast<double>(row[v] - max_logit));
    }
    const std::int32_t target = ids[static_cast<std::size_t>(pos + 1)];
    total_logprob += static_cast<double>(row[target] - max_logit) - std::log(sum);
  }
  return total_logprob;
}

}  // namespace sdd::nn
