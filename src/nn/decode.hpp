// Autoregressive decoding (greedy and temperature sampling) with KV cache.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/transformer.hpp"
#include "util/rng.hpp"

namespace sdd::nn {

struct GenerateOptions {
  std::int64_t max_new_tokens = 48;
  float temperature = 0.0F;  // 0 => greedy argmax
  std::int32_t stop_token = -1;
  std::uint64_t seed = 1234;
};

// Feed `prompt` through the model and decode up to max_new_tokens more.
// Returns ONLY the newly generated tokens; generation stops at stop_token
// (which is not included) or at the model's context limit.
std::vector<std::int32_t> generate(const TransformerLM& model,
                                   std::span<const std::int32_t> prompt,
                                   const GenerateOptions& options);

// Sum of log p(continuation | prompt) under the model, computed with one
// batched forward. Used for multiple-choice scoring.
double sequence_logprob(const TransformerLM& model,
                        std::span<const std::int32_t> prompt,
                        std::span<const std::int32_t> continuation);

}  // namespace sdd::nn
