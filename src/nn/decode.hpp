// Autoregressive decoding (greedy and temperature sampling) with KV cache.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/transformer.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace sdd::nn {

struct GenerateOptions {
  std::int64_t max_new_tokens = 48;
  float temperature = 0.0F;  // 0 => greedy argmax
  std::int32_t stop_token = -1;
  std::uint64_t seed = 1234;
  // Cooperative cancellation / deadline. The default (empty) token costs a
  // single null check per token; a real token is polled once per prompt and
  // generated token, and generation returns the tokens produced so far when
  // it reads as cancelled.
  CancelToken cancel{};
};

// Pick the next token from a logits row: argmax when temperature <= 0,
// softmax sampling at the given temperature otherwise. Shared by generate()
// and the batched serving decode loop so both sample bit-identically.
std::int32_t sample_token(std::span<const float> logits, float temperature,
                          Rng& rng);

// Feed `prompt` through the model and decode up to max_new_tokens more.
// Returns ONLY the newly generated tokens; generation stops at stop_token
// (which is not included), at the model's context limit, or early — with a
// partial result — when options.cancel is cancelled or past its deadline.
// Emits a supervisor heartbeat per token, so decodes running under a
// supervised stage are covered by SDD_STAGE_HANG_SEC watchdogs.
std::vector<std::int32_t> generate(const TransformerLM& model,
                                   std::span<const std::int32_t> prompt,
                                   const GenerateOptions& options);

// Sum of log p(continuation | prompt) under the model, computed with one
// batched forward. Used for multiple-choice scoring. Throws Error{timeout}
// when `cancel` is cancelled or past its deadline (a partial logprob would
// be meaningless, so unlike generate() this cannot return partial work).
double sequence_logprob(const TransformerLM& model,
                        std::span<const std::int32_t> prompt,
                        std::span<const std::int32_t> continuation,
                        const CancelToken& cancel = {});

}  // namespace sdd::nn
