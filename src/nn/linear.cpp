#include "nn/linear.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"

namespace sdd::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng) {
  const float stddev = 1.0F / std::sqrt(static_cast<float>(in_features));
  weight_ = Tensor::randn(rng, Shape{out_features, in_features}, stddev,
                          /*requires_grad=*/true);
}

Tensor Linear::forward(const Tensor& x) const {
  Tensor y = ops::linear(x, weight_);
  if (lora_) {
    const Tensor low_rank = ops::linear(x, lora_->a);        // [..., r]
    const Tensor delta = ops::linear(low_rank, lora_->b);    // [..., out]
    y = ops::add_scaled(y, delta, lora_->scale);
  }
  return y;
}

void Linear::apply(const float* x, float* y, std::int64_t rows) const {
  const std::int64_t in = in_features();
  const std::int64_t out = out_features();
  kernels::gemm_nt(x, weight_.data().data(), y, rows, in, out, /*accumulate=*/false);
  if (lora_) {
    const std::int64_t rank = lora_->a.dim(0);
    std::vector<float> low_rank(static_cast<std::size_t>(rows * rank));
    kernels::gemm_nt(x, lora_->a.data().data(), low_rank.data(), rows, in, rank,
                     /*accumulate=*/false);
    std::vector<float> delta(static_cast<std::size_t>(rows * out));
    kernels::gemm_nt(low_rank.data(), lora_->b.data().data(), delta.data(), rows, rank,
                     out, /*accumulate=*/false);
    kernels::axpy(lora_->scale, delta.data(), y, rows * out, /*accumulate=*/true);
  }
}

void Linear::apply_rowwise(const float* x, float* y, std::int64_t rows) const {
  const std::int64_t in = in_features();
  const std::int64_t out = out_features();
  kernels::gemm_nt_rowwise(x, weight_.data().data(), y, rows, in, out,
                           /*accumulate=*/false);
  if (lora_) {
    const std::int64_t rank = lora_->a.dim(0);
    std::vector<float> low_rank(static_cast<std::size_t>(rows * rank));
    kernels::gemm_nt_rowwise(x, lora_->a.data().data(), low_rank.data(), rows, in,
                             rank, /*accumulate=*/false);
    std::vector<float> delta(static_cast<std::size_t>(rows * out));
    kernels::gemm_nt_rowwise(low_rank.data(), lora_->b.data().data(), delta.data(),
                             rows, rank, out, /*accumulate=*/false);
    kernels::axpy(lora_->scale, delta.data(), y, rows * out, /*accumulate=*/true);
  }
}

void Linear::attach_lora(std::int64_t rank, float alpha, Rng& rng) {
  if (lora_) throw std::logic_error("Linear: LoRA adapter already attached");
  const std::int64_t in = in_features();
  const std::int64_t out = out_features();
  LoraAdapter adapter;
  const float stddev = 1.0F / std::sqrt(static_cast<float>(in));
  adapter.a = Tensor::randn(rng, Shape{rank, in}, stddev, /*requires_grad=*/true);
  adapter.b = Tensor::zeros(Shape{out, rank}, /*requires_grad=*/true);
  adapter.scale = alpha / static_cast<float>(rank);
  lora_ = std::move(adapter);
  weight_.raw()->requires_grad = false;  // freeze the base weight
}

void Linear::merge_lora() {
  if (!lora_) return;
  const std::int64_t in = in_features();
  const std::int64_t out = out_features();
  const std::int64_t rank = lora_->a.dim(0);
  // W += scale * B[out,r] @ A[r,in]
  std::vector<float> delta(static_cast<std::size_t>(out * in));
  kernels::gemm_nn(lora_->b.data().data(), lora_->a.data().data(), delta.data(), out,
                   rank, in, /*accumulate=*/false);
  float* w = weight_.data().data();
  kernels::axpy(lora_->scale, delta.data(), w, out * in, /*accumulate=*/true);
  lora_.reset();
  weight_.raw()->requires_grad = true;
}

void Linear::discard_lora() {
  lora_.reset();
  if (weight_.defined()) weight_.raw()->requires_grad = true;
}

void Linear::collect_parameters(const std::string& prefix, ParamList& out) const {
  out.push_back({prefix + ".weight", weight_});
  if (lora_) {
    out.push_back({prefix + ".lora_a", lora_->a});
    out.push_back({prefix + ".lora_b", lora_->b});
  }
}

void Linear::collect_trainable(const std::string& prefix, ParamList& out) const {
  if (lora_) {
    out.push_back({prefix + ".lora_a", lora_->a});
    out.push_back({prefix + ".lora_b", lora_->b});
  } else if (weight_.requires_grad()) {
    out.push_back({prefix + ".weight", weight_});
  }
}

Linear Linear::clone() const {
  Linear copy;
  copy.weight_ = weight_.clone();
  if (lora_) {
    LoraAdapter adapter;
    adapter.a = lora_->a.clone();
    adapter.b = lora_->b.clone();
    adapter.scale = lora_->scale;
    copy.lora_ = std::move(adapter);
  }
  return copy;
}

}  // namespace sdd::nn
