// Linear projection with optional LoRA adapter.
//
// The adapter follows Hu et al. (2022): y = W x + (alpha / r) * B (A x) with
// A ~ N(0, sigma) of shape [r, in] and B = 0 of shape [out, r], so attaching
// an adapter leaves the function unchanged at initialization. When an adapter
// is active the base weight is frozen (requires_grad = false) and only A/B
// are trained; merge_lora() folds alpha/r * B A into W and removes the
// adapter, restoring a plain Linear.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "nn/module.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace sdd::nn {

class Linear {
 public:
  Linear() = default;
  // Kaiming-style init: N(0, 1/sqrt(in)).
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& x) const;

  // Inference path: y[rows, out] = apply to x[rows, in] (raw buffers, no tape).
  void apply(const float* x, float* y, std::int64_t rows) const;

  // Row-batched inference apply that is bitwise-identical to `rows` separate
  // apply(x_row, y_row, 1) calls (the single-token decode path) while
  // streaming each weight row once for the whole batch. The speculative
  // verify span uses this so batched verification stays provably
  // bit-identical to per-token decode; see kernels::gemm_nt_rowwise.
  void apply_rowwise(const float* x, float* y, std::int64_t rows) const;

  std::int64_t in_features() const { return weight_.defined() ? weight_.dim(1) : 0; }
  std::int64_t out_features() const { return weight_.defined() ? weight_.dim(0) : 0; }

  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }

  // --- LoRA ---
  void attach_lora(std::int64_t rank, float alpha, Rng& rng);
  void merge_lora();    // fold adapter into the base weight, then drop it
  void discard_lora();  // drop the adapter without folding (base unfrozen)
  bool has_lora() const { return lora_.has_value(); }
  float lora_scale() const { return lora_ ? lora_->scale : 0.0F; }

  void collect_parameters(const std::string& prefix, ParamList& out) const;
  // Only trainable parameters (skips frozen base weight under LoRA).
  void collect_trainable(const std::string& prefix, ParamList& out) const;

  Linear clone() const;

 private:
  struct LoraAdapter {
    Tensor a;  // [rank, in]
    Tensor b;  // [out, rank]
    float scale = 0.0F;
  };

  Tensor weight_;  // [out, in]
  std::optional<LoraAdapter> lora_;
};

}  // namespace sdd::nn
