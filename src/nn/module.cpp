#include "nn/module.hpp"

#include <stdexcept>

namespace sdd::nn {

std::int64_t param_count(const ParamList& params) {
  std::int64_t total = 0;
  for (const NamedParam& p : params) total += p.tensor.numel();
  return total;
}

std::vector<float> flatten_params(const ParamList& params) {
  std::vector<float> flat;
  flat.reserve(static_cast<std::size_t>(param_count(params)));
  for (const NamedParam& p : params) {
    const auto data = p.tensor.data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

void unflatten_params(const ParamList& params, std::span<const float> flat) {
  std::size_t offset = 0;
  for (const NamedParam& p : params) {
    const auto n = static_cast<std::size_t>(p.tensor.numel());
    if (offset + n > flat.size()) {
      throw std::invalid_argument("unflatten_params: flat vector too short");
    }
    Tensor tensor = p.tensor;  // shared impl; copy_from mutates in place
    tensor.copy_from(flat.subspan(offset, n));
    offset += n;
  }
  if (offset != flat.size()) {
    throw std::invalid_argument("unflatten_params: flat vector too long");
  }
}

}  // namespace sdd::nn
