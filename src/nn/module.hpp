// Parameter registry shared by all network modules.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace sdd::nn {

struct NamedParam {
  std::string name;
  Tensor tensor;
};

using ParamList = std::vector<NamedParam>;

// Total number of scalar parameters in a list.
std::int64_t param_count(const ParamList& params);

// Flatten all parameter values into one contiguous vector (used by SLERP
// merging and by checkpoint hashing), and scatter such a vector back.
std::vector<float> flatten_params(const ParamList& params);
void unflatten_params(const ParamList& params, std::span<const float> flat);

}  // namespace sdd::nn
