#include "nn/speculative.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/supervisor.hpp"

namespace sdd::nn {
namespace {

bool has_nonfinite(std::span<const float> values) {
  for (const float v : values) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

}  // namespace

SpeculativeSession::SpeculativeSession(const TransformerLM& target,
                                       const TransformerLM& draft, std::int64_t k,
                                       bool nan_guard)
    : target_{target},
      draft_{draft},
      k_{std::max<std::int64_t>(1, k)},
      nan_guard_{nan_guard},
      target_state_{target.make_decode_state()},
      draft_state_{draft.make_decode_state()} {
  if (draft.config().vocab_size != target.config().vocab_size) {
    throw std::invalid_argument(
        "speculative: draft and target vocabulary sizes differ");
  }
  if (draft.config().max_seq_len < target.config().max_seq_len) {
    throw std::invalid_argument(
        "speculative: draft context window smaller than the target's");
  }
}

std::int32_t SpeculativeSession::greedy(std::span<const float> logits) {
  // Literally the shared greedy sampler, so ties break exactly as they do in
  // nn::generate and the serving decode loop.
  return sample_token(logits, /*temperature=*/0.0F, rng_);
}

void SpeculativeSession::prefill(std::int32_t token) {
  flush_pending();
  target_logits_ = target_.decode_step(target_state_, token);
  if (nan_guard_ && has_nonfinite(target_logits_)) {
    throw Error(ErrorKind::kNumericDivergence,
                "speculative: non-finite target logits during prefill");
  }
  draft_logits_ = draft_.decode_step(draft_state_, token);
  if (fault::should_poison_draft_logits() && !draft_logits_.empty()) {
    draft_logits_[0] = std::numeric_limits<float>::quiet_NaN();
  }
}

void SpeculativeSession::prefill_span(std::span<const std::int32_t> tokens) {
  if (tokens.empty()) return;
  flush_pending();
  const std::size_t vocab = static_cast<std::size_t>(target_.config().vocab_size);
  const std::vector<float> target_rows = target_.decode_span(target_state_, tokens);
  if (nan_guard_ && has_nonfinite(target_rows)) {
    throw Error(ErrorKind::kNumericDivergence,
                "speculative: non-finite target logits during prefill");
  }
  target_logits_.assign(target_rows.end() - static_cast<std::ptrdiff_t>(vocab),
                        target_rows.end());
  const std::vector<float> draft_rows = draft_.decode_span(draft_state_, tokens);
  draft_logits_.assign(draft_rows.end() - static_cast<std::ptrdiff_t>(vocab),
                       draft_rows.end());
  // Per-token prefill consults the poison schedule once per token but only
  // the final token's verdict survives (earlier poisons are overwritten by
  // the next prefill). Consume the same number of schedule slots and honor
  // only the last, so fault ordinals are identical either way.
  bool poison = false;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    poison = fault::should_poison_draft_logits();
  }
  if (poison && !draft_logits_.empty()) {
    draft_logits_[0] = std::numeric_limits<float>::quiet_NaN();
  }
}

// Settle the lazily-pending token into both models sequentially. Only the
// prefill path uses this; round() instead feeds the draft directly and rides
// the target's copy at the front of the batched verify span.
void SpeculativeSession::flush_pending() {
  if (pending_ < 0) return;
  const std::int32_t token = pending_;
  pending_ = -1;
  target_logits_ = target_.decode_step(target_state_, token);
  if (nan_guard_ && has_nonfinite(target_logits_)) {
    throw Error(ErrorKind::kNumericDivergence,
                "speculative: non-finite target logits during decode");
  }
  draft_logits_ = draft_.decode_step(draft_state_, token);
  if (fault::should_poison_draft_logits() && !draft_logits_.empty()) {
    draft_logits_[0] = std::numeric_limits<float>::quiet_NaN();
  }
}

std::vector<std::int32_t> SpeculativeSession::round(std::int64_t remaining) {
  if (remaining <= 0) {
    throw std::logic_error("speculative round: no token budget remaining");
  }
  if (target_logits_.empty()) {
    throw std::logic_error("speculative round: prefill the prompt first");
  }
  ++counters_.rounds;
  const std::int32_t vocab =
      static_cast<std::int32_t>(target_.config().vocab_size);

  // The draft must consume last round's token before it can propose, but the
  // target's copy of that step rides at the front of the verify span below —
  // folding it into the batched pass saves a full sequential target forward
  // per round, and decode_span makes the fold bitwise-invisible.
  const std::int32_t owed = pending_;
  pending_ = -1;
  if (owed >= 0) {
    draft_logits_ = draft_.decode_step(draft_state_, owed);
    if (fault::should_poison_draft_logits() && !draft_logits_.empty()) {
      draft_logits_[0] = std::numeric_limits<float>::quiet_NaN();
    }
  }

  // A round always ends with one non-draft token (correction or bonus), so
  // the draft may propose at most remaining-1. With no headroom — or after
  // a draft numeric fault below — the round degrades to exactly the step
  // nn::generate would take.
  const std::int64_t width = std::min<std::int64_t>(k_, remaining - 1);

  std::vector<std::int32_t> proposal;
  bool draft_ok = width > 0;
  const std::int64_t draft_base = draft_state_.position;
  if (draft_ok) {
    proposal.reserve(static_cast<std::size_t>(width));
    for (std::int64_t i = 0; i < width; ++i) {
      supervisor::heartbeat();
      if (has_nonfinite(draft_logits_)) {
        draft_ok = false;
        break;
      }
      std::int32_t token = greedy(draft_logits_);
      token = fault::corrupt_draft_token(token, vocab);
      proposal.push_back(token);
      draft_logits_ = draft_.decode_step(draft_state_, token);
      if (fault::should_poison_draft_logits() && !draft_logits_.empty()) {
        draft_logits_[0] = std::numeric_limits<float>::quiet_NaN();
      }
    }
  }

  if (width > 0 && !draft_ok) {
    // The draft diverged mid-proposal: discard the round, rewind the draft,
    // and emit one token from the target alone. The target never consumed a
    // poisoned proposal, so the output is untouched.
    draft_state_.rollback(draft_base);
    ++counters_.draft_fallbacks;
  }

  if (width <= 0 || !draft_ok) {
    // Target-only step: settle the owed token sequentially, then emit.
    if (owed >= 0) {
      target_logits_ = target_.decode_step(target_state_, owed);
      if (nan_guard_ && has_nonfinite(target_logits_)) {
        throw Error(ErrorKind::kNumericDivergence,
                    "speculative: non-finite target logits during decode");
      }
    }
    const std::int32_t next = greedy(target_logits_);
    ++counters_.solo;
    pending_ = next;
    return {next};
  }

  // Batched verify over [owed?, proposal...]: with the owed token in front,
  // rows[0] is the target's logits after consuming it (the basis predicting
  // proposal[0], bitwise what a sequential decode_step(owed) would return)
  // and rows[offset + i] the logits after proposal[i].
  counters_.proposed += width;
  const std::int64_t target_base = target_state_.position;
  std::vector<std::int32_t> span;
  span.reserve(proposal.size() + 1);
  if (owed >= 0) span.push_back(owed);
  span.insert(span.end(), proposal.begin(), proposal.end());
  const std::int64_t offset = owed >= 0 ? 1 : 0;
  const std::vector<float> rows = target_.decode_span(target_state_, span);
  if (nan_guard_ && has_nonfinite(rows)) {
    throw Error(ErrorKind::kNumericDivergence,
                "speculative: non-finite target logits during verify");
  }

  std::vector<std::int32_t> emitted;
  emitted.reserve(static_cast<std::size_t>(width) + 1);
  // Logits predicting proposal[0]: post-owed when a token was owed, last
  // round's (or prefill's) tail logits otherwise.
  const float* prev =
      offset > 0 ? rows.data() : target_logits_.data();
  std::int64_t accepted = 0;
  while (accepted < width) {
    const std::int32_t expect = greedy({prev, static_cast<std::size_t>(vocab)});
    if (proposal[static_cast<std::size_t>(accepted)] != expect) break;
    emitted.push_back(expect);
    prev = rows.data() + (offset + accepted) * vocab;
    ++accepted;
  }
  counters_.accepted += accepted;

  // `prev` is now the target's logits after the accepted prefix: its argmax
  // is the correction token on a mismatch, or the free bonus token when the
  // whole proposal survived. Either way the round nets one target token.
  const std::int32_t next = greedy({prev, static_cast<std::size_t>(vocab)});
  emitted.push_back(next);
  if (accepted < width) {
    ++counters_.corrections;
    // The owed token stays consumed; only the rejected proposal tail rolls
    // back (in both caches).
    target_state_.rollback(target_base + offset + accepted);
    draft_state_.rollback(draft_base + accepted);
  } else {
    ++counters_.bonus;
  }
  target_logits_.assign(prev, prev + vocab);
  pending_ = next;
  return emitted;
}

std::vector<std::int32_t> speculative_generate(const TransformerLM& target,
                                               const TransformerLM& draft,
                                               std::span<const std::int32_t> prompt,
                                               const GenerateOptions& options,
                                               std::int64_t k,
                                               SpecCounters* counters) {
  if (prompt.empty()) {
    throw std::invalid_argument("speculative_generate: empty prompt");
  }
  if (options.temperature > 0.0F) {
    throw std::invalid_argument(
        "speculative_generate: greedy only (temperature must be 0)");
  }
  NoGradGuard no_grad;
  SpeculativeSession session{target, draft, k};
  supervisor::heartbeat();
  if (options.cancel.cancelled()) return {};
  session.prefill_span(prompt);

  std::vector<std::int32_t> generated;
  const std::int64_t budget =
      std::min(options.max_new_tokens,
               target.config().max_seq_len -
                   static_cast<std::int64_t>(prompt.size()));
  bool stopped = false;
  while (!stopped && static_cast<std::int64_t>(generated.size()) < budget) {
    supervisor::heartbeat();
    fault::on_decode_token();
    if (options.cancel.cancelled()) break;
    const std::vector<std::int32_t> emitted =
        session.round(budget - static_cast<std::int64_t>(generated.size()));
    for (const std::int32_t token : emitted) {
      if (token == options.stop_token) {
        stopped = true;
        break;
      }
      generated.push_back(token);
    }
  }
  if (counters != nullptr) counters->add(session.counters());
  return generated;
}

}  // namespace sdd::nn
