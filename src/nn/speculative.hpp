// Self-speculative greedy decoding: a depth-pruned draft model proposes k
// tokens from its own KV cache; the full target model scores all k in one
// batched verify span (decode_span), accepts the longest matching prefix,
// and emits its own correction token at the first mismatch — or a bonus
// token when every proposal survives. This is the serving payoff of the
// paper: an SDD-recovered pruned model is distribution-matched to its
// unpruned teacher by construction, which is exactly what a draft model
// needs for a high acceptance rate.
//
// Bit-identity invariant: the emitted token sequence equals the target's
// unassisted greedy decode, byte for byte, regardless of the draft, k, or
// injected rejection faults. The argument:
//   * every emitted token is argmax(L) where L is the target's next-token
//     logits at exactly that sequence position;
//   * decode_span produces logits bitwise-identical to repeated decode_step
//     (shared `dot` reductions via gemm_nt_rowwise / apply_rowwise, and
//     causally sequential attention against the same cache state);
//   * rejection rolls both KV caches back to the accepted prefix, and the
//     stale tail is overwritten before it can ever be read.
// A bad draft therefore only costs throughput (acceptance rate), never
// correctness. Greedy only: temperature sampling would need the
// accept/reject coin of distribution-preserving speculative sampling.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/decode.hpp"
#include "nn/transformer.hpp"
#include "util/rng.hpp"

namespace sdd::nn {

// Acceptance / draft-efficiency telemetry. One counter set per session; the
// serving layer aggregates them per request and per task.
struct SpecCounters {
  std::int64_t rounds = 0;           // speculative rounds run
  std::int64_t proposed = 0;         // draft tokens proposed and verified
  std::int64_t accepted = 0;         // proposals accepted by the target
  std::int64_t corrections = 0;      // target corrections on first mismatch
  std::int64_t bonus = 0;            // bonus tokens after full acceptance
  std::int64_t solo = 0;             // target-only emissions (no headroom or
                                     // draft fallback)
  std::int64_t draft_fallbacks = 0;  // rounds degraded by non-finite draft
                                     // logits (subset of solo)

  // Fraction of verified proposals the target accepted; 0 when none ran.
  double acceptance_rate() const {
    return proposed > 0 ? static_cast<double>(accepted) /
                              static_cast<double>(proposed)
                        : 0.0;
  }
  // Tokens emitted through the speculative path.
  std::int64_t emitted() const { return accepted + corrections + bonus + solo; }

  void add(const SpecCounters& other) {
    rounds += other.rounds;
    proposed += other.proposed;
    accepted += other.accepted;
    corrections += other.corrections;
    bonus += other.bonus;
    solo += other.solo;
    draft_fallbacks += other.draft_fallbacks;
  }
};

// Incremental draft-and-verify session over a (target, draft) pair; the
// serving layer drives one per speculative decode slot, sdd_cli and the
// one-shot speculative_generate() drive it directly. Both models must
// outlive the session, share the vocabulary, and the draft's context window
// must not be smaller than the target's.
class SpeculativeSession {
 public:
  SpeculativeSession(const TransformerLM& target, const TransformerLM& draft,
                     std::int64_t k, bool nan_guard = true);

  // Feed one prompt token through both models (no emission). After the last
  // prompt token the session is ready for round().
  void prefill(std::int32_t token);

  // Feed a whole prompt span through both models in one batched decode_span
  // pass each — bitwise-identical to calling prefill() per token, but each
  // weight row streams once for the span instead of once per token. The
  // serving layer keeps per-token prefill() for slot fairness; the one-shot
  // speculative_generate() uses this.
  void prefill_span(std::span<const std::int32_t> tokens);

  // One speculative round. Emits between 1 and min(k, remaining-1)+1 tokens
  // (never more than `remaining`, which must be >= 1): the accepted draft
  // prefix plus the target's correction or bonus token. Throws
  // Error{kNumericDivergence} when nan_guard is on and the target produces
  // non-finite logits; non-finite *draft* logits degrade the round to a
  // target-only step instead (the draft cannot corrupt the output).
  std::vector<std::int32_t> round(std::int64_t remaining);

  // Target next-token logits after everything consumed so far [vocab]; the
  // serving NaN guard inspects these between rounds.
  const std::vector<float>& logits() const { return target_logits_; }

  // Tokens consumed by the target (prompt + emitted, minus the lazily fed
  // trailing token).
  std::int64_t position() const { return target_state_.position; }

  const SpecCounters& counters() const { return counters_; }

 private:
  // The last emitted token of a round is fed lazily at the next round /
  // prefill, mirroring nn::generate which never steps past the budget. The
  // next round feeds it to the draft sequentially but folds the target's
  // copy into the front of the batched verify span, so each round costs the
  // target exactly one decode_span pass.
  void flush_pending();
  std::int32_t greedy(std::span<const float> logits);

  const TransformerLM& target_;
  const TransformerLM& draft_;
  std::int64_t k_;
  bool nan_guard_;
  TransformerLM::DecodeState target_state_;
  TransformerLM::DecodeState draft_state_;
  std::vector<float> target_logits_;
  std::vector<float> draft_logits_;
  std::int32_t pending_ = -1;
  Rng rng_{0};  // unused by greedy sampling; keeps sample_token shared
  SpecCounters counters_;
};

// One-shot speculative decode with nn::generate semantics (stop token and
// context budget included): returns ONLY the newly generated tokens, which
// are bit-identical to generate(target, prompt, options). Greedy only —
// throws std::invalid_argument when options.temperature > 0. `counters`,
// when non-null, receives the session telemetry.
std::vector<std::int32_t> speculative_generate(const TransformerLM& target,
                                               const TransformerLM& draft,
                                               std::span<const std::int32_t> prompt,
                                               const GenerateOptions& options,
                                               std::int64_t k,
                                               SpecCounters* counters = nullptr);

}  // namespace sdd::nn
