#include "nn/transformer.hpp"

#include <cstring>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/fault.hpp"
#include "util/serialize.hpp"

namespace sdd::nn {
namespace {
constexpr std::string_view kModelMagic = "SDDMODEL";
constexpr std::uint32_t kModelVersion = 1;
}  // namespace

TransformerLM::TransformerLM(const ModelConfig& config, std::uint64_t seed)
    : config_{config}, final_norm_{config.d_model} {
  if (config.vocab_size <= 0) {
    throw std::invalid_argument("TransformerLM: vocab_size must be set");
  }
  if (config.d_model % config.n_heads != 0) {
    throw std::invalid_argument("TransformerLM: d_model must be divisible by n_heads");
  }
  Rng rng{seed};
  const float embed_std = 1.0F / std::sqrt(static_cast<float>(config.d_model));
  tok_embed_ = Tensor::randn(rng, Shape{config.vocab_size, config.d_model}, embed_std,
                             /*requires_grad=*/true);
  blocks_.reserve(static_cast<std::size_t>(config.n_layers));
  for (std::int64_t i = 0; i < config.n_layers; ++i) {
    Rng block_rng = rng.fork(static_cast<std::uint64_t>(i) + 1);
    blocks_.push_back(std::make_unique<TransformerBlock>(config, block_rng));
  }
}

Tensor TransformerLM::final_hidden(const std::vector<std::int32_t>& ids,
                                   std::int64_t batch, std::int64_t seq) const {
  if (static_cast<std::int64_t>(ids.size()) != batch * seq) {
    throw std::invalid_argument("TransformerLM::forward: id count != batch*seq");
  }
  Tensor x = ops::embedding(ids, tok_embed_, Shape{batch, seq});
  for (const auto& block : blocks_) x = block->forward(x);
  return final_norm_.forward(x, config_.rmsnorm_eps);
}

Tensor TransformerLM::forward(const std::vector<std::int32_t>& ids, std::int64_t batch,
                              std::int64_t seq) const {
  const Tensor h = final_hidden(ids, batch, seq);
  return ops::linear(h, tok_embed_);  // tied output head
}

std::vector<std::vector<float>> TransformerLM::hidden_states(
    const std::vector<std::int32_t>& ids, std::int64_t batch, std::int64_t seq) const {
  NoGradGuard no_grad;
  std::vector<std::vector<float>> states;
  states.reserve(blocks_.size() + 1);
  Tensor x = ops::embedding(ids, tok_embed_, Shape{batch, seq});
  states.emplace_back(x.data().begin(), x.data().end());
  for (const auto& block : blocks_) {
    x = block->forward(x);
    states.emplace_back(x.data().begin(), x.data().end());
  }
  return states;
}

void TransformerLM::DecodeState::reset() {
  for (LayerKVCache& cache : caches) cache.reset();
  position = 0;
}

void TransformerLM::DecodeState::rollback(std::int64_t target) {
  if (target < 0 || target > position) {
    throw std::invalid_argument("DecodeState::rollback: position " +
                                std::to_string(target) +
                                " out of range (current " +
                                std::to_string(position) + ")");
  }
  for (LayerKVCache& cache : caches) cache.length = target;
  position = target;
}

TransformerLM::DecodeState TransformerLM::make_decode_state() const {
  DecodeState state;
  state.caches.resize(blocks_.size());
  const auto cache_size =
      static_cast<std::size_t>(config_.max_seq_len * config_.d_model);
  // Guarded allocation: one decode slot costs 2 * cache_size floats per
  // layer; the alloc_fail injector can fail it with resource_exhausted so
  // the serving layer's KV-budget degradation path is testable.
  fault::on_alloc(blocks_.size() * 2 * cache_size * sizeof(float));
  // Pin the RoPE table for the whole session up front so per-token decode
  // steps never hit the table-cache mutex or trigger a rebuild.
  const auto rope = kernels::RopeTable::get(
      config_.d_model / config_.n_heads, config_.rope_base, config_.max_seq_len);
  for (LayerKVCache& cache : state.caches) {
    cache.keys.assign(cache_size, 0.0F);
    cache.values.assign(cache_size, 0.0F);
    cache.rope = rope;
    cache.length = 0;
  }
  return state;
}

std::vector<float> TransformerLM::decode_step(DecodeState& state,
                                              std::int32_t token) const {
  if (token < 0 || token >= config_.vocab_size) {
    throw std::invalid_argument("decode_step: token out of range");
  }
  if (state.position >= config_.max_seq_len) {
    throw std::logic_error("decode_step: exceeded max sequence length");
  }
  const std::int64_t channels = config_.d_model;
  std::vector<float> x(static_cast<std::size_t>(channels));
  std::memcpy(x.data(), tok_embed_.data().data() + token * channels,
              static_cast<std::size_t>(channels) * sizeof(float));

  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    blocks_[l]->step(x.data(), state.caches[l], state.position);
  }
  ++state.position;

  std::vector<float> normed(static_cast<std::size_t>(channels));
  final_norm_.apply(x.data(), normed.data(), 1, config_.rmsnorm_eps);
  std::vector<float> logits(static_cast<std::size_t>(config_.vocab_size));
  kernels::gemm_nt(normed.data(), tok_embed_.data().data(), logits.data(), 1, channels,
                   config_.vocab_size, /*accumulate=*/false);
  return logits;
}

std::vector<float> TransformerLM::decode_span(
    DecodeState& state, std::span<const std::int32_t> tokens) const {
  const auto count = static_cast<std::int64_t>(tokens.size());
  if (count == 0) return {};
  if (state.position + count > config_.max_seq_len) {
    throw std::logic_error("decode_span: exceeded max sequence length");
  }
  const std::int64_t channels = config_.d_model;
  std::vector<float> x(static_cast<std::size_t>(count * channels));
  for (std::int64_t t = 0; t < count; ++t) {
    const std::int32_t token = tokens[static_cast<std::size_t>(t)];
    if (token < 0 || token >= config_.vocab_size) {
      throw std::invalid_argument("decode_span: token out of range");
    }
    std::memcpy(x.data() + t * channels, tok_embed_.data().data() + token * channels,
                static_cast<std::size_t>(channels) * sizeof(float));
  }

  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    blocks_[l]->step_span(x.data(), state.caches[l], state.position, count);
  }
  state.position += count;

  std::vector<float> normed(static_cast<std::size_t>(count * channels));
  final_norm_.apply(x.data(), normed.data(), count, config_.rmsnorm_eps);
  std::vector<float> logits(static_cast<std::size_t>(count * config_.vocab_size));
  kernels::gemm_nt_rowwise(normed.data(), tok_embed_.data().data(), logits.data(),
                           count, channels, config_.vocab_size,
                           /*accumulate=*/false);
  return logits;
}

TransformerLM TransformerLM::clone() const {
  TransformerLM copy;
  copy.config_ = config_;
  copy.tok_embed_ = tok_embed_.clone();
  copy.final_norm_ = final_norm_.clone();
  copy.blocks_.reserve(blocks_.size());
  for (const auto& block : blocks_) {
    copy.blocks_.push_back(std::make_unique<TransformerBlock>(block->clone()));
  }
  return copy;
}

TransformerLM TransformerLM::pruned(std::int64_t start, std::int64_t n) const {
  if (start < 0 || n <= 0 || start + n > n_layers()) {
    throw std::invalid_argument("pruned: block [" + std::to_string(start) + ", " +
                                std::to_string(start + n) + ") out of range for " +
                                std::to_string(n_layers()) + " layers");
  }
  TransformerLM copy;
  copy.config_ = config_;
  copy.config_.n_layers = n_layers() - n;
  copy.tok_embed_ = tok_embed_.clone();
  copy.final_norm_ = final_norm_.clone();
  copy.blocks_.reserve(static_cast<std::size_t>(copy.config_.n_layers));
  for (std::int64_t i = 0; i < n_layers(); ++i) {
    if (i >= start && i < start + n) continue;  // excised block
    copy.blocks_.push_back(std::make_unique<TransformerBlock>(
        blocks_[static_cast<std::size_t>(i)]->clone()));
  }
  return copy;
}

ParamList TransformerLM::parameters() const {
  ParamList params;
  params.push_back({"tok_embed.weight", tok_embed_});
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    blocks_[i]->collect_parameters("blocks." + std::to_string(i), params);
  }
  final_norm_.collect_parameters("final_norm", params);
  return params;
}

ParamList TransformerLM::trainable_parameters() const {
  ParamList params;
  if (tok_embed_.requires_grad()) params.push_back({"tok_embed.weight", tok_embed_});
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    blocks_[i]->collect_trainable("blocks." + std::to_string(i), params);
  }
  final_norm_.collect_trainable("final_norm", params);
  return params;
}

std::int64_t TransformerLM::param_count() const { return nn::param_count(parameters()); }

std::uint64_t TransformerLM::weight_hash() const {
  std::uint64_t h = config_.hash();
  for (const NamedParam& p : parameters()) {
    h = hash_combine(h, fnv1a(p.name));
    const auto data = p.tensor.data();
    const auto* bytes = reinterpret_cast<const std::byte*>(data.data());
    h = hash_combine(h, fnv1a_bytes({bytes, data.size() * sizeof(float)}));
  }
  return h;
}

void TransformerLM::set_trainable(bool trainable) {
  for (const NamedParam& p : parameters()) p.tensor.raw()->requires_grad = trainable;
}

void TransformerLM::attach_lora(const LoraConfig& config, std::uint64_t seed) {
  if (has_lora()) throw std::logic_error("attach_lora: adapters already attached");
  set_trainable(false);  // freeze everything; adapters are the only trainables
  Rng rng{seed};
  for (auto& block : blocks_) {
    if (config.on_attention) {
      block->attention().wq().attach_lora(config.rank, config.alpha, rng);
      block->attention().wk().attach_lora(config.rank, config.alpha, rng);
      block->attention().wv().attach_lora(config.rank, config.alpha, rng);
      block->attention().wo().attach_lora(config.rank, config.alpha, rng);
    }
    if (config.on_mlp) {
      block->mlp().w_gate().attach_lora(config.rank, config.alpha, rng);
      block->mlp().w_up().attach_lora(config.rank, config.alpha, rng);
      block->mlp().w_down().attach_lora(config.rank, config.alpha, rng);
    }
  }
}

void TransformerLM::merge_lora() {
  for (auto& block : blocks_) {
    block->attention().wq().merge_lora();
    block->attention().wk().merge_lora();
    block->attention().wv().merge_lora();
    block->attention().wo().merge_lora();
    block->mlp().w_gate().merge_lora();
    block->mlp().w_up().merge_lora();
    block->mlp().w_down().merge_lora();
  }
  set_trainable(true);
}

bool TransformerLM::has_lora() const {
  for (const auto& block : blocks_) {
    if (block->attention().wq().has_lora()) return true;
    if (block->mlp().w_gate().has_lora()) return true;
  }
  return false;
}

void TransformerLM::save(const std::filesystem::path& path) const {
  if (has_lora()) {
    throw std::logic_error("save: merge or discard LoRA adapters before saving");
  }
  BinaryWriter writer{path};
  writer.write_magic(kModelMagic, kModelVersion);
  writer.write_i64(config_.vocab_size);
  writer.write_i64(config_.d_model);
  writer.write_i64(config_.n_heads);
  writer.write_i64(config_.n_layers);
  writer.write_i64(config_.d_ff);
  writer.write_i64(config_.max_seq_len);
  writer.write_f32(config_.rope_base);
  writer.write_f32(config_.rmsnorm_eps);

  const ParamList params = parameters();
  writer.write_u64(params.size());
  for (const NamedParam& p : params) {
    writer.write_string(p.name);
    const Shape& shape = p.tensor.shape();
    writer.write_u64(shape.size());
    for (std::int64_t d : shape) writer.write_i64(d);
    const auto data = p.tensor.data();
    writer.write_vector(std::vector<float>(data.begin(), data.end()));
  }
  writer.flush();
}

TransformerLM TransformerLM::load(const std::filesystem::path& path) {
  BinaryReader reader{path};
  reader.expect_magic(kModelMagic, kModelVersion);
  ModelConfig config;
  config.vocab_size = reader.read_i64();
  config.d_model = reader.read_i64();
  config.n_heads = reader.read_i64();
  config.n_layers = reader.read_i64();
  config.d_ff = reader.read_i64();
  config.max_seq_len = reader.read_i64();
  config.rope_base = reader.read_f32();
  config.rmsnorm_eps = reader.read_f32();

  TransformerLM model{config, /*seed=*/0};
  ParamList params = model.parameters();
  const std::uint64_t count = reader.read_u64();
  if (count != params.size()) {
    throw SerializeError("load: parameter count mismatch in " + path.string());
  }
  for (NamedParam& p : params) {
    const std::string name = reader.read_string();
    if (name != p.name) {
      throw SerializeError("load: parameter order mismatch, expected " + p.name +
                           ", found " + name);
    }
    const std::uint64_t ndim = reader.read_u64();
    Shape shape(ndim);
    for (std::uint64_t d = 0; d < ndim; ++d) shape[d] = reader.read_i64();
    if (shape != p.tensor.shape()) {
      throw SerializeError("load: shape mismatch for " + name);
    }
    const std::vector<float> values = reader.read_vector<float>();
    p.tensor.copy_from(values);
  }
  return model;
}

}  // namespace sdd::nn
