// Decoder-only transformer language model (Llama-style: RMSNorm pre-norm,
// RoPE attention, SwiGLU MLP, tied input/output embeddings).
//
// This class is also where the paper's structural surgery happens:
// `pruned(start, n)` returns a model with decoder blocks [start, start+n)
// removed and the residual stream rewired (Algorithm 1, lines 11-12).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/block.hpp"
#include "nn/config.hpp"
#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace sdd::nn {

struct LoraConfig {
  std::int64_t rank = 8;
  float alpha = 16.0F;
  bool on_attention = true;
  bool on_mlp = true;

  std::uint64_t hash() const {
    std::uint64_t h = kFnvOffset;
    h = fnv1a_value(rank, h);
    h = fnv1a_value(alpha, h);
    h = fnv1a_value(on_attention, h);
    h = fnv1a_value(on_mlp, h);
    return h;
  }
};

class TransformerLM {
 public:
  TransformerLM() = default;
  TransformerLM(const ModelConfig& config, std::uint64_t seed);

  const ModelConfig& config() const { return config_; }
  std::int64_t n_layers() const { return static_cast<std::int64_t>(blocks_.size()); }

  // Training/eval forward: `ids` holds batch*seq token ids; returns logits
  // [batch, seq, vocab].
  Tensor forward(const std::vector<std::int32_t>& ids, std::int64_t batch,
                 std::int64_t seq) const;

  // Residual-stream activations at every block boundary (no autograd):
  // result[0] is the embedding output (input of block 0) and result[l] is the
  // output of block l-1; each entry is a flat [batch*seq*d_model] buffer.
  std::vector<std::vector<float>> hidden_states(const std::vector<std::int32_t>& ids,
                                                std::int64_t batch,
                                                std::int64_t seq) const;

  // ---- incremental decoding -------------------------------------------
  struct DecodeState {
    std::vector<LayerKVCache> caches;
    std::int64_t position = 0;
    void reset();
    // Rewind to an earlier position, discarding the later cached keys and
    // values (speculative rollback after rejected draft tokens). The stale
    // cache tail is overwritten before it can be read, so decoding after a
    // rollback is bit-identical to never having decoded past `position`.
    void rollback(std::int64_t position);
  };

  DecodeState make_decode_state() const;
  // Feed one token; returns the next-token logits [vocab].
  std::vector<float> decode_step(DecodeState& state, std::int32_t token) const;
  // Feed `tokens` consecutively and return all next-token logits as a
  // [tokens.size(), vocab] row-major buffer — the speculative verify pass.
  // Linear projections and the output head batch over the span (each weight
  // row streamed once) while attention stays causally sequential, and the
  // result is bitwise-identical to calling decode_step() per token.
  std::vector<float> decode_span(DecodeState& state,
                                 std::span<const std::int32_t> tokens) const;

  // ---- structural surgery ----------------------------------------------
  TransformerLM clone() const;
  // Remove blocks [start, start+n): output of block start-1 feeds block
  // start+n directly. Embeddings and final norm are shared by value copy.
  TransformerLM pruned(std::int64_t start, std::int64_t n) const;

  // ---- parameters --------------------------------------------------------
  ParamList parameters() const;
  ParamList trainable_parameters() const;
  std::int64_t param_count() const;
  std::uint64_t weight_hash() const;

  // Freeze/unfreeze everything (used around LoRA fine-tuning).
  void set_trainable(bool trainable);

  // ---- LoRA ---------------------------------------------------------------
  void attach_lora(const LoraConfig& config, std::uint64_t seed);
  void merge_lora();
  bool has_lora() const;

  // ---- persistence ---------------------------------------------------------
  void save(const std::filesystem::path& path) const;
  static TransformerLM load(const std::filesystem::path& path);

  const Tensor& token_embedding() const { return tok_embed_; }
  TransformerBlock& block(std::size_t i) { return *blocks_.at(i); }
  const TransformerBlock& block(std::size_t i) const { return *blocks_.at(i); }

 private:
  Tensor final_hidden(const std::vector<std::int32_t>& ids, std::int64_t batch,
                      std::int64_t seq) const;

  ModelConfig config_;
  Tensor tok_embed_;  // [vocab, d_model]; also the (tied) output projection
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  RMSNorm final_norm_;
};

}  // namespace sdd::nn
