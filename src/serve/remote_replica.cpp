#include "serve/remote_replica.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <utility>

#include "nn/transformer.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/ipc.hpp"
#include "util/log.hpp"
#include "util/proc.hpp"
#include "util/signals.hpp"

namespace sdd::serve {
namespace {

constexpr auto frame_type(ReplicaFrame type) {
  return static_cast<std::uint8_t>(type);
}

// ---- wire codecs -----------------------------------------------------------
//
// Both endpoints live in this translation unit, so the schema has exactly one
// definition. A PayloadReader overrun (schema drift) throws worker_lost,
// which the supervisor treats like any other torn channel.

std::string encode_request(std::uint64_t id, const Request& request) {
  ipc::PayloadWriter w;
  w.u64(id);
  w.vec_i32(request.prompt);
  w.i64(request.max_new_tokens);
  w.f32(request.temperature);
  w.i32(request.stop_token);
  w.u64(request.seed);
  w.i32(request.priority);
  w.i64(request.deadline_ms);
  w.str(request.task);
  return w.bytes();
}

std::uint64_t decode_request(const std::string& payload, Request* out) {
  ipc::PayloadReader r{payload};
  const std::uint64_t id = r.u64();
  out->prompt = r.vec_i32();
  out->max_new_tokens = r.i64();
  out->temperature = r.f32();
  out->stop_token = r.i32();
  out->seed = r.u64();
  out->priority = r.i32();
  out->deadline_ms = r.i64();
  out->task = r.str();
  return id;
}

std::string encode_response(std::uint64_t id, const Response& response) {
  ipc::PayloadWriter w;
  w.u64(id);
  w.u8(static_cast<std::uint8_t>(response.state));
  w.vec_i32(response.tokens);
  w.u8(response.error.has_value() ? 1 : 0);
  w.u8(response.error.has_value()
           ? static_cast<std::uint8_t>(*response.error)
           : 0);
  w.u8(response.retryable ? 1 : 0);
  w.u8(response.degraded ? 1 : 0);
  w.str(response.message);
  w.i64(response.queue_ms);
  w.i64(response.decode_ms);
  return w.bytes();
}

std::uint64_t decode_response(const std::string& payload, Response* out) {
  ipc::PayloadReader r{payload};
  const std::uint64_t id = r.u64();
  out->state = static_cast<RequestState>(r.u8());
  out->tokens = r.vec_i32();
  const bool has_error = r.u8() != 0;
  const auto kind = static_cast<ErrorKind>(r.u8());
  out->error = has_error ? std::optional<ErrorKind>{kind} : std::nullopt;
  out->retryable = r.u8() != 0;
  out->degraded = r.u8() != 0;
  out->message = r.str();
  out->queue_ms = r.i64();
  out->decode_ms = r.i64();
  return id;
}

Response worker_lost_response(const std::string& reason) {
  Response response;
  response.state = RequestState::kFailed;
  response.error = ErrorKind::kWorkerLost;
  response.retryable = true;
  response.message = "replica worker lost: " + reason;
  return response;
}

}  // namespace

RemoteReplicaConfig RemoteReplicaConfig::from_env() {
  RemoteReplicaConfig config;
  config.heartbeat_ms = env_int("SDD_REPLICA_HEARTBEAT_MS", config.heartbeat_ms);
  config.lease_ms = env_int("SDD_REPLICA_LEASE_MS", config.lease_ms);
  config.respawn_max = env_int("SDD_REPLICA_RESPAWN_MAX", config.respawn_max);
  config.backoff_ms = env_int("SDD_REPLICA_BACKOFF_MS", config.backoff_ms);
  config.backoff_cap_ms =
      env_int("SDD_REPLICA_BACKOFF_CAP_MS", config.backoff_cap_ms);
  config.drain_grace_ms = env_int("SDD_REPLICA_GRACE_MS", config.drain_grace_ms);
  return config;
}

// ---- parent: RemoteReplica -------------------------------------------------

RemoteReplica::RemoteReplica(
    std::string name, std::string model_path, RemoteReplicaConfig config,
    std::function<void(const std::string&)> on_process_failure)
    : name_{std::move(name)},
      config_{std::move(config)},
      on_process_failure_{std::move(on_process_failure)},
      model_path_{std::move(model_path)} {
  signals::ignore_sigpipe();
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    spawn_locked();
  }
  pump_ = std::thread{&RemoteReplica::pump_main, this};
}

RemoteReplica::~RemoteReplica() { shutdown(); }

void RemoteReplica::spawn_locked() {
  const ipc::SocketPair pair = ipc::socket_pair();
  std::int64_t pid = -1;
  try {
    if (config_.spawn_fn) {
      pid = config_.spawn_fn(pair.child_fd, model_path_, name_);
    } else {
      std::vector<std::string> env = config_.env_overrides;
      // Chaos targets the first worker generation only: a respawn must come
      // up clean or the kill/respawn loop under test could never converge.
      env.push_back(generation_ == 0 ? "SDD_FAULT=" + config_.child_fault_spec
                                     : "SDD_FAULT=");
      pid = proc::spawn(
          {proc::self_exe().string(), "replica-worker", "--model", model_path_,
           "--name", name_, "--fd", std::to_string(pair.child_fd),
           "--heartbeat", std::to_string(config_.heartbeat_ms)},
          env, {pair.child_fd});
    }
  } catch (...) {
    ::close(pair.parent_fd);
    ::close(pair.child_fd);
    throw;
  }
  ::close(pair.child_fd);
  fd_ = pair.parent_fd;
  pid_ = pid;
  hello_received_ = false;
  draining_ = false;
  // The lease countdown starts at spawn; the worker heartbeats while the
  // model loads, so a slow load is not a false lease expiry.
  last_beat_ = proc::monotonic_ms();
  if (generation_ > 0) ++stats_.respawns;
  ++generation_;
  log_info("route: replica '", name_, "' worker pid ", pid, " spawned (gen ",
           generation_, ", model ", model_path_, ")");
}

TicketPtr RemoteReplica::submit(Request request) {
  auto job = detail::RemoteJob::make(std::move(request));
  TicketPtr ticket = detail::RemoteJob::ticket(job);
  std::uint64_t id = 0;
  int fd = -1;
  std::int64_t pid = -1;
  std::string unavailable;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    ++stats_.submitted;
    if (stopping_) {
      unavailable = "replica shutting down";
    } else if (draining_) {
      unavailable = "replica draining for upgrade";
    } else if (fd_ < 0) {
      unavailable = "no live worker";
    } else {
      id = next_id_++;
      pending_[id] = Pending{job, false};
      fd = fd_;
      pid = pid_;
    }
    if (!unavailable.empty()) ++stats_.worker_lost;
  }
  if (!unavailable.empty()) {
    // Fail fast: the router records a breaker failure and serves the request
    // from a sibling variant instead of queueing on a dead process.
    detail::RemoteJob::resolve(*job, worker_lost_response(unavailable));
    return ticket;
  }
  const std::string payload =
      encode_request(id, detail::RemoteJob::request(*job));
  try {
    const std::lock_guard<std::mutex> wlock{write_mutex_};
    ipc::write_frame(fd, frame_type(ReplicaFrame::kRequest), payload);
  } catch (const Error& e) {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      pending_.erase(id);
      ++stats_.worker_lost;
    }
    detail::RemoteJob::resolve(*job, worker_lost_response(e.what()));
    // Make the death prompt and unambiguous; the pump observes the reap/EOF
    // and runs the full recovery path (it owns fd lifecycle).
    proc::send_signal(pid, SIGKILL);
  }
  return ticket;
}

void RemoteReplica::pump_main() {
  while (true) {
    int fd = -1;
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (pump_exit_) return;
      if (stopping_ && fd_ < 0) return;
      fd = fd_;
    }
    if (fd < 0) {
      // Dead worker: respawn once the backoff expires, unless the budget of
      // consecutive unexpected deaths is exhausted (the breaker then keeps
      // the replica quarantined and probes fail fast).
      {
        const std::lock_guard<std::mutex> lock{mutex_};
        if (!stopping_ && fd_ < 0 &&
            consecutive_deaths_ <= config_.respawn_max &&
            proc::monotonic_ms() >= next_spawn_at_) {
          try {
            spawn_locked();
          } catch (const std::exception& e) {
            log_error("route: replica '", name_, "' respawn failed: ",
                      e.what());
            ++consecutive_deaths_;
            next_spawn_at_ = proc::monotonic_ms() + config_.backoff_cap_ms;
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds{5});
      continue;
    }
    try {
      ipc::Frame frame;
      const ipc::ReadStatus status = ipc::read_frame(fd, &frame, 10);
      if (status == ipc::ReadStatus::kFrame) {
        handle_frame(frame.type, frame.payload);
      } else if (status == ipc::ReadStatus::kClosed) {
        handle_death("worker closed the channel", false);
        continue;
      }
    } catch (const Error& e) {
      handle_death(e.what(), false);
      continue;
    }
    sweep();
  }
}

void RemoteReplica::handle_frame(std::uint8_t type,
                                 const std::string& payload) {
  const std::int64_t now = proc::monotonic_ms();
  if (type == frame_type(ReplicaFrame::kHeartbeat)) {
    const std::lock_guard<std::mutex> lock{mutex_};
    last_beat_ = now;
    return;
  }
  if (type == frame_type(ReplicaFrame::kHello)) {
    ipc::PayloadReader r{payload};
    const std::int64_t params = r.i64();
    const std::int64_t layers = r.i64();
    const std::lock_guard<std::mutex> lock{mutex_};
    last_beat_ = now;
    hello_received_ = true;
    cost_ = params;
    consecutive_deaths_ = 0;  // a generation that loads is a healthy restart
    log_info("route: replica '", name_, "' worker ready (", params,
             " params, ", layers, " layers)");
    return;
  }
  if (type == frame_type(ReplicaFrame::kResponse)) {
    Response response;
    const std::uint64_t id = decode_response(payload, &response);
    std::shared_ptr<detail::Job> job;
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      last_beat_ = now;
      const auto it = pending_.find(id);
      if (it != pending_.end()) {
        job = it->second.job;
        pending_.erase(it);
        ++stats_.completed;
      }
    }
    // Unknown id = ticket already failed over on a presumed-lost worker that
    // answered late after all; first resolution won, drop the duplicate.
    if (job) detail::RemoteJob::resolve(*job, std::move(response));
    return;
  }
  log_warn("route: replica '", name_, "' sent unknown frame type ",
           static_cast<int>(type));
}

void RemoteReplica::sweep() {
  const std::int64_t now = proc::monotonic_ms();
  std::string death;
  bool reaped = false;
  std::int64_t kill_pid = -1;
  std::vector<std::pair<std::uint64_t, int>> cancels;  // (id, fd)
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (fd_ < 0) return;
    if (const auto status = proc::try_reap(pid_)) {
      death = status->term_signal != 0
                  ? "worker killed by signal " +
                        std::to_string(status->term_signal)
                  : "worker exited rc=" + std::to_string(status->exit_code);
      reaped = true;
      pid_ = -1;  // never signal a reaped (reusable) pid again
    } else if (now - last_beat_ > config_.lease_ms) {
      ++stats_.lease_expiries;
      death = "heartbeat lease expired (" +
              std::to_string(now - last_beat_) + " ms silent)";
    } else if (draining_ &&
               now - drain_started_ > config_.drain_grace_ms) {
      kill_pid = pid_;  // overstayed drain: escalate, reap on the next tick
    }
    if (death.empty()) {
      for (auto& [id, pending] : pending_) {
        if (!pending.cancel_sent &&
            detail::RemoteJob::cancel_requested(*pending.job)) {
          pending.cancel_sent = true;
          cancels.emplace_back(id, fd_);
        }
      }
    }
  }
  if (!death.empty()) {
    handle_death(death, reaped);
    return;
  }
  if (kill_pid > 1) {
    log_warn("route: replica '", name_, "' overstayed its drain grace; "
             "escalating to SIGKILL");
    proc::send_signal(kill_pid, SIGKILL);
  }
  for (const auto& [id, fd] : cancels) {
    ipc::PayloadWriter w;
    w.u64(id);
    try {
      const std::lock_guard<std::mutex> wlock{write_mutex_};
      ipc::write_frame(fd, frame_type(ReplicaFrame::kCancel), w.bytes());
    } catch (const Error&) {
      // The read side will observe the same dead channel momentarily.
    }
  }
}

void RemoteReplica::handle_death(const std::string& reason,
                                 bool already_reaped) {
  std::vector<std::shared_ptr<detail::Job>> orphans;
  int fd = -1;
  std::int64_t pid = -1;
  bool intentional = false;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (fd_ < 0) return;  // already handled
    fd = fd_;
    fd_ = -1;  // submits fail fast from this point on
    pid = pid_;
    pid_ = -1;
    intentional = draining_ || stopping_;
    draining_ = false;
    hello_received_ = false;
    orphans.reserve(pending_.size());
    for (auto& [id, pending] : pending_) orphans.push_back(pending.job);
    pending_.clear();
    stats_.worker_lost += static_cast<std::int64_t>(orphans.size());
    const std::int64_t now = proc::monotonic_ms();
    if (intentional) {
      next_spawn_at_ = now;  // drain/upgrade: respawn immediately
    } else {
      ++consecutive_deaths_;
      const std::int64_t shift =
          std::min<std::int64_t>(consecutive_deaths_ - 1, 20);
      next_spawn_at_ =
          now + std::min(config_.backoff_ms << shift, config_.backoff_cap_ms);
    }
  }
  if (!already_reaped && pid > 1) {
    // Ensure the death is total before recycling the channel (a half-dead
    // worker must not keep a stale fd open).
    proc::send_signal(pid, SIGKILL);
    proc::wait_reap(pid, 2000);
  }
  {
    // No writer is mid-frame once the worker is reaped: a blocked write has
    // returned EPIPE and released the lock. Closing under it prevents a
    // racing submit from writing into a recycled descriptor number.
    const std::lock_guard<std::mutex> wlock{write_mutex_};
    ::close(fd);
  }
  const Response lost = worker_lost_response(reason);
  for (const auto& job : orphans) detail::RemoteJob::resolve(*job, lost);
  log_warn("route: replica '", name_, "' worker lost (", reason, "); ",
           orphans.size(), " in-flight request(s) failed over",
           intentional ? "" : "; respawning");
  if (!intentional && on_process_failure_) on_process_failure_(reason);
}

bool RemoteReplica::swap_model(const std::string& new_path,
                               std::int64_t timeout_ms) {
  std::int64_t target_generation = 0;
  std::int64_t pid = -1;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (stopping_) return false;
    model_path_ = new_path;
    ++stats_.swaps;
    target_generation = generation_ + 1;
    if (fd_ >= 0) {
      draining_ = true;
      drain_started_ = proc::monotonic_ms();
      pid = pid_;
    }
  }
  // SIGTERM starts the worker's graceful drain: finish the in-flight batch,
  // answer what it can, exit 72. The pump reaps it and respawns with the new
  // weights (next_spawn_at_ = now for an intentional death).
  proc::send_signal(pid, SIGTERM);
  const std::int64_t deadline = proc::monotonic_ms() + timeout_ms;
  while (proc::monotonic_ms() < deadline) {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (generation_ >= target_generation && hello_received_) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
  return false;
}

void RemoteReplica::shutdown() {
  std::int64_t pid = -1;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (stopping_) {
      // Second caller: the first one is (or was) already tearing down.
    } else {
      stopping_ = true;
      pid = pid_;
    }
  }
  // Graceful first: let a live worker drain its in-flight batch so those
  // clients get real results, mirroring InferenceServer::shutdown.
  proc::send_signal(pid, SIGTERM);
  const std::int64_t deadline =
      proc::monotonic_ms() + config_.drain_grace_ms;
  while (proc::monotonic_ms() < deadline) {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (fd_ < 0 || pending_.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    pump_exit_ = true;
  }
  std::thread pump;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    pump = std::move(pump_);
  }
  if (pump.joinable()) pump.join();
  // The pump is gone; finish whatever it left behind.
  std::vector<std::shared_ptr<detail::Job>> orphans;
  int fd = -1;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    fd = fd_;
    fd_ = -1;
    pid = pid_;
    pid_ = -1;
    for (auto& [id, pending] : pending_) orphans.push_back(pending.job);
    stats_.worker_lost += static_cast<std::int64_t>(orphans.size());
    pending_.clear();
  }
  if (pid > 1) proc::terminate(pid, 200);
  if (fd >= 0) {
    const std::lock_guard<std::mutex> wlock{write_mutex_};
    ::close(fd);
  }
  const Response lost = worker_lost_response("replica shutting down");
  for (const auto& job : orphans) detail::RemoteJob::resolve(*job, lost);
}

std::int64_t RemoteReplica::pid() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return fd_ >= 0 ? pid_ : -1;
}

std::int64_t RemoteReplica::restarts() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return stats_.respawns;
}

std::int64_t RemoteReplica::heartbeat_age_ms() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (fd_ < 0) return -1;
  return std::max<std::int64_t>(0, proc::monotonic_ms() - last_beat_);
}

std::int64_t RemoteReplica::cost() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return cost_;
}

bool RemoteReplica::ready() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return fd_ >= 0 && hello_received_;
}

RemoteStats RemoteReplica::stats() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

// ---- worker: replica_worker_main -------------------------------------------

int replica_worker_main(const std::string& model_path, const std::string& name,
                        int fd, std::int64_t heartbeat_ms) {
  signals::ignore_sigpipe();
  heartbeat_ms = std::max<std::int64_t>(1, heartbeat_ms);

  // Heartbeats start before the (potentially slow) model load so the parent's
  // lease never falsely expires during startup. The thread stops beating —
  // but keeps running — once a wedge fault fires: the parent must detect the
  // wedge through lease silence, not a closed channel.
  std::mutex write_mutex;
  std::atomic<bool> stop_beats{false};
  std::thread beats{[fd, heartbeat_ms, &write_mutex, &stop_beats] {
    while (!stop_beats.load(std::memory_order_acquire)) {
      if (!fault::replica_wedged()) {
        try {
          const std::lock_guard<std::mutex> wlock{write_mutex};
          ipc::write_frame(fd, frame_type(ReplicaFrame::kHeartbeat), "");
        } catch (const Error&) {
          return;  // parent gone; the main loop will see EOF too
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds{heartbeat_ms});
    }
  }};

  int rc = 0;
  try {
    const nn::TransformerLM model = nn::TransformerLM::load(model_path);
    InferenceServer server{model, ServerConfig::from_env()};
    {
      ipc::PayloadWriter hello;
      hello.i64(model.param_count());
      hello.i64(model.n_layers());
      const std::lock_guard<std::mutex> wlock{write_mutex};
      ipc::write_frame(fd, frame_type(ReplicaFrame::kHello), hello.bytes());
    }
    log_info("replica-worker '", name, "': serving ", model_path);

    std::map<std::uint64_t, TicketPtr> pending;
    bool closed = false;
    while (!closed) {
      // Stream back every resolved ticket before reading more work.
      for (auto it = pending.begin(); it != pending.end();) {
        if (!it->second->wait_for(std::chrono::milliseconds{0})) {
          ++it;
          continue;
        }
        const std::string payload =
            encode_response(it->first, it->second->wait());
        const std::lock_guard<std::mutex> wlock{write_mutex};
        if (fault::should_tear_frame()) {
          // Chaos: die mid-frame. The parent must classify the torn frame
          // as retryable worker_lost and fail the request over.
          ipc::write_torn_frame(fd, frame_type(ReplicaFrame::kResponse),
                                payload);
          log_error("fault: replica worker tearing a response frame — "
                    "_Exit(137)");
          std::_Exit(137);
        }
        ipc::write_frame(fd, frame_type(ReplicaFrame::kResponse), payload);
        it = pending.erase(it);
      }

      if (signals::interrupt_requested()) {
        // Graceful drain (PR 6 convention): stop reading, let the server
        // finish its in-flight batch (those clients get real results; still-
        // queued requests fail with kInterrupted and the parent fails them
        // over), answer everything, exit 72.
        log_info("replica-worker '", name,
                 "': draining after SIGTERM/SIGINT");
        for (auto& [id, ticket] : pending) {
          const std::string payload = encode_response(id, ticket->wait());
          const std::lock_guard<std::mutex> wlock{write_mutex};
          ipc::write_frame(fd, frame_type(ReplicaFrame::kResponse), payload);
        }
        pending.clear();
        server.shutdown();
        rc = error_kind_exit_code(ErrorKind::kInterrupted);  // 72
        break;
      }

      ipc::Frame frame;
      const ipc::ReadStatus status =
          ipc::read_frame(fd, &frame, pending.empty() ? 25 : 2);
      if (status == ipc::ReadStatus::kClosed) {
        server.shutdown();
        closed = true;
      } else if (status == ipc::ReadStatus::kFrame) {
        if (frame.type == frame_type(ReplicaFrame::kRequest)) {
          fault::on_replica_request();  // replica_kill9 / replica_wedge
          Request request;
          const std::uint64_t id = decode_request(frame.payload, &request);
          pending[id] = server.submit(std::move(request));
        } else if (frame.type == frame_type(ReplicaFrame::kCancel)) {
          ipc::PayloadReader r{frame.payload};
          const auto it = pending.find(r.u64());
          if (it != pending.end()) it->second->cancel();
        }
      }
    }
  } catch (const Error& e) {
    log_error("replica-worker '", name, "': ", e.what());
    rc = error_kind_exit_code(e.kind());
  } catch (const std::exception& e) {
    log_error("replica-worker '", name, "': ", e.what());
    rc = error_kind_exit_code(ErrorKind::kFatal);
  }
  stop_beats.store(true, std::memory_order_release);
  beats.join();
  return rc;
}

}  // namespace sdd::serve
