// Cross-process serving replica: a supervised `replica-worker` child process
// decoding requests behind the same Ticket interface a local InferenceServer
// hands out.
//
// Parent side (RemoteReplica): spawns the worker over a CLOEXEC socketpair
// (util/ipc frames, util/proc spawn), forwards submitted requests as REQUEST
// frames, and runs one pump thread that demultiplexes RESPONSE frames back
// onto tickets while supervising liveness:
//
//   * heartbeat lease: the worker beats every heartbeat_ms; a beat older
//     than lease_ms (CLOCK_MONOTONIC, as in fleet/queue) means the worker is
//     wedged — SIGKILL, fail the in-flight tickets with retryable
//     worker_lost, respawn with bounded exponential backoff;
//   * reaped pid / torn frame / EOF: same recovery path. Every death invokes
//     the owner's on_process_failure callback exactly once so the routing
//     layer can trip the replica's HealthBreaker — a process crash, not just
//     a failed request, quarantines the variant;
//   * rolling upgrade (swap_model): SIGTERM drains the worker — it finishes
//     its in-flight batch, answers what it can, and exits 72 (the PR 6
//     graceful-drain convention) — then the respawn picks up the new
//     weights. Requests arriving mid-drain fail fast with worker_lost so the
//     router serves them from sibling variants.
//
// Worker side (replica_worker_main): loads the variant, serves it with an
// ordinary InferenceServer, sends HELLO (parameter count = routing cost),
// heartbeats from a dedicated thread, and streams back one RESPONSE frame
// per resolved ticket. Outputs are produced by the same decode path as
// in-process serving, so per-variant bytes are identical across the process
// boundary — the soak asserts this end to end.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/serve.hpp"

namespace sdd::serve {

// Frame types on the replica wire; the payload codecs live in
// remote_replica.cpp next to the two endpoints that must agree on them.
enum class ReplicaFrame : std::uint8_t {
  kHello = 1,      // child -> parent: i64 param_count, i64 n_layers
  kHeartbeat = 2,  // child -> parent: empty
  kRequest = 3,    // parent -> child: u64 id + serialized Request
  kResponse = 4,   // child -> parent: u64 id + serialized Response
  kCancel = 5,     // parent -> child: u64 id
};

struct RemoteReplicaConfig {
  std::int64_t heartbeat_ms = 25;    // worker beat period
  std::int64_t lease_ms = 400;       // silence beyond this = wedged worker
  std::int64_t respawn_max = 8;      // consecutive unexpected deaths tolerated
  std::int64_t backoff_ms = 50;      // respawn backoff, doubles per death
  std::int64_t backoff_cap_ms = 2000;
  std::int64_t drain_grace_ms = 3000;  // SIGTERM -> SIGKILL drain budget

  // SDD_FAULT spec for the FIRST spawned worker generation only; respawned
  // workers always get an explicitly empty SDD_FAULT so an injected crash
  // cannot re-fire forever and starve the recovery path under test.
  std::string child_fault_spec;

  // Extra KEY=VALUE environment for every spawned worker (e.g. SDD_SERVE_*
  // knobs so the child's ServerConfig::from_env matches the parent's).
  std::vector<std::string> env_overrides;

  // Test seam: spawn the worker without exec'ing a binary (fork; child calls
  // replica_worker_main on child_fd, then _exit). Returns the child pid.
  // Production default re-execs self_exe() with the `replica-worker`
  // subcommand.
  std::function<std::int64_t(int child_fd, const std::string& model_path,
                             const std::string& name)>
      spawn_fn;

  // SDD_REPLICA_HEARTBEAT_MS, SDD_REPLICA_LEASE_MS, SDD_REPLICA_RESPAWN_MAX,
  // SDD_REPLICA_BACKOFF_MS, SDD_REPLICA_BACKOFF_CAP_MS, SDD_REPLICA_GRACE_MS.
  static RemoteReplicaConfig from_env();
};

struct RemoteStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;      // RESPONSE frames matched to tickets
  std::int64_t worker_lost = 0;    // tickets failed over on a lost worker
  std::int64_t respawns = 0;       // spawns after the first
  std::int64_t lease_expiries = 0; // deaths detected by heartbeat silence
  std::int64_t swaps = 0;          // rolling-upgrade drains initiated
};

class RemoteReplica {
 public:
  // `on_process_failure` fires once per unexpected worker death (reaped pid,
  // lease expiry, torn frame), from the thread that detected it. It must not
  // call back into this RemoteReplica.
  RemoteReplica(std::string name, std::string model_path,
                RemoteReplicaConfig config,
                std::function<void(const std::string&)> on_process_failure);
  ~RemoteReplica();

  RemoteReplica(const RemoteReplica&) = delete;
  RemoteReplica& operator=(const RemoteReplica&) = delete;

  // Never blocks on the worker: with no live worker (dead, draining, or
  // shut down) the ticket resolves immediately with retryable worker_lost,
  // which the router turns into failover to a sibling variant.
  TicketPtr submit(Request request);

  // Rolling upgrade: drain the current worker (SIGTERM -> finish in-flight
  // batch -> exit 72), respawn with `new_path`, and wait for the new
  // generation's HELLO up to `timeout_ms`. False on timeout (the respawn
  // keeps trying in the background regardless).
  bool swap_model(const std::string& new_path, std::int64_t timeout_ms);

  // Drains (bounded by drain_grace_ms), stops the pump, reaps the worker,
  // and fails any still-pending tickets. Idempotent; also run by the dtor.
  void shutdown();

  // Telemetry for the route health table.
  std::int64_t pid() const;              // -1 when no live worker
  std::int64_t restarts() const;         // spawns after the first
  std::int64_t heartbeat_age_ms() const; // -1 when no live worker
  std::int64_t cost() const;             // HELLO param_count; 0 until known
  bool ready() const;                    // live worker that completed HELLO
  RemoteStats stats() const;

 private:
  struct Pending {
    std::shared_ptr<detail::Job> job;
    bool cancel_sent = false;
  };

  void pump_main();
  void sweep();
  void handle_frame(std::uint8_t type, const std::string& payload);
  // Pump-thread only (submit's write failures SIGKILL and let the pump
  // observe the death). `already_reaped` skips the kill/reap step so a pid
  // collected by try_reap is never signalled again (pid-reuse hazard).
  void handle_death(const std::string& reason, bool already_reaped);
  void spawn_locked();

  const std::string name_;
  const RemoteReplicaConfig config_;
  const std::function<void(const std::string&)> on_process_failure_;

  mutable std::mutex mutex_;     // state below
  std::string model_path_;
  int fd_ = -1;                  // parent end; -1 = no live worker
  std::int64_t pid_ = -1;
  std::int64_t generation_ = 0;  // spawn count
  bool hello_received_ = false;
  std::int64_t cost_ = 0;
  std::int64_t last_beat_ = 0;   // proc::monotonic_ms of the last frame
  bool draining_ = false;        // SIGTERM sent, waiting for exit 72
  std::int64_t drain_started_ = 0;
  std::int64_t consecutive_deaths_ = 0;  // resets on HELLO
  std::int64_t next_spawn_at_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Pending> pending_;
  bool stopping_ = false;        // no new submits / respawns
  bool pump_exit_ = false;
  RemoteStats stats_;

  std::mutex write_mutex_;       // serializes frame writes to fd_
  std::thread pump_;
};

// Worker entry point: serve `model_path` over `fd` until the channel closes
// (exit 0) or a graceful SIGTERM drain completes (exit 72). Invoked by
// `sdd_cli replica-worker` and by fork-based test/soak harnesses; the caller
// is expected to have installed util/signals graceful shutdown.
int replica_worker_main(const std::string& model_path, const std::string& name,
                        int fd, std::int64_t heartbeat_ms);

}  // namespace sdd::serve
