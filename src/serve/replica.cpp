#include "serve/replica.hpp"

#include <algorithm>

#include "util/env.hpp"
#include "util/log.hpp"

namespace sdd::serve {

using Clock = std::chrono::steady_clock;

std::string_view health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kOpen:
      return "open";
    case HealthState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

BreakerConfig BreakerConfig::from_env() {
  BreakerConfig config;
  config.degraded_after =
      env_int("SDD_ROUTE_DEGRADED_FAILS", config.degraded_after);
  config.open_after = env_int("SDD_ROUTE_BREAKER_FAILS", config.open_after);
  config.cooldown_ms =
      env_int("SDD_ROUTE_BREAKER_COOLDOWN_MS", config.cooldown_ms);
  config.probe_max = env_int("SDD_ROUTE_PROBE_MAX", config.probe_max);
  return config;
}

// ---- breaker ---------------------------------------------------------------

HealthBreaker::HealthBreaker(BreakerConfig config)
    : config_{std::move(config)} {
  config_.degraded_after = std::max<std::int64_t>(1, config_.degraded_after);
  config_.open_after =
      std::max(config_.degraded_after, config_.open_after);
  config_.cooldown_ms = std::max<std::int64_t>(1, config_.cooldown_ms);
  config_.probe_max = std::max<std::int64_t>(1, config_.probe_max);
}

Clock::time_point HealthBreaker::now() const {
  return config_.now_fn ? config_.now_fn() : Clock::now();
}

HealthState HealthBreaker::state() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return state_;
}

bool HealthBreaker::dispatchable() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  switch (state_) {
    case HealthState::kHealthy:
    case HealthState::kDegraded:
      return true;
    case HealthState::kOpen:
      // Cooled-down open counts: try_begin will flip it to half-open.
      return now() - opened_at_ >=
             std::chrono::milliseconds{config_.cooldown_ms};
    case HealthState::kHalfOpen:
      return probes_inflight_ < config_.probe_max;
  }
  return false;
}

bool HealthBreaker::try_begin(bool* is_probe) {
  const std::lock_guard<std::mutex> lock{mutex_};
  *is_probe = false;
  switch (state_) {
    case HealthState::kHealthy:
    case HealthState::kDegraded:
      return true;
    case HealthState::kOpen:
      if (now() - opened_at_ <
          std::chrono::milliseconds{config_.cooldown_ms}) {
        return false;
      }
      // Cooldown elapsed: this dispatch becomes the first half-open probe.
      state_ = HealthState::kHalfOpen;
      probes_inflight_ = 1;
      *is_probe = true;
      return true;
    case HealthState::kHalfOpen:
      if (probes_inflight_ >= config_.probe_max) return false;
      ++probes_inflight_;
      *is_probe = true;
      return true;
  }
  return false;
}

void HealthBreaker::record(Outcome outcome, bool is_probe) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (is_probe && probes_inflight_ > 0) --probes_inflight_;
  switch (outcome) {
    case Outcome::kSuccess:
      fails_ = 0;
      penalty_ /= 2;
      if (state_ != HealthState::kOpen) state_ = HealthState::kHealthy;
      return;
    case Outcome::kFailure:
      ++fails_;
      if (state_ == HealthState::kHalfOpen || fails_ >= config_.open_after) {
        // A failed probe re-opens immediately; a fresh streak trips open.
        state_ = HealthState::kOpen;
        opened_at_ = now();
        probes_inflight_ = 0;
      } else if (fails_ >= config_.degraded_after &&
                 state_ == HealthState::kHealthy) {
        state_ = HealthState::kDegraded;
      }
      return;
    case Outcome::kBackpressure:
      ++penalty_;
      return;
    case Outcome::kNeutral:
      return;
  }
}

void HealthBreaker::abandon(bool is_probe) {
  record(Outcome::kNeutral, is_probe);
}

void HealthBreaker::trip() {
  const std::lock_guard<std::mutex> lock{mutex_};
  state_ = HealthState::kOpen;
  opened_at_ = now();
  probes_inflight_ = 0;
  // Keep consecutive_failures() truthful for logs: a liveness trip is at
  // least as bad as a full failure streak.
  fails_ = std::max(fails_, config_.open_after);
}

std::int64_t HealthBreaker::load_penalty() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return penalty_;
}

std::int64_t HealthBreaker::consecutive_failures() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return fails_;
}

std::int64_t HealthBreaker::cooldown_remaining_ms() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (state_ != HealthState::kOpen) return 0;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           now() - opened_at_)
                           .count();
  return std::max<std::int64_t>(0, config_.cooldown_ms - elapsed);
}

// ---- replica ---------------------------------------------------------------

Replica::Replica(std::string name, nn::TransformerLM model, double quality,
                 const ServerConfig& server_config,
                 const BreakerConfig& breaker,
                 const nn::TransformerLM* draft)
    : name_{std::move(name)},
      quality_{quality},
      model_{std::make_unique<nn::TransformerLM>(std::move(model))},
      server_{std::make_unique<InferenceServer>(*model_, server_config, draft)},
      breaker_{breaker} {}

Replica::Replica(std::string name, std::string model_path, double quality,
                 std::int64_t cost_hint,
                 const RemoteReplicaConfig& remote_config,
                 const BreakerConfig& breaker)
    : name_{std::move(name)},
      quality_{quality},
      cost_hint_{cost_hint},
      breaker_{breaker} {
  // Constructed in the body, after every member: the supervisor's failure
  // callback may fire from its pump thread as soon as it exists.
  remote_ = std::make_unique<RemoteReplica>(
      name_, std::move(model_path), remote_config,
      [this](const std::string& reason) { on_process_death(reason); });
}

std::int64_t Replica::cost() const {
  if (!remote_) return model_->param_count();
  const std::int64_t hello = remote_->cost();
  return hello > 0 ? hello : cost_hint_;
}

TicketPtr Replica::submit(Request request) {
  return remote_ ? remote_->submit(std::move(request))
                 : server_->submit(std::move(request));
}

bool Replica::swap_model(const std::string& path, std::int64_t timeout_ms) {
  return remote_ && remote_->swap_model(path, timeout_ms);
}

void Replica::shutdown_host() {
  if (remote_) {
    remote_->shutdown();
  } else {
    server_->shutdown();
  }
}

ServerStats Replica::server_stats() const {
  if (!remote_) return server_->stats();
  const RemoteStats remote = remote_->stats();
  ServerStats stats;
  stats.submitted = remote.submitted;
  stats.completed = remote.completed;
  stats.failed = remote.worker_lost;
  return stats;
}

void Replica::on_process_death(const std::string& reason) {
  const HealthState before = breaker_.state();
  breaker_.trip();
  log_warn("route: replica '", name_, "' quarantined (", reason,
           "); breaker opened pending respawn + probe");
  const std::lock_guard<std::mutex> lock{stats_mutex_};
  ++stats_.breaker_failures;
  if (before != HealthState::kOpen) ++stats_.breaker_opens;
}

bool Replica::try_begin_dispatch(bool* is_probe) {
  if (!breaker_.try_begin(is_probe)) return false;
  const std::lock_guard<std::mutex> lock{stats_mutex_};
  ++stats_.dispatched;
  if (*is_probe) ++stats_.probes;
  return true;
}

void Replica::record_outcome(HealthBreaker::Outcome outcome, bool is_probe,
                             const Response& response) {
  const HealthState before = breaker_.state();
  breaker_.record(outcome, is_probe);
  const HealthState after = breaker_.state();
  if (after == HealthState::kOpen && before != HealthState::kOpen) {
    log_warn("route: replica '", name_, "' breaker opened after ",
             breaker_.consecutive_failures(), " consecutive failures");
  }
  if (is_probe && outcome == HealthBreaker::Outcome::kSuccess) {
    log_info("route: replica '", name_, "' probe succeeded; breaker closed");
  }
  const std::lock_guard<std::mutex> lock{stats_mutex_};
  switch (outcome) {
    case HealthBreaker::Outcome::kSuccess:
      ++stats_.completed;
      if (is_probe) ++stats_.probe_successes;
      stats_.latency_ema_ms =
          stats_.latency_ema_ms == 0.0
              ? static_cast<double>(response.decode_ms)
              : 0.8 * stats_.latency_ema_ms + 0.2 * response.decode_ms;
      break;
    case HealthBreaker::Outcome::kFailure:
      ++stats_.breaker_failures;
      break;
    case HealthBreaker::Outcome::kBackpressure:
      ++stats_.backpressure;
      break;
    case HealthBreaker::Outcome::kNeutral:
      break;
  }
  if (after == HealthState::kOpen && before != HealthState::kOpen) {
    ++stats_.breaker_opens;
  }
}

ReplicaStats Replica::stats() const {
  const std::lock_guard<std::mutex> lock{stats_mutex_};
  return stats_;
}

}  // namespace sdd::serve
