// A serving replica: one TransformerLM variant behind its own
// InferenceServer, wrapped with a circuit-breaker health state machine the
// VariantRouter consults before dispatching.
//
// Health model (see docs/serving.md for the full diagram):
//
//   healthy --consecutive failures >= degraded_after--> degraded
//   degraded --consecutive failures >= open_after-----> open
//   open --cooldown_ms elapsed------------------------> half-open (probing)
//   half-open --probe succeeds------------------------> healthy
//   half-open --probe fails---------------------------> open (cooldown anew)
//   any non-open state --success----------------------> healthy
//
// "Failure" means an outcome that is the replica's fault per the typed error
// taxonomy (util/error): kFailed with internal/timeout kinds (hung worker,
// NaN logits, decode exceptions). Backpressure (resource_exhausted shed /
// reject) never trips the breaker — an overloaded replica is healthy, just
// busy — it only raises a load penalty the router uses to spread requests.
// Client-attributed outcomes (own-deadline expiry, cancellation) are neutral.
//
// The breaker is a standalone class so the state machine is unit-testable
// with a fake clock, independent of any real server.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "nn/transformer.hpp"
#include "serve/serve.hpp"

namespace sdd::serve {

enum class HealthState {
  kHealthy,   // full traffic
  kDegraded,  // recent failures; deprioritized but still dispatchable
  kOpen,      // quarantined: no traffic until the cooldown expires
  kHalfOpen,  // cooldown over: up to probe_max trial requests in flight
};

std::string_view health_state_name(HealthState state);

struct BreakerConfig {
  std::int64_t degraded_after = 1;  // consecutive failures -> degraded
  std::int64_t open_after = 3;      // consecutive failures -> open
  std::int64_t cooldown_ms = 250;   // quarantine before half-open probing
  std::int64_t probe_max = 1;       // concurrent half-open trial requests

  // Test seam: breaker time source (fake clocks make cooldown transitions
  // deterministic). Defaults to steady_clock::now.
  std::function<std::chrono::steady_clock::time_point()> now_fn;

  // SDD_ROUTE_DEGRADED_FAILS, SDD_ROUTE_BREAKER_FAILS,
  // SDD_ROUTE_BREAKER_COOLDOWN_MS, SDD_ROUTE_PROBE_MAX.
  static BreakerConfig from_env();
};

// Thread-safe circuit breaker; every router dispatch brackets the request
// with try_begin() .. record()/abandon() so probe accounting stays exact.
class HealthBreaker {
 public:
  enum class Outcome {
    kSuccess,       // completed generation
    kFailure,       // replica-attributed failure (internal / hung / NaN)
    kBackpressure,  // resource_exhausted shed/reject: busy, not broken
    kNeutral,       // client-attributed (own deadline, cancel); no change
  };

  explicit HealthBreaker(BreakerConfig config);

  HealthState state() const;

  // Would a dispatch be admitted right now? Open counts as dispatchable once
  // its cooldown has expired (the dispatch itself performs the half-open
  // transition in try_begin). Peek only — takes no probe token.
  bool dispatchable() const;

  // Claims the right to dispatch one request. Returns false when the breaker
  // is open (cooldown pending) or half-open with all probe tokens taken.
  // On success *is_probe reports whether this request is a half-open probe;
  // the caller must pass that flag back to record()/abandon().
  bool try_begin(bool* is_probe);

  // Applies one request outcome. Success resets the failure streak (and
  // closes a half-open breaker); failure extends it (and re-opens a
  // half-open breaker immediately); backpressure only bumps the load
  // penalty; neutral releases the probe token and changes nothing else.
  void record(Outcome outcome, bool is_probe);

  // Releases a claimed dispatch that was never submitted (e.g. an injected
  // pre-submit fault handled elsewhere). Equivalent to a neutral record.
  void abandon(bool is_probe);

  // Decaying count of recent backpressure events; the router prefers the
  // least-loaded replica among equals. Halved on every success.
  std::int64_t load_penalty() const;

  std::int64_t consecutive_failures() const;
  // Milliseconds until an open breaker half-opens; 0 when not open.
  std::int64_t cooldown_remaining_ms() const;

 private:
  std::chrono::steady_clock::time_point now() const;

  BreakerConfig config_;
  mutable std::mutex mutex_;
  HealthState state_ = HealthState::kHealthy;
  std::int64_t fails_ = 0;          // consecutive replica-attributed failures
  std::int64_t penalty_ = 0;        // decaying backpressure pressure
  std::int64_t probes_inflight_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
};

struct ReplicaStats {
  std::int64_t dispatched = 0;        // requests routed here (incl. probes)
  std::int64_t completed = 0;
  std::int64_t breaker_failures = 0;  // replica-attributed failures
  std::int64_t backpressure = 0;      // resource_exhausted shed/rejects
  std::int64_t breaker_opens = 0;     // times the breaker tripped open
  std::int64_t probes = 0;            // half-open trial dispatches
  std::int64_t probe_successes = 0;   // probes that closed the breaker
  double latency_ema_ms = 0.0;        // EMA of completed-request decode time
};

// One hosted variant: owns the model weights and the InferenceServer over
// them, plus the breaker and per-replica routing stats. Not movable — the
// server captures `this`-adjacent references; the router holds unique_ptrs.
class Replica {
 public:
  // `draft`, when non-null, points at a sibling replica's model that drafts
  // for this server's speculative decode; the router guarantees it outlives
  // this replica's server.
  Replica(std::string name, nn::TransformerLM model, double quality,
          const ServerConfig& server_config, const BreakerConfig& breaker,
          const nn::TransformerLM* draft = nullptr);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  const std::string& name() const { return name_; }
  double quality() const { return quality_; }
  // Routing cost proxy: parameter count (a deeper variant decodes slower).
  std::int64_t cost() const { return model_.param_count(); }
  const nn::TransformerLM& model() const { return model_; }
  InferenceServer& server() { return server_; }

  HealthState health() const { return breaker_.state(); }
  HealthBreaker& breaker() { return breaker_; }
  const HealthBreaker& breaker() const { return breaker_; }

  // try_begin + dispatch accounting in one step; false = breaker refused.
  bool try_begin_dispatch(bool* is_probe);
  TicketPtr submit(Request request) { return server_.submit(std::move(request)); }

  // Feeds one terminal response back into the breaker and the stats.
  void record_outcome(HealthBreaker::Outcome outcome, bool is_probe,
                      const Response& response);
  // Releases a claimed dispatch that never reached submit().
  void abandon_dispatch(bool is_probe) { breaker_.abandon(is_probe); }

  ReplicaStats stats() const;

 private:
  std::string name_;
  double quality_;
  // Declaration order matters: the server holds a reference to the model.
  nn::TransformerLM model_;
  InferenceServer server_;
  HealthBreaker breaker_;

  mutable std::mutex stats_mutex_;
  ReplicaStats stats_;
};

}  // namespace sdd::serve
