// A serving replica: one TransformerLM variant behind its own
// InferenceServer, wrapped with a circuit-breaker health state machine the
// VariantRouter consults before dispatching.
//
// Health model (see docs/serving.md for the full diagram):
//
//   healthy --consecutive failures >= degraded_after--> degraded
//   degraded --consecutive failures >= open_after-----> open
//   open --cooldown_ms elapsed------------------------> half-open (probing)
//   half-open --probe succeeds------------------------> healthy
//   half-open --probe fails---------------------------> open (cooldown anew)
//   any non-open state --success----------------------> healthy
//
// "Failure" means an outcome that is the replica's fault per the typed error
// taxonomy (util/error): kFailed with internal/timeout kinds (hung worker,
// NaN logits, decode exceptions). Backpressure (resource_exhausted shed /
// reject) never trips the breaker — an overloaded replica is healthy, just
// busy — it only raises a load penalty the router uses to spread requests.
// Client-attributed outcomes (own-deadline expiry, cancellation) are neutral.
//
// The breaker is a standalone class so the state machine is unit-testable
// with a fake clock, independent of any real server.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "nn/transformer.hpp"
#include "serve/remote_replica.hpp"
#include "serve/serve.hpp"

namespace sdd::serve {

enum class HealthState {
  kHealthy,   // full traffic
  kDegraded,  // recent failures; deprioritized but still dispatchable
  kOpen,      // quarantined: no traffic until the cooldown expires
  kHalfOpen,  // cooldown over: up to probe_max trial requests in flight
};

std::string_view health_state_name(HealthState state);

struct BreakerConfig {
  std::int64_t degraded_after = 1;  // consecutive failures -> degraded
  std::int64_t open_after = 3;      // consecutive failures -> open
  std::int64_t cooldown_ms = 250;   // quarantine before half-open probing
  std::int64_t probe_max = 1;       // concurrent half-open trial requests

  // Test seam: breaker time source (fake clocks make cooldown transitions
  // deterministic). Defaults to steady_clock::now.
  std::function<std::chrono::steady_clock::time_point()> now_fn;

  // SDD_ROUTE_DEGRADED_FAILS, SDD_ROUTE_BREAKER_FAILS,
  // SDD_ROUTE_BREAKER_COOLDOWN_MS, SDD_ROUTE_PROBE_MAX.
  static BreakerConfig from_env();
};

// Thread-safe circuit breaker; every router dispatch brackets the request
// with try_begin() .. record()/abandon() so probe accounting stays exact.
class HealthBreaker {
 public:
  enum class Outcome {
    kSuccess,       // completed generation
    kFailure,       // replica-attributed failure (internal / hung / NaN)
    kBackpressure,  // resource_exhausted shed/reject: busy, not broken
    kNeutral,       // client-attributed (own deadline, cancel); no change
  };

  explicit HealthBreaker(BreakerConfig config);

  HealthState state() const;

  // Would a dispatch be admitted right now? Open counts as dispatchable once
  // its cooldown has expired (the dispatch itself performs the half-open
  // transition in try_begin). Peek only — takes no probe token.
  bool dispatchable() const;

  // Claims the right to dispatch one request. Returns false when the breaker
  // is open (cooldown pending) or half-open with all probe tokens taken.
  // On success *is_probe reports whether this request is a half-open probe;
  // the caller must pass that flag back to record()/abandon().
  bool try_begin(bool* is_probe);

  // Applies one request outcome. Success resets the failure streak (and
  // closes a half-open breaker); failure extends it (and re-opens a
  // half-open breaker immediately); backpressure only bumps the load
  // penalty; neutral releases the probe token and changes nothing else.
  void record(Outcome outcome, bool is_probe);

  // Releases a claimed dispatch that was never submitted (e.g. an injected
  // pre-submit fault handled elsewhere). Equivalent to a neutral record.
  void abandon(bool is_probe);

  // Force-open, bypassing the failure streak: a process-level liveness
  // verdict (reaped pid, expired heartbeat lease, torn channel) quarantines
  // the replica immediately. The normal cooldown -> half-open -> probe path
  // readmits it once a respawned worker answers a probe.
  void trip();

  // Decaying count of recent backpressure events; the router prefers the
  // least-loaded replica among equals. Halved on every success.
  std::int64_t load_penalty() const;

  std::int64_t consecutive_failures() const;
  // Milliseconds until an open breaker half-opens; 0 when not open.
  std::int64_t cooldown_remaining_ms() const;

 private:
  std::chrono::steady_clock::time_point now() const;

  BreakerConfig config_;
  mutable std::mutex mutex_;
  HealthState state_ = HealthState::kHealthy;
  std::int64_t fails_ = 0;          // consecutive replica-attributed failures
  std::int64_t penalty_ = 0;        // decaying backpressure pressure
  std::int64_t probes_inflight_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
};

struct ReplicaStats {
  std::int64_t dispatched = 0;        // requests routed here (incl. probes)
  std::int64_t completed = 0;
  std::int64_t breaker_failures = 0;  // replica-attributed failures
  std::int64_t backpressure = 0;      // resource_exhausted shed/rejects
  std::int64_t breaker_opens = 0;     // times the breaker tripped open
  std::int64_t probes = 0;            // half-open trial dispatches
  std::int64_t probe_successes = 0;   // probes that closed the breaker
  double latency_ema_ms = 0.0;        // EMA of completed-request decode time
};

// One hosted variant behind the breaker and per-replica routing stats, in
// one of two hosting modes:
//   * local  — owns the model weights and an in-process InferenceServer;
//   * remote — owns a RemoteReplica supervising a `replica-worker` child
//     process (process-isolated weights, crash respawn, rolling upgrades).
// The router never cares which: submit()/record_outcome() are identical, and
// a remote worker death trips the breaker through on_process_death().
// Not movable — the server/supervisor capture `this`-adjacent references;
// the router holds unique_ptrs.
class Replica {
 public:
  // Local replica. `draft`, when non-null, points at a sibling replica's
  // model that drafts for this server's speculative decode; the router
  // guarantees it outlives this replica's server.
  Replica(std::string name, nn::TransformerLM model, double quality,
          const ServerConfig& server_config, const BreakerConfig& breaker,
          const nn::TransformerLM* draft = nullptr);

  // Remote replica: the weights live in the worker process; the parent only
  // keeps the checkpoint path. `cost_hint` seeds the routing cost until the
  // worker's HELLO reports its true parameter count.
  Replica(std::string name, std::string model_path, double quality,
          std::int64_t cost_hint, const RemoteReplicaConfig& remote_config,
          const BreakerConfig& breaker);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  const std::string& name() const { return name_; }
  double quality() const { return quality_; }
  bool remote() const { return remote_ != nullptr; }
  // Routing cost proxy: parameter count (a deeper variant decodes slower).
  // Remote: the worker's HELLO-reported count, or the spec's hint until the
  // first HELLO lands.
  std::int64_t cost() const;
  // Local mode only (the weights of a remote replica live in the worker).
  const nn::TransformerLM& model() const { return *model_; }
  InferenceServer& server() { return *server_; }

  HealthState health() const { return breaker_.state(); }
  HealthBreaker& breaker() { return breaker_; }
  const HealthBreaker& breaker() const { return breaker_; }

  // try_begin + dispatch accounting in one step; false = breaker refused.
  bool try_begin_dispatch(bool* is_probe);
  TicketPtr submit(Request request);

  // Feeds one terminal response back into the breaker and the stats.
  void record_outcome(HealthBreaker::Outcome outcome, bool is_probe,
                      const Response& response);
  // Releases a claimed dispatch that never reached submit().
  void abandon_dispatch(bool is_probe) { breaker_.abandon(is_probe); }

  // Rolling upgrade (remote only): drain the worker, respawn with `path`,
  // wait up to `timeout_ms` for the new generation's HELLO. False for local
  // replicas and on timeout.
  bool swap_model(const std::string& path, std::int64_t timeout_ms);

  // Shuts down whichever host this replica runs (server or worker process).
  void shutdown_host();

  // Server-side telemetry: the local server's stats, or a minimal synthesis
  // from the remote supervisor's counters (submitted/completed/failed).
  ServerStats server_stats() const;

  // Process telemetry for the health table; -1 / 0 / -1 for local replicas.
  std::int64_t pid() const { return remote_ ? remote_->pid() : -1; }
  std::int64_t restart_count() const { return remote_ ? remote_->restarts() : 0; }
  std::int64_t heartbeat_age_ms() const {
    return remote_ ? remote_->heartbeat_age_ms() : -1;
  }

  ReplicaStats stats() const;

 private:
  // Remote worker death: trip the breaker and count the open (invoked by the
  // RemoteReplica supervisor from whichever thread detected the death).
  void on_process_death(const std::string& reason);

  std::string name_;
  double quality_;
  std::int64_t cost_hint_ = 0;
  // Declaration order matters: the server holds a reference to the model.
  // Exactly one of (model_+server_) / remote_ is set.
  std::unique_ptr<nn::TransformerLM> model_;
  std::unique_ptr<InferenceServer> server_;
  std::unique_ptr<RemoteReplica> remote_;
  HealthBreaker breaker_;

  mutable std::mutex stats_mutex_;
  ReplicaStats stats_;
};

}  // namespace sdd::serve
