#include "serve/router.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace sdd::serve {

using Clock = std::chrono::steady_clock;

namespace detail {

// Shared between the client-facing RouteTicket and the dispatcher. Resolved
// exactly once; `terminal` + cv is the only client synchronization point.
// Fields below the mutex block are dispatcher-private routing state.
struct RouteJob {
  RouteRequest route;
  Clock::time_point submitted_at{};
  std::int64_t deadline_ms = 0;  // effective (request or server default)
  std::atomic<bool> cancel_requested{false};

  std::mutex mutex;
  std::condition_variable cv;
  bool terminal = false;
  RouteResponse result;
  TicketPtr active_ticket;  // set/cleared by the dispatcher, read by cancel()

  // Dispatcher-only routing state (never touched by client threads).
  std::int64_t hops = 0;
  std::vector<bool> tried;
  std::int64_t active_replica = -1;
  bool active_probe = false;
  bool transit_delayed = false;  // replica_slow chaos applied once per request
  Clock::time_point not_before{};
  std::string last_variant;

  bool is_terminal() {
    const std::lock_guard<std::mutex> lock{mutex};
    return terminal;
  }
};

}  // namespace detail

// ---- config ----------------------------------------------------------------

RouterConfig RouterConfig::from_env() {
  RouterConfig config;
  config.failover_max = env_int("SDD_ROUTE_FAILOVER_MAX", config.failover_max);
  config.cheap_deadline_ms =
      env_int("SDD_ROUTE_CHEAP_DEADLINE_MS", config.cheap_deadline_ms);
  config.spec_draft = env_string("SDD_SPEC_DRAFT", config.spec_draft);
  config.cross_process = env_flag("SDD_REPLICA_PROCESS", config.cross_process);
  config.remote = RemoteReplicaConfig::from_env();
  config.breaker = BreakerConfig::from_env();
  config.server = ServerConfig::from_env();
  return config;
}

// ---- quality table ---------------------------------------------------------

QualityTable QualityTable::parse(const std::string& text) {
  QualityTable table;
  std::istringstream in{text};
  std::string line;
  std::string variant;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields{line};
    std::string tag;
    if (!(fields >> tag)) continue;  // blank line
    if (tag == "variant") {
      if (!(fields >> variant)) {
        throw Error(ErrorKind::kCorruptArtifact,
                    "quality table line " + std::to_string(line_no) +
                        ": 'variant' without a name");
      }
      table.scores_[variant];  // a variant may legitimately have no rows yet
    } else if (tag == "metric") {
      std::string task;
      double score = 0.0;
      if (variant.empty() || !(fields >> task >> score)) {
        throw Error(ErrorKind::kCorruptArtifact,
                    "quality table line " + std::to_string(line_no) +
                        ": expected 'metric <task> <score>' under a variant");
      }
      table.scores_[variant][task] = score;
    } else {
      throw Error(ErrorKind::kCorruptArtifact,
                  "quality table line " + std::to_string(line_no) +
                      ": unknown tag '" + tag + "'");
    }
  }
  return table;
}

QualityTable QualityTable::load(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw Error(ErrorKind::kCorruptArtifact,
                "cannot open quality table '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

void QualityTable::set(const std::string& variant, const std::string& task,
                       double score) {
  scores_[variant][task] = score;
}

double QualityTable::score(const std::string& variant, const std::string& task,
                           double fallback) const {
  const auto variant_it = scores_.find(variant);
  if (variant_it == scores_.end()) return fallback;
  if (!task.empty()) {
    const auto task_it = variant_it->second.find(task);
    if (task_it != variant_it->second.end()) return task_it->second;
  }
  const auto avg_it = variant_it->second.find("average");
  if (avg_it != variant_it->second.end()) return avg_it->second;
  return fallback;
}

bool QualityTable::has_variant(const std::string& variant) const {
  return scores_.find(variant) != scores_.end();
}

// ---- ticket ----------------------------------------------------------------

RouteTicket::RouteTicket(std::shared_ptr<detail::RouteJob> job)
    : job_{std::move(job)} {}

const RouteResponse& RouteTicket::wait() {
  std::unique_lock<std::mutex> lock{job_->mutex};
  job_->cv.wait(lock, [this] { return job_->terminal; });
  return job_->result;
}

bool RouteTicket::wait_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock{job_->mutex};
  return job_->cv.wait_for(lock, timeout, [this] { return job_->terminal; });
}

void RouteTicket::cancel() {
  job_->cancel_requested.store(true, std::memory_order_release);
  TicketPtr active;
  {
    const std::lock_guard<std::mutex> lock{job_->mutex};
    active = job_->active_ticket;
  }
  if (active) active->cancel();
}

RequestState RouteTicket::state() const {
  const std::lock_guard<std::mutex> lock{job_->mutex};
  return job_->result.response.state;
}

// ---- router ----------------------------------------------------------------

struct VariantRouter::Candidate {
  std::size_t index = 0;
  int tried = 0;        // untried replicas first
  int unpinned = 0;     // the pinned variant (if any) before the rest
  int health_rank = 0;  // healthy / probing before degraded
  std::int64_t penalty = 0;
  double quality = 0.0;
  std::int64_t cost = 0;
};

VariantRouter::VariantRouter(std::vector<VariantSpec> variants,
                             RouterConfig config, QualityTable quality)
    : config_{std::move(config)}, quality_{std::move(quality)} {
  if (variants.empty()) {
    throw Error(ErrorKind::kFatal, "router needs at least one variant");
  }
  config_.failover_max = std::max<std::int64_t>(0, config_.failover_max);
  config_.poll_ms = std::max<std::int64_t>(1, config_.poll_ms);
  config_.reroute_wait_ms = std::max<std::int64_t>(1, config_.reroute_wait_ms);
  if (config_.cross_process) {
    if (!config_.spec_draft.empty()) {
      throw Error(ErrorKind::kFatal,
                  "cross-process replicas cannot share a speculative draft "
                  "(the draft pointer cannot cross a process boundary); "
                  "unset SDD_SPEC_DRAFT or SDD_REPLICA_PROCESS");
    }
    // One `replica-worker` child per variant. Chaos (SDD_REPLICA_FAULT)
    // targets exactly one variant's first worker generation so the soak can
    // assert that the siblings absorb the failover.
    const std::string child_fault = env_string("SDD_REPLICA_FAULT", "");
    const std::int64_t fault_index = env_int("SDD_REPLICA_FAULT_IDX", 0);
    replicas_.resize(variants.size());
    for (std::size_t i = 0; i < variants.size(); ++i) {
      VariantSpec& spec = variants[i];
      if (spec.path.empty()) {
        throw Error(ErrorKind::kFatal,
                    "cross-process variant '" + spec.name +
                        "' needs a checkpoint path");
      }
      RemoteReplicaConfig remote = config_.remote;
      if (!child_fault.empty() &&
          static_cast<std::int64_t>(i) == fault_index) {
        remote.child_fault_spec = child_fault;
      }
      replicas_[i] = std::make_unique<Replica>(
          std::move(spec.name), std::move(spec.path), spec.quality,
          spec.cost_hint, remote, config_.breaker);
    }
    if (config_.start_dispatcher) start();
    return;
  }
  // Speculative pairing: one variant (typically the deepest-pruned,
  // SDD-recovered model) drafts for every sibling's verify loop. Its
  // replica is constructed first so the siblings can hold a pointer to its
  // weights; vector order still matches `variants` so replica indices (and
  // chaos targeting by index) are unaffected. shutdown() stops every
  // server before replicas_ is destroyed, so the cross-replica pointer
  // never dangles.
  std::size_t draft_index = variants.size();
  if (!config_.spec_draft.empty()) {
    for (std::size_t i = 0; i < variants.size(); ++i) {
      if (variants[i].name == config_.spec_draft) {
        draft_index = i;
        break;
      }
    }
    if (draft_index == variants.size()) {
      throw Error(ErrorKind::kFatal, "speculative draft variant '" +
                                         config_.spec_draft +
                                         "' is not among the hosted variants");
    }
  }
  replicas_.resize(variants.size());
  const nn::TransformerLM* draft_model = nullptr;
  if (draft_index < variants.size()) {
    VariantSpec& spec = variants[draft_index];
    replicas_[draft_index] = std::make_unique<Replica>(
        std::move(spec.name), std::move(spec.model), spec.quality,
        config_.server, config_.breaker);
    draft_model = &replicas_[draft_index]->model();
  }
  for (std::size_t i = 0; i < variants.size(); ++i) {
    if (i == draft_index) continue;
    VariantSpec& spec = variants[i];
    replicas_[i] = std::make_unique<Replica>(
        std::move(spec.name), std::move(spec.model), spec.quality,
        config_.server, config_.breaker, draft_model);
  }
  if (config_.start_dispatcher) start();
}

VariantRouter::~VariantRouter() { shutdown(); }

void VariantRouter::start() {
  const std::lock_guard<std::mutex> lock{queue_mutex_};
  if (dispatcher_started_ || stopping_) return;
  dispatcher_started_ = true;
  dispatcher_ = std::thread{&VariantRouter::dispatcher_main, this};
}

Replica* VariantRouter::replica(const std::string& name) {
  for (const auto& r : replicas_) {
    if (r->name() == name) return r.get();
  }
  return nullptr;
}

RouterStats VariantRouter::stats() const {
  const std::lock_guard<std::mutex> lock{stats_mutex_};
  return stats_;
}

std::vector<ReplicaSnapshot> VariantRouter::replicas() const {
  std::vector<ReplicaSnapshot> out;
  out.reserve(replicas_.size());
  for (const auto& r : replicas_) {
    ReplicaSnapshot snap;
    snap.name = r->name();
    snap.health = r->health();
    snap.stats = r->stats();
    snap.server = r->server_stats();
    snap.quality = r->quality();
    snap.cost = r->cost();
    snap.drafts = !config_.spec_draft.empty() && r->name() == config_.spec_draft;
    snap.remote = r->remote();
    snap.pid = r->pid();
    snap.restarts = r->restart_count();
    snap.heartbeat_age_ms = r->heartbeat_age_ms();
    out.push_back(std::move(snap));
  }
  return out;
}

RouteTicketPtr VariantRouter::submit(RouteRequest request) {
  auto job = std::make_shared<detail::RouteJob>();
  job->route = std::move(request);
  // The routing task doubles as the serving-layer telemetry label, so
  // per-task speculative acceptance lands in the replica's ServerStats.
  if (job->route.request.task.empty()) {
    job->route.request.task = job->route.task;
  }
  job->submitted_at = Clock::now();
  job->deadline_ms = job->route.request.deadline_ms > 0
                         ? job->route.request.deadline_ms
                         : config_.server.default_deadline_ms;
  job->tried.assign(replicas_.size(), false);
  RouteTicketPtr ticket{new RouteTicket{job}};
  {
    const std::lock_guard<std::mutex> lock{stats_mutex_};
    ++stats_.submitted;
  }

  if (!job->route.variant.empty() && replica(job->route.variant) == nullptr) {
    Response response;
    response.state = RequestState::kRejected;
    response.error = ErrorKind::kFatal;
    response.message = "unknown variant '" + job->route.variant + "'";
    resolve(*job, std::move(response), "");
    return ticket;
  }

  bool rejected_stopping = false;
  {
    const std::lock_guard<std::mutex> lock{queue_mutex_};
    if (stopping_) {
      rejected_stopping = true;
    } else {
      incoming_.push_back(job);
    }
  }
  if (rejected_stopping) {
    Response response;
    response.state = RequestState::kRejected;
    response.error = ErrorKind::kResourceExhausted;
    response.retryable = true;
    response.message = "router shutting down";
    resolve(*job, std::move(response), "");
  } else {
    queue_cv_.notify_one();
  }
  return ticket;
}

void VariantRouter::shutdown() {
  {
    const std::lock_guard<std::mutex> lock{queue_mutex_};
    stopping_ = true;
  }
  queue_cv_.notify_all();
  std::thread dispatcher;
  {
    // Claim the thread object under the lock (concurrent shutdown() calls
    // must not both join the same std::thread).
    const std::lock_guard<std::mutex> lock{queue_mutex_};
    dispatcher = std::move(dispatcher_);
  }
  if (dispatcher.joinable()) dispatcher.join();
  // Without a dispatcher (start() never ran, or it died) nothing drains the
  // incoming queue; resolve leftovers so no client blocks forever.
  std::deque<std::shared_ptr<detail::RouteJob>> leftover;
  {
    const std::lock_guard<std::mutex> lock{queue_mutex_};
    leftover.swap(incoming_);
  }
  for (const auto& job : leftover) {
    Response response;
    response.state = RequestState::kRejected;
    response.error = ErrorKind::kResourceExhausted;
    response.retryable = true;
    response.message = "router stopped before the request ran";
    resolve(*job, std::move(response), "");
  }
  for (const auto& r : replicas_) r->shutdown_host();
}

void VariantRouter::bump_stats(RequestState state) {
  const std::lock_guard<std::mutex> lock{stats_mutex_};
  switch (state) {
    case RequestState::kCompleted:
      ++stats_.completed;
      break;
    case RequestState::kTimeout:
      ++stats_.timed_out;
      break;
    case RequestState::kCancelled:
      ++stats_.cancelled;
      break;
    case RequestState::kShed:
      ++stats_.shed;
      break;
    case RequestState::kRejected:
      ++stats_.rejected;
      break;
    case RequestState::kFailed:
      ++stats_.failed;
      break;
    case RequestState::kQueued:
    case RequestState::kRunning:
      break;
  }
}

void VariantRouter::resolve(detail::RouteJob& job, Response response,
                            const std::string& variant) {
  {
    const std::lock_guard<std::mutex> lock{job.mutex};
    if (job.terminal) return;
    job.result.response = std::move(response);
    job.result.variant = variant;
    job.result.hops = job.hops;
    job.result.rerouted = job.hops > 0;
    job.active_ticket.reset();
    // Stats current before the client unblocks (lock order: job.mutex ->
    // stats_mutex_, matching InferenceServer::resolve).
    bump_stats(job.result.response.state);
    job.terminal = true;
  }
  job.cv.notify_all();
}

void VariantRouter::dispatcher_main() {
  try {
    dispatch_loop();
  } catch (const std::exception& e) {
    // The dispatcher must never die silently with clients parked on
    // tickets: mark the router stopped and fail everything queued. (In-
    // flight replica attempts resolve through their own servers; their
    // RouteJobs resolve here with the dispatcher's terminal error.)
    log_error("route: dispatcher died (", e.what(), "); failing queued jobs");
    std::deque<std::shared_ptr<detail::RouteJob>> pending;
    {
      const std::lock_guard<std::mutex> lock{queue_mutex_};
      stopping_ = true;
      pending.swap(incoming_);
    }
    for (const auto& job : pending) {
      Response response;
      response.state = RequestState::kFailed;
      response.error = ErrorKind::kFatal;
      response.message = std::string{"router dispatcher died: "} + e.what();
      resolve(*job, std::move(response), "");
    }
  }
}

void VariantRouter::dispatch_loop() {
  std::vector<std::shared_ptr<detail::RouteJob>> inflight;
  while (true) {
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock{queue_mutex_};
      if (incoming_.empty() && inflight.empty()) {
        if (stopping_) return;
        queue_cv_.wait_for(lock, std::chrono::milliseconds{10});
      }
      while (!incoming_.empty()) {
        inflight.push_back(incoming_.front());
        incoming_.pop_front();
      }
      stopping = stopping_;
    }
    const Clock::time_point now = Clock::now();
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (process(*it, now)) {
        it = inflight.erase(it);
      } else if (stopping && (*it)->active_replica < 0) {
        // Shutdown: undispatched jobs resolve now; in-flight attempts drain
        // through their replica servers (those clients get real results).
        Response response;
        response.state = RequestState::kRejected;
        response.error = ErrorKind::kResourceExhausted;
        response.retryable = true;
        response.message = "router stopped before the request ran";
        resolve(**it, std::move(response), "");
        it = inflight.erase(it);
      } else {
        ++it;
      }
    }
    if (!inflight.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds{config_.poll_ms});
    }
  }
}

bool VariantRouter::process(const std::shared_ptr<detail::RouteJob>& jobp,
                            Clock::time_point now) {
  detail::RouteJob& job = *jobp;
  if (job.active_replica >= 0) {
    TicketPtr ticket;
    {
      const std::lock_guard<std::mutex> lock{job.mutex};
      ticket = job.active_ticket;
    }
    if (job.cancel_requested.load(std::memory_order_acquire)) {
      ticket->cancel();  // idempotent; resolves at the next token boundary
    }
    if (!ticket->wait_for(std::chrono::milliseconds{0})) return false;
    handle_outcome(job, ticket->wait(), now);
    return job.is_terminal();
  }

  if (job.cancel_requested.load(std::memory_order_acquire)) {
    Response response;
    response.state = RequestState::kCancelled;
    response.message = "cancelled before dispatch";
    resolve(job, std::move(response), job.last_variant);
    return true;
  }
  if (job.deadline_ms > 0 &&
      now - job.submitted_at >= std::chrono::milliseconds{job.deadline_ms}) {
    Response response;
    response.state = RequestState::kTimeout;
    response.error = ErrorKind::kTimeout;
    response.retryable = true;
    response.message = "deadline expired while routing";
    resolve(job, std::move(response), job.last_variant);
    return true;
  }
  if (now < job.not_before) return false;
  dispatch(job, now);
  return job.is_terminal();
}

std::vector<VariantRouter::Candidate> VariantRouter::ordered_candidates(
    const detail::RouteJob& job) const {
  std::vector<Candidate> candidates;
  candidates.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& r = *replicas_[i];
    if (!r.breaker().dispatchable()) continue;
    Candidate c;
    c.index = i;
    c.tried = job.tried[i] ? 1 : 0;
    c.unpinned = (!job.route.variant.empty() && job.route.variant == r.name())
                     ? 0
                     : 1;
    c.health_rank = r.health() == HealthState::kDegraded ? 1 : 0;
    c.penalty = r.breaker().load_penalty();
    c.quality = quality_.score(r.name(), job.route.task, r.quality());
    c.cost = r.cost();
    candidates.push_back(c);
  }
  // Deadline pressure flips the tail key from best-quality to cheapest:
  // a cheaper pruned variant decodes faster, so the request degrades
  // gracefully by routing instead of blowing its deadline on the big model.
  const bool cheap = job.deadline_ms > 0 &&
                     job.deadline_ms <= config_.cheap_deadline_ms;
  std::sort(candidates.begin(), candidates.end(),
            [cheap](const Candidate& a, const Candidate& b) {
              if (a.tried != b.tried) return a.tried < b.tried;
              if (a.unpinned != b.unpinned) return a.unpinned < b.unpinned;
              if (a.health_rank != b.health_rank) {
                return a.health_rank < b.health_rank;
              }
              if (a.penalty != b.penalty) return a.penalty < b.penalty;
              if (cheap) {
                if (a.cost != b.cost) return a.cost < b.cost;
              } else if (a.quality != b.quality) {
                return a.quality > b.quality;
              }
              return a.index < b.index;
            });
  return candidates;
}

bool VariantRouter::dispatch(detail::RouteJob& job, Clock::time_point now) {
  for (const Candidate& candidate : ordered_candidates(job)) {
    Replica& r = *replicas_[candidate.index];
    bool is_probe = false;
    if (!r.try_begin_dispatch(&is_probe)) continue;

    const auto idx = static_cast<std::int64_t>(candidate.index);
    if (fault::should_fail_replica(idx)) {
      // Chaos: the dispatch dies before reaching the replica's queue. The
      // breaker sees a replica-attributed failure and the request fails
      // over, exactly like a real transport/worker loss.
      Response injected;
      injected.state = RequestState::kFailed;
      injected.error = ErrorKind::kWorkerLost;
      injected.retryable = true;
      injected.message = "injected replica failure (chaos)";
      r.record_outcome(HealthBreaker::Outcome::kFailure, is_probe, injected);
      {
        const std::lock_guard<std::mutex> lock{stats_mutex_};
        ++stats_.injected_failures;
      }
      job.tried[candidate.index] = true;
      job.last_variant = r.name();
      fail_over(job, injected, now);
      return true;
    }

    const std::int64_t delay = fault::replica_dispatch_delay_ms(idx);
    if (delay > 0 && !job.transit_delayed) {
      // Chaos: slow transit to this replica. Applied as a non-blocking
      // not_before gate so one slow replica never stalls the dispatcher.
      job.transit_delayed = true;
      job.not_before = now + std::chrono::milliseconds{delay};
      r.abandon_dispatch(is_probe);
      return false;
    }

    TicketPtr ticket = r.submit(job.route.request);
    {
      const std::lock_guard<std::mutex> lock{job.mutex};
      job.active_ticket = ticket;
      if (job.cancel_requested.load(std::memory_order_acquire)) {
        ticket->cancel();
      }
    }
    job.active_replica = idx;
    job.active_probe = is_probe;
    job.tried[candidate.index] = true;
    job.last_variant = r.name();
    return true;
  }
  // Nothing eligible right now (all breakers open mid-cooldown, or probe
  // tokens taken): park briefly and re-route. Bounded overall because every
  // real attempt consumes a failover hop and cooldowns always elapse.
  job.not_before = now + std::chrono::milliseconds{config_.reroute_wait_ms};
  return false;
}

void VariantRouter::handle_outcome(detail::RouteJob& job,
                                   const Response& response,
                                   Clock::time_point now) {
  Replica& r = *replicas_[static_cast<std::size_t>(job.active_replica)];
  const bool is_probe = job.active_probe;
  job.active_replica = -1;
  job.active_probe = false;
  {
    const std::lock_guard<std::mutex> lock{job.mutex};
    job.active_ticket.reset();
  }

  HealthBreaker::Outcome outcome = HealthBreaker::Outcome::kNeutral;
  bool terminal = true;
  switch (response.state) {
    case RequestState::kCompleted:
      outcome = HealthBreaker::Outcome::kSuccess;
      break;
    case RequestState::kFailed:
      if (response.error == ErrorKind::kInterrupted) {
        if (r.remote()) {
          // A remote worker draining means *that replica* is going away
          // (rolling upgrade / SIGTERM), not this process — siblings can
          // still serve the request.
          outcome = HealthBreaker::Outcome::kFailure;
          terminal = false;
        } else {
          // Signal-initiated server drain: not the replica's fault, and the
          // process is going down — terminal, breaker untouched.
          outcome = HealthBreaker::Outcome::kNeutral;
        }
      } else {
        // Hung worker (kTimeout), NaN logits, decode exceptions: the
        // replica is misbehaving — trip the breaker and fail over.
        outcome = HealthBreaker::Outcome::kFailure;
        terminal = false;
      }
      break;
    case RequestState::kShed:
      outcome = HealthBreaker::Outcome::kBackpressure;
      terminal = false;
      break;
    case RequestState::kRejected:
      if (response.error == ErrorKind::kResourceExhausted) {
        // Queue full / KV exhausted: busy, not broken — try elsewhere.
        outcome = HealthBreaker::Outcome::kBackpressure;
        terminal = false;
      } else {
        // Bad request (empty prompt, over-context): every variant would
        // reject it identically — terminal, no failover, breaker untouched.
        outcome = HealthBreaker::Outcome::kNeutral;
      }
      break;
    case RequestState::kTimeout:
    case RequestState::kCancelled:
      // Client-attributed: own deadline or explicit cancel. Terminal.
      outcome = HealthBreaker::Outcome::kNeutral;
      break;
    case RequestState::kQueued:
    case RequestState::kRunning:
      break;
  }
  r.record_outcome(outcome, is_probe, response);
  if (terminal) {
    resolve(job, response, r.name());
  } else {
    fail_over(job, response, now);
  }
}

void VariantRouter::fail_over(detail::RouteJob& job, const Response& response,
                              Clock::time_point now) {
  if (job.hops >= config_.failover_max) {
    {
      const std::lock_guard<std::mutex> lock{stats_mutex_};
      ++stats_.exhausted;
    }
    Response final = response;
    final.message += " [failover exhausted after " +
                     std::to_string(job.hops + 1) + " attempts]";
    resolve(job, std::move(final), job.last_variant);
    return;
  }
  ++job.hops;
  {
    const std::lock_guard<std::mutex> lock{stats_mutex_};
    ++stats_.failovers;
  }
  log_info("route: failing over request (hop ", job.hops, "/",
           config_.failover_max, ") after ",
           request_state_name(response.state), " on '", job.last_variant,
           "'");
  // Recurse at most failover_max deep: an injected pre-submit failure in
  // dispatch() calls straight back into fail_over.
  dispatch(job, now);
}

}  // namespace sdd::serve
