// Replicated multi-variant serving: a health-checked router over N model
// replicas with circuit breakers, bounded failover, and degradation by
// routing.
//
// A VariantRouter owns one Replica (= InferenceServer + HealthBreaker) per
// hosted TransformerLM variant — typically the full model plus one or more
// depth-pruned variants recovered by self-data distillation. Clients call
// submit() once; a single dispatcher thread picks the variant:
//
//   * eligible = breaker dispatchable (healthy, degraded, half-open with a
//     free probe token, or open past its cooldown) and not already tried by
//     this request;
//   * ordering: healthy/half-open before degraded, then lower backpressure
//     load penalty, then highest quality-table score for the request's task
//     — or, when the request's deadline is at or under cheap_deadline_ms,
//     lowest cost (parameter count) first: under deadline pressure the
//     router degrades gracefully by sending work to a cheaper pruned
//     variant instead of failing it;
//   * a replica-attributed failure (internal error, hung-worker timeout,
//     NaN logits) or backpressure rejection triggers failover to the next
//     eligible variant, up to failover_max extra hops; the terminal typed
//     Response of the last attempt is always returned — no request is ever
//     lost, even when every variant is down.
//
// Determinism invariant (proved by scripts/router_soak.sh): a request's
// tokens depend only on (variant, prompt, seed, options). Failover re-submits
// the request fresh on the next variant, so whichever variant completes it,
// the output is bit-identical to an unloaded single-request decode on that
// same variant — rerouting around chaos never changes bytes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/replica.hpp"
#include "serve/serve.hpp"

namespace sdd::serve {

struct RouterConfig {
  std::int64_t failover_max = 2;       // extra dispatch attempts per request
  std::int64_t cheap_deadline_ms = 60; // deadlines <= this prefer cheap variants
  std::int64_t poll_ms = 1;            // dispatcher tick while jobs in flight
  std::int64_t reroute_wait_ms = 5;    // backoff when no replica is eligible
  bool start_dispatcher = true;        // test seam: false = call start() later
  std::string spec_draft;              // variant that drafts for the others'
                                       // speculative decode ("" = off); takes
                                       // effect when server.spec_k > 0

  // Host each variant in its own `replica-worker` child process (VariantSpec
  // must carry checkpoint paths). Incompatible with spec_draft — the draft
  // pointer cannot cross a process boundary.
  bool cross_process = false;
  RemoteReplicaConfig remote;          // supervision knobs for cross-process

  BreakerConfig breaker;               // shared by every replica's breaker
  ServerConfig server;                 // shared by every replica's server

  // SDD_ROUTE_FAILOVER_MAX, SDD_ROUTE_CHEAP_DEADLINE_MS, SDD_SPEC_DRAFT,
  // SDD_REPLICA_PROCESS, plus BreakerConfig::from_env(),
  // ServerConfig::from_env(), and RemoteReplicaConfig::from_env().
  static RouterConfig from_env();
};

// Static per-variant quality scores, loadable from eval-grid suite digests.
// File format, one block per variant:
//
//   variant <name>
//   metric <task> <accuracy>     (format_suite_digest lines, incl. average)
//
// Unknown variant/task lookups fall back: task -> "average" -> `fallback`.
class QualityTable {
 public:
  QualityTable() = default;

  // Throws Error{kCorruptArtifact} on malformed content / unreadable file.
  static QualityTable parse(const std::string& text);
  static QualityTable load(const std::string& path);

  void set(const std::string& variant, const std::string& task, double score);
  double score(const std::string& variant, const std::string& task,
               double fallback) const;
  bool has_variant(const std::string& variant) const;
  bool empty() const { return scores_.empty(); }

 private:
  std::map<std::string, std::map<std::string, double>> scores_;
};

// One routed request: the serving Request plus routing inputs.
struct RouteRequest {
  Request request;
  std::string task;     // quality-table column; "" = use the average score
  std::string variant;  // pin to this variant (no quality-based choice);
                        // failover may still move the request elsewhere
};

struct RouteResponse {
  Response response;    // terminal typed response of the last attempt
  std::string variant;  // replica that produced `response` ("" = none ran)
  std::int64_t hops = 0;     // failover dispatches after the first
  bool rerouted = false;     // hops > 0
};

namespace detail {
struct RouteJob;
}

// Client handle to a routed request; resolved exactly once.
class RouteTicket {
 public:
  const RouteResponse& wait();
  bool wait_for(std::chrono::milliseconds timeout);
  // Cooperative abandon: also cancels the in-flight replica attempt.
  void cancel();
  RequestState state() const;

 private:
  friend class VariantRouter;
  explicit RouteTicket(std::shared_ptr<detail::RouteJob> job);
  std::shared_ptr<detail::RouteJob> job_;
};

using RouteTicketPtr = std::shared_ptr<RouteTicket>;

struct RouterStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t timed_out = 0;
  std::int64_t cancelled = 0;
  std::int64_t rejected = 0;   // terminal rejections (incl. router shutdown)
  std::int64_t failed = 0;
  std::int64_t shed = 0;       // terminal shed outcomes (failover exhausted)
  std::int64_t failovers = 0;  // re-dispatches after a failed attempt
  std::int64_t exhausted = 0;  // requests that ran out of failover hops
  std::int64_t injected_failures = 0;  // chaos-injected pre-submit failures

  std::int64_t resolved() const {
    return completed + timed_out + cancelled + rejected + failed + shed;
  }
};

// Point-in-time view of one replica for CLIs / soak logs.
struct ReplicaSnapshot {
  std::string name;
  HealthState health = HealthState::kHealthy;
  ReplicaStats stats;
  ServerStats server;  // incl. speculative acceptance telemetry
  double quality = 0.0;
  std::int64_t cost = 0;
  bool drafts = false;  // this replica drafts for its siblings
  // Cross-process hosting telemetry (pid -1 / restarts 0 / age -1 for local).
  bool remote = false;
  std::int64_t pid = -1;
  std::int64_t restarts = 0;
  std::int64_t heartbeat_age_ms = -1;
};

// A variant to host: the router takes ownership of the model. Cross-process
// routing loads nothing in the parent — `model` stays default-constructed
// and `path` names the checkpoint the worker process loads.
struct VariantSpec {
  std::string name;
  nn::TransformerLM model;
  double quality = 0.5;  // fallback score when the table has no entry
  std::string path;           // checkpoint for cross-process hosting
  std::int64_t cost_hint = 0; // routing cost until the worker's HELLO
};

class VariantRouter {
 public:
  VariantRouter(std::vector<VariantSpec> variants, RouterConfig config,
                QualityTable quality = {});
  ~VariantRouter();

  VariantRouter(const VariantRouter&) = delete;
  VariantRouter& operator=(const VariantRouter&) = delete;

  // Never throws for overload or dead replicas: the ticket always resolves
  // with a terminal typed RouteResponse.
  RouteTicketPtr submit(RouteRequest request);

  // Spawns the dispatcher when the config deferred it (test seam).
  void start();
  // Stops accepting, resolves everything in flight or queued, joins the
  // dispatcher, then shuts the replica servers down. Idempotent.
  void shutdown();

  RouterStats stats() const;
  std::vector<ReplicaSnapshot> replicas() const;
  std::size_t replica_count() const { return replicas_.size(); }
  // nullptr when no replica has that name.
  Replica* replica(const std::string& name);

 private:
  struct Candidate;

  void dispatcher_main();
  void dispatch_loop();
  // Advances one job; returns true when the job reached a terminal state.
  bool process(const std::shared_ptr<detail::RouteJob>& job,
               std::chrono::steady_clock::time_point now);
  bool dispatch(detail::RouteJob& job,
                std::chrono::steady_clock::time_point now);
  void handle_outcome(detail::RouteJob& job, const Response& response,
                      std::chrono::steady_clock::time_point now);
  void fail_over(detail::RouteJob& job, const Response& response,
                 std::chrono::steady_clock::time_point now);
  std::vector<Candidate> ordered_candidates(const detail::RouteJob& job) const;
  void resolve(detail::RouteJob& job, Response response,
               const std::string& variant);
  void bump_stats(RequestState state);

  RouterConfig config_;
  QualityTable quality_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<detail::RouteJob>> incoming_;
  bool stopping_ = false;
  bool dispatcher_started_ = false;
  std::thread dispatcher_;

  mutable std::mutex stats_mutex_;
  RouterStats stats_;
};

}  // namespace sdd::serve
