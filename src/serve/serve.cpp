#include "serve/serve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/signals.hpp"

namespace sdd::serve {

using Clock = std::chrono::steady_clock;

namespace detail {

// Shared between the client-facing Ticket and the scheduler. Resolved
// exactly once; `terminal` + cv is the only client synchronization point.
struct Job {
  Request request;
  CancelToken cancel;
  Clock::time_point submitted_at{};
  Clock::time_point started_at{};
  bool started = false;
  bool degraded = false;

  std::mutex mutex;
  std::condition_variable cv;
  bool terminal = false;
  Response response;
};

// ---- RemoteJob (cross-process seam) ----------------------------------------

std::shared_ptr<Job> RemoteJob::make(Request request) {
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->submitted_at = std::chrono::steady_clock::now();
  return job;
}

TicketPtr RemoteJob::ticket(const std::shared_ptr<Job>& job) {
  return TicketPtr{new Ticket{job}};
}

const Request& RemoteJob::request(Job& job) { return job.request; }

bool RemoteJob::cancel_requested(Job& job) { return job.cancel.cancelled(); }

bool RemoteJob::terminal(Job& job) {
  const std::lock_guard<std::mutex> lock{job.mutex};
  return job.terminal;
}

void RemoteJob::resolve(Job& job, Response response) {
  {
    const std::lock_guard<std::mutex> lock{job.mutex};
    if (job.terminal) return;
    job.response = std::move(response);
    job.terminal = true;
  }
  job.cv.notify_all();
}

}  // namespace detail

namespace {

std::int64_t ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(to - from).count();
}

bool has_nonfinite(const std::vector<float>& logits) {
  for (const float v : logits) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

}  // namespace

// ---- config ----------------------------------------------------------------

supervisor::SupervisorConfig ServerConfig::default_worker_config() {
  supervisor::SupervisorConfig config;
  // A serving worker recycles instead of dying: effectively unbounded
  // retries with a short, capped backoff.
  config.retry_max = 1'000'000'000;
  config.backoff_ms = 1;
  config.backoff_cap_ms = 50;
  config.deadline_ms = 0;
  config.hang_ms = 0;
  return config;
}

ServerConfig ServerConfig::from_env() {
  ServerConfig config;
  config.queue_capacity = env_int("SDD_SERVE_QUEUE_CAP", config.queue_capacity);
  config.max_batch = env_int("SDD_SERVE_MAX_BATCH", config.max_batch);
  config.kv_budget_bytes = env_int("SDD_SERVE_KV_BUDGET_MB", 0) * (1 << 20);
  config.default_deadline_ms =
      env_int("SDD_SERVE_DEADLINE_MS", config.default_deadline_ms);
  config.degrade_queue_depth =
      env_int("SDD_SERVE_DEGRADE_DEPTH", config.degrade_queue_depth);
  config.degrade_max_new_tokens =
      env_int("SDD_SERVE_DEGRADE_MAX_TOKENS", config.degrade_max_new_tokens);
  config.nan_guard = env_flag("SDD_SERVE_NAN_GUARD", config.nan_guard);
  config.worker.hang_ms =
      env_int("SDD_SERVE_HANG_MS", env_int("SDD_STAGE_HANG_SEC", 0) * 1000);
  config.spec_k = env_int("SDD_SPEC_K", config.spec_k);
  return config;
}

// ---- names -----------------------------------------------------------------

std::string_view request_state_name(RequestState state) {
  switch (state) {
    case RequestState::kQueued:
      return "queued";
    case RequestState::kRunning:
      return "running";
    case RequestState::kCompleted:
      return "completed";
    case RequestState::kTimeout:
      return "timeout";
    case RequestState::kCancelled:
      return "cancelled";
    case RequestState::kShed:
      return "shed";
    case RequestState::kRejected:
      return "rejected";
    case RequestState::kFailed:
      return "failed";
  }
  return "unknown";
}

bool request_state_terminal(RequestState state) {
  return state != RequestState::kQueued && state != RequestState::kRunning;
}

// ---- ticket ----------------------------------------------------------------

const Response& Ticket::wait() {
  std::unique_lock<std::mutex> lock{job_->mutex};
  job_->cv.wait(lock, [this] { return job_->terminal; });
  return job_->response;
}

bool Ticket::wait_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock{job_->mutex};
  return job_->cv.wait_for(lock, timeout, [this] { return job_->terminal; });
}

void Ticket::cancel() { job_->cancel.cancel(); }

RequestState Ticket::state() const {
  const std::lock_guard<std::mutex> lock{job_->mutex};
  return job_->response.state;
}

// ---- server ----------------------------------------------------------------

// One in-flight request: its own KV cache, RNG, and budget. The decode
// sequence for a slot is exactly the one nn::generate would run, so a
// request's output is bit-identical to an unloaded single-request decode
// regardless of what else shares the batch.
struct InferenceServer::ActiveSlot {
  std::shared_ptr<detail::Job> job;
  nn::TransformerLM::DecodeState state;
  // Non-null for a speculative slot (greedy request on a draft-equipped
  // server): the session owns both KV caches and `state` stays empty. The
  // slot still mirrors the session's target logits into `logits` every
  // round so the fault-injection and NaN-guard path below is shared.
  std::unique_ptr<nn::SpeculativeSession> spec;
  Rng rng{0};
  std::vector<float> logits;
  std::vector<std::int32_t> generated;
  std::size_t prompt_fed = 0;
  std::int64_t budget = 0;  // max generated tokens (degradation-clamped)
};

InferenceServer::InferenceServer(const nn::TransformerLM& model,
                                 ServerConfig config,
                                 const nn::TransformerLM* draft)
    : model_{model}, draft_{draft}, config_{std::move(config)} {
  const nn::ModelConfig& mc = model_.config();
  kv_slot_bytes_ = model_.n_layers() * 2 * mc.max_seq_len * mc.d_model *
                   static_cast<std::int64_t>(sizeof(float));
  if (speculative()) {
    // A speculative slot pins both caches; budget accounting is conservative
    // for the occasional sampled (non-speculative) request sharing the batch.
    const nn::ModelConfig& dc = draft_->config();
    kv_slot_bytes_ += draft_->n_layers() * 2 * dc.max_seq_len * dc.d_model *
                      static_cast<std::int64_t>(sizeof(float));
  }
  kv_slot_limit_ = config_.kv_budget_bytes > 0
                       ? std::max<std::int64_t>(
                             1, config_.kv_budget_bytes / kv_slot_bytes_)
                       : std::numeric_limits<std::int64_t>::max();
  config_.queue_capacity = std::max<std::int64_t>(1, config_.queue_capacity);
  config_.max_batch = std::max<std::int64_t>(1, config_.max_batch);
  soft_limit_.store(config_.max_batch, std::memory_order_relaxed);
  if (config_.start_worker) start();
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::start() {
  // A client that disappears mid-stream must surface as a write error on
  // its ticket, not kill the whole server with SIGPIPE.
  signals::ignore_sigpipe();
  const std::lock_guard<std::mutex> lock{queue_mutex_};
  if (worker_started_ || stopping_) return;
  worker_started_ = true;
  worker_ = std::thread{&InferenceServer::worker_main, this};
}

bool InferenceServer::speculative() const {
  return draft_ != nullptr && config_.spec_k > 0;
}

std::int64_t InferenceServer::kv_slot_bytes() const { return kv_slot_bytes_; }

std::int64_t InferenceServer::current_batch_limit() const {
  const std::int64_t soft = soft_limit_.load(std::memory_order_acquire);
  return std::max<std::int64_t>(
      1, std::min({config_.max_batch, kv_slot_limit_, soft}));
}

std::int64_t InferenceServer::queue_depth() const {
  const std::lock_guard<std::mutex> lock{queue_mutex_};
  return static_cast<std::int64_t>(queue_.size());
}

ServerStats InferenceServer::stats() const {
  // Snapshot under the scheduler's queue lock too: submit() counts and
  // dispositions a request inside one queue_mutex_ critical section, so a
  // reader holding both locks can never observe a torn state where
  // `submitted` includes a request whose immediate rejection/shed has not
  // landed yet. scoped_lock orders the pair deadlock-free.
  const std::scoped_lock lock{queue_mutex_, stats_mutex_};
  return stats_;
}

TicketPtr InferenceServer::submit(Request request) {
  auto job = std::make_shared<detail::Job>();
  job->request = std::move(request);
  job->submitted_at = Clock::now();
  const std::int64_t deadline_ms = job->request.deadline_ms > 0
                                       ? job->request.deadline_ms
                                       : config_.default_deadline_ms;
  job->cancel = deadline_ms > 0 ? CancelToken::with_deadline(
                                      std::chrono::milliseconds{deadline_ms})
                                : CancelToken::make();
  TicketPtr ticket{new Ticket{job}};

  // One queue_mutex_ critical section covers the submitted counter AND the
  // admission disposition (queue / shed / reject), so a stats() snapshot —
  // which takes the same lock — can never read `submitted` torn from the
  // matching terminal counter of an immediately-resolved request. The lock
  // nesting here is queue_mutex_ -> job.mutex -> stats_mutex_ (via
  // resolve), the only multi-lock order in this file.
  bool queued = false;
  {
    const std::lock_guard<std::mutex> lock{queue_mutex_};
    {
      const std::lock_guard<std::mutex> stats_lock{stats_mutex_};
      ++stats_.submitted;
    }
    const auto prompt_len =
        static_cast<std::int64_t>(job->request.prompt.size());
    if (prompt_len == 0) {
      resolve(*job, RequestState::kRejected, ErrorKind::kFatal, "empty prompt");
    } else if (prompt_len >= model_.config().max_seq_len) {
      resolve(*job, RequestState::kRejected, ErrorKind::kFatal,
              "prompt exceeds context window");
    } else if (stopping_) {
      resolve(*job, RequestState::kRejected, ErrorKind::kResourceExhausted,
              "server shutting down");
    } else if (static_cast<std::int64_t>(queue_.size()) >=
               config_.queue_capacity) {
      // Overload: shed the lowest-priority queued request when the newcomer
      // strictly outranks it, otherwise reject the newcomer. Either way the
      // loser gets a typed, retryable resource_exhausted error and the
      // queue never grows past capacity. min_element returns the FIRST
      // minimal element, so among equal lowest-priority requests the oldest
      // one is shed.
      auto victim = std::min_element(
          queue_.begin(), queue_.end(), [](const auto& a, const auto& b) {
            return a->request.priority < b->request.priority;
          });
      if (victim != queue_.end() &&
          (*victim)->request.priority < job->request.priority) {
        std::shared_ptr<detail::Job> shed_victim = *victim;
        queue_.erase(victim);
        queue_.push_back(job);
        queued = true;
        resolve(*shed_victim, RequestState::kShed,
                ErrorKind::kResourceExhausted,
                "shed in favor of a higher-priority request; retry later");
      } else {
        resolve(*job, RequestState::kRejected, ErrorKind::kResourceExhausted,
                "queue full (capacity " +
                    std::to_string(config_.queue_capacity) + "); retry later");
      }
    } else {
      queue_.push_back(job);
      queued = true;
    }
  }
  if (queued) queue_cv_.notify_one();
  return ticket;
}

void InferenceServer::shutdown() {
  {
    const std::lock_guard<std::mutex> lock{queue_mutex_};
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // start() assigns worker_ under queue_mutex_; claim it the same way so a
  // shutdown() racing start() (or another shutdown()) never reads a
  // half-assigned std::thread or double-joins it.
  std::thread worker;
  {
    const std::lock_guard<std::mutex> lock{queue_mutex_};
    worker = std::move(worker_);
  }
  if (worker.joinable()) worker.join();
  // Without a worker (start() never ran, or it died) nothing drains the
  // queue; resolve leftovers so no client blocks forever.
  std::deque<std::shared_ptr<detail::Job>> leftover;
  {
    const std::lock_guard<std::mutex> lock{queue_mutex_};
    leftover.swap(queue_);
  }
  for (const auto& job : leftover) {
    resolve(*job, RequestState::kCancelled, std::nullopt,
            "server stopped before the request ran");
  }
}

void InferenceServer::resolve(detail::Job& job, RequestState state,
                              std::optional<ErrorKind> error,
                              std::string message,
                              std::vector<std::int32_t> tokens) {
  {
    const std::lock_guard<std::mutex> lock{job.mutex};
    if (job.terminal) return;
    const Clock::time_point now = Clock::now();
    job.response.state = state;
    job.response.tokens = std::move(tokens);
    job.response.error = error;
    job.response.retryable = error.has_value() && error_kind_retryable(*error);
    job.response.degraded = job.degraded;
    job.response.message = std::move(message);
    job.response.queue_ms = ms_between(
        job.submitted_at, job.started ? job.started_at : now);
    job.response.decode_ms = job.started ? ms_between(job.started_at, now) : 0;
    // Stats must be current before the client unblocks: a caller returning
    // from Ticket::wait() may read stats() immediately. Lock order is
    // job.mutex -> stats_mutex_, never the reverse.
    {
      const std::lock_guard<std::mutex> stats_lock{stats_mutex_};
      switch (state) {
        case RequestState::kCompleted:
          ++stats_.completed;
          break;
        case RequestState::kTimeout:
          ++stats_.timed_out;
          break;
        case RequestState::kCancelled:
          ++stats_.cancelled;
          break;
        case RequestState::kShed:
          ++stats_.shed;
          break;
        case RequestState::kRejected:
          ++stats_.rejected;
          break;
        case RequestState::kFailed:
          ++stats_.failed;
          break;
        case RequestState::kQueued:
        case RequestState::kRunning:
          break;
      }
    }
    job.terminal = true;
  }
  job.cv.notify_all();
}

void InferenceServer::worker_main() {
  try {
    supervisor::run_stage("serve.worker", config_.worker,
                          [this] { schedule_loop(); });
  } catch (const Error& e) {
    log_error("serve: worker stage unrecoverable (", e.what(),
              "); failing in-flight requests");
    drain_all(e.kind(), e.what());
  } catch (const std::exception& e) {
    log_error("serve: worker died on foreign exception (", e.what(),
              "); failing in-flight requests");
    drain_all(ErrorKind::kFatal, e.what());
  }
}

// Last-resort teardown when the worker cannot continue: every in-flight and
// queued request resolves with a typed error so no client blocks forever.
void InferenceServer::drain_all(ErrorKind kind, const std::string& message) {
  for (auto& slot : active_) {
    resolve(*slot.job, RequestState::kFailed, kind, message,
            std::move(slot.generated));
  }
  active_.clear();
  std::deque<std::shared_ptr<detail::Job>> pending;
  {
    // The server is dead from here on: later submits get a typed rejection
    // instead of queueing behind a worker that no longer exists.
    const std::lock_guard<std::mutex> lock{queue_mutex_};
    stopping_ = true;
    pending.swap(queue_);
  }
  for (const auto& job : pending) {
    resolve(*job, RequestState::kFailed, kind, message);
  }
}

void InferenceServer::schedule_loop() {
  while (true) {
    // Graceful shutdown: stop admitting, finish the in-flight batch (those
    // clients get real results), then fail whatever is still queued with
    // the distinct interrupted kind. Checked before heartbeat(), which
    // would otherwise throw out of the loop and fail the batch too.
    if (signals::interrupt_requested()) {
      log_warn("serve: shutdown signal received; draining in-flight batch");
      {
        const std::lock_guard<std::mutex> lock{queue_mutex_};
        stopping_ = true;
      }
      while (step_slots()) {
      }
      drain_all(ErrorKind::kInterrupted, "shutdown requested by signal " +
                                             std::to_string(
                                                 signals::interrupt_signal()));
      return;
    }
    supervisor::heartbeat();
    admit_jobs();
    if (!step_slots()) {
      std::unique_lock<std::mutex> lock{queue_mutex_};
      if (queue_.empty() && active_.empty()) {
        if (stopping_) return;
        // Idle: park briefly, re-heartbeating each wake so an armed hang
        // watchdog never mistakes an empty server for a hung one.
        queue_cv_.wait_for(lock, std::chrono::milliseconds{20});
      }
    }
  }
}

void InferenceServer::admit_jobs() {
  while (static_cast<std::int64_t>(active_.size()) < current_batch_limit()) {
    std::shared_ptr<detail::Job> job;
    std::int64_t depth_behind = 0;
    {
      const std::lock_guard<std::mutex> lock{queue_mutex_};
      if (queue_.empty()) return;
      job = queue_.front();
      queue_.pop_front();
      depth_behind = static_cast<std::int64_t>(queue_.size());
    }
    if (job->cancel.cancelled()) {
      const bool explicit_cancel =
          std::string_view{job->cancel.reason()} == "cancelled";
      resolve(*job,
              explicit_cancel ? RequestState::kCancelled : RequestState::kTimeout,
              explicit_cancel ? std::nullopt
                              : std::optional<ErrorKind>{ErrorKind::kTimeout},
              explicit_cancel ? "cancelled while queued"
                              : "deadline expired while queued");
      continue;
    }

    ActiveSlot slot;
    slot.job = job;
    try {
      // Guarded allocation (util/fault alloc_fail; real allocators can throw
      // here too): failure shrinks the admissible batch instead of crashing.
      if (speculative() && job->request.temperature == 0.0F) {
        // Greedy request on a draft-equipped server: decode speculatively.
        // The session allocates both KV caches (through the same guarded
        // path) and its outputs are bit-identical to the plain decode below.
        slot.spec = std::make_unique<nn::SpeculativeSession>(
            model_, *draft_, config_.spec_k, config_.nan_guard);
      } else {
        slot.state = model_.make_decode_state();
      }
    } catch (const Error& e) {
      if (e.kind() == ErrorKind::kResourceExhausted) {
        const auto floor_limit =
            std::max<std::int64_t>(1, static_cast<std::int64_t>(active_.size()));
        soft_limit_.store(floor_limit, std::memory_order_release);
        log_warn("serve: decode-slot allocation failed (", e.what(),
                 "); batch limit lowered to ", floor_limit);
        if (!active_.empty()) {
          // Capacity frees as running slots retire; put the request back at
          // the head and try again then.
          const std::lock_guard<std::mutex> lock{queue_mutex_};
          queue_.push_front(job);
          return;
        }
        resolve(*job, RequestState::kRejected, e.kind(), e.what());
        continue;
      }
      resolve(*job, RequestState::kFailed, e.kind(), e.what());
      continue;
    } catch (const std::exception& e) {
      resolve(*job, RequestState::kFailed, ErrorKind::kFatal, e.what());
      continue;
    }

    const nn::ModelConfig& mc = model_.config();
    const auto prompt_len =
        static_cast<std::int64_t>(job->request.prompt.size());
    std::int64_t max_new = job->request.max_new_tokens;
    const std::int64_t watermark = config_.degrade_queue_depth > 0
                                       ? config_.degrade_queue_depth
                                       : (config_.queue_capacity * 3) / 4;
    if (watermark > 0 && depth_behind >= watermark &&
        config_.degrade_max_new_tokens > 0 &&
        max_new > config_.degrade_max_new_tokens) {
      max_new = config_.degrade_max_new_tokens;
      job->degraded = true;
      const std::lock_guard<std::mutex> lock{stats_mutex_};
      ++stats_.degraded;
    }
    slot.budget = std::min(max_new, mc.max_seq_len - prompt_len);
    slot.rng = Rng{job->request.seed};
    {
      const std::lock_guard<std::mutex> lock{job->mutex};
      job->started = true;
      job->started_at = Clock::now();
      job->response.state = RequestState::kRunning;
    }
    active_.push_back(std::move(slot));
    {
      const std::lock_guard<std::mutex> lock{stats_mutex_};
      stats_.peak_active = std::max(
          stats_.peak_active, static_cast<std::int64_t>(active_.size()));
    }
  }
}

void InferenceServer::retire_slot(std::size_t index, RequestState state,
                                  std::optional<ErrorKind> error,
                                  std::string message) {
  ActiveSlot slot = std::move(active_[index]);
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(index));
  if (slot.spec) {
    // Fold the session's acceptance telemetry into the server aggregate and
    // the per-task breakdown, whatever the terminal state — partial rounds
    // from a cancelled or failed request still describe draft quality.
    const std::lock_guard<std::mutex> lock{stats_mutex_};
    ++stats_.spec_requests;
    stats_.spec.add(slot.spec->counters());
    if (!slot.job->request.task.empty()) {
      stats_.spec_by_task[slot.job->request.task].add(slot.spec->counters());
    }
  }
  if (state == RequestState::kCompleted) {
    // Successful retirements walk the allocation-failure soft limit back up
    // toward the configured batch size.
    const std::int64_t soft = soft_limit_.load(std::memory_order_acquire);
    if (soft < config_.max_batch) {
      soft_limit_.store(soft + 1, std::memory_order_release);
    }
  }
  resolve(*slot.job, state, error, std::move(message),
          std::move(slot.generated));
}

bool InferenceServer::step_slots() {
  if (active_.empty()) return false;
  for (std::size_t i = 0; i < active_.size();) {
    ActiveSlot& slot = active_[i];
    detail::Job& job = *slot.job;

    // Token-boundary cancellation: deadline expiry or a client abandon
    // frees the slot with the partial output.
    if (job.cancel.cancelled()) {
      const bool explicit_cancel =
          std::string_view{job.cancel.reason()} == "cancelled";
      retire_slot(i,
                  explicit_cancel ? RequestState::kCancelled
                                  : RequestState::kTimeout,
                  explicit_cancel ? std::nullopt
                                  : std::optional<ErrorKind>{ErrorKind::kTimeout},
                  explicit_cancel ? "cancelled mid-generation"
                                  : "deadline expired mid-generation");
      continue;
    }

    try {
      supervisor::heartbeat();
      fault::on_decode_token();
      if (slot.prompt_fed < job.request.prompt.size()) {
        // Prefill, one prompt token per round so a long prompt cannot
        // starve the rest of the batch.
        if (slot.spec) {
          slot.spec->prefill(job.request.prompt[slot.prompt_fed]);
          slot.logits = slot.spec->logits();
        } else {
          slot.logits = model_.decode_step(
              slot.state, job.request.prompt[slot.prompt_fed]);
        }
        ++slot.prompt_fed;
      } else if (static_cast<std::int64_t>(slot.generated.size()) >=
                 slot.budget) {
        retire_slot(i, RequestState::kCompleted, std::nullopt, "");
        continue;
      } else if (slot.spec) {
        // One speculative round per scheduler round: up to spec_k accepted
        // draft tokens plus the target's own token. Emitted tokens are the
        // target's greedy choices in order, so stop-token and budget
        // handling see exactly the sequence the plain path would produce.
        const std::vector<std::int32_t> emitted = slot.spec->round(
            slot.budget - static_cast<std::int64_t>(slot.generated.size()));
        bool stopped = false;
        for (const std::int32_t token : emitted) {
          if (token == job.request.stop_token) {
            stopped = true;
            break;
          }
          slot.generated.push_back(token);
        }
        if (stopped ||
            static_cast<std::int64_t>(slot.generated.size()) >= slot.budget) {
          retire_slot(i, RequestState::kCompleted, std::nullopt, "");
          continue;
        }
        slot.logits = slot.spec->logits();
      } else {
        // This mirrors nn::generate token for token (same RNG draws, same
        // decode_step sequence), so outputs are bit-identical to an
        // unloaded single-request decode.
        const std::int32_t next = nn::sample_token(
            slot.logits, job.request.temperature, slot.rng);
        if (next == job.request.stop_token) {
          retire_slot(i, RequestState::kCompleted, std::nullopt, "");
          continue;
        }
        slot.generated.push_back(next);
        if (static_cast<std::int64_t>(slot.generated.size()) >= slot.budget) {
          retire_slot(i, RequestState::kCompleted, std::nullopt, "");
          continue;
        }
        slot.logits = model_.decode_step(slot.state, next);
      }
      if (fault::should_poison_logits() && !slot.logits.empty()) {
        slot.logits[0] = std::numeric_limits<float>::quiet_NaN();
      }
      if (config_.nan_guard && has_nonfinite(slot.logits)) {
        retire_slot(i, RequestState::kFailed, ErrorKind::kNumericDivergence,
                    "non-finite logits during decode");
        continue;
      }
    } catch (const Error& e) {
      if (e.kind() == ErrorKind::kTimeout &&
          supervisor::cancellation_requested()) {
        // The hang watchdog cancelled the worker stage while this slot was
        // stepping: fail the hung request, then unwind so the supervisor
        // recycles the stage (fresh cancellation context); the surviving
        // slots are member state and continue on the next attempt.
        retire_slot(i, RequestState::kFailed, ErrorKind::kTimeout,
                    std::string{"decode hung; worker recycled: "} + e.what());
        {
          const std::lock_guard<std::mutex> lock{stats_mutex_};
          ++stats_.worker_recycles;
        }
        throw;
      }
      retire_slot(i, RequestState::kFailed, e.kind(), e.what());
      continue;
    } catch (const std::exception& e) {
      retire_slot(i, RequestState::kFailed, ErrorKind::kFatal, e.what());
      continue;
    }
    ++i;
  }
  return true;
}

}  // namespace sdd::serve
