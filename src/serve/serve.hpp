// Fault-tolerant batched inference serving for a (pruned) TransformerLM.
//
// InferenceServer wraps a const model behind a bounded request queue and a
// single scheduler thread that continuously batches admitted requests: each
// in-flight request owns a decode slot (its own KV cache, RNG, and token
// budget) and the scheduler interleaves one decode_step per slot per round,
// so many requests share the weights while one slow request never blocks the
// rest for more than a token. Per-request determinism is preserved — a
// request's output depends only on its prompt, seed, and options, never on
// what else is in the batch.
//
// Robustness model (see docs/serving.md for the full degradation ladder):
//  * Admission control: the queue has a hard capacity. When it is full a new
//    request is rejected with a typed, retryable resource_exhausted error —
//    unless a strictly lower-priority queued request can be shed in its
//    favor (the shed request resolves with the same typed error).
//  * KV budget: SDD_SERVE_KV_BUDGET_MB caps the memory of concurrent decode
//    slots; the admissible batch size shrinks to fit instead of OOMing, and
//    an injected/real allocation failure (Error{resource_exhausted}) during
//    slot creation shrinks it further at runtime.
//  * Deadlines and cancellation: every request carries a CancelToken;
//    expiry or a client cancel() frees the slot at the next token boundary.
//  * Overload degradation: past a queue-depth watermark, new admissions get
//    their max_new_tokens clamped (response marked `degraded`) so the queue
//    drains faster; outputs stay a prefix of the unloaded-server output.
//  * Worker supervision: the scheduler runs under util/supervisor with the
//    PR-3 heartbeat hang watchdog. A hung decode step is cancelled by the
//    watchdog, the hung request fails with a typed timeout, and the worker
//    stage is recycled with the surviving slots intact.
//  * NaN guard: non-finite logits fail that request with a typed
//    numeric_divergence error instead of emitting garbage tokens.
//
// Every submitted request terminates with a response or a typed error; the
// server itself never throws out of the scheduler and never grows unbounded.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "nn/decode.hpp"
#include "nn/speculative.hpp"
#include "nn/transformer.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/supervisor.hpp"

namespace sdd::serve {

struct ServerConfig {
  std::int64_t queue_capacity = 64;   // hard cap on queued (not yet running)
  std::int64_t max_batch = 8;         // max concurrent decode slots
  std::int64_t kv_budget_bytes = 0;   // cap on summed KV-slot bytes; 0 = off
  std::int64_t default_deadline_ms = 0;  // applied when a request has none
  std::int64_t degrade_queue_depth = 0;  // watermark; 0 = 3/4 of capacity
  std::int64_t degrade_max_new_tokens = 16;  // clamp applied past watermark
  bool nan_guard = true;              // fail requests on non-finite logits
  bool start_worker = true;           // test seam: false = call start() later
  std::int64_t spec_k = 0;            // draft tokens per speculative round;
                                      // 0 = off. Takes effect only when the
                                      // server was built with a draft model,
                                      // and only for greedy (temperature 0)
                                      // requests — outputs stay bit-identical
                                      // to the non-speculative decode.

  // Supervision for the scheduler stage: effectively unbounded retries with
  // a short backoff (a serving worker must recycle, not die), plus the
  // heartbeat hang watchdog. from_env() wires SDD_SERVE_HANG_MS (default:
  // SDD_STAGE_HANG_SEC * 1000) into worker.hang_ms.
  supervisor::SupervisorConfig worker = default_worker_config();

  static supervisor::SupervisorConfig default_worker_config();
  // SDD_SERVE_QUEUE_CAP, SDD_SERVE_MAX_BATCH, SDD_SERVE_KV_BUDGET_MB,
  // SDD_SERVE_DEADLINE_MS, SDD_SERVE_DEGRADE_DEPTH,
  // SDD_SERVE_DEGRADE_MAX_TOKENS, SDD_SERVE_NAN_GUARD, SDD_SERVE_HANG_MS,
  // SDD_SPEC_K.
  static ServerConfig from_env();
};

// Terminal states carry a response; kQueued/kRunning are transient.
enum class RequestState {
  kQueued,
  kRunning,
  kCompleted,  // full generation (possibly degraded-clamped)
  kTimeout,    // deadline expired; response holds the partial tokens
  kCancelled,  // client cancel() or server shutdown before completion
  kShed,       // evicted from the queue in favor of a higher-priority request
  kRejected,   // refused at admission (queue full / allocation failure)
  kFailed,     // decode error: hung worker, NaN logits, ...
};

std::string_view request_state_name(RequestState state);
bool request_state_terminal(RequestState state);

struct Request {
  std::vector<std::int32_t> prompt;
  std::int64_t max_new_tokens = 48;
  float temperature = 0.0F;  // 0 => greedy argmax
  std::int32_t stop_token = -1;
  std::uint64_t seed = 1234;
  std::int32_t priority = 0;     // higher survives overload longer
  std::int64_t deadline_ms = 0;  // 0 = server default (which may be none)
  std::string task;              // telemetry label: speculative acceptance is
                                 // aggregated per task ("" = untracked)
};

struct Response {
  RequestState state = RequestState::kQueued;
  std::vector<std::int32_t> tokens;        // complete, or partial on timeout
  std::optional<ErrorKind> error;          // set for non-completed states
                                           // (client cancellation carries none)
  bool retryable = false;                  // error_kind_retryable(*error)
  bool degraded = false;                   // token budget clamped by overload
  std::string message;
  std::int64_t queue_ms = 0;
  std::int64_t decode_ms = 0;
};

namespace detail {
struct Job;
class RemoteJob;
}

// Client-side handle to a submitted request. Resolved exactly once.
class Ticket {
 public:
  // Blocks until the request reaches a terminal state.
  const Response& wait();
  // Returns false if the request is still pending after `timeout`.
  bool wait_for(std::chrono::milliseconds timeout);
  // Cooperative client abandon: the slot is freed at the next token
  // boundary and the ticket resolves with kCancelled.
  void cancel();
  RequestState state() const;

 private:
  friend class InferenceServer;
  friend class detail::RemoteJob;
  explicit Ticket(std::shared_ptr<detail::Job> job) : job_{std::move(job)} {}
  std::shared_ptr<detail::Job> job_;
};

using TicketPtr = std::shared_ptr<Ticket>;

namespace detail {

// Seam for cross-process replicas (serve/remote_replica): mint and resolve
// serving jobs without an InferenceServer behind them. The parent-side
// supervisor hands out ordinary Tickets whose requests are actually decoded
// in a worker process; the wire Response is copied in whole (queue_ms /
// decode_ms are the child's own measurements). A remote job carries a plain
// CancelToken with no parent-side deadline — the worker enforces
// Request::deadline_ms itself, so a parent timer could only mislabel a
// timeout as a cancellation.
class RemoteJob {
 public:
  static std::shared_ptr<Job> make(Request request);  // stamps submitted_at
  static TicketPtr ticket(const std::shared_ptr<Job>& job);
  static const Request& request(Job& job);
  static bool cancel_requested(Job& job);
  static bool terminal(Job& job);
  // Resolves the ticket exactly once (first caller wins; later calls are
  // ignored so a late wire response cannot overwrite a failover verdict).
  static void resolve(Job& job, Response response);
};

}  // namespace detail

struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t timed_out = 0;
  std::int64_t cancelled = 0;
  std::int64_t shed = 0;
  std::int64_t rejected = 0;
  std::int64_t failed = 0;
  std::int64_t degraded = 0;         // admissions with a clamped budget
  std::int64_t worker_recycles = 0;  // supervisor stage restarts
  std::int64_t peak_active = 0;      // max concurrent decode slots observed

  // Speculative-decode telemetry (zero when the server has no draft or
  // spec_k is 0): aggregate acceptance counters plus a per-task breakdown
  // keyed by Request::task, both folded in when a speculative slot retires.
  std::int64_t spec_requests = 0;    // requests decoded speculatively
  nn::SpecCounters spec;
  std::map<std::string, nn::SpecCounters> spec_by_task;

  std::int64_t resolved() const {
    return completed + timed_out + cancelled + shed + rejected + failed;
  }
};

class InferenceServer {
 public:
  // The model must outlive the server and is shared const across requests.
  // `draft`, when non-null, enables self-speculative decoding for greedy
  // requests (config.spec_k > 0): the draft proposes, the model verifies,
  // and outputs stay bit-identical to the non-speculative decode. The draft
  // must outlive the server too, share the model's vocabulary, and have a
  // context window at least as large.
  InferenceServer(const nn::TransformerLM& model, ServerConfig config,
                  const nn::TransformerLM* draft = nullptr);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Never throws for overload: a rejected/shed request resolves its ticket
  // immediately with a typed resource_exhausted error instead.
  TicketPtr submit(Request request);

  // Spawns the scheduler thread when the config deferred it (test seam).
  void start();
  // Stops accepting new requests, drains everything in flight (every
  // accepted request still resolves), and joins the scheduler. Idempotent;
  // also run by the destructor.
  void shutdown();

  // Coherent snapshot: taken under the same queue lock submit() uses to
  // count and disposition a request, so counters are never torn (e.g.
  // `submitted` including a rejection whose `rejected` tick hasn't landed).
  ServerStats stats() const;

  // True when greedy requests will decode speculatively (draft + spec_k).
  bool speculative() const;

  // Bytes of KV cache one decode slot pins (all layers, full context;
  // includes the draft's cache when speculative decoding is enabled).
  std::int64_t kv_slot_bytes() const;
  // Current admissible batch size: min(max_batch, KV-budget slots, and the
  // runtime soft limit lowered by allocation failures).
  std::int64_t current_batch_limit() const;

 private:
  struct ActiveSlot;

  void worker_main();
  void schedule_loop();
  void admit_jobs();
  bool step_slots();  // returns false when there was nothing to do
  void resolve(detail::Job& job, RequestState state,
               std::optional<ErrorKind> error, std::string message,
               std::vector<std::int32_t> tokens = {});
  void retire_slot(std::size_t index, RequestState state,
                   std::optional<ErrorKind> error, std::string message);
  void drain_all(ErrorKind kind, const std::string& message);
  std::int64_t queue_depth() const;

  const nn::TransformerLM& model_;
  const nn::TransformerLM* draft_ = nullptr;  // non-null = speculative capable
  ServerConfig config_;
  std::int64_t kv_slot_bytes_ = 0;
  std::int64_t kv_slot_limit_ = 0;  // from kv_budget_bytes; INT64_MAX = off

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<detail::Job>> queue_;
  bool stopping_ = false;

  // Owned by the scheduler thread; member (not stack) state so decode slots
  // survive a supervisor stage recycle after a hung step.
  std::vector<ActiveSlot> active_;
  std::atomic<std::int64_t> soft_limit_{0};  // lowered on allocation failure

  mutable std::mutex stats_mutex_;
  ServerStats stats_;

  std::thread worker_;  // assigned/claimed under queue_mutex_
  bool worker_started_ = false;
};

}  // namespace sdd::serve
