#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
#include <immintrin.h>
#endif

#include "tensor/rope_cache.hpp"
#include "util/threadpool.hpp"

namespace sdd::kernels {
namespace {

// ---- dispatch policy ------------------------------------------------------

// Sharding GEMM rows only pays off when both the row count (enough blocks to
// hand out) and the total arithmetic (enough work to amortize the fork/join)
// are large. Skinny matmuls (e.g. d_model=64 single-token decode steps) stay
// inline regardless of row count.
constexpr std::int64_t kParallelRowThreshold = 64;
constexpr std::int64_t kParallelFlopThreshold = std::int64_t{1} << 21;  // 2 MFLOP

// Row-sharded elementwise kernels (softmax, rmsnorm) have no k dimension;
// gate them on total element count instead.
constexpr std::int64_t kParallelElemThreshold = std::int64_t{1} << 16;

thread_local DispatchMode t_dispatch_mode = DispatchMode::kAuto;
thread_local ThreadPool* t_dispatch_pool = nullptr;

bool should_parallelize(std::int64_t rows, std::int64_t flops) {
  switch (t_dispatch_mode) {
    case DispatchMode::kForceSerial:
      return false;
    case DispatchMode::kForceParallel:
      return true;
    case DispatchMode::kAuto:
      break;
  }
  return rows >= kParallelRowThreshold && flops >= kParallelFlopThreshold &&
         ThreadPool::global().worker_count() > 0;
}

bool should_parallelize_rows(std::int64_t rows, std::int64_t elems) {
  switch (t_dispatch_mode) {
    case DispatchMode::kForceSerial:
      return false;
    case DispatchMode::kForceParallel:
      return true;
    case DispatchMode::kAuto:
      break;
  }
  return rows >= kParallelRowThreshold && elems >= kParallelElemThreshold &&
         ThreadPool::global().worker_count() > 0;
}

// Run job(i) for i in [0, jobs), sharded over the pool when `parallel`.
// Jobs own disjoint output rows, so there are no write races and the result
// is independent of how the range is chunked.
template <typename Job>
void run_jobs(std::int64_t jobs, bool parallel, const Job& job) {
  if (parallel) {
    ThreadPool& pool =
        t_dispatch_pool != nullptr ? *t_dispatch_pool : ThreadPool::global();
    pool.parallel_for(0, static_cast<std::size_t>(jobs), job);
  } else {
    for (std::int64_t i = 0; i < jobs; ++i) job(static_cast<std::size_t>(i));
  }
}

// ---- micro-kernel geometry ------------------------------------------------
//
// Output rows are processed in blocks of kMicroRows; within a block, the
// NN/TN micro-kernel walks k once while holding a kMicroRows x kMicroCols
// accumulator tile entirely in vector registers (C is touched once per
// k-tile). k itself is split into kKTile chunks so the streamed B panel
// stays cache-resident for large k.
constexpr std::int64_t kMicroRows = 4;
constexpr std::int64_t kKTile = 512;

#if defined(__AVX512F__)
constexpr std::int64_t kMicroCols = 32;  // 2 zmm per row
#else
constexpr std::int64_t kMicroCols = 16;  // 2 ymm per row (also the portable tile)
#endif

// A-element accessor shared by the NN (A row-major [m,k]) and TN (A row-major
// [k,m], read transposed) micro-kernels.
template <bool TransA>
inline float a_at(const float* a, std::int64_t lda, std::int64_t i, std::int64_t p) {
  return TransA ? a[p * lda + i] : a[i * lda + p];
}

// Generic edge kernel: C[rows, cols] (+)= A-chunk @ B-chunk for any tile
// shape (row/column tails). Auto-vectorizes over j.
template <bool TransA>
void patch_nn(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
              float* c, std::int64_t ldc, std::int64_t rows, std::int64_t cols,
              std::int64_t k, bool accumulate) {
  for (std::int64_t i = 0; i < rows; ++i) {
    float* c_row = c + i * ldc;
    if (!accumulate) {
      std::memset(c_row, 0, static_cast<std::size_t>(cols) * sizeof(float));
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a_at<TransA>(a, lda, i, p);
      const float* b_row = b + p * ldb;
      for (std::int64_t j = 0; j < cols; ++j) c_row[j] += av * b_row[j];
    }
  }
}

#if defined(__AVX512F__)

// 4 x 32 FMA tile: 8 zmm accumulators, 2 B loads + 4 broadcasts per k step.
template <bool TransA>
void micro_nn(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
              float* c, std::int64_t ldc, std::int64_t k, bool accumulate) {
  __m512 acc[kMicroRows][2];
  if (accumulate) {
    for (int i = 0; i < kMicroRows; ++i) {
      acc[i][0] = _mm512_loadu_ps(c + i * ldc);
      acc[i][1] = _mm512_loadu_ps(c + i * ldc + 16);
    }
  } else {
    for (int i = 0; i < kMicroRows; ++i) {
      acc[i][0] = _mm512_setzero_ps();
      acc[i][1] = _mm512_setzero_ps();
    }
  }
  for (std::int64_t p = 0; p < k; ++p) {
    const __m512 b0 = _mm512_loadu_ps(b + p * ldb);
    const __m512 b1 = _mm512_loadu_ps(b + p * ldb + 16);
    for (int i = 0; i < kMicroRows; ++i) {
      const __m512 av = _mm512_set1_ps(a_at<TransA>(a, lda, i, p));
      acc[i][0] = _mm512_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm512_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  for (int i = 0; i < kMicroRows; ++i) {
    _mm512_storeu_ps(c + i * ldc, acc[i][0]);
    _mm512_storeu_ps(c + i * ldc + 16, acc[i][1]);
  }
}

// Fold the row's four zmm dot accumulators into one xmm holding the four
// sums, via pairwise 256/128-bit folds and a transposing hadd tree (much
// cheaper than four independent _mm512_reduce_add_ps).
inline __m128 fold4_dots(__m512 d0, __m512 d1, __m512 d2, __m512 d3) {
  const auto fold = [](__m512 v) {
    const __m256 half = _mm256_add_ps(_mm512_castps512_ps256(v),
                                      _mm512_extractf32x8_ps(v, 1));
    return _mm_add_ps(_mm256_castps256_ps128(half), _mm256_extractf128_ps(half, 1));
  };
  const __m128 s01 = _mm_hadd_ps(fold(d0), fold(d1));
  const __m128 s23 = _mm_hadd_ps(fold(d2), fold(d3));
  return _mm_hadd_ps(s01, s23);
}

// 4 x 4 dot tile vectorized over k: 16 zmm accumulators, one transposing
// reduction per output row. Scalar tail keeps the k reduction order fixed.
void micro_nt(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
              float* c, std::int64_t ldc, std::int64_t k, bool accumulate) {
  __m512 acc[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) acc[i][j] = _mm512_setzero_ps();
  }
  std::int64_t p = 0;
  for (; p + 16 <= k; p += 16) {
    __m512 av[4];
    for (int i = 0; i < 4; ++i) av[i] = _mm512_loadu_ps(a + i * lda + p);
    for (int j = 0; j < 4; ++j) {
      const __m512 bv = _mm512_loadu_ps(b + j * ldb + p);
      for (int i = 0; i < 4; ++i) acc[i][j] = _mm512_fmadd_ps(av[i], bv, acc[i][j]);
    }
  }
  for (int i = 0; i < 4; ++i) {
    __m128 sums = fold4_dots(acc[i][0], acc[i][1], acc[i][2], acc[i][3]);
    if (p < k) {
      alignas(16) float tail[4] = {};
      for (int j = 0; j < 4; ++j) {
        for (std::int64_t pp = p; pp < k; ++pp) {
          tail[j] += a[i * lda + pp] * b[j * ldb + pp];
        }
      }
      sums = _mm_add_ps(sums, _mm_load_ps(tail));
    }
    float* out = c + i * ldc;
    if (accumulate) sums = _mm_add_ps(sums, _mm_loadu_ps(out));
    _mm_storeu_ps(out, sums);
  }
}
constexpr bool kHasNtMicro = true;

#elif defined(__AVX2__) && defined(__FMA__)

// 4 x 16 FMA tile: 8 ymm accumulators, 2 B loads + 4 broadcasts per k step.
template <bool TransA>
void micro_nn(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
              float* c, std::int64_t ldc, std::int64_t k, bool accumulate) {
  __m256 acc[kMicroRows][2];
  if (accumulate) {
    for (int i = 0; i < kMicroRows; ++i) {
      acc[i][0] = _mm256_loadu_ps(c + i * ldc);
      acc[i][1] = _mm256_loadu_ps(c + i * ldc + 8);
    }
  } else {
    for (int i = 0; i < kMicroRows; ++i) {
      acc[i][0] = _mm256_setzero_ps();
      acc[i][1] = _mm256_setzero_ps();
    }
  }
  for (std::int64_t p = 0; p < k; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b + p * ldb);
    const __m256 b1 = _mm256_loadu_ps(b + p * ldb + 8);
    for (int i = 0; i < kMicroRows; ++i) {
      const __m256 av = _mm256_set1_ps(a_at<TransA>(a, lda, i, p));
      acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  for (int i = 0; i < kMicroRows; ++i) {
    _mm256_storeu_ps(c + i * ldc, acc[i][0]);
    _mm256_storeu_ps(c + i * ldc + 8, acc[i][1]);
  }
}

inline float hsum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

// 4 x 2 dot tile vectorized over k (8 ymm accumulators + 4 A + 1 B loads
// stays inside the 16-register ymm file).
void micro_nt(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
              float* c, std::int64_t ldc, std::int64_t k, bool accumulate) {
  for (int jb = 0; jb < 4; jb += 2) {
    __m256 acc[4][2];
    for (int i = 0; i < 4; ++i) {
      acc[i][0] = _mm256_setzero_ps();
      acc[i][1] = _mm256_setzero_ps();
    }
    std::int64_t p = 0;
    for (; p + 8 <= k; p += 8) {
      __m256 av[4];
      for (int i = 0; i < 4; ++i) av[i] = _mm256_loadu_ps(a + i * lda + p);
      for (int j = 0; j < 2; ++j) {
        const __m256 bv = _mm256_loadu_ps(b + (jb + j) * ldb + p);
        for (int i = 0; i < 4; ++i) acc[i][j] = _mm256_fmadd_ps(av[i], bv, acc[i][j]);
      }
    }
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 2; ++j) {
        float s = hsum256(acc[i][j]);
        for (std::int64_t pp = p; pp < k; ++pp) {
          s += a[i * lda + pp] * b[(jb + j) * ldb + pp];
        }
        float* out = c + i * ldc + jb + j;
        *out = accumulate ? *out + s : s;
      }
    }
  }
}
constexpr bool kHasNtMicro = true;

#else

// Portable register-tiled micro-kernel; the fixed-size accumulator array is
// scalar-replaced and auto-vectorized by the compiler at -O3.
template <bool TransA>
void micro_nn(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
              float* c, std::int64_t ldc, std::int64_t k, bool accumulate) {
  float acc[kMicroRows][kMicroCols];
  if (accumulate) {
    for (int i = 0; i < kMicroRows; ++i) {
      for (int j = 0; j < kMicroCols; ++j) acc[i][j] = c[i * ldc + j];
    }
  } else {
    for (int i = 0; i < kMicroRows; ++i) {
      for (int j = 0; j < kMicroCols; ++j) acc[i][j] = 0.0F;
    }
  }
  for (std::int64_t p = 0; p < k; ++p) {
    const float* b_row = b + p * ldb;
    float av[kMicroRows];
    for (int i = 0; i < kMicroRows; ++i) av[i] = a_at<TransA>(a, lda, i, p);
    for (int j = 0; j < kMicroCols; ++j) {
      const float bv = b_row[j];
      for (int i = 0; i < kMicroRows; ++i) acc[i][j] += av[i] * bv;
    }
  }
  for (int i = 0; i < kMicroRows; ++i) {
    for (int j = 0; j < kMicroCols; ++j) c[i * ldc + j] = acc[i][j];
  }
}

// No SIMD ISA detected at compile time: gemm_nt keeps the dot-product path.
void micro_nt(const float*, std::int64_t, const float*, std::int64_t, float*,
              std::int64_t, std::int64_t, bool) {}
constexpr bool kHasNtMicro = false;

#endif

// One k-chunk of a <=4-row output block: full-width micro tiles, then the
// generic patch kernel for the column tail (and for short row blocks).
template <bool TransA>
void nn_block_rows(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                   float* c, std::int64_t ldc, std::int64_t rows, std::int64_t n,
                   std::int64_t k, bool accumulate) {
  std::int64_t jb = 0;
  if (rows == kMicroRows) {
    for (; jb + kMicroCols <= n; jb += kMicroCols) {
      micro_nn<TransA>(a, lda, b + jb, ldb, c + jb, ldc, k, accumulate);
    }
  }
  if (jb < n) {
    patch_nn<TransA>(a, lda, b + jb, ldb, c + jb, ldc, rows, n - jb, k, accumulate);
  }
}

// Shared NN/TN driver: shard 4-row output blocks, k-tile inside each job.
template <bool TransA>
void gemm_nn_like(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
    return;
  }
  const std::int64_t lda = TransA ? m : k;
  const std::int64_t blocks = (m + kMicroRows - 1) / kMicroRows;
  const bool parallel = should_parallelize(m, 2 * m * k * n);
  run_jobs(blocks, parallel, [=](std::size_t blk) {
    const std::int64_t i0 = static_cast<std::int64_t>(blk) * kMicroRows;
    const std::int64_t rows = std::min(kMicroRows, m - i0);
    const float* a_block = TransA ? a + i0 : a + i0 * lda;
    float* c_block = c + i0 * n;
    for (std::int64_t p0 = 0; p0 < k; p0 += kKTile) {
      const std::int64_t kc = std::min(kKTile, k - p0);
      const float* a_chunk = TransA ? a_block + p0 * lda : a_block + p0;
      nn_block_rows<TransA>(a_chunk, lda, b + p0 * n, n, c_block, n, rows, n, kc,
                            accumulate || p0 > 0);
    }
  });
}

}  // namespace

ScopedDispatch::ScopedDispatch(DispatchMode mode, ThreadPool* pool)
    : saved_mode_{t_dispatch_mode}, saved_pool_{t_dispatch_pool} {
  t_dispatch_mode = mode;
  t_dispatch_pool = pool;
}

ScopedDispatch::~ScopedDispatch() {
  t_dispatch_mode = saved_mode_;
  t_dispatch_pool = saved_pool_;
}

void axpy(float alpha, const float* x, float* y, std::int64_t n, bool accumulate) {
  if (accumulate) {
    for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  } else {
    for (std::int64_t i = 0; i < n; ++i) y[i] = alpha * x[i];
  }
}

// noinline for the same reason as softmax_row/rmsnorm_row: the gemm_nt dot
// fallback runs this both from the serial loop and from pool jobs, and the
// two call sites must execute one shared fast-math compilation of the
// reduction to stay bitwise-identical across thread counts.
[[gnu::noinline]] float dot(const float* a, const float* b, std::int64_t n) {
  float s0 = 0.0F, s1 = 0.0F, s2 = 0.0F, s3 = 0.0F;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

void gemm_nn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate) {
  gemm_nn_like<false>(a, b, c, m, k, n, accumulate);
}

void gemm_tn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate) {
  gemm_nn_like<true>(a, b, c, m, k, n, accumulate);
}

void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  const bool parallel = should_parallelize(m, 2 * m * k * n);
  if (!kHasNtMicro || m < kMicroRows || n < 4 || k < 8) {
    // Small shapes (single-token decode, LoRA rank-k products) and hosts
    // without a SIMD micro-kernel: one dot product per output element.
    run_jobs(m, parallel, [=](std::size_t row) {
      const auto i = static_cast<std::int64_t>(row);
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float value = dot(a_row, b + j * k, k);
        c_row[j] = accumulate ? c_row[j] + value : value;
      }
    });
    return;
  }
  const std::int64_t blocks = (m + kMicroRows - 1) / kMicroRows;
  run_jobs(blocks, parallel, [=](std::size_t blk) {
    const std::int64_t i0 = static_cast<std::int64_t>(blk) * kMicroRows;
    const std::int64_t rows = std::min(kMicroRows, m - i0);
    if (rows == kMicroRows) {
      std::int64_t jb = 0;
      for (; jb + 4 <= n; jb += 4) {
        for (std::int64_t p0 = 0; p0 < k; p0 += kKTile) {
          const std::int64_t kc = std::min(kKTile, k - p0);
          micro_nt(a + i0 * k + p0, k, b + jb * k + p0, k, c + i0 * n + jb, n, kc,
                   accumulate || p0 > 0);
        }
      }
      for (; jb < n; ++jb) {
        const float* b_row = b + jb * k;
        for (std::int64_t i = i0; i < i0 + kMicroRows; ++i) {
          const float value = dot(a + i * k, b_row, k);
          float* out = c + i * n + jb;
          *out = accumulate ? *out + value : value;
        }
      }
    } else {
      for (std::int64_t i = i0; i < i0 + rows; ++i) {
        const float* a_row = a + i * k;
        float* c_row = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
          const float value = dot(a_row, b + j * k, k);
          c_row[j] = accumulate ? c_row[j] + value : value;
        }
      }
    }
  });
}

void gemm_nt_rowwise(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  // Every element is one shared-`dot` reduction, so any sharding over the
  // output columns is bitwise-identical to serial and to m separate m=1
  // gemm_nt calls. The column-outer loop is the batching win: one B row
  // services all m input rows before the next is streamed in.
  const bool parallel = should_parallelize(n, 2 * m * k * n);
  run_jobs(n, parallel, [=](std::size_t col) {
    const auto j = static_cast<std::int64_t>(col);
    const float* b_row = b + j * k;
    for (std::int64_t i = 0; i < m; ++i) {
      const float value = dot(a + i * k, b_row, k);
      float* out = c + i * n + j;
      *out = accumulate ? *out + value : value;
    }
  });
}

// The per-row bodies are noinline on purpose: under -ffast-math GCC is free
// to pick a different reduction order for an inlined copy (serial loop) than
// for the out-of-line copy invoked through the thread pool's type-erased
// callable, which would make parallel results bitwise-diverge from serial
// ones. A single compiled copy keeps the reduction order identical on both
// paths.
[[gnu::noinline]] void softmax_row(float* row, std::int64_t cols) {
  float max_value = row[0];
  for (std::int64_t c = 1; c < cols; ++c) max_value = std::max(max_value, row[c]);
  float sum = 0.0F;
  for (std::int64_t c = 0; c < cols; ++c) {
    row[c] = std::exp(row[c] - max_value);
    sum += row[c];
  }
  const float inv = 1.0F / sum;
  for (std::int64_t c = 0; c < cols; ++c) row[c] *= inv;
}

[[gnu::noinline]] void rmsnorm_row(const float* x_row, const float* weight,
                                   float* out_row, std::int64_t cols, float eps,
                                   float* inv_rms_slot) {
  float mean_sq = 0.0F;
  for (std::int64_t c = 0; c < cols; ++c) mean_sq += x_row[c] * x_row[c];
  mean_sq /= static_cast<float>(cols);
  const float scale = 1.0F / std::sqrt(mean_sq + eps);
  if (inv_rms_slot != nullptr) *inv_rms_slot = scale;
  for (std::int64_t c = 0; c < cols; ++c) out_row[c] = x_row[c] * scale * weight[c];
}

void softmax_rows(float* x, std::int64_t rows, std::int64_t cols) {
  const bool parallel = should_parallelize_rows(rows, rows * cols);
  run_jobs(rows, parallel, [=](std::size_t r) {
    softmax_row(x + static_cast<std::int64_t>(r) * cols, cols);
  });
}

void rmsnorm_forward(const float* x, const float* weight, float* out,
                     std::int64_t rows, std::int64_t cols, float eps,
                     float* inv_rms) {
  const bool parallel = should_parallelize_rows(rows, rows * cols);
  run_jobs(rows, parallel, [=](std::size_t rr) {
    const auto r = static_cast<std::int64_t>(rr);
    rmsnorm_row(x + r * cols, weight, out + r * cols, cols, eps,
                inv_rms != nullptr ? inv_rms + r : nullptr);
  });
}

float silu(float x) noexcept {
  const float sig = 1.0F / (1.0F + std::exp(-x));
  return x * sig;
}

float silu_derivative(float x) noexcept {
  const float sig = 1.0F / (1.0F + std::exp(-x));
  return sig * (1.0F + x * (1.0F - sig));
}

void rope_apply(float* vec, std::int64_t n_heads, std::int64_t head_dim,
                std::int64_t pos, float base, float sign) {
  const auto table = RopeTable::get(head_dim, base, pos + 1);
  table->apply(vec, n_heads, pos, sign);
}

}  // namespace sdd::kernels
