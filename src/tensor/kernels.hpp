// Raw float kernels shared by the autograd ops and the no-grad inference path.
//
// All GEMM variants are row-major and accumulate into C when `accumulate` is
// true (C += ...), otherwise they overwrite C. Inner loops are written so GCC
// auto-vectorizes them with -O3 -march=native; rows are sharded over the
// global thread pool when it has workers.
#pragma once

#include <cstdint>
#include <span>

namespace sdd::kernels {

// C[m,n] (+)= A[m,k] @ B[k,n]
void gemm_nn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate);

// C[m,n] (+)= A[m,k] @ B[n,k]^T   (dot products of rows)
void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate);

// C[m,n] (+)= A[k,m]^T @ B[k,n]   (sum of outer products)
void gemm_tn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate);

// y[i] (+)= alpha * x[i]
void axpy(float alpha, const float* x, float* y, std::int64_t n, bool accumulate);

float dot(const float* a, const float* b, std::int64_t n);

// In-place numerically stable softmax over each row of x[rows, cols].
void softmax_rows(float* x, std::int64_t rows, std::int64_t cols);

// RMSNorm forward: out[r,:] = x[r,:] / rms(x[r,:]) * weight; returns nothing,
// caller may pass `inv_rms != nullptr` to capture 1/rms per row for backward.
void rmsnorm_forward(const float* x, const float* weight, float* out,
                     std::int64_t rows, std::int64_t cols, float eps,
                     float* inv_rms);

// SiLU(x) = x * sigmoid(x)
float silu(float x) noexcept;
float silu_derivative(float x) noexcept;

// Rotary position embedding applied in-place to a [heads, head_dim] slice for
// a single position `pos`. Pairs (2i, 2i+1) are rotated by pos * base^(-2i/d).
// `sign` = +1 applies the rotation, -1 applies the inverse (for backward).
void rope_apply(float* vec, std::int64_t n_heads, std::int64_t head_dim,
                std::int64_t pos, float base, float sign);

}  // namespace sdd::kernels
