// Raw float kernels shared by the autograd ops and the no-grad inference path.
//
// All GEMM variants are row-major and accumulate into C when `accumulate` is
// true (C += ...), otherwise they overwrite C. The GEMMs run through
// register-blocked micro-kernels (explicit AVX-512/AVX2+FMA paths selected at
// compile time, with an auto-vectorized portable fallback) and shard
// 4-row output blocks over the global thread pool when the matrix is large
// enough to amortize dispatch. Every output row is computed with a fixed
// reduction order that does not depend on the thread count, so parallel and
// serial execution produce bit-identical results. See docs/kernels.md.
#pragma once

#include <cstdint>
#include <span>

namespace sdd {
class ThreadPool;
}

namespace sdd::kernels {

// C[m,n] (+)= A[m,k] @ B[k,n]
void gemm_nn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate);

// C[m,n] (+)= A[m,k] @ B[n,k]^T   (dot products of rows)
void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate);

// C[m,n] (+)= A[k,m]^T @ B[k,n]   (sum of outer products)
void gemm_tn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate);

// C[m,n] (+)= A[m,k] @ B[n,k]^T computed element-by-element with the same
// shared `dot` reduction the m=1 gemm_nt fallback uses, looping B rows
// outermost so each weight row streams through the cache once for all m
// input rows. Guaranteed bitwise-identical to m separate
// gemm_nt(..., /*m=*/1, ...) calls — the m>=4 micro-kernel path has a
// different reduction order, so plain gemm_nt cannot provide that. The
// speculative-decode verify span depends on this equality to stay provably
// bit-identical to single-token decode.
void gemm_nt_rowwise(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n, bool accumulate);

// y[i] (+)= alpha * x[i]
void axpy(float alpha, const float* x, float* y, std::int64_t n, bool accumulate);

float dot(const float* a, const float* b, std::int64_t n);

// In-place numerically stable softmax over each row of x[rows, cols].
// Rows are sharded over the thread pool when the workload is large enough.
void softmax_rows(float* x, std::int64_t rows, std::int64_t cols);

// RMSNorm forward: out[r,:] = x[r,:] / rms(x[r,:]) * weight; returns nothing,
// caller may pass `inv_rms != nullptr` to capture 1/rms per row for backward.
// Rows are sharded over the thread pool when the workload is large enough.
void rmsnorm_forward(const float* x, const float* weight, float* out,
                     std::int64_t rows, std::int64_t cols, float eps,
                     float* inv_rms);

// SiLU(x) = x * sigmoid(x)
float silu(float x) noexcept;
float silu_derivative(float x) noexcept;

// Rotary position embedding applied in-place to a [heads, head_dim] slice for
// a single position `pos`. Pairs (2i, 2i+1) are rotated by pos * base^(-2i/d).
// `sign` = +1 applies the rotation, -1 applies the inverse (for backward).
// Angles come from the process-wide cos/sin table cache (see rope_cache.hpp);
// hot paths should acquire the table once and call RopeTable::apply directly.
void rope_apply(float* vec, std::int64_t n_heads, std::int64_t head_dim,
                std::int64_t pos, float base, float sign);

// ---- parallel dispatch control -------------------------------------------
//
// By default (kAuto) row-sharded kernels consult a row-count *and* a total
// FLOP threshold before using the global thread pool, so skinny matmuls
// (single-token decode steps) never pay dispatch overhead. Tests can pin the
// dispatch decision to prove parallel and serial execution are bit-identical.

enum class DispatchMode {
  kAuto,           // heuristic: parallelize only when large enough
  kForceSerial,    // always run inline on the calling thread
  kForceParallel,  // always shard over the pool (override pool optional)
};

// RAII override of the kernel dispatch policy for the current thread. When
// `pool` is non-null with kForceParallel, that pool is used instead of the
// global one (lets tests exercise multi-worker execution on any host).
class ScopedDispatch {
 public:
  explicit ScopedDispatch(DispatchMode mode, ThreadPool* pool = nullptr);
  ~ScopedDispatch();

  ScopedDispatch(const ScopedDispatch&) = delete;
  ScopedDispatch& operator=(const ScopedDispatch&) = delete;

 private:
  DispatchMode saved_mode_;
  ThreadPool* saved_pool_;
};

}  // namespace sdd::kernels
