#include "tensor/kernels_ref.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace sdd::kernels::ref {

void gemm_nn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    if (!accumulate) std::memset(c_row, 0, static_cast<std::size_t>(n) * sizeof(float));
    const float* a_row = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      const float* b_row = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
    }
  }
}

void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float value = 0.0F;
      for (std::int64_t p = 0; p < k; ++p) value += a_row[p] * b_row[p];
      c_row[j] = accumulate ? c_row[j] + value : value;
    }
  }
}

void gemm_tn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  }
  for (std::int64_t p = 0; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      float* c_row = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_pi * b_row[j];
    }
  }
}

void softmax_rows(float* x, std::int64_t rows, std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = x + r * cols;
    float max_value = row[0];
    for (std::int64_t c = 1; c < cols; ++c) max_value = std::max(max_value, row[c]);
    float sum = 0.0F;
    for (std::int64_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_value);
      sum += row[c];
    }
    const float inv = 1.0F / sum;
    for (std::int64_t c = 0; c < cols; ++c) row[c] *= inv;
  }
}

void rmsnorm_forward(const float* x, const float* weight, float* out,
                     std::int64_t rows, std::int64_t cols, float eps, float* inv_rms) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* x_row = x + r * cols;
    float* out_row = out + r * cols;
    float mean_sq = 0.0F;
    for (std::int64_t c = 0; c < cols; ++c) mean_sq += x_row[c] * x_row[c];
    mean_sq /= static_cast<float>(cols);
    const float scale = 1.0F / std::sqrt(mean_sq + eps);
    if (inv_rms != nullptr) inv_rms[r] = scale;
    for (std::int64_t c = 0; c < cols; ++c) out_row[c] = x_row[c] * scale * weight[c];
  }
}

void rope_apply(float* vec, std::int64_t n_heads, std::int64_t head_dim,
                std::int64_t pos, float base, float sign) {
  for (std::int64_t h = 0; h < n_heads; ++h) {
    float* head = vec + h * head_dim;
    for (std::int64_t i = 0; i + 1 < head_dim; i += 2) {
      const float freq =
          std::pow(base, -static_cast<float>(i) / static_cast<float>(head_dim));
      const float angle = sign * static_cast<float>(pos) * freq;
      const float cos_a = std::cos(angle);
      const float sin_a = std::sin(angle);
      const float x0 = head[i];
      const float x1 = head[i + 1];
      head[i] = x0 * cos_a - x1 * sin_a;
      head[i + 1] = x0 * sin_a + x1 * cos_a;
    }
  }
}

}  // namespace sdd::kernels::ref
