// Naive reference implementations of the compute kernels.
//
// These are the pre-optimization scalar loops, retained verbatim so the
// blocked/vectorized kernels in kernels.cpp can be equivalence-tested against
// a known-good baseline (tests/test_kernels.cpp) and so bench regressions can
// be cross-checked. They are compiled without -ffast-math and must never be
// called from hot paths.
#pragma once

#include <cstdint>

namespace sdd::kernels::ref {

// C[m,n] (+)= A[m,k] @ B[k,n]
void gemm_nn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate);

// C[m,n] (+)= A[m,k] @ B[n,k]^T
void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate);

// C[m,n] (+)= A[k,m]^T @ B[k,n]
void gemm_tn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n, bool accumulate);

void softmax_rows(float* x, std::int64_t rows, std::int64_t cols);

void rmsnorm_forward(const float* x, const float* weight, float* out,
                     std::int64_t rows, std::int64_t cols, float eps, float* inv_rms);

// Per-call pow/cos/sin rotary embedding (no table cache).
void rope_apply(float* vec, std::int64_t n_heads, std::int64_t head_dim,
                std::int64_t pos, float base, float sign);

}  // namespace sdd::kernels::ref
