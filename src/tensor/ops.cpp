#include "tensor/ops.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/rope_cache.hpp"

namespace sdd::ops {
namespace {

void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string{op} + ": shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}

// Accumulate src into dst's grad buffer (allocating it on demand).
void accumulate_grad(TensorImpl* impl, std::span<const float> src) {
  if (!impl->requires_grad) return;
  impl->ensure_grad();
  for (std::size_t i = 0; i < src.size(); ++i) impl->grad[i] += src[i];
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) { return add_scaled(a, b, 1.0F); }

Tensor add_scaled(const Tensor& a, const Tensor& b, float alpha) {
  require_same_shape(a, b, "add_scaled");
  Tensor out{a.shape(), false};
  const auto n = static_cast<std::size_t>(a.numel());
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data().data();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] + alpha * pb[i];

  TensorImpl* out_impl = out.raw();
  TensorImpl* a_impl = a.raw();
  TensorImpl* b_impl = b.raw();
  set_grad_fn(out, {a, b}, [out_impl, a_impl, b_impl, alpha, n] {
    accumulate_grad(a_impl, {out_impl->grad.data(), n});
    if (b_impl->requires_grad) {
      b_impl->ensure_grad();
      for (std::size_t i = 0; i < n; ++i) b_impl->grad[i] += alpha * out_impl->grad[i];
    }
  });
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul");
  Tensor out{a.shape(), false};
  const auto n = static_cast<std::size_t>(a.numel());
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data().data();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];

  TensorImpl* out_impl = out.raw();
  TensorImpl* a_impl = a.raw();
  TensorImpl* b_impl = b.raw();
  set_grad_fn(out, {a, b}, [out_impl, a_impl, b_impl, n] {
    if (a_impl->requires_grad) {
      a_impl->ensure_grad();
      for (std::size_t i = 0; i < n; ++i) {
        a_impl->grad[i] += out_impl->grad[i] * b_impl->data[i];
      }
    }
    if (b_impl->requires_grad) {
      b_impl->ensure_grad();
      for (std::size_t i = 0; i < n; ++i) {
        b_impl->grad[i] += out_impl->grad[i] * a_impl->data[i];
      }
    }
  });
  return out;
}

Tensor scale(const Tensor& a, float alpha) {
  Tensor out{a.shape(), false};
  const auto n = static_cast<std::size_t>(a.numel());
  kernels::axpy(alpha, a.data().data(), out.data().data(), static_cast<std::int64_t>(n),
                /*accumulate=*/false);

  TensorImpl* out_impl = out.raw();
  TensorImpl* a_impl = a.raw();
  set_grad_fn(out, {a}, [out_impl, a_impl, alpha, n] {
    a_impl->ensure_grad();
    for (std::size_t i = 0; i < n; ++i) a_impl->grad[i] += alpha * out_impl->grad[i];
  });
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require(a.ndim() == 2 && b.ndim() == 2, "matmul: expects 2-D tensors");
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  require(b.dim(0) == k, "matmul: inner dimensions differ");
  const std::int64_t n = b.dim(1);

  Tensor out{Shape{m, n}, false};
  kernels::gemm_nn(a.data().data(), b.data().data(), out.data().data(), m, k, n,
                   /*accumulate=*/false);

  TensorImpl* out_impl = out.raw();
  TensorImpl* a_impl = a.raw();
  TensorImpl* b_impl = b.raw();
  set_grad_fn(out, {a, b}, [out_impl, a_impl, b_impl, m, k, n] {
    const float* d_out = out_impl->grad.data();
    if (a_impl->requires_grad) {
      a_impl->ensure_grad();
      // dA[m,k] += dC[m,n] @ B[k,n]^T
      kernels::gemm_nt(d_out, b_impl->data.data(), a_impl->grad.data(), m, n, k,
                       /*accumulate=*/true);
    }
    if (b_impl->requires_grad) {
      b_impl->ensure_grad();
      // dB[k,n] += A[m,k]^T @ dC[m,n]
      kernels::gemm_tn(a_impl->data.data(), d_out, b_impl->grad.data(), k, m, n,
                       /*accumulate=*/true);
    }
  });
  return out;
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias) {
  require(w.ndim() == 2, "linear: weight must be [out, in]");
  const std::int64_t in_features = w.dim(1);
  const std::int64_t out_features = w.dim(0);
  require(x.ndim() >= 1 && x.shape().back() == in_features,
          "linear: input feature dimension mismatch");
  if (bias.defined()) {
    require(bias.ndim() == 1 && bias.dim(0) == out_features,
            "linear: bias dimension mismatch");
  }
  const std::int64_t rows = x.numel() / in_features;

  Shape out_shape{x.shape()};
  out_shape.back() = out_features;
  Tensor out{std::move(out_shape), false};
  kernels::gemm_nt(x.data().data(), w.data().data(), out.data().data(), rows,
                   in_features, out_features, /*accumulate=*/false);
  if (bias.defined()) {
    float* po = out.data().data();
    const float* pb = bias.data().data();
    for (std::int64_t r = 0; r < rows; ++r) {
      kernels::axpy(1.0F, pb, po + r * out_features, out_features, /*accumulate=*/true);
    }
  }

  TensorImpl* out_impl = out.raw();
  TensorImpl* x_impl = x.raw();
  TensorImpl* w_impl = w.raw();
  TensorImpl* b_impl = bias.defined() ? bias.raw() : nullptr;
  set_grad_fn(out, {x, w, bias},
              [out_impl, x_impl, w_impl, b_impl, rows, in_features, out_features] {
                const float* d_out = out_impl->grad.data();
                if (x_impl->requires_grad) {
                  x_impl->ensure_grad();
                  // dX[rows,in] += dY[rows,out] @ W[out,in]
                  kernels::gemm_nn(d_out, w_impl->data.data(), x_impl->grad.data(), rows,
                                   out_features, in_features, /*accumulate=*/true);
                }
                if (w_impl->requires_grad) {
                  w_impl->ensure_grad();
                  // dW[out,in] += dY[rows,out]^T @ X[rows,in]
                  kernels::gemm_tn(d_out, x_impl->data.data(), w_impl->grad.data(),
                                   out_features, rows, in_features, /*accumulate=*/true);
                }
                if (b_impl != nullptr && b_impl->requires_grad) {
                  b_impl->ensure_grad();
                  for (std::int64_t r = 0; r < rows; ++r) {
                    const float* d_row = d_out + r * out_features;
                    for (std::int64_t c = 0; c < out_features; ++c) {
                      b_impl->grad[static_cast<std::size_t>(c)] += d_row[c];
                    }
                  }
                }
              });
  return out;
}

Tensor embedding(std::vector<std::int32_t> ids, const Tensor& table, Shape out_prefix) {
  require(table.ndim() == 2, "embedding: table must be [V, C]");
  const std::int64_t vocab = table.dim(0);
  const std::int64_t channels = table.dim(1);
  require(shape_numel(out_prefix) == static_cast<std::int64_t>(ids.size()),
          "embedding: prefix shape does not match id count");

  Shape out_shape{out_prefix};
  out_shape.push_back(channels);
  Tensor out{std::move(out_shape), false};
  float* po = out.data().data();
  const float* pt = table.data().data();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::int32_t id = ids[i];
    require(id >= 0 && id < vocab, "embedding: id out of range");
    std::memcpy(po + static_cast<std::int64_t>(i) * channels, pt + id * channels,
                static_cast<std::size_t>(channels) * sizeof(float));
  }

  TensorImpl* out_impl = out.raw();
  TensorImpl* table_impl = table.raw();
  set_grad_fn(out, {table}, [out_impl, table_impl, ids = std::move(ids), channels] {
    table_impl->ensure_grad();
    const float* d_out = out_impl->grad.data();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      float* d_row = table_impl->grad.data() + ids[i] * channels;
      const float* src = d_out + static_cast<std::int64_t>(i) * channels;
      for (std::int64_t c = 0; c < channels; ++c) d_row[c] += src[c];
    }
  });
  return out;
}

Tensor rmsnorm(const Tensor& x, const Tensor& weight, float eps) {
  require(weight.ndim() == 1, "rmsnorm: weight must be 1-D");
  const std::int64_t cols = weight.dim(0);
  require(!x.shape().empty() && x.shape().back() == cols,
          "rmsnorm: channel dimension mismatch");
  const std::int64_t rows = x.numel() / cols;

  Tensor out{x.shape(), false};
  std::vector<float> inv_rms(static_cast<std::size_t>(rows));
  kernels::rmsnorm_forward(x.data().data(), weight.data().data(), out.data().data(),
                           rows, cols, eps, inv_rms.data());

  TensorImpl* out_impl = out.raw();
  TensorImpl* x_impl = x.raw();
  TensorImpl* w_impl = weight.raw();
  set_grad_fn(out, {x, weight},
              [out_impl, x_impl, w_impl, rows, cols, inv_rms = std::move(inv_rms)] {
                const float* d_out = out_impl->grad.data();
                const float* px = x_impl->data.data();
                const float* pw = w_impl->data.data();
                if (x_impl->requires_grad) x_impl->ensure_grad();
                if (w_impl->requires_grad) w_impl->ensure_grad();
                for (std::int64_t r = 0; r < rows; ++r) {
                  const float* x_row = px + r * cols;
                  const float* d_row = d_out + r * cols;
                  const float s = inv_rms[static_cast<std::size_t>(r)];
                  if (w_impl->requires_grad) {
                    for (std::int64_t c = 0; c < cols; ++c) {
                      w_impl->grad[static_cast<std::size_t>(c)] +=
                          d_row[c] * x_row[c] * s;
                    }
                  }
                  if (x_impl->requires_grad) {
                    // d x_j = s * w_j * d_j - s^3/C * x_j * sum_c(d_c w_c x_c)
                    float weighted = 0.0F;
                    for (std::int64_t c = 0; c < cols; ++c) {
                      weighted += d_row[c] * pw[c] * x_row[c];
                    }
                    const float k = s * s * s * weighted / static_cast<float>(cols);
                    float* g_row = x_impl->grad.data() + r * cols;
                    for (std::int64_t c = 0; c < cols; ++c) {
                      g_row[c] += s * pw[c] * d_row[c] - k * x_row[c];
                    }
                  }
                }
              });
  return out;
}

Tensor swiglu(const Tensor& gate, const Tensor& up) {
  require_same_shape(gate, up, "swiglu");
  Tensor out{gate.shape(), false};
  const auto n = static_cast<std::size_t>(gate.numel());
  const float* pg = gate.data().data();
  const float* pu = up.data().data();
  float* po = out.data().data();
  for (std::size_t i = 0; i < n; ++i) po[i] = kernels::silu(pg[i]) * pu[i];

  TensorImpl* out_impl = out.raw();
  TensorImpl* g_impl = gate.raw();
  TensorImpl* u_impl = up.raw();
  set_grad_fn(out, {gate, up}, [out_impl, g_impl, u_impl, n] {
    const float* d_out = out_impl->grad.data();
    if (g_impl->requires_grad) {
      g_impl->ensure_grad();
      for (std::size_t i = 0; i < n; ++i) {
        g_impl->grad[i] +=
            d_out[i] * u_impl->data[i] * kernels::silu_derivative(g_impl->data[i]);
      }
    }
    if (u_impl->requires_grad) {
      u_impl->ensure_grad();
      for (std::size_t i = 0; i < n; ++i) {
        u_impl->grad[i] += d_out[i] * kernels::silu(g_impl->data[i]);
      }
    }
  });
  return out;
}

Tensor causal_self_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                             std::int64_t n_heads, float rope_base) {
  require(q.ndim() == 3, "attention: q must be [B,T,C]");
  require_same_shape(q, k, "attention(q,k)");
  require_same_shape(q, v, "attention(q,v)");
  const std::int64_t batch = q.dim(0);
  const std::int64_t seq = q.dim(1);
  const std::int64_t channels = q.dim(2);
  require(channels % n_heads == 0, "attention: C must be divisible by n_heads");
  const std::int64_t head_dim = channels / n_heads;
  const float inv_sqrt_d = 1.0F / std::sqrt(static_cast<float>(head_dim));

  // Rotated copies of q and k (RoPE is a per-position orthogonal rotation).
  // The cos/sin table is acquired once per call and shared with backward.
  const auto rope = kernels::RopeTable::get(head_dim, rope_base, seq);
  std::vector<float> q_rot(q.data().begin(), q.data().end());
  std::vector<float> k_rot(k.data().begin(), k.data().end());
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t t = 0; t < seq; ++t) {
      const std::int64_t offset = (b * seq + t) * channels;
      rope->apply(q_rot.data() + offset, n_heads, t, 1.0F);
      rope->apply(k_rot.data() + offset, n_heads, t, 1.0F);
    }
  }

  // Attention probabilities, stored for backward: [B, H, T, T] (0 above diag).
  std::vector<float> probs(
      static_cast<std::size_t>(batch * n_heads * seq * seq), 0.0F);
  Tensor out{q.shape(), false};
  float* po = out.data().data();
  std::memset(po, 0, static_cast<std::size_t>(out.numel()) * sizeof(float));
  const float* pv = v.data().data();

  const auto qkv_offset = [&](std::int64_t b, std::int64_t t, std::int64_t h) {
    return (b * seq + t) * channels + h * head_dim;
  };
  const auto prob_row = [&](std::int64_t b, std::int64_t h, std::int64_t t) {
    return probs.data() + ((b * n_heads + h) * seq + t) * seq;
  };

  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t h = 0; h < n_heads; ++h) {
      for (std::int64_t t1 = 0; t1 < seq; ++t1) {
        float* row = prob_row(b, h, t1);
        const float* q_vec = q_rot.data() + qkv_offset(b, t1, h);
        // Scores for the causal prefix, then a stable softmax over it.
        float max_score = -1e30F;
        for (std::int64_t t2 = 0; t2 <= t1; ++t2) {
          const float s =
              kernels::dot(q_vec, k_rot.data() + qkv_offset(b, t2, h), head_dim) *
              inv_sqrt_d;
          row[t2] = s;
          max_score = std::max(max_score, s);
        }
        float sum = 0.0F;
        for (std::int64_t t2 = 0; t2 <= t1; ++t2) {
          row[t2] = std::exp(row[t2] - max_score);
          sum += row[t2];
        }
        const float inv_sum = 1.0F / sum;
        float* out_vec = po + qkv_offset(b, t1, h);
        for (std::int64_t t2 = 0; t2 <= t1; ++t2) {
          row[t2] *= inv_sum;
          kernels::axpy(row[t2], pv + qkv_offset(b, t2, h), out_vec, head_dim,
                        /*accumulate=*/true);
        }
      }
    }
  }

  TensorImpl* out_impl = out.raw();
  TensorImpl* q_impl = q.raw();
  TensorImpl* k_impl = k.raw();
  TensorImpl* v_impl = v.raw();
  set_grad_fn(
      out, {q, k, v},
      [out_impl, q_impl, k_impl, v_impl, batch, seq, channels, n_heads, head_dim,
       inv_sqrt_d, rope, q_rot = std::move(q_rot), k_rot = std::move(k_rot),
       probs = std::move(probs)] {
        // Offset helpers over the *captured* buffers (the forward-scope
        // lambdas referenced stack locals and must not be reused here).
        const auto qkv_offset = [seq, channels, head_dim](std::int64_t b,
                                                          std::int64_t t,
                                                          std::int64_t h) {
          return (b * seq + t) * channels + h * head_dim;
        };
        const auto prob_row = [&probs, n_heads, seq](std::int64_t b, std::int64_t h,
                                                     std::int64_t t) {
          return probs.data() + ((b * n_heads + h) * seq + t) * seq;
        };
        const float* d_out = out_impl->grad.data();
        q_impl->ensure_grad();
        k_impl->ensure_grad();
        v_impl->ensure_grad();

        // Gradients w.r.t. the *rotated* q/k; unrotated at the end.
        std::vector<float> d_q_rot(q_rot.size(), 0.0F);
        std::vector<float> d_k_rot(k_rot.size(), 0.0F);
        std::vector<float> d_prob_row(static_cast<std::size_t>(seq));

        for (std::int64_t b = 0; b < batch; ++b) {
          for (std::int64_t h = 0; h < n_heads; ++h) {
            for (std::int64_t t1 = 0; t1 < seq; ++t1) {
              const float* p_row = prob_row(b, h, t1);
              const float* d_o = d_out + qkv_offset(b, t1, h);
              // dP[t2] = <dO, V[t2]>; dV[t2] += P[t2] * dO
              for (std::int64_t t2 = 0; t2 <= t1; ++t2) {
                d_prob_row[static_cast<std::size_t>(t2)] =
                    kernels::dot(d_o, v_impl->data.data() + qkv_offset(b, t2, h),
                                 head_dim);
                kernels::axpy(p_row[t2], d_o,
                              v_impl->grad.data() + qkv_offset(b, t2, h), head_dim,
                              /*accumulate=*/true);
              }
              // Softmax backward: dS = P * (dP - sum(P * dP))
              float dot_pp = 0.0F;
              for (std::int64_t t2 = 0; t2 <= t1; ++t2) {
                dot_pp += p_row[t2] * d_prob_row[static_cast<std::size_t>(t2)];
              }
              const float* q_vec = q_rot.data() + qkv_offset(b, t1, h);
              float* d_q_vec = d_q_rot.data() + qkv_offset(b, t1, h);
              for (std::int64_t t2 = 0; t2 <= t1; ++t2) {
                const float d_s =
                    p_row[t2] * (d_prob_row[static_cast<std::size_t>(t2)] - dot_pp) *
                    inv_sqrt_d;
                kernels::axpy(d_s, k_rot.data() + qkv_offset(b, t2, h), d_q_vec,
                              head_dim, /*accumulate=*/true);
                kernels::axpy(d_s, q_vec, d_k_rot.data() + qkv_offset(b, t2, h),
                              head_dim, /*accumulate=*/true);
              }
            }
          }
        }

        // Undo the rotation (R(t) is orthogonal, so dX = R(-t) dX_rot).
        for (std::int64_t b = 0; b < batch; ++b) {
          for (std::int64_t t = 0; t < seq; ++t) {
            const std::int64_t offset = (b * seq + t) * channels;
            rope->apply(d_q_rot.data() + offset, n_heads, t, -1.0F);
            rope->apply(d_k_rot.data() + offset, n_heads, t, -1.0F);
          }
        }
        for (std::size_t i = 0; i < d_q_rot.size(); ++i) {
          q_impl->grad[i] += d_q_rot[i];
          k_impl->grad[i] += d_k_rot[i];
        }
      });
  return out;
}

Tensor cross_entropy(const Tensor& logits, std::span<const std::int32_t> targets,
                     std::span<const float> weights) {
  require(!logits.shape().empty(), "cross_entropy: empty logits");
  const std::int64_t vocab = logits.shape().back();
  const std::int64_t rows = logits.numel() / vocab;
  require(static_cast<std::int64_t>(targets.size()) == rows,
          "cross_entropy: target count mismatch");
  require(static_cast<std::int64_t>(weights.size()) == rows,
          "cross_entropy: weight count mismatch");

  std::vector<float> probs(logits.data().begin(), logits.data().end());
  kernels::softmax_rows(probs.data(), rows, vocab);

  double total_weight = 0.0;
  double total_loss = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float w = weights[static_cast<std::size_t>(r)];
    if (w == 0.0F) continue;
    const std::int32_t target = targets[static_cast<std::size_t>(r)];
    require(target >= 0 && target < vocab, "cross_entropy: target out of range");
    const float p = probs[static_cast<std::size_t>(r * vocab + target)];
    total_loss += static_cast<double>(w) * -std::log(std::max(p, 1e-12F));
    total_weight += w;
  }
  require(total_weight > 0.0, "cross_entropy: all weights are zero");

  Tensor out = Tensor::full(Shape{1}, static_cast<float>(total_loss / total_weight));
  TensorImpl* out_impl = out.raw();
  TensorImpl* logits_impl = logits.raw();
  std::vector<std::int32_t> targets_copy(targets.begin(), targets.end());
  std::vector<float> weights_copy(weights.begin(), weights.end());
  set_grad_fn(out, {logits},
              [out_impl, logits_impl, rows, vocab, probs = std::move(probs),
               targets_copy = std::move(targets_copy),
               weights_copy = std::move(weights_copy), total_weight] {
                logits_impl->ensure_grad();
                const float d_loss = out_impl->grad[0];
                const auto inv_weight = static_cast<float>(1.0 / total_weight);
                for (std::int64_t r = 0; r < rows; ++r) {
                  const float w = weights_copy[static_cast<std::size_t>(r)];
                  if (w == 0.0F) continue;
                  const float coeff = d_loss * w * inv_weight;
                  const float* p_row = probs.data() + r * vocab;
                  float* g_row = logits_impl->grad.data() + r * vocab;
                  for (std::int64_t c = 0; c < vocab; ++c) g_row[c] += coeff * p_row[c];
                  g_row[targets_copy[static_cast<std::size_t>(r)]] -= coeff;
                }
              });
  return out;
}

Tensor soft_cross_entropy(const Tensor& logits, std::span<const float> teacher_probs,
                          std::span<const float> weights) {
  require(!logits.shape().empty(), "soft_cross_entropy: empty logits");
  const std::int64_t vocab = logits.shape().back();
  const std::int64_t rows = logits.numel() / vocab;
  require(static_cast<std::int64_t>(teacher_probs.size()) == rows * vocab,
          "soft_cross_entropy: teacher probability table size mismatch");
  require(static_cast<std::int64_t>(weights.size()) == rows,
          "soft_cross_entropy: weight count mismatch");

  std::vector<float> student_probs(logits.data().begin(), logits.data().end());
  kernels::softmax_rows(student_probs.data(), rows, vocab);

  double total_weight = 0.0;
  double total_loss = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float w = weights[static_cast<std::size_t>(r)];
    if (w == 0.0F) continue;
    double row_loss = 0.0;
    for (std::int64_t v = 0; v < vocab; ++v) {
      const float t = teacher_probs[static_cast<std::size_t>(r * vocab + v)];
      if (t <= 0.0F) continue;
      const float p = student_probs[static_cast<std::size_t>(r * vocab + v)];
      row_loss -= static_cast<double>(t) * std::log(std::max(p, 1e-12F));
    }
    total_loss += static_cast<double>(w) * row_loss;
    total_weight += w;
  }
  require(total_weight > 0.0, "soft_cross_entropy: all weights are zero");

  Tensor out = Tensor::full(Shape{1}, static_cast<float>(total_loss / total_weight));
  TensorImpl* out_impl = out.raw();
  TensorImpl* logits_impl = logits.raw();
  std::vector<float> teacher_copy(teacher_probs.begin(), teacher_probs.end());
  std::vector<float> weights_copy(weights.begin(), weights.end());
  set_grad_fn(out, {logits},
              [out_impl, logits_impl, rows, vocab,
               student_probs = std::move(student_probs),
               teacher_copy = std::move(teacher_copy),
               weights_copy = std::move(weights_copy), total_weight] {
                logits_impl->ensure_grad();
                const float d_loss = out_impl->grad[0];
                const auto inv_weight = static_cast<float>(1.0 / total_weight);
                for (std::int64_t r = 0; r < rows; ++r) {
                  const float w = weights_copy[static_cast<std::size_t>(r)];
                  if (w == 0.0F) continue;
                  const float coeff = d_loss * w * inv_weight;
                  float* g_row = logits_impl->grad.data() + r * vocab;
                  const float* p_row = student_probs.data() + r * vocab;
                  const float* t_row = teacher_copy.data() + r * vocab;
                  for (std::int64_t v = 0; v < vocab; ++v) {
                    g_row[v] += coeff * (p_row[v] - t_row[v]);
                  }
                }
              });
  return out;
}

Tensor sum(const Tensor& a) {
  double total = 0.0;
  for (float v : a.data()) total += v;
  Tensor out = Tensor::full(Shape{1}, static_cast<float>(total));
  TensorImpl* out_impl = out.raw();
  TensorImpl* a_impl = a.raw();
  const auto n = static_cast<std::size_t>(a.numel());
  set_grad_fn(out, {a}, [out_impl, a_impl, n] {
    a_impl->ensure_grad();
    for (std::size_t i = 0; i < n; ++i) a_impl->grad[i] += out_impl->grad[0];
  });
  return out;
}

Tensor mean(const Tensor& a) {
  const auto n = static_cast<float>(a.numel());
  Tensor s = sum(a);
  return scale(s, 1.0F / n);
}

}  // namespace sdd::ops
