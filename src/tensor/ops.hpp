// Differentiable tensor operations.
//
// Each op computes its forward with the shared kernels and, when autograd is
// enabled and any input requires grad, records a hand-written backward
// closure on the output tensor. The op set is deliberately fused at the
// granularity a decoder-only transformer needs (linear, rmsnorm, SwiGLU,
// causal RoPE attention, softmax cross-entropy), which keeps both the tape
// and the arithmetic small.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace sdd::ops {

// Elementwise (identical shapes).
Tensor add(const Tensor& a, const Tensor& b);
Tensor add_scaled(const Tensor& a, const Tensor& b, float alpha);  // a + alpha*b
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float alpha);

// 2-D matrix product: [m,k] @ [k,n] -> [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

// y = x @ W^T (+ bias). `x` is [..., in], `w` is [out, in], bias is [out] or
// undefined. Leading dimensions of x are treated as a flat batch.
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias = {});

// Token embedding lookup: out[prefix..., C] = table[ids[i], :].
Tensor embedding(std::vector<std::int32_t> ids, const Tensor& table,
                 Shape out_prefix);

// RMS normalization over the last dimension with learned gain `weight` [C].
Tensor rmsnorm(const Tensor& x, const Tensor& weight, float eps = 1e-5F);

// SwiGLU gating: out = silu(gate) * up (identical shapes).
Tensor swiglu(const Tensor& gate, const Tensor& up);

// Fused causal multi-head self-attention with rotary position embeddings.
// q, k, v are [B, T, C] with C = n_heads * head_dim; RoPE (base `rope_base`)
// is applied to q and k per head before the scaled dot-product.
Tensor causal_self_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                             std::int64_t n_heads, float rope_base);

// Weighted mean negative log-likelihood. `logits` is [..., V] whose leading
// dims flatten to N rows; targets/weights have length N. Rows with weight 0
// are ignored (loss masking). Returns a scalar.
Tensor cross_entropy(const Tensor& logits, std::span<const std::int32_t> targets,
                     std::span<const float> weights);

// Weighted soft-target cross-entropy: H(teacher, student) averaged over rows
// with non-zero weight. `teacher_probs` is a full [N*V] probability table
// (rows summing to 1) treated as constant — the knowledge-distillation loss.
// Returns a scalar.
Tensor soft_cross_entropy(const Tensor& logits, std::span<const float> teacher_probs,
                          std::span<const float> weights);

// Reductions to a scalar.
Tensor sum(const Tensor& a);
Tensor mean(const Tensor& a);

}  // namespace sdd::ops
