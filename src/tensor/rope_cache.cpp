#include "tensor/rope_cache.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

namespace sdd::kernels {
namespace {

constexpr std::int64_t kMinTablePositions = 256;

std::mutex g_cache_mutex;
// Keyed by (head_dim, bit pattern of base) so distinct float bases never alias.
std::map<std::pair<std::int64_t, std::uint32_t>, std::shared_ptr<const RopeTable>>&
cache() {
  static auto* tables = new std::map<std::pair<std::int64_t, std::uint32_t>,
                                     std::shared_ptr<const RopeTable>>{};
  return *tables;
}

std::uint32_t float_bits(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

RopeTable::RopeTable(std::int64_t head_dim, float base, std::int64_t positions)
    : head_dim_{head_dim}, positions_{positions} {
  data_.resize(static_cast<std::size_t>(positions * head_dim));
  // Frequencies match the historical scalar rope_apply arithmetic exactly
  // (float pow, float angle) so cached and uncached results are identical.
  std::vector<float> freqs(static_cast<std::size_t>(head_dim / 2));
  for (std::int64_t i = 0; i + 1 < head_dim; i += 2) {
    freqs[static_cast<std::size_t>(i / 2)] =
        std::pow(base, -static_cast<float>(i) / static_cast<float>(head_dim));
  }
  for (std::int64_t pos = 0; pos < positions; ++pos) {
    float* row = data_.data() + pos * head_dim;
    for (std::int64_t i = 0; i + 1 < head_dim; i += 2) {
      const float angle =
          static_cast<float>(pos) * freqs[static_cast<std::size_t>(i / 2)];
      row[i] = std::cos(angle);
      row[i + 1] = std::sin(angle);
    }
  }
}

void RopeTable::apply(float* vec, std::int64_t n_heads, std::int64_t pos,
                      float sign) const {
  const float* r = row(pos);
  for (std::int64_t h = 0; h < n_heads; ++h) {
    float* head = vec + h * head_dim_;
    for (std::int64_t i = 0; i + 1 < head_dim_; i += 2) {
      const float cos_a = r[i];
      const float sin_a = sign * r[i + 1];
      const float x0 = head[i];
      const float x1 = head[i + 1];
      head[i] = x0 * cos_a - x1 * sin_a;
      head[i + 1] = x0 * sin_a + x1 * cos_a;
    }
  }
}

std::shared_ptr<const RopeTable> RopeTable::get(std::int64_t head_dim, float base,
                                                std::int64_t min_positions) {
  const std::pair<std::int64_t, std::uint32_t> key{head_dim, float_bits(base)};
  const std::lock_guard<std::mutex> lock{g_cache_mutex};
  auto& tables = cache();
  auto it = tables.find(key);
  if (it != tables.end() && it->second->positions() >= min_positions) {
    return it->second;
  }
  // Grow geometrically (and never below a useful floor) so decode loops that
  // extend one position at a time trigger only O(log n) rebuilds.
  std::int64_t positions = std::max(min_positions, kMinTablePositions);
  positions = static_cast<std::int64_t>(
      std::bit_ceil(static_cast<std::uint64_t>(positions)));
  auto table = std::shared_ptr<const RopeTable>{
      new RopeTable{head_dim, base, positions}};
  tables[key] = table;
  return table;
}

}  // namespace sdd::kernels
