// Process-wide cache of precomputed RoPE cos/sin tables.
//
// The scalar rope_apply used to recompute pow/cos/sin for every (position,
// pair) on every call — per token, per head pair, per layer, in both forward
// and backward. A table for a given (head_dim, base) is position-independent
// work that this cache does once; lookups after the first are a mutex-guarded
// map hit, and hot loops (batched attention, decode steps) hold the returned
// shared_ptr and call apply() directly with no locking per position.
//
// Tables grow geometrically when a longer sequence is requested; the old
// table stays alive for existing holders (shared_ptr), so apply() is safe to
// call concurrently from pool workers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace sdd::kernels {

class RopeTable {
 public:
  // Returns the shared table for (head_dim, base) covering at least
  // `min_positions` positions (grown and re-published if needed).
  static std::shared_ptr<const RopeTable> get(std::int64_t head_dim, float base,
                                              std::int64_t min_positions);

  std::int64_t head_dim() const noexcept { return head_dim_; }
  std::int64_t positions() const noexcept { return positions_; }

  // Row layout: head_dim floats per position, (cos, sin) interleaved per
  // rotation pair, i.e. row(p)[2i] = cos(p * freq_i), row(p)[2i+1] = sin(...).
  const float* row(std::int64_t pos) const noexcept {
    return data_.data() + pos * head_dim_;
  }

  // Rotate vec ([n_heads, head_dim], in place) for position `pos`.
  // `sign` = +1 applies the rotation, -1 the inverse (backward pass).
  void apply(float* vec, std::int64_t n_heads, std::int64_t pos, float sign) const;

 private:
  RopeTable(std::int64_t head_dim, float base, std::int64_t positions);

  std::int64_t head_dim_;
  std::int64_t positions_;
  std::vector<float> data_;  // [positions, head_dim]
};

}  // namespace sdd::kernels
