#include "tensor/tensor.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "util/fault.hpp"

namespace sdd {
namespace {
thread_local bool g_autograd_enabled = true;
}

bool autograd_enabled() noexcept { return g_autograd_enabled; }

NoGradGuard::NoGradGuard() noexcept : previous_{g_autograd_enabled} {
  g_autograd_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_autograd_enabled = previous_; }

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ',';
    out << shape[i];
  }
  out << ']';
  return out.str();
}

void TensorImpl::ensure_grad() {
  if (grad.empty()) grad.assign(data.size(), 0.0F);
}

Tensor::Tensor(Shape shape, bool requires_grad) {
  const auto numel = static_cast<std::size_t>(shape_numel(shape));
  // Guarded allocation: the alloc_fail fault injector can turn this into a
  // typed resource_exhausted failure to exercise degradation paths.
  fault::on_alloc(numel * sizeof(float));
  impl_ = std::make_shared<TensorImpl>();
  impl_->shape = std::move(shape);
  impl_->data.assign(numel, 0.0F);
  impl_->requires_grad = requires_grad;
}

Tensor Tensor::zeros(Shape shape, bool requires_grad) {
  return Tensor{std::move(shape), requires_grad};
}

Tensor Tensor::full(Shape shape, float value, bool requires_grad) {
  Tensor t{std::move(shape), requires_grad};
  std::fill(t.impl_->data.begin(), t.impl_->data.end(), value);
  return t;
}

Tensor Tensor::from_data(std::vector<float> values, Shape shape, bool requires_grad) {
  if (static_cast<std::int64_t>(values.size()) != shape_numel(shape)) {
    throw std::invalid_argument("from_data: value count does not match shape " +
                                shape_to_string(shape));
  }
  Tensor t{std::move(shape), requires_grad};
  t.impl_->data = std::move(values);
  return t;
}

Tensor Tensor::randn(Rng& rng, Shape shape, float stddev, bool requires_grad) {
  Tensor t{std::move(shape), requires_grad};
  for (float& v : t.impl_->data) v = rng.gaussian_float(0.0F, stddev);
  return t;
}

std::int64_t Tensor::dim(std::size_t i) const {
  const Shape& s = checked().shape;
  if (i >= s.size()) throw std::out_of_range("Tensor::dim index out of range");
  return s[i];
}

float Tensor::item() const {
  if (numel() != 1) {
    throw std::logic_error("Tensor::item requires a scalar, got " +
                           shape_to_string(shape()));
  }
  return checked().data[0];
}

std::span<float> Tensor::grad() {
  TensorImpl& impl = checked();
  impl.ensure_grad();
  return {impl.grad.data(), impl.grad.size()};
}

void Tensor::zero_grad() {
  TensorImpl& impl = checked();
  std::fill(impl.grad.begin(), impl.grad.end(), 0.0F);
}

Tensor Tensor::detach() const {
  const TensorImpl& impl = checked();
  Tensor t{impl.shape, false};
  t.impl_->data = impl.data;
  return t;
}

Tensor Tensor::clone() const {
  const TensorImpl& impl = checked();
  Tensor t{impl.shape, impl.requires_grad};
  t.impl_->data = impl.data;
  return t;
}

void Tensor::fill(float value) {
  TensorImpl& impl = checked();
  std::fill(impl.data.begin(), impl.data.end(), value);
}

void Tensor::copy_from(std::span<const float> values) {
  TensorImpl& impl = checked();
  if (values.size() != impl.data.size()) {
    throw std::invalid_argument("copy_from: size mismatch");
  }
  std::copy(values.begin(), values.end(), impl.data.begin());
}

void Tensor::backward() {
  TensorImpl& root = checked();
  if (shape_numel(root.shape) != 1) {
    throw std::logic_error("backward() requires a scalar loss");
  }
  if (!root.requires_grad) {
    throw std::logic_error("backward() on a tensor that does not require grad");
  }

  // Topological order via iterative post-order DFS over the parent edges.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, std::size_t>> stack;
  stack.emplace_back(&root, 0);
  visited.insert(&root);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      TensorImpl* child = node->parents[next_child].get();
      ++next_child;
      if (child != nullptr && child->requires_grad && !visited.contains(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  root.ensure_grad();
  root.grad[0] = 1.0F;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->grad_fn) node->grad_fn();
  }
}

void set_grad_fn(Tensor& out, std::vector<Tensor> parents, std::function<void()> fn) {
  if (!autograd_enabled()) return;
  bool any_requires = false;
  for (const Tensor& p : parents) {
    if (p.defined() && p.requires_grad()) {
      any_requires = true;
      break;
    }
  }
  if (!any_requires) return;

  TensorImpl* impl = out.raw();
  impl->requires_grad = true;
  impl->grad_fn = std::move(fn);
  impl->parents.reserve(parents.size());
  for (Tensor& p : parents) {
    if (p.defined()) impl->parents.push_back(p.impl());
  }
}

}  // namespace sdd
