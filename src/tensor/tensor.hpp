// Tensor: a small float32 tensor with tape-based reverse-mode autograd.
//
// Design notes
//  - Row-major contiguous storage, shapes are vectors of int64_t.
//  - `Tensor` is a cheap value type: a shared_ptr to a TensorImpl. Ops that
//    participate in autograd record a closure (`grad_fn`) on the *output*
//    impl; the closure captures the input Tensors (keeping the upstream graph
//    alive) and a raw pointer to the output impl (safe: the closure is owned
//    by that very impl, so it can never outlive it).
//  - backward() topologically sorts the reachable graph and runs closures in
//    reverse order, accumulating into `.grad()` buffers.
//  - Gradients are only tracked while `autograd_enabled()` is true; decoding
//    and evaluation wrap themselves in a NoGradGuard.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sdd {

using Shape = std::vector<std::int64_t>;

std::int64_t shape_numel(const Shape& shape);
std::string shape_to_string(const Shape& shape);

// Global autograd switch (thread-local so evaluation threads are independent).
bool autograd_enabled() noexcept;

class NoGradGuard {
 public:
  NoGradGuard() noexcept;
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // allocated lazily on first accumulation
  bool requires_grad = false;

  // Autograd tape entry.
  std::function<void()> grad_fn;       // propagates impl->grad to parents
  std::vector<std::shared_ptr<TensorImpl>> parents;

  void ensure_grad();
};

class Tensor {
 public:
  Tensor() = default;  // empty (falsy) tensor
  Tensor(Shape shape, bool requires_grad);

  static Tensor zeros(Shape shape, bool requires_grad = false);
  static Tensor full(Shape shape, float value, bool requires_grad = false);
  static Tensor from_data(std::vector<float> values, Shape shape,
                          bool requires_grad = false);
  static Tensor randn(Rng& rng, Shape shape, float stddev,
                      bool requires_grad = false);

  bool defined() const noexcept { return impl_ != nullptr; }
  explicit operator bool() const noexcept { return defined(); }

  const Shape& shape() const { return checked().shape; }
  std::int64_t dim(std::size_t i) const;
  std::size_t ndim() const { return checked().shape.size(); }
  std::int64_t numel() const { return shape_numel(checked().shape); }
  bool requires_grad() const { return checked().requires_grad; }

  std::span<float> data() { return {checked().data.data(), checked().data.size()}; }
  std::span<const float> data() const {
    return {checked().data.data(), checked().data.size()};
  }
  float item() const;  // requires numel() == 1

  // Gradient buffer; allocates (zero-filled) on first access.
  std::span<float> grad();
  bool has_grad() const { return !checked().grad.empty(); }
  void zero_grad();

  // Reverse-mode sweep seeded with d(out)/d(out)=1. Requires numel()==1.
  void backward();

  // A copy of the values with no autograd history.
  Tensor detach() const;
  // Deep copy including requires_grad (fresh leaf).
  Tensor clone() const;

  // In-place value mutation helpers (leaf tensors only — parameters).
  void fill(float value);
  void copy_from(std::span<const float> values);

  std::shared_ptr<TensorImpl> impl() const { return impl_; }
  TensorImpl* raw() const { return impl_.get(); }

 private:
  TensorImpl& checked() const {
    if (!impl_) throw std::logic_error("use of undefined Tensor");
    return *impl_;
  }

  std::shared_ptr<TensorImpl> impl_;
};

// Register `out = fn(parents...)` on the tape. No-op when autograd is off or
// no parent requires grad; in that case the output does not require grad.
void set_grad_fn(Tensor& out, std::vector<Tensor> parents,
                 std::function<void()> fn);

}  // namespace sdd
