#include "train/optim.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sdd::train {

AdamW::AdamW(nn::ParamList params, AdamWConfig config)
    : params_{std::move(params)}, config_{config} {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const nn::NamedParam& p : params_) {
    const auto n = static_cast<std::size_t>(p.tensor.numel());
    m_.emplace_back(n, 0.0F);
    v_.emplace_back(n, 0.0F);
  }
}

void AdamW::zero_grad() {
  for (nn::NamedParam& p : params_) p.tensor.zero_grad();
}

float AdamW::clip_gradients(float max_norm) {
  double total_sq = 0.0;
  for (nn::NamedParam& p : params_) {
    for (float g : p.tensor.grad()) total_sq += static_cast<double>(g) * g;
  }
  const auto norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0F) {
    const float scale = max_norm / norm;
    for (nn::NamedParam& p : params_) {
      for (float& g : p.tensor.grad()) g *= scale;
    }
  }
  return norm;
}

void AdamW::step(float lr) {
  ++step_count_;
  const auto t = static_cast<float>(step_count_);
  const float bias1 = 1.0F - std::pow(config_.beta1, t);
  const float bias2 = 1.0F - std::pow(config_.beta2, t);

  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::NamedParam& p = params_[i];
    auto data = p.tensor.data();
    const auto grad = p.tensor.grad();
    std::vector<float>& m = m_[i];
    std::vector<float>& v = v_[i];
    for (std::size_t j = 0; j < data.size(); ++j) {
      const float g = grad[j];
      m[j] = config_.beta1 * m[j] + (1.0F - config_.beta1) * g;
      v[j] = config_.beta2 * v[j] + (1.0F - config_.beta2) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      // Decoupled weight decay (AdamW): decay applied directly to weights.
      data[j] -= lr * (m_hat / (std::sqrt(v_hat) + config_.eps) +
                       config_.weight_decay * data[j]);
    }
  }
}

void AdamW::save_state(BinaryWriter& writer) const {
  writer.write_i64(step_count_);
  writer.write_u64(m_.size());
  for (std::size_t i = 0; i < m_.size(); ++i) {
    writer.write_vector(m_[i]);
    writer.write_vector(v_[i]);
  }
}

void AdamW::load_state(BinaryReader& reader) {
  const std::int64_t step_count = reader.read_i64();
  const std::uint64_t n = reader.read_u64();
  if (n != m_.size()) {
    throw SerializeError("AdamW::load_state: parameter count mismatch");
  }
  std::vector<std::vector<float>> m(n), v(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    m[i] = reader.read_vector<float>();
    v[i] = reader.read_vector<float>();
    if (m[i].size() != m_[i].size() || v[i].size() != v_[i].size()) {
      throw SerializeError("AdamW::load_state: moment shape mismatch");
    }
  }
  step_count_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
}

void AdamW::restore(const Snapshot& snap) {
  if (snap.m.size() != m_.size() || snap.v.size() != v_.size()) {
    throw std::invalid_argument("AdamW::restore: parameter count mismatch");
  }
  step_count_ = snap.step_count;
  m_ = snap.m;
  v_ = snap.v;
}

float cosine_lr(std::int64_t step, std::int64_t total_steps, std::int64_t warmup_steps,
                float base_lr, float min_lr) {
  if (total_steps <= 0) throw std::invalid_argument("cosine_lr: total_steps <= 0");
  if (step < warmup_steps && warmup_steps > 0) {
    return base_lr * static_cast<float>(step + 1) / static_cast<float>(warmup_steps);
  }
  const auto progress =
      static_cast<double>(step - warmup_steps) /
      static_cast<double>(std::max<std::int64_t>(1, total_steps - warmup_steps));
  const double clamped = std::min(1.0, std::max(0.0, progress));
  const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * clamped));
  return min_lr + (base_lr - min_lr) * static_cast<float>(cosine);
}

}  // namespace sdd::train
