// AdamW optimizer (decoupled weight decay), gradient clipping, and the cosine
// learning-rate schedule with linear warmup used by all fine-tuning runs.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.hpp"
#include "util/hash.hpp"
#include "util/serialize.hpp"

namespace sdd::train {

struct AdamWConfig {
  float lr = 1e-3F;
  float beta1 = 0.9F;
  float beta2 = 0.95F;
  float eps = 1e-8F;
  float weight_decay = 0.01F;

  std::uint64_t hash() const {
    std::uint64_t h = kFnvOffset;
    h = fnv1a_value(lr, h);
    h = fnv1a_value(beta1, h);
    h = fnv1a_value(beta2, h);
    h = fnv1a_value(eps, h);
    h = fnv1a_value(weight_decay, h);
    return h;
  }
};

class AdamW {
 public:
  AdamW(nn::ParamList params, AdamWConfig config);

  // One update using the supplied learning rate (callers pass the scheduled
  // value each step; config.lr is the default).
  void step(float lr);
  void step() { step(config_.lr); }

  void zero_grad();

  // Global-norm gradient clipping; returns the pre-clip norm.
  float clip_gradients(float max_norm);

  const AdamWConfig& config() const { return config_; }
  std::int64_t step_count() const { return step_count_; }

  // Checkpoint support: serialize/restore step count and both moment buffers.
  // load_state throws SerializeError if the stored shapes do not match this
  // optimizer's parameter list.
  void save_state(BinaryWriter& writer) const;
  void load_state(BinaryReader& reader);

  // In-memory equivalent of save_state/load_state, used by the trainer's
  // numeric-divergence rollback (no disk round-trip on the hot path).
  struct Snapshot {
    std::int64_t step_count = 0;
    std::vector<std::vector<float>> m, v;
  };
  Snapshot snapshot() const { return Snapshot{step_count_, m_, v_}; }
  void restore(const Snapshot& snap);

 private:
  nn::ParamList params_;
  AdamWConfig config_;
  std::vector<std::vector<float>> m_;  // first moments, parallel to params_
  std::vector<std::vector<float>> v_;  // second moments
  std::int64_t step_count_ = 0;
};

// Linear warmup to `base_lr`, then cosine decay to `min_lr` at `total_steps`.
float cosine_lr(std::int64_t step, std::int64_t total_steps, std::int64_t warmup_steps,
                float base_lr, float min_lr);

}  // namespace sdd::train
