#include "train/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"
#include "util/supervisor.hpp"

namespace sdd::train {
namespace {

float tail_mean(const std::vector<float>& losses) {
  if (losses.empty()) return 0.0F;
  const std::size_t tail = std::max<std::size_t>(1, losses.size() / 10);
  const auto begin = losses.end() - static_cast<std::ptrdiff_t>(tail);
  return std::accumulate(begin, losses.end(), 0.0F) / static_cast<float>(tail);
}

// ---- mid-run checkpointing ------------------------------------------------
//
// A checkpoint is a single checksummed artifact holding everything the loop
// needs to continue exactly where it stopped: trainable parameter values,
// AdamW moments + step count, the RNG stream position, and the next step
// index. A fingerprint of the run configuration guards against resuming a
// checkpoint from a different run that happens to share the path.

constexpr std::string_view kCheckpointMagic = "SDDCKPT1";
constexpr std::uint32_t kCheckpointVersion = 1;

std::uint64_t params_fingerprint(const nn::ParamList& params,
                                 std::uint64_t seed_hash) {
  std::uint64_t h = seed_hash;
  for (const nn::NamedParam& p : params) {
    h = fnv1a(p.name, h);
    h = fnv1a_value(p.tensor.numel(), h);
  }
  return h;
}

void save_checkpoint(const std::filesystem::path& path, std::uint64_t fingerprint,
                     std::int64_t next_step, const nn::ParamList& params,
                     const AdamW& optimizer, const Rng& rng) {
  try {
    BinaryWriter writer{path};
    writer.write_magic(kCheckpointMagic, kCheckpointVersion);
    writer.write_u64(fingerprint);
    writer.write_i64(next_step);
    const Rng::State rng_state = rng.state();
    for (std::uint64_t word : rng_state.words) writer.write_u64(word);
    writer.write_f64(rng_state.cached_gaussian);
    writer.write_bool(rng_state.cached_gaussian_valid);
    writer.write_u64(params.size());
    for (const nn::NamedParam& p : params) {
      writer.write_string(p.name);
      const auto data = p.tensor.data();
      writer.write_vector(std::vector<float>(data.begin(), data.end()));
    }
    optimizer.save_state(writer);
    writer.flush();
  } catch (const SerializeError& e) {
    // A failed checkpoint must never kill the run it exists to protect.
    log_warn("checkpoint: failed to save ", path.string(), ": ", e.what(),
             " (training continues)");
  }
}

// Restores state from `path` and returns the step to resume from, or nullopt
// (fresh start) when there is no checkpoint or it is stale/corrupt. All
// mutation happens only after the whole file has parsed, so a bad checkpoint
// can never leave the model half-restored.
std::optional<std::int64_t> try_resume(const std::filesystem::path& path,
                                       std::uint64_t fingerprint,
                                       nn::ParamList& params, AdamW& optimizer,
                                       Rng& rng) {
  if (!std::filesystem::exists(path)) return std::nullopt;
  try {
    BinaryReader reader{path};
    reader.expect_magic(kCheckpointMagic, kCheckpointVersion);
    if (reader.read_u64() != fingerprint) {
      log_warn("checkpoint: ", path.string(),
               " belongs to a different run configuration; starting fresh");
      std::error_code ec;
      std::filesystem::remove(path, ec);
      return std::nullopt;
    }
    const std::int64_t next_step = reader.read_i64();
    Rng::State rng_state;
    for (std::uint64_t& word : rng_state.words) word = reader.read_u64();
    rng_state.cached_gaussian = reader.read_f64();
    rng_state.cached_gaussian_valid = reader.read_bool();
    const std::uint64_t count = reader.read_u64();
    if (count != params.size()) {
      throw SerializeError("checkpoint: parameter count mismatch");
    }
    std::vector<std::vector<float>> values;
    values.reserve(params.size());
    for (const nn::NamedParam& p : params) {
      const std::string name = reader.read_string();
      if (name != p.name) {
        throw SerializeError("checkpoint: parameter order mismatch at " + p.name);
      }
      values.push_back(reader.read_vector<float>());
      if (static_cast<std::int64_t>(values.back().size()) != p.tensor.numel()) {
        throw SerializeError("checkpoint: shape mismatch for " + name);
      }
    }
    optimizer.load_state(reader);  // throws before mutating on mismatch
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i].tensor.copy_from(values[i]);
    }
    rng.set_state(rng_state);
    return next_step;
  } catch (const SerializeError& e) {
    log_warn("checkpoint: corrupt ", path.string(), ": ", e.what(),
             " — quarantined, starting fresh");
    quarantine_artifact(path);
    return std::nullopt;
  }
}

bool checkpointing_enabled(const std::filesystem::path& path,
                           std::int64_t every) {
  return !path.empty() && every > 0;
}

void finish_checkpointing(const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(std::filesystem::path{path.string() + ".tmp"}, ec);
}

// ---- numeric-divergence guard ---------------------------------------------
//
// Detects a poisoned step (non-finite loss, non-finite or exploding gradient
// norm) BEFORE the optimizer applies it, restores the loop to an in-memory
// snapshot of (params, optimizer moments, RNG position), and lets the loop
// replay. Replay is deterministic, so a transient divergence (one bad batch,
// an injected NaN) converges to weights bit-identical to a run where it
// never happened. A divergence that reproduces at the same step after
// max_rollbacks replays is treated as persistent: the offending update is
// skipped and the LR scale halved for the remainder of the run.

// Snapshot cadence when disk checkpointing is off; the cadence never affects
// final weights (replay is exact), only how much work a rollback repeats.
constexpr std::int64_t kGuardSnapshotEvery = 16;

class NumericGuard {
 public:
  NumericGuard(const char* loop, bool enabled, float grad_norm_limit,
               std::int64_t max_rollbacks, std::int64_t snapshot_every)
      : loop_{loop},
        enabled_{enabled},
        grad_norm_limit_{grad_norm_limit},
        max_rollbacks_{max_rollbacks},
        snapshot_every_{snapshot_every > 0 ? snapshot_every : kGuardSnapshotEvery} {}

  bool enabled() const { return enabled_; }
  float lr_scale() const { return lr_scale_; }
  std::int64_t snapshot_step() const { return snap_step_; }

  bool bad_loss(float loss) const { return enabled_ && !std::isfinite(loss); }

  bool bad_grad_norm(float norm) const {
    return enabled_ && (!std::isfinite(norm) ||
                        (grad_norm_limit_ > 0.0F && norm > grad_norm_limit_));
  }

  void capture(std::int64_t step, const nn::ParamList& params,
               const AdamW& optimizer, const Rng& rng) {
    if (!enabled_) return;
    snap_step_ = step;
    snap_params_.clear();
    snap_params_.reserve(params.size());
    for (const nn::NamedParam& p : params) {
      const auto data = p.tensor.data();
      snap_params_.emplace_back(data.begin(), data.end());
    }
    snap_opt_ = optimizer.snapshot();
    snap_rng_ = rng.state();
  }

  // Refresh the rolling snapshot on the cadence (called after step `step`
  // completed, i.e. with `next` = step + 1, mirroring checkpoint saves).
  void maybe_capture(std::int64_t next, const nn::ParamList& params,
                     const AdamW& optimizer, const Rng& rng) {
    if (enabled_ && next % snapshot_every_ == 0) {
      capture(next, params, optimizer, rng);
    }
  }

  // Handles a detected divergence at `step`. Returns true when the loop was
  // rolled back (resume from snapshot_step()), false when the offending
  // batch should be skipped instead.
  bool handle_divergence(std::int64_t step, float loss, float grad_norm,
                         nn::ParamList& params, AdamW& optimizer, Rng& rng,
                         TrainStats& stats) {
    if (step == last_diverged_step_) {
      ++repeats_;
    } else {
      last_diverged_step_ = step;
      repeats_ = 1;
    }
    if (repeats_ > max_rollbacks_) {
      lr_scale_ *= 0.5F;
      ++stats.skipped_batches;
      ++stats.lr_halvings;
      log_warn(loop_, ": persistent numeric divergence at step ", step,
               " (loss=", loss, ", grad_norm=", grad_norm, ") after ",
               repeats_ - 1, " rollback(s) — skipping batch, halving LR scale to ",
               lr_scale_);
      return false;
    }
    log_warn(loop_, ": numeric divergence at step ", step, " (loss=", loss,
             ", grad_norm=", grad_norm, ") — rolling back to step ", snap_step_);
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i].tensor.copy_from(snap_params_[i]);
    }
    optimizer.restore(snap_opt_);
    rng.set_state(snap_rng_);
    ++stats.rollbacks;
    return true;
  }

 private:
  const char* loop_;
  bool enabled_;
  float grad_norm_limit_;
  std::int64_t max_rollbacks_;
  std::int64_t snapshot_every_;

  std::int64_t snap_step_ = 0;
  std::vector<std::vector<float>> snap_params_;
  AdamW::Snapshot snap_opt_;
  Rng::State snap_rng_;

  std::int64_t last_diverged_step_ = -1;
  std::int64_t repeats_ = 0;
  float lr_scale_ = 1.0F;
};

}  // namespace

SftBatch pack_sft_batch(const std::vector<const data::SftExample*>& examples,
                        data::TokenId pad_token, std::int64_t max_len) {
  SftBatch batch;
  batch.batch = static_cast<std::int64_t>(examples.size());
  std::int64_t longest = 0;
  for (const data::SftExample* example : examples) {
    longest = std::max(longest, static_cast<std::int64_t>(example->prompt.size() +
                                                          example->target.size()));
  }
  batch.seq = std::min(longest, max_len);
  const auto total = static_cast<std::size_t>(batch.batch * batch.seq);
  batch.inputs.assign(total, pad_token);
  batch.targets.assign(total, 0);
  batch.weights.assign(total, 0.0F);

  for (std::int64_t b = 0; b < batch.batch; ++b) {
    const data::SftExample& example = *examples[static_cast<std::size_t>(b)];
    std::vector<data::TokenId> row{example.prompt};
    row.insert(row.end(), example.target.begin(), example.target.end());
    const auto row_len = std::min<std::int64_t>(
        static_cast<std::int64_t>(row.size()), batch.seq);
    const auto prompt_len = static_cast<std::int64_t>(example.prompt.size());
    for (std::int64_t t = 0; t < row_len; ++t) {
      batch.inputs[static_cast<std::size_t>(b * batch.seq + t)] =
          row[static_cast<std::size_t>(t)];
    }
    // Position t predicts row[t+1]; only response-token predictions count.
    for (std::int64_t t = 0; t + 1 < row_len; ++t) {
      const std::size_t flat = static_cast<std::size_t>(b * batch.seq + t);
      batch.targets[flat] = row[static_cast<std::size_t>(t + 1)];
      if (t + 1 >= prompt_len) batch.weights[flat] = 1.0F;
    }
  }
  return batch;
}

namespace {

float sft_batch_loss(const nn::TransformerLM& model, const SftBatch& batch,
                     Tensor* out_loss) {
  const Tensor logits = model.forward(batch.inputs, batch.batch, batch.seq);
  Tensor loss = ops::cross_entropy(logits, batch.targets, batch.weights);
  const float value = loss.item();
  if (out_loss != nullptr) *out_loss = loss;
  return value;
}

}  // namespace

TrainStats pretrain(nn::TransformerLM& model, std::span<const data::TokenId> stream,
                    const PretrainConfig& config) {
  if (static_cast<std::int64_t>(stream.size()) < config.seq_len + 2) {
    throw std::invalid_argument("pretrain: stream shorter than one window");
  }
  nn::ParamList params = model.trainable_parameters();
  AdamW optimizer{params, config.optimizer};
  Rng rng{config.seed};
  TrainStats stats;
  stats.losses.reserve(static_cast<std::size_t>(config.steps));

  const bool checkpointing =
      checkpointing_enabled(config.checkpoint_path, config.checkpoint_every);
  std::uint64_t fingerprint = 0;
  std::int64_t start_step = 0;
  if (checkpointing) {
    std::uint64_t h = fnv1a("pretrain");
    h = fnv1a_bytes(std::as_bytes(stream), h);
    h = fnv1a_value(config.steps, h);
    h = fnv1a_value(config.batch_size, h);
    h = fnv1a_value(config.seq_len, h);
    h = fnv1a_value(config.warmup_steps, h);
    h = fnv1a_value(config.clip_norm, h);
    h = fnv1a_value(config.min_lr_fraction, h);
    h = fnv1a_value(config.seed, h);
    h = hash_combine(h, config.optimizer.hash());
    fingerprint = params_fingerprint(params, h);
    if (const auto resumed = try_resume(config.checkpoint_path, fingerprint,
                                        params, optimizer, rng)) {
      start_step = *resumed;
      log_info("pretrain: resumed from checkpoint at step ", start_step, "/",
               config.steps);
    }
  }

  const std::int64_t max_start =
      static_cast<std::int64_t>(stream.size()) - config.seq_len - 1;
  std::vector<data::TokenId> inputs(
      static_cast<std::size_t>(config.batch_size * config.seq_len));
  std::vector<std::int32_t> targets(inputs.size());
  const std::vector<float> weights(inputs.size(), 1.0F);

  NumericGuard guard{"pretrain", config.numeric_guard, config.grad_norm_limit,
                     config.max_rollbacks, config.checkpoint_every};
  guard.capture(start_step, params, optimizer, rng);

  std::int64_t step = start_step;
  while (step < config.steps) {
    for (std::int64_t b = 0; b < config.batch_size; ++b) {
      const std::int64_t start = rng.uniform_int(0, max_start);
      for (std::int64_t t = 0; t < config.seq_len; ++t) {
        const auto flat = static_cast<std::size_t>(b * config.seq_len + t);
        inputs[flat] = stream[static_cast<std::size_t>(start + t)];
        targets[flat] = stream[static_cast<std::size_t>(start + t + 1)];
      }
    }
    const Tensor logits = model.forward(inputs, config.batch_size, config.seq_len);
    Tensor loss = ops::cross_entropy(logits, targets, weights);
    const float loss_value = fault::poison_loss(loss.item());
    float grad_norm = 0.0F;
    bool diverged = guard.bad_loss(loss_value);
    if (!diverged) {
      optimizer.zero_grad();
      loss.backward();
      grad_norm = optimizer.clip_gradients(config.clip_norm);
      diverged = guard.bad_grad_norm(grad_norm);
    }
    if (diverged) {
      if (guard.handle_divergence(step, loss_value, grad_norm, params,
                                  optimizer, rng, stats)) {
        stats.losses.resize(
            static_cast<std::size_t>(guard.snapshot_step() - start_step));
        step = guard.snapshot_step();
      } else {
        ++step;  // batch skipped, no update recorded
      }
      supervisor::heartbeat();
      continue;
    }
    const float lr =
        cosine_lr(step, config.steps, config.warmup_steps, config.optimizer.lr,
                  config.optimizer.lr * config.min_lr_fraction) *
        guard.lr_scale();
    optimizer.step(lr);

    stats.losses.push_back(loss_value);
    if (step == start_step) stats.initial_loss = loss_value;
    if (config.log_every > 0 && (step % config.log_every == 0)) {
      log_info("pretrain step ", step, "/", config.steps, " loss=", loss_value);
    }
    if (checkpointing && (step + 1) % config.checkpoint_every == 0 &&
        step + 1 < config.steps) {
      save_checkpoint(config.checkpoint_path, fingerprint, step + 1, params,
                      optimizer, rng);
    }
    guard.maybe_capture(step + 1, params, optimizer, rng);
    fault::on_train_step();
    supervisor::heartbeat();
    ++step;
  }
  if (checkpointing) finish_checkpointing(config.checkpoint_path);
  stats.final_loss = tail_mean(stats.losses);
  return stats;
}

TrainStats sft_train(nn::TransformerLM& model, const data::SftDataset& dataset,
                     const SftTrainConfig& config) {
  if (dataset.examples.empty()) {
    throw std::invalid_argument("sft_train: empty dataset");
  }
  nn::ParamList params = model.trainable_parameters();
  AdamW optimizer{params, config.optimizer};
  Rng rng{config.seed};
  TrainStats stats;

  const auto n = static_cast<std::int64_t>(dataset.examples.size());
  const std::int64_t steps_per_epoch =
      std::max<std::int64_t>(1, n / config.batch_size);
  const std::int64_t steps =
      std::min(config.max_steps, config.epochs * steps_per_epoch);
  const std::int64_t max_len = model.config().max_seq_len;

  const bool checkpointing =
      checkpointing_enabled(config.checkpoint_path, config.checkpoint_every);
  std::uint64_t fingerprint = 0;
  std::int64_t start_step = 0;
  if (checkpointing) {
    std::uint64_t h = fnv1a("sft");
    h = hash_combine(h, dataset.hash());
    h = hash_combine(h, config.hash());
    h = fnv1a_value(max_len, h);
    fingerprint = params_fingerprint(params, h);
    if (const auto resumed = try_resume(config.checkpoint_path, fingerprint,
                                        params, optimizer, rng)) {
      start_step = *resumed;
      log_info("sft[", dataset.name, "]: resumed from checkpoint at step ",
               start_step, "/", steps);
    }
  }

  NumericGuard guard{"sft", config.numeric_guard, config.grad_norm_limit,
                     config.max_rollbacks, config.checkpoint_every};
  guard.capture(start_step, params, optimizer, rng);

  std::int64_t step = start_step;
  while (step < steps) {
    std::vector<const data::SftExample*> picked;
    picked.reserve(static_cast<std::size_t>(config.batch_size));
    for (std::int64_t b = 0; b < config.batch_size; ++b) {
      picked.push_back(&dataset.examples[rng.index(dataset.examples.size())]);
    }
    const SftBatch batch =
        pack_sft_batch(picked, data::Vocab::instance().pad(), max_len);

    Tensor loss;
    const float loss_value = fault::poison_loss(sft_batch_loss(model, batch, &loss));
    float grad_norm = 0.0F;
    bool diverged = guard.bad_loss(loss_value);
    if (!diverged) {
      optimizer.zero_grad();
      loss.backward();
      grad_norm = optimizer.clip_gradients(config.clip_norm);
      diverged = guard.bad_grad_norm(grad_norm);
    }
    if (diverged) {
      if (guard.handle_divergence(step, loss_value, grad_norm, params,
                                  optimizer, rng, stats)) {
        stats.losses.resize(
            static_cast<std::size_t>(guard.snapshot_step() - start_step));
        step = guard.snapshot_step();
      } else {
        ++step;  // batch skipped, no update recorded
      }
      supervisor::heartbeat();
      continue;
    }
    const float lr = cosine_lr(step, steps, config.warmup_steps, config.optimizer.lr,
                               config.optimizer.lr * config.min_lr_fraction) *
                     guard.lr_scale();
    optimizer.step(lr);

    stats.losses.push_back(loss_value);
    if (step == start_step) stats.initial_loss = loss_value;
    if (config.log_every > 0 && (step % config.log_every == 0)) {
      log_info("sft[", dataset.name, "] step ", step, "/", steps,
               " loss=", loss_value);
    }
    if (checkpointing && (step + 1) % config.checkpoint_every == 0 &&
        step + 1 < steps) {
      save_checkpoint(config.checkpoint_path, fingerprint, step + 1, params,
                      optimizer, rng);
    }
    guard.maybe_capture(step + 1, params, optimizer, rng);
    fault::on_train_step();
    supervisor::heartbeat();
    ++step;
  }
  if (checkpointing) finish_checkpointing(config.checkpoint_path);
  stats.final_loss = tail_mean(stats.losses);
  return stats;
}

float sft_loss(const nn::TransformerLM& model, const data::SftDataset& dataset,
               std::int64_t max_examples, std::int64_t batch_size) {
  NoGradGuard no_grad;
  const auto n = std::min<std::int64_t>(
      max_examples, static_cast<std::int64_t>(dataset.examples.size()));
  if (n == 0) throw std::invalid_argument("sft_loss: empty dataset");
  double total = 0.0;
  std::int64_t batches = 0;
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min(n, begin + batch_size);
    std::vector<const data::SftExample*> picked;
    for (std::int64_t i = begin; i < end; ++i) {
      picked.push_back(&dataset.examples[static_cast<std::size_t>(i)]);
    }
    const SftBatch batch = pack_sft_batch(picked, data::Vocab::instance().pad(),
                                          model.config().max_seq_len);
    total += sft_batch_loss(model, batch, nullptr);
    ++batches;
  }
  return static_cast<float>(total / static_cast<double>(batches));
}

}  // namespace sdd::train
