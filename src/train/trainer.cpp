#include "train/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/log.hpp"

namespace sdd::train {
namespace {

float tail_mean(const std::vector<float>& losses) {
  if (losses.empty()) return 0.0F;
  const std::size_t tail = std::max<std::size_t>(1, losses.size() / 10);
  const auto begin = losses.end() - static_cast<std::ptrdiff_t>(tail);
  return std::accumulate(begin, losses.end(), 0.0F) / static_cast<float>(tail);
}

}  // namespace

SftBatch pack_sft_batch(const std::vector<const data::SftExample*>& examples,
                        data::TokenId pad_token, std::int64_t max_len) {
  SftBatch batch;
  batch.batch = static_cast<std::int64_t>(examples.size());
  std::int64_t longest = 0;
  for (const data::SftExample* example : examples) {
    longest = std::max(longest, static_cast<std::int64_t>(example->prompt.size() +
                                                          example->target.size()));
  }
  batch.seq = std::min(longest, max_len);
  const auto total = static_cast<std::size_t>(batch.batch * batch.seq);
  batch.inputs.assign(total, pad_token);
  batch.targets.assign(total, 0);
  batch.weights.assign(total, 0.0F);

  for (std::int64_t b = 0; b < batch.batch; ++b) {
    const data::SftExample& example = *examples[static_cast<std::size_t>(b)];
    std::vector<data::TokenId> row{example.prompt};
    row.insert(row.end(), example.target.begin(), example.target.end());
    const auto row_len = std::min<std::int64_t>(
        static_cast<std::int64_t>(row.size()), batch.seq);
    const auto prompt_len = static_cast<std::int64_t>(example.prompt.size());
    for (std::int64_t t = 0; t < row_len; ++t) {
      batch.inputs[static_cast<std::size_t>(b * batch.seq + t)] =
          row[static_cast<std::size_t>(t)];
    }
    // Position t predicts row[t+1]; only response-token predictions count.
    for (std::int64_t t = 0; t + 1 < row_len; ++t) {
      const std::size_t flat = static_cast<std::size_t>(b * batch.seq + t);
      batch.targets[flat] = row[static_cast<std::size_t>(t + 1)];
      if (t + 1 >= prompt_len) batch.weights[flat] = 1.0F;
    }
  }
  return batch;
}

namespace {

float sft_batch_loss(const nn::TransformerLM& model, const SftBatch& batch,
                     Tensor* out_loss) {
  const Tensor logits = model.forward(batch.inputs, batch.batch, batch.seq);
  Tensor loss = ops::cross_entropy(logits, batch.targets, batch.weights);
  const float value = loss.item();
  if (out_loss != nullptr) *out_loss = loss;
  return value;
}

}  // namespace

TrainStats pretrain(nn::TransformerLM& model, std::span<const data::TokenId> stream,
                    const PretrainConfig& config) {
  if (static_cast<std::int64_t>(stream.size()) < config.seq_len + 2) {
    throw std::invalid_argument("pretrain: stream shorter than one window");
  }
  AdamW optimizer{model.trainable_parameters(), config.optimizer};
  Rng rng{config.seed};
  TrainStats stats;
  stats.losses.reserve(static_cast<std::size_t>(config.steps));

  const std::int64_t max_start =
      static_cast<std::int64_t>(stream.size()) - config.seq_len - 1;
  std::vector<data::TokenId> inputs(
      static_cast<std::size_t>(config.batch_size * config.seq_len));
  std::vector<std::int32_t> targets(inputs.size());
  const std::vector<float> weights(inputs.size(), 1.0F);

  for (std::int64_t step = 0; step < config.steps; ++step) {
    for (std::int64_t b = 0; b < config.batch_size; ++b) {
      const std::int64_t start = rng.uniform_int(0, max_start);
      for (std::int64_t t = 0; t < config.seq_len; ++t) {
        const auto flat = static_cast<std::size_t>(b * config.seq_len + t);
        inputs[flat] = stream[static_cast<std::size_t>(start + t)];
        targets[flat] = stream[static_cast<std::size_t>(start + t + 1)];
      }
    }
    const Tensor logits = model.forward(inputs, config.batch_size, config.seq_len);
    Tensor loss = ops::cross_entropy(logits, targets, weights);
    const float loss_value = loss.item();
    optimizer.zero_grad();
    loss.backward();
    optimizer.clip_gradients(config.clip_norm);
    const float lr =
        cosine_lr(step, config.steps, config.warmup_steps, config.optimizer.lr,
                  config.optimizer.lr * config.min_lr_fraction);
    optimizer.step(lr);

    stats.losses.push_back(loss_value);
    if (step == 0) stats.initial_loss = loss_value;
    if (config.log_every > 0 && (step % config.log_every == 0)) {
      log_info("pretrain step ", step, "/", config.steps, " loss=", loss_value);
    }
  }
  stats.final_loss = tail_mean(stats.losses);
  return stats;
}

TrainStats sft_train(nn::TransformerLM& model, const data::SftDataset& dataset,
                     const SftTrainConfig& config) {
  if (dataset.examples.empty()) {
    throw std::invalid_argument("sft_train: empty dataset");
  }
  AdamW optimizer{model.trainable_parameters(), config.optimizer};
  Rng rng{config.seed};
  TrainStats stats;

  const auto n = static_cast<std::int64_t>(dataset.examples.size());
  const std::int64_t steps_per_epoch =
      std::max<std::int64_t>(1, n / config.batch_size);
  const std::int64_t steps =
      std::min(config.max_steps, config.epochs * steps_per_epoch);
  const std::int64_t max_len = model.config().max_seq_len;

  for (std::int64_t step = 0; step < steps; ++step) {
    std::vector<const data::SftExample*> picked;
    picked.reserve(static_cast<std::size_t>(config.batch_size));
    for (std::int64_t b = 0; b < config.batch_size; ++b) {
      picked.push_back(&dataset.examples[rng.index(dataset.examples.size())]);
    }
    const SftBatch batch =
        pack_sft_batch(picked, data::Vocab::instance().pad(), max_len);

    Tensor loss;
    const float loss_value = sft_batch_loss(model, batch, &loss);
    optimizer.zero_grad();
    loss.backward();
    optimizer.clip_gradients(config.clip_norm);
    const float lr = cosine_lr(step, steps, config.warmup_steps, config.optimizer.lr,
                               config.optimizer.lr * config.min_lr_fraction);
    optimizer.step(lr);

    stats.losses.push_back(loss_value);
    if (step == 0) stats.initial_loss = loss_value;
    if (config.log_every > 0 && (step % config.log_every == 0)) {
      log_info("sft[", dataset.name, "] step ", step, "/", steps,
               " loss=", loss_value);
    }
  }
  stats.final_loss = tail_mean(stats.losses);
  return stats;
}

float sft_loss(const nn::TransformerLM& model, const data::SftDataset& dataset,
               std::int64_t max_examples, std::int64_t batch_size) {
  NoGradGuard no_grad;
  const auto n = std::min<std::int64_t>(
      max_examples, static_cast<std::int64_t>(dataset.examples.size()));
  if (n == 0) throw std::invalid_argument("sft_loss: empty dataset");
  double total = 0.0;
  std::int64_t batches = 0;
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min(n, begin + batch_size);
    std::vector<const data::SftExample*> picked;
    for (std::int64_t i = begin; i < end; ++i) {
      picked.push_back(&dataset.examples[static_cast<std::size_t>(i)]);
    }
    const SftBatch batch = pack_sft_batch(picked, data::Vocab::instance().pad(),
                                          model.config().max_seq_len);
    total += sft_batch_loss(model, batch, nullptr);
    ++batches;
  }
  return static_cast<float>(total / static_cast<double>(batches));
}

}  // namespace sdd::train
