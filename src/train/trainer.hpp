// Training loops: next-token pre-training over a corpus stream and masked
// supervised fine-tuning over (prompt, target) examples.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "data/sft.hpp"
#include "data/vocab.hpp"
#include "nn/transformer.hpp"
#include "train/optim.hpp"

namespace sdd::train {

struct TrainStats {
  std::vector<float> losses;       // loss at every step
  float initial_loss = 0.0F;
  float final_loss = 0.0F;         // mean over the last 10% of steps

  // Numeric-divergence guard observability (see docs/robustness.md).
  std::int64_t rollbacks = 0;        // snapshot restores after divergence
  std::int64_t skipped_batches = 0;  // updates dropped after repeated rollbacks
  std::int64_t lr_halvings = 0;      // LR-scale halvings after skips
};

// A packed fine-tuning batch: padded [prompt target] rows with next-token
// targets and weights masking everything but response-token predictions.
// Exposed so distillation-style trainers (core/kd) can reuse the packing.
struct SftBatch {
  std::vector<data::TokenId> inputs;
  std::vector<std::int32_t> targets;
  std::vector<float> weights;
  std::int64_t batch = 0;
  std::int64_t seq = 0;
};

SftBatch pack_sft_batch(const std::vector<const data::SftExample*>& examples,
                        data::TokenId pad_token, std::int64_t max_len);

struct PretrainConfig {
  std::int64_t steps = 1200;
  std::int64_t batch_size = 8;
  std::int64_t seq_len = 80;
  std::int64_t warmup_steps = 50;
  float clip_norm = 1.0F;
  float min_lr_fraction = 0.1F;
  AdamWConfig optimizer{.lr = 3e-3F};
  std::uint64_t seed = 1;
  std::int64_t log_every = 100;  // 0 disables progress logging

  // Mid-run crash safety: every `checkpoint_every` steps the trainable
  // parameters, optimizer moments, RNG state, and step counter are written
  // atomically to `checkpoint_path`; a restarted run resumes from the last
  // checkpoint and produces bit-identical final weights. Both fields must be
  // set to enable it. Deliberately excluded from result-identity hashes —
  // checkpointing never changes what is computed, only how it survives.
  std::filesystem::path checkpoint_path;
  std::int64_t checkpoint_every = 0;

  // Numeric-divergence guard: a non-finite loss, or a pre-clip gradient norm
  // that is non-finite or exceeds grad_norm_limit, restores the loop's last
  // in-memory snapshot (taken on the checkpoint cadence) and replays. After
  // max_rollbacks repeats at the same step the offending batch is skipped
  // and the LR scale halved instead. Excluded from result-identity hashes:
  // the guard changes nothing unless divergence actually fires, and a
  // transient divergence replays to bit-identical weights.
  bool numeric_guard = true;
  float grad_norm_limit = 1e8F;   // <= 0 disables the norm check
  std::int64_t max_rollbacks = 2;
};

TrainStats pretrain(nn::TransformerLM& model, std::span<const data::TokenId> stream,
                    const PretrainConfig& config);

struct SftTrainConfig {
  std::int64_t epochs = 3;
  std::int64_t max_steps = 400;   // hard cap; actual steps = min(cap, epochs*n/batch)
  std::int64_t batch_size = 8;
  std::int64_t warmup_steps = 10;
  float clip_norm = 1.0F;
  float min_lr_fraction = 0.1F;
  AdamWConfig optimizer{.lr = 1e-3F};
  std::uint64_t seed = 2;
  std::int64_t log_every = 0;

  // See PretrainConfig: both must be set to enable checkpoint/resume; not
  // part of hash() because they do not affect the trained weights.
  std::filesystem::path checkpoint_path;
  std::int64_t checkpoint_every = 0;

  // See PretrainConfig: numeric-divergence rollback policy (not hashed).
  bool numeric_guard = true;
  float grad_norm_limit = 1e8F;
  std::int64_t max_rollbacks = 2;

  std::uint64_t hash() const {
    std::uint64_t h = optimizer.hash();
    h = fnv1a_value(epochs, h);
    h = fnv1a_value(max_steps, h);
    h = fnv1a_value(batch_size, h);
    h = fnv1a_value(warmup_steps, h);
    h = fnv1a_value(clip_norm, h);
    h = fnv1a_value(min_lr_fraction, h);
    h = fnv1a_value(seed, h);
    return h;
  }
};

// Fine-tune on the dataset with the loss masked to target tokens only
// (negative log-likelihood of the response given the prompt, paper §2.2).
// Trains whatever `model.trainable_parameters()` returns, so it covers both
// full fine-tuning and LoRA fine-tuning transparently.
TrainStats sft_train(nn::TransformerLM& model, const data::SftDataset& dataset,
                     const SftTrainConfig& config);

// Mean masked NLL of the dataset under the model (no updates); used by tests
// and by the catastrophic-forgetting diagnostics.
float sft_loss(const nn::TransformerLM& model, const data::SftDataset& dataset,
               std::int64_t max_examples, std::int64_t batch_size = 8);

}  // namespace sdd::train
