// Cooperative cancellation and deadline propagation for long-running work.
//
// A CancelToken is a cheap copyable handle to shared cancellation state.
// Producers hand one to a worker (a decode loop, a serving request) and flip
// it with cancel(); the worker polls cancelled() at natural progress points
// (once per generated token) and winds down. A token may also carry a
// wall-clock deadline, in which case cancelled() starts returning true once
// the deadline passes — no timer thread involved, expiry is observed at the
// next poll.
//
// The default-constructed token is *empty*: it owns no state, never cancels,
// and cancelled() is a single null check, so threading a token through an
// API costs nothing for callers that do not use it (nn::generate takes one
// this way).
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace sdd {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  // Empty token: never cancels, zero-cost to poll.
  CancelToken() = default;

  // Cancellable token with no deadline.
  static CancelToken make() { return CancelToken{Clock::time_point::max()}; }

  // Token that auto-cancels once `budget` has elapsed from now.
  static CancelToken with_deadline(std::chrono::milliseconds budget) {
    return CancelToken{Clock::now() + budget};
  }

  bool valid() const noexcept { return state_ != nullptr; }

  // Requests cancellation. Thread-safe; no-op on an empty token.
  void cancel() noexcept {
    if (state_) state_->cancelled.store(true, std::memory_order_release);
  }

  // True once cancel() was called or the deadline passed. Empty tokens are
  // never cancelled.
  bool cancelled() const noexcept {
    if (!state_) return false;
    if (state_->cancelled.load(std::memory_order_acquire)) return true;
    return state_->deadline != Clock::time_point::max() &&
           Clock::now() >= state_->deadline;
  }

  bool has_deadline() const noexcept {
    return state_ && state_->deadline != Clock::time_point::max();
  }
  Clock::time_point deadline() const noexcept {
    return state_ ? state_->deadline : Clock::time_point::max();
  }

  // Why the token reads as cancelled: "cancelled" for an explicit cancel(),
  // "deadline exceeded" for expiry, "" when not cancelled. An explicit
  // cancel wins when both apply.
  const char* reason() const noexcept {
    if (!state_) return "";
    if (state_->cancelled.load(std::memory_order_acquire)) return "cancelled";
    if (state_->deadline != Clock::time_point::max() &&
        Clock::now() >= state_->deadline) {
      return "deadline exceeded";
    }
    return "";
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    Clock::time_point deadline = Clock::time_point::max();
  };

  explicit CancelToken(Clock::time_point deadline)
      : state_{std::make_shared<State>()} {
    state_->deadline = deadline;
  }

  std::shared_ptr<State> state_;
};

}  // namespace sdd
