#include "util/env.hpp"

#include <cstdlib>
#include <string_view>

namespace sdd {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? std::string{value} : fallback;
}

bool env_flag(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const std::string_view v{value};
  return v == "1" || v == "true" || v == "on" || v == "yes";
}

}  // namespace sdd
