// Environment-variable configuration knobs shared by benches and examples.
#pragma once

#include <cstdint>
#include <string>

namespace sdd {

// Returns the environment variable value or `fallback` when unset/unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);
double env_double(const char* name, double fallback);
std::string env_string(const char* name, const std::string& fallback);
bool env_flag(const char* name, bool fallback);

}  // namespace sdd
