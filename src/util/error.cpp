#include "util/error.hpp"

namespace sdd {

std::string_view error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kTransientIo:
      return "transient_io";
    case ErrorKind::kCorruptArtifact:
      return "corrupt_artifact";
    case ErrorKind::kNumericDivergence:
      return "numeric_divergence";
    case ErrorKind::kTimeout:
      return "timeout";
    case ErrorKind::kResourceExhausted:
      return "resource_exhausted";
    case ErrorKind::kWorkerLost:
      return "worker_lost";
    case ErrorKind::kInterrupted:
      return "interrupted";
    case ErrorKind::kFatal:
      return "fatal";
  }
  return "unknown";
}

bool error_kind_retryable(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kTransientIo:
    case ErrorKind::kCorruptArtifact:
    case ErrorKind::kTimeout:
    case ErrorKind::kResourceExhausted:
    case ErrorKind::kWorkerLost:
      return true;
    case ErrorKind::kNumericDivergence:
    case ErrorKind::kInterrupted:
    case ErrorKind::kFatal:
      return false;
  }
  return false;
}

int error_kind_exit_code(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kTransientIo:
      return 75;  // EX_TEMPFAIL
    case ErrorKind::kCorruptArtifact:
      return 65;  // EX_DATAERR
    case ErrorKind::kNumericDivergence:
      return 76;
    case ErrorKind::kTimeout:
      return 74;
    case ErrorKind::kResourceExhausted:
      return 69;  // EX_UNAVAILABLE
    case ErrorKind::kWorkerLost:
      return 71;  // EX_OSERR
    case ErrorKind::kInterrupted:
      return 72;  // graceful shutdown; distinct from 128+signo
    case ErrorKind::kFatal:
      return 70;  // EX_SOFTWARE
  }
  return 70;
}

}  // namespace sdd
