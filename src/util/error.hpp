// Typed error taxonomy for the self-healing pipeline.
//
// Every failure the supervision layer can see carries an ErrorKind that
// decides how it is handled: transient faults (I/O hiccups, timeouts,
// resource pressure) are retried with backoff, corrupt artifacts are
// quarantined and recomputed, numeric divergence is handled inside the
// training loop (rollback/skip), and fatal errors propagate immediately.
// util/serialize, core/cache, and core/pipeline throw these instead of
// ad-hoc exception types; util/supervisor consumes the classification.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace sdd {

enum class ErrorKind {
  kTransientIo,        // write/rename/fsync failure that a retry may clear
  kCorruptArtifact,    // checksum/framing failure; quarantine + recompute
  kNumericDivergence,  // non-finite loss or exploding gradients
  kTimeout,            // stage deadline exceeded or watchdog-detected hang
  kResourceExhausted,  // allocation/disk-space style pressure
  kWorkerLost,         // fleet worker died / lease expired; task is requeued
  kInterrupted,        // graceful SIGTERM/SIGINT shutdown (util/signals)
  kFatal,              // programming error or unrecoverable state
};

// Stable lower-snake-case name, e.g. "transient_io" (used in logs and docs).
std::string_view error_kind_name(ErrorKind kind);

// Whether the supervision layer should retry a stage that failed with this
// kind. Numeric divergence is deliberately non-retryable at stage level: the
// trainer's rollback policy already handled (or gave up on) it. Interrupted
// is non-retryable by construction: the user asked the process to stop.
bool error_kind_retryable(ErrorKind kind);

// Stable process exit code for a failure of this kind, sysexits-inspired so
// soak scripts can assert on the failure *class* instead of grepping stderr:
// transient_io 75 (EX_TEMPFAIL), timeout 74, resource_exhausted 69
// (EX_UNAVAILABLE), corrupt_artifact 65 (EX_DATAERR), numeric_divergence 76,
// worker_lost 71 (EX_OSERR), interrupted 72 (graceful-shutdown exit, distinct
// from the shell's 128+signo for an uncaught signal), fatal 70 (EX_SOFTWARE).
// 64 (EX_USAGE) stays reserved for malformed SDD_FAULT specs, 1 for
// non-taxonomy exceptions, 2 for CLI usage errors.
int error_kind_exit_code(ErrorKind kind);

class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(std::string{error_kind_name(kind)} + ": " + message),
        kind_{kind} {}

  ErrorKind kind() const noexcept { return kind_; }
  bool retryable() const noexcept { return error_kind_retryable(kind_); }

 private:
  ErrorKind kind_;
};

}  // namespace sdd
