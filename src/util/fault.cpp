#include "util/fault.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/supervisor.hpp"

namespace sdd::fault {
namespace {

struct State {
  FaultConfig config;
  std::atomic<bool> armed{false};
  std::atomic<std::int64_t> train_steps{0};
  std::atomic<std::int64_t> io_commits{0};
  std::atomic<std::int64_t> loss_checks{0};
  std::atomic<std::int64_t> allocs{0};
  std::atomic<std::int64_t> decode_tokens{0};
  std::atomic<std::int64_t> logit_checks{0};
  std::atomic<std::int64_t> fleet_claims{0};
  std::atomic<std::int64_t> fleet_completions{0};
  std::atomic<std::int64_t> replica_dispatches{0};
  std::atomic<std::int64_t> replica_requests{0};
  std::atomic<bool> replica_wedge_flag{false};
  std::atomic<bool> torn_frame_fired{false};
  std::atomic<std::int64_t> draft_logit_checks{0};
  std::mutex rng_mutex;
  Rng rng{0};
};

State& state() {
  static State s;
  return s;
}

// SDD_FAULT is read once, on the first hook that fires; configure()/reset()
// preempt it.
std::once_flag g_env_once;

void init_from_env() {
  std::call_once(g_env_once, [] {
    const char* spec = std::getenv("SDD_FAULT");
    if (spec == nullptr || *spec == '\0') return;
    State& s = state();
    // A programmatic configure() beats the environment.
    if (s.armed.load(std::memory_order_acquire)) return;
    try {
      const FaultConfig config = parse_fault_spec(spec);
      s.config = config;
      s.rng.reseed(config.seed);
      s.armed.store(config.any(), std::memory_order_release);
      if (config.any()) log_warn("fault: armed from SDD_FAULT=", spec);
    } catch (const std::invalid_argument& e) {
      // A typo'd spec must not silently run the soak fault-free: fail fast
      // with an actionable message instead.
      log_error("fault: malformed SDD_FAULT='", spec, "': ", e.what(),
                "\nfault: valid directives: io_fail:p=P, truncate_write, "
                "crash_at_step:N, crash_at_io:N, hang_at_step:N, "
                "nan_at_step:N, slow_io:ms=M, alloc_fail:at=N, "
                "hang_decode:N, nan_decode:N, worker_kill9:at=N, "
                "worker_stall:N, claim_race, orch_crash:N, "
                "replica_fail:at=N, replica_fail_n:K, replica_idx:I, "
                "replica_slow:MS, breaker_flap, replica_kill9:at=N, "
                "replica_wedge:N, ipc_torn_frame, spec_reject_storm[:p=P], "
                "draft_nan:N, mode:throw|exit, seed:N (comma-combined)");
      std::exit(64);  // EX_USAGE
    }
  });
}

[[noreturn]] void crash(const char* where, std::int64_t count) {
  State& s = state();
  if (s.config.mode == CrashMode::kThrow) {
    throw FaultCrash(std::string{"injected crash at "} + where + " #" +
                     std::to_string(count));
  }
  log_error("fault: injected crash at ", where, " #", count, " — _Exit(137)");
  std::_Exit(137);  // no atexit/flush, like SIGKILL
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

std::int64_t parse_int(const std::string& text, const std::string& directive) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault: bad integer '" + text + "' in '" +
                                directive + "'");
  }
}

double parse_prob(const std::string& text, const std::string& directive) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size() || value < 0.0 || value > 1.0) {
      throw std::invalid_argument(text);
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault: bad probability '" + text + "' in '" +
                                directive + "'");
  }
}

}  // namespace

FaultConfig parse_fault_spec(const std::string& spec) {
  FaultConfig config;
  for (const std::string& directive : split(spec, ',')) {
    if (directive.empty()) continue;
    const std::size_t colon = directive.find(':');
    const std::string name = directive.substr(0, colon);
    const std::string arg =
        colon == std::string::npos ? "" : directive.substr(colon + 1);
    if (name == "io_fail") {
      // accepts "io_fail:p=0.05" and "io_fail:0.05"
      const std::string p = arg.rfind("p=", 0) == 0 ? arg.substr(2) : arg;
      config.io_fail_p = parse_prob(p, directive);
    } else if (name == "truncate_write") {
      config.truncate_write = true;
    } else if (name == "crash_at_step") {
      config.crash_at_step = parse_int(arg, directive);
    } else if (name == "crash_at_io") {
      config.crash_at_io = parse_int(arg, directive);
    } else if (name == "hang_at_step") {
      config.hang_at_step = parse_int(arg, directive);
    } else if (name == "nan_at_step") {
      config.nan_at_step = parse_int(arg, directive);
    } else if (name == "slow_io") {
      // accepts "slow_io:ms=20" and "slow_io:20"
      const std::string ms = arg.rfind("ms=", 0) == 0 ? arg.substr(3) : arg;
      config.slow_io_ms = parse_int(ms, directive);
      if (config.slow_io_ms < 0) {
        throw std::invalid_argument("fault: negative delay in '" + directive + "'");
      }
    } else if (name == "alloc_fail") {
      // accepts "alloc_fail:at=3" and "alloc_fail:3"
      const std::string at = arg.rfind("at=", 0) == 0 ? arg.substr(3) : arg;
      config.alloc_fail_at = parse_int(at, directive);
    } else if (name == "hang_decode") {
      config.hang_decode = parse_int(arg, directive);
    } else if (name == "nan_decode") {
      config.nan_decode = parse_int(arg, directive);
    } else if (name == "worker_kill9") {
      // accepts "worker_kill9:at=1" and "worker_kill9:1"
      const std::string at = arg.rfind("at=", 0) == 0 ? arg.substr(3) : arg;
      config.worker_kill9_at = parse_int(at, directive);
    } else if (name == "worker_stall") {
      const std::string at = arg.rfind("at=", 0) == 0 ? arg.substr(3) : arg;
      config.worker_stall_at = parse_int(at, directive);
    } else if (name == "claim_race") {
      config.claim_race = true;
    } else if (name == "orch_crash") {
      const std::string at = arg.rfind("at=", 0) == 0 ? arg.substr(3) : arg;
      config.orch_crash_at = parse_int(at, directive);
    } else if (name == "replica_fail") {
      // accepts "replica_fail:at=2" and "replica_fail:2"
      const std::string at = arg.rfind("at=", 0) == 0 ? arg.substr(3) : arg;
      config.replica_fail_at = parse_int(at, directive);
    } else if (name == "replica_fail_n") {
      config.replica_fail_count = parse_int(arg, directive);
      if (config.replica_fail_count < 1) {
        throw std::invalid_argument("fault: bad window in '" + directive + "'");
      }
    } else if (name == "replica_idx") {
      config.replica_fault_index = parse_int(arg, directive);
      if (config.replica_fault_index < 0) {
        throw std::invalid_argument("fault: bad index in '" + directive + "'");
      }
    } else if (name == "replica_slow") {
      // accepts "replica_slow:ms=30" and "replica_slow:30"
      const std::string ms = arg.rfind("ms=", 0) == 0 ? arg.substr(3) : arg;
      config.replica_slow_ms = parse_int(ms, directive);
      if (config.replica_slow_ms < 0) {
        throw std::invalid_argument("fault: negative delay in '" + directive + "'");
      }
    } else if (name == "breaker_flap") {
      config.breaker_flap = true;
    } else if (name == "replica_kill9") {
      // accepts "replica_kill9:at=2" and "replica_kill9:2"
      const std::string at = arg.rfind("at=", 0) == 0 ? arg.substr(3) : arg;
      config.replica_kill9_at = parse_int(at, directive);
    } else if (name == "replica_wedge") {
      const std::string at = arg.rfind("at=", 0) == 0 ? arg.substr(3) : arg;
      config.replica_wedge_at = parse_int(at, directive);
    } else if (name == "ipc_torn_frame") {
      config.ipc_torn_frame = true;
    } else if (name == "spec_reject_storm") {
      // accepts bare "spec_reject_storm" (always corrupt),
      // "spec_reject_storm:p=0.5", and "spec_reject_storm:0.5"
      if (arg.empty()) {
        config.spec_reject_p = 1.0;
      } else {
        const std::string p = arg.rfind("p=", 0) == 0 ? arg.substr(2) : arg;
        config.spec_reject_p = parse_prob(p, directive);
      }
    } else if (name == "draft_nan") {
      config.draft_nan = parse_int(arg, directive);
    } else if (name == "hang_cap") {
      config.hang_cap_ms = parse_int(arg, directive);
    } else if (name == "mode") {
      if (arg == "exit") {
        config.mode = CrashMode::kExit;
      } else if (arg == "throw") {
        config.mode = CrashMode::kThrow;
      } else {
        throw std::invalid_argument("fault: unknown mode '" + arg + "'");
      }
    } else if (name == "seed") {
      config.seed = static_cast<std::uint64_t>(parse_int(arg, directive));
    } else {
      throw std::invalid_argument("fault: unknown directive '" + directive + "'");
    }
  }
  return config;
}

void configure(const FaultConfig& config) {
  State& s = state();
  s.config = config;
  s.train_steps.store(0, std::memory_order_relaxed);
  s.io_commits.store(0, std::memory_order_relaxed);
  s.loss_checks.store(0, std::memory_order_relaxed);
  s.allocs.store(0, std::memory_order_relaxed);
  s.decode_tokens.store(0, std::memory_order_relaxed);
  s.logit_checks.store(0, std::memory_order_relaxed);
  s.fleet_claims.store(0, std::memory_order_relaxed);
  s.fleet_completions.store(0, std::memory_order_relaxed);
  s.replica_dispatches.store(0, std::memory_order_relaxed);
  s.replica_requests.store(0, std::memory_order_relaxed);
  s.replica_wedge_flag.store(false, std::memory_order_relaxed);
  s.torn_frame_fired.store(false, std::memory_order_relaxed);
  s.draft_logit_checks.store(0, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock{s.rng_mutex};
    s.rng.reseed(config.seed);
  }
  s.armed.store(config.any(), std::memory_order_release);
}

void reset() { configure(FaultConfig{}); }

bool enabled() {
  init_from_env();
  return state().armed.load(std::memory_order_acquire);
}

void on_train_step() {
  if (!enabled()) return;
  State& s = state();
  const std::int64_t step = s.train_steps.fetch_add(1, std::memory_order_relaxed);
  if (s.config.crash_at_step >= 0 && step == s.config.crash_at_step) {
    crash("train_step", step);
  }
  if (s.config.hang_at_step >= 0 && step == s.config.hang_at_step) {
    log_warn("fault: hanging at train step ", step,
             " (waiting for watchdog cancellation)");
    const bool cancelled = supervisor::wait_for_cancellation(
        std::chrono::milliseconds{s.config.hang_cap_ms});
    throw Error(ErrorKind::kTimeout,
                cancelled ? "injected hang aborted by watchdog at step " +
                                std::to_string(step)
                          : "injected hang expired unwatched at step " +
                                std::to_string(step));
  }
}

float poison_loss(float loss) {
  if (!enabled()) return loss;
  State& s = state();
  if (s.config.nan_at_step < 0) return loss;
  const std::int64_t check = s.loss_checks.fetch_add(1, std::memory_order_relaxed);
  if (check != s.config.nan_at_step) return loss;
  log_warn("fault: poisoning loss with NaN at loss check ", check);
  return std::numeric_limits<float>::quiet_NaN();
}

bool should_fail_io(const std::filesystem::path& path) {
  if (!enabled()) return false;
  State& s = state();
  if (s.config.io_fail_p <= 0.0) return false;
  bool fail;
  {
    const std::lock_guard<std::mutex> lock{s.rng_mutex};
    fail = s.rng.bernoulli(s.config.io_fail_p);
  }
  if (fail) log_warn("fault: injected io failure for ", path.string());
  return fail;
}

bool should_truncate_write(const std::filesystem::path& path) {
  if (!enabled()) return false;
  State& s = state();
  if (!s.config.truncate_write) return false;
  log_warn("fault: tearing write of ", path.string());
  return true;
}

void on_io_commit(const std::filesystem::path& path) {
  if (!enabled()) return;
  State& s = state();
  const std::int64_t commit = s.io_commits.fetch_add(1, std::memory_order_relaxed);
  if (s.config.crash_at_io >= 0 && commit == s.config.crash_at_io) {
    log_error("fault: crashing during commit of ", path.string());
    crash("io_commit", commit);
  }
}

void io_delay(const std::filesystem::path& path) {
  if (!enabled()) return;
  State& s = state();
  if (s.config.slow_io_ms <= 0) return;
  log_debug("fault: delaying commit of ", path.string(), " by ",
            s.config.slow_io_ms, " ms");
  std::this_thread::sleep_for(std::chrono::milliseconds{s.config.slow_io_ms});
}

void on_alloc(std::size_t bytes) {
  if (!enabled()) return;
  State& s = state();
  if (s.config.alloc_fail_at < 0) return;
  const std::int64_t alloc = s.allocs.fetch_add(1, std::memory_order_relaxed);
  if (alloc != s.config.alloc_fail_at) return;
  log_warn("fault: failing guarded allocation #", alloc, " (", bytes, " bytes)");
  throw Error(ErrorKind::kResourceExhausted,
              "injected allocation failure at guarded allocation #" +
                  std::to_string(alloc) + " (" + std::to_string(bytes) +
                  " bytes)");
}

void on_decode_token() {
  if (!enabled()) return;
  State& s = state();
  if (s.config.hang_decode < 0) return;
  const std::int64_t token =
      s.decode_tokens.fetch_add(1, std::memory_order_relaxed);
  if (token != s.config.hang_decode) return;
  log_warn("fault: hanging at decode token ", token,
           " (waiting for watchdog cancellation)");
  const bool cancelled = supervisor::wait_for_cancellation(
      std::chrono::milliseconds{s.config.hang_cap_ms});
  throw Error(ErrorKind::kTimeout,
              cancelled ? "injected decode hang aborted by watchdog at token " +
                              std::to_string(token)
                        : "injected decode hang expired unwatched at token " +
                              std::to_string(token));
}

bool should_poison_logits() {
  if (!enabled()) return false;
  State& s = state();
  if (s.config.nan_decode < 0) return false;
  const std::int64_t check =
      s.logit_checks.fetch_add(1, std::memory_order_relaxed);
  if (check != s.config.nan_decode) return false;
  log_warn("fault: poisoning decode logits with NaN at token ", check);
  return true;
}

namespace {

// O_EXCL marker under the fleet run directory: the first process to create it
// wins, so a fleet-level fault fires at most once per run even though every
// respawned worker inherits the same SDD_FAULT environment.
bool try_create_marker(const std::filesystem::path& marker) {
  const int fd =
      ::open(marker.string().c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

}  // namespace

void on_fleet_claim(const std::filesystem::path& fleet_dir) {
  if (!enabled()) return;
  State& s = state();
  if (s.config.worker_kill9_at < 0 && s.config.worker_stall_at < 0) return;
  const std::int64_t claim =
      s.fleet_claims.fetch_add(1, std::memory_order_relaxed);
  if (s.config.worker_kill9_at >= 0 && claim == s.config.worker_kill9_at &&
      try_create_marker(fleet_dir / ".fault_worker_kill9")) {
    if (s.config.mode == CrashMode::kThrow) {
      throw FaultCrash("injected worker kill -9 at fleet claim #" +
                       std::to_string(claim));
    }
    log_error("fault: SIGKILLing worker at fleet claim #", claim);
    ::raise(SIGKILL);
    std::_Exit(137);  // unreachable backstop
  }
  if (s.config.worker_stall_at >= 0 && claim == s.config.worker_stall_at &&
      try_create_marker(fleet_dir / ".fault_worker_stall")) {
    log_warn("fault: worker going lease-silent at fleet claim #", claim,
             " (waiting for orchestrator SIGKILL, cap ", s.config.hang_cap_ms,
             " ms)");
    std::this_thread::sleep_for(
        std::chrono::milliseconds{s.config.hang_cap_ms});
    if (s.config.mode == CrashMode::kThrow) {
      throw FaultCrash("injected worker stall expired unkilled at claim #" +
                       std::to_string(claim));
    }
    log_error("fault: stalled worker outlived hang cap — _Exit(137)");
    std::_Exit(137);
  }
}

bool claim_race_armed() {
  if (!enabled()) return false;
  return state().config.claim_race;
}

void on_fleet_completion() {
  if (!enabled()) return;
  State& s = state();
  if (s.config.orch_crash_at < 0) return;
  const std::int64_t done =
      s.fleet_completions.fetch_add(1, std::memory_order_relaxed);
  if (done == s.config.orch_crash_at) {
    crash("fleet_completion", done);
  }
}

bool should_fail_replica(std::int64_t index) {
  if (!enabled()) return false;
  State& s = state();
  if (s.config.replica_fail_at < 0 && !s.config.breaker_flap) return false;
  if (index != s.config.replica_fault_index) return false;
  // The ordinal only advances for dispatches to the target replica, so the
  // failure window is stable regardless of how much traffic the healthy
  // replicas absorb meanwhile.
  const std::int64_t ordinal =
      s.replica_dispatches.fetch_add(1, std::memory_order_relaxed);
  bool fail = false;
  if (s.config.breaker_flap) {
    // Bursts of three consecutive failures (the default breaker threshold):
    // the breaker genuinely opens, probes half-open, closes, and re-opens.
    fail = (ordinal / 3) % 2 == 1;
  } else {
    fail = ordinal >= s.config.replica_fail_at &&
           ordinal < s.config.replica_fail_at + s.config.replica_fail_count;
  }
  if (fail) {
    log_warn("fault: failing router dispatch #", ordinal, " to replica ",
             index);
  }
  return fail;
}

std::int64_t replica_dispatch_delay_ms(std::int64_t index) {
  if (!enabled()) return 0;
  State& s = state();
  if (s.config.replica_slow_ms <= 0) return 0;
  return index == s.config.replica_fault_index ? s.config.replica_slow_ms : 0;
}

void on_replica_request() {
  if (!enabled()) return;
  State& s = state();
  if (s.config.replica_kill9_at < 0 && s.config.replica_wedge_at < 0) return;
  const std::int64_t request =
      s.replica_requests.fetch_add(1, std::memory_order_relaxed);
  if (s.config.replica_kill9_at >= 0 &&
      request == s.config.replica_kill9_at) {
    if (s.config.mode == CrashMode::kThrow) {
      throw FaultCrash("injected replica kill -9 at request frame #" +
                       std::to_string(request));
    }
    log_error("fault: SIGKILLing replica worker at request frame #", request);
    ::raise(SIGKILL);
    std::_Exit(137);  // unreachable backstop
  }
  if (s.config.replica_wedge_at >= 0 &&
      request == s.config.replica_wedge_at) {
    // Flag first so the heartbeat thread falls silent, then park the request
    // loop: the supervisor's liveness lease — not a request error — must be
    // what detects this.
    s.replica_wedge_flag.store(true, std::memory_order_release);
    log_warn("fault: replica worker wedging at request frame #", request,
             " (heartbeats stop; waiting for supervisor SIGKILL, cap ",
             s.config.hang_cap_ms, " ms)");
    std::this_thread::sleep_for(
        std::chrono::milliseconds{s.config.hang_cap_ms});
    if (s.config.mode == CrashMode::kThrow) {
      throw FaultCrash("injected replica wedge expired unkilled at frame #" +
                       std::to_string(request));
    }
    log_error("fault: wedged replica outlived hang cap — _Exit(137)");
    std::_Exit(137);
  }
}

bool replica_wedged() {
  if (!enabled()) return false;
  return state().replica_wedge_flag.load(std::memory_order_acquire);
}

bool should_tear_frame() {
  if (!enabled()) return false;
  State& s = state();
  if (!s.config.ipc_torn_frame) return false;
  return !s.torn_frame_fired.exchange(true, std::memory_order_acq_rel);
}

std::int32_t corrupt_draft_token(std::int32_t token, std::int32_t vocab) {
  if (!enabled()) return token;
  State& s = state();
  if (s.config.spec_reject_p <= 0.0 || vocab <= 1) return token;
  bool corrupt = s.config.spec_reject_p >= 1.0;
  if (!corrupt) {
    const std::lock_guard<std::mutex> lock{s.rng_mutex};
    corrupt = s.rng.bernoulli(s.config.spec_reject_p);
  }
  if (!corrupt) return token;
  return static_cast<std::int32_t>((token + 1) % vocab);
}

bool should_poison_draft_logits() {
  if (!enabled()) return false;
  State& s = state();
  if (s.config.draft_nan < 0) return false;
  const std::int64_t check =
      s.draft_logit_checks.fetch_add(1, std::memory_order_relaxed);
  if (check != s.config.draft_nan) return false;
  log_warn("fault: poisoning draft logits with NaN at draft row ", check);
  return true;
}

}  // namespace sdd::fault
