// Fault-injection framework for durability testing.
//
// Production code is instrumented with a handful of hook points (artifact
// commits, training steps). Faults are armed either programmatically
// (tests) or through the SDD_FAULT environment variable (soak scripts):
//
//   SDD_FAULT="io_fail:p=0.05"      every artifact commit fails (throws
//                                   SerializeError) with probability p
//   SDD_FAULT="truncate_write"      artifact commits tear: half the bytes
//                                   land at the final path, no rename
//   SDD_FAULT="crash_at_step:N"     die at the Nth training step (process-
//                                   global counter across all loops)
//   SDD_FAULT="crash_at_io:N"       die during the Nth artifact commit,
//                                   after the temp file is durable but
//                                   before the rename
//   SDD_FAULT="hang_at_step:N"      stall the Nth training step: block until
//                                   the supervisor watchdog cancels the stage
//                                   (then throw Error{timeout}), or until a
//                                   safety cap expires
//   SDD_FAULT="nan_at_step:N"       poison the Nth training loss with NaN
//                                   (own counter, one counted call per step)
//   SDD_FAULT="slow_io:ms=M"        delay every artifact commit by M ms
//   SDD_FAULT="alloc_fail:at=N"     the Nth guarded tensor/KV-cache
//                                   allocation throws Error{resource_
//                                   exhausted} (counter starts at 0)
//   SDD_FAULT="hang_decode:N"       stall the Nth decode token: block until
//                                   a watchdog cancels the enclosing stage,
//                                   then throw Error{timeout}
//   SDD_FAULT="nan_decode:N"        poison the logits of the Nth decode
//                                   token with NaN (serving NaN-guard path)
//   SDD_FAULT="worker_kill9:at=N"   a fleet worker raises SIGKILL right after
//                                   claiming its Nth task (0-based). Fires at
//                                   most once per fleet run (O_EXCL marker in
//                                   the fleet dir) so respawned workers make
//                                   progress; the orchestrator must reclaim
//                                   the orphaned lease
//   SDD_FAULT="worker_stall:N"      a fleet worker goes silent after claiming
//                                   its Nth task: no lease renewal, no
//                                   progress, until the orchestrator SIGKILLs
//                                   it (hang_cap safety exit 137 otherwise).
//                                   Once per fleet run, like worker_kill9
//   SDD_FAULT="claim_race"          fleet workers scan tasks in identical
//                                   order and pause between scan and claim,
//                                   forcing many workers to race one claim
//                                   file (exactly one may win)
//   SDD_FAULT="orch_crash:N"        the fleet orchestrator dies after
//                                   observing its Nth completed task; a
//                                   restart must resume from queue state
//   SDD_FAULT="replica_fail:at=N"   router dispatches to the target replica
//                                   (replica_idx, default 0) fail before
//                                   reaching its queue, starting at the Nth
//                                   dispatch to it, for replica_fail_n
//                                   consecutive dispatches (default 6) — long
//                                   enough to trip the circuit breaker; the
//                                   replica then "recovers" and half-open
//                                   probes succeed
//   SDD_FAULT="replica_fail_n:K"    width of the replica_fail failure window
//   SDD_FAULT="replica_idx:I"       which replica index the replica faults
//                                   target (default 0)
//   SDD_FAULT="replica_slow:MS"     transit to the target replica is slow:
//                                   the router delays a request's first
//                                   dispatch to it by MS ms (non-blocking
//                                   not_before gate, never stalls others)
//   SDD_FAULT="breaker_flap"        dispatches to the target replica fail in
//                                   bursts of three (ordinals 3-5, 9-11, ...)
//                                   so its breaker repeatedly opens, probes
//                                   closed, and re-opens
//   SDD_FAULT="replica_kill9:at=N"  a serving replica worker raises SIGKILL
//                                   on receiving its Nth REQUEST frame
//                                   (0-based, per-process counter) — the
//                                   supervisor must fail the in-flight
//                                   requests over and respawn
//   SDD_FAULT="replica_wedge:N"     a replica worker wedges on its Nth
//                                   REQUEST frame: the heartbeat thread goes
//                                   silent and the worker parks until the
//                                   supervisor's lease expires and SIGKILLs
//                                   it (hang_cap safety exit 137 otherwise)
//   SDD_FAULT="ipc_torn_frame"      a replica worker writes half a RESPONSE
//                                   frame then dies (once per process); the
//                                   reader must classify the torn frame as
//                                   retryable worker_lost
//   SDD_FAULT="spec_reject_storm"   corrupt every speculative draft proposal
//                                   (or a fraction with :p=P) so the target
//                                   rejects it; output bytes must not change
//                                   — only the acceptance rate collapses
//   SDD_FAULT="draft_nan:N"         poison the Nth draft-model logits row
//                                   with NaN (own counter); the speculative
//                                   round degrades to a target-only step
//   SDD_FAULT="mode:throw"          crash by throwing FaultCrash instead of
//                                   _Exit(137) (for in-process tests)
//   SDD_FAULT="seed:N"              seed for the io_fail coin
//
// Directives combine with commas: "io_fail:p=0.5,seed:7,mode:throw".
// With nothing armed every hook is a cheap branch on an atomic flag.
// A malformed SDD_FAULT value terminates the process with an actionable
// message at the first instrumented operation — a soak run with a typo'd
// spec must fail loudly, not silently run fault-free.
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>

namespace sdd::fault {

// Thrown by crash points when mode is kThrow; simulates an abrupt process
// death inside a single test process. Deliberately NOT derived from
// SerializeError: recovery code must not swallow it.
class FaultCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class CrashMode { kExit, kThrow };

struct FaultConfig {
  double io_fail_p = 0.0;           // probability an artifact commit fails
  bool truncate_write = false;      // tear artifact commits
  std::int64_t crash_at_step = -1;  // die at this training step (-1 = never)
  std::int64_t crash_at_io = -1;    // die at this artifact commit (-1 = never)
  std::int64_t hang_at_step = -1;   // stall at this training step (-1 = never)
  std::int64_t nan_at_step = -1;    // poison this training loss (-1 = never)
  std::int64_t slow_io_ms = 0;      // per-commit delay in milliseconds
  std::int64_t alloc_fail_at = -1;  // fail this guarded allocation (-1 = never)
  std::int64_t hang_decode = -1;    // stall at this decode token (-1 = never)
  std::int64_t nan_decode = -1;     // poison this decode token's logits
  std::int64_t worker_kill9_at = -1;  // SIGKILL self at this fleet claim
  std::int64_t worker_stall_at = -1;  // go lease-silent at this fleet claim
  bool claim_race = false;            // force fleet claim contention
  std::int64_t orch_crash_at = -1;  // orchestrator dies at Nth completion
  std::int64_t replica_fault_index = 0;  // replica the router faults target
  std::int64_t replica_fail_at = -1;  // fail target dispatches from this one
  std::int64_t replica_fail_count = 6;   // width of the failure window
  std::int64_t replica_slow_ms = 0;   // transit delay to the target replica
  bool breaker_flap = false;          // fail target dispatches in bursts of 3
  std::int64_t replica_kill9_at = -1;  // SIGKILL self at this REQUEST frame
  std::int64_t replica_wedge_at = -1;  // wedge (heartbeats stop) at this frame
  bool ipc_torn_frame = false;         // tear one RESPONSE frame, then die
  double spec_reject_p = 0.0;         // probability a draft proposal is corrupted
  std::int64_t draft_nan = -1;        // poison this draft logits row (-1 = never)
  std::int64_t hang_cap_ms = 60'000;  // safety cap for an unwatched hang
  CrashMode mode = CrashMode::kExit;
  std::uint64_t seed = 0x5DDFA017ULL;

  bool any() const {
    return io_fail_p > 0.0 || truncate_write || crash_at_step >= 0 ||
           crash_at_io >= 0 || hang_at_step >= 0 || nan_at_step >= 0 ||
           slow_io_ms > 0 || alloc_fail_at >= 0 || hang_decode >= 0 ||
           nan_decode >= 0 || worker_kill9_at >= 0 || worker_stall_at >= 0 ||
           claim_race || orch_crash_at >= 0 || replica_fail_at >= 0 ||
           replica_slow_ms > 0 || breaker_flap || replica_kill9_at >= 0 ||
           replica_wedge_at >= 0 || ipc_torn_frame || spec_reject_p > 0.0 ||
           draft_nan >= 0;
  }
};

// Parses an SDD_FAULT-style spec; throws std::invalid_argument on malformed
// directives. Exposed for tests.
FaultConfig parse_fault_spec(const std::string& spec);

// Arm faults programmatically (overrides any SDD_FAULT value) and reset all
// event counters. Tests should pair this with reset().
void configure(const FaultConfig& config);

// Disarm all faults and reset counters.
void reset();

// True when any fault is armed (after lazy SDD_FAULT initialization).
bool enabled();

// ---- hook points ----------------------------------------------------------

// Called by training loops once per completed optimizer step, after any
// checkpoint write for that step. Handles crash_at_step and hang_at_step
// (the hang parks in supervisor::wait_for_cancellation and throws
// Error{timeout} when the watchdog fires or the safety cap expires).
void on_train_step();

// Called by training loops on every computed loss value, before it is used.
// Returns NaN on the armed nan_at_step call (its own counter, incremented
// every call), the input unchanged otherwise.
float poison_loss(float loss);

// Called at the start of an artifact commit. Returns true when the commit
// must fail; the caller throws SerializeError.
bool should_fail_io(const std::filesystem::path& path);

// Returns true when the caller must simulate a torn, non-atomic write.
bool should_truncate_write(const std::filesystem::path& path);

// Called mid-commit, after the temp file is durable but before the rename.
// Handles crash_at_io.
void on_io_commit(const std::filesystem::path& path);

// Called at the start of an artifact commit; sleeps slow_io_ms when armed.
void io_delay(const std::filesystem::path& path);

// Called by guarded allocation sites (Tensor construction, decode KV-cache
// slots) with the requested byte count. Throws Error{resource_exhausted} on
// the armed alloc_fail_at call (its own counter, one count per call).
void on_alloc(std::size_t bytes);

// Called once per decode token by nn::generate and the serving decode loop.
// Handles hang_decode exactly like on_train_step handles hang_at_step: the
// hang parks in supervisor::wait_for_cancellation and throws Error{timeout}
// when a watchdog fires or the safety cap expires.
void on_decode_token();

// Called once per decode token on the freshly computed logits. Returns true
// on the armed nan_decode call (its own counter); the caller poisons its
// logits with NaN so the serving NaN guard can be exercised end to end.
bool should_poison_logits();

// Called by a fleet worker immediately after it wins a claim, with the fleet
// run directory (per-process claim counter). worker_kill9 raises SIGKILL —
// the truly unhandleable death — and worker_stall parks silently (no lease
// renewal) until the orchestrator kills the process or hang_cap_ms expires
// (then _Exit(137)). Both fire at most once per fleet run: the first worker
// to reach its Nth claim wins an O_EXCL marker file under `fleet_dir`, so
// respawned workers with the same SDD_FAULT environment still make progress.
// Under mode:throw, worker_kill9 throws FaultCrash instead (in-process tests).
void on_fleet_claim(const std::filesystem::path& fleet_dir);

// True when claim_race is armed: the work queue scans tasks in identical
// order across workers and widens the scan-to-claim window so concurrent
// workers contend for the same claim file.
bool claim_race_armed();

// Called by the fleet orchestrator each time it observes a newly completed
// task (per-process counter). Handles orch_crash_at.
void on_fleet_completion();

// Called by the variant router just before submitting to replica `index`.
// Returns true when the dispatch must be treated as a replica failure
// (replica_fail window or breaker_flap burst on the target replica); the
// router records a breaker failure and fails the request over. The dispatch
// ordinal counter only advances for the target replica while one of the two
// directives is armed.
bool should_fail_replica(std::int64_t index);

// Transit delay for a router dispatch to replica `index`: replica_slow_ms
// for the target replica, 0 otherwise. Stateless; the router applies it as
// a non-blocking not_before gate (one delay per request).
std::int64_t replica_dispatch_delay_ms(std::int64_t index);

// Called by a cross-process replica worker once per REQUEST frame it receives
// (per-process counter). replica_kill9 raises SIGKILL on the armed frame —
// the parent supervisor observes a reaped pid and torn stream. replica_wedge
// sets the wedged flag (the worker's heartbeat thread checks replica_wedged()
// and stops beating) and parks the request loop until the supervisor's lease
// expires and it is SIGKILLed, with a hang_cap_ms safety exit 137. Under
// mode:throw both throw FaultCrash instead (in-process tests).
void on_replica_request();

// True once replica_wedge has fired: the worker's heartbeat thread must go
// silent so the supervisor's liveness lease — not the request path — detects
// the wedge.
bool replica_wedged();

// True exactly once per process when ipc_torn_frame is armed: the replica
// worker writes a deliberately torn RESPONSE frame and dies, so the parent
// exercises the torn-frame → worker_lost classification end to end.
bool should_tear_frame();

// Called by the speculative decoder on every draft proposal. With
// spec_reject_storm armed, returns a corrupted token (shifted by one, mod
// `vocab`) with probability spec_reject_p so the target rejects the draft;
// returns `token` unchanged otherwise. Corruption must never change output
// bytes — only the acceptance telemetry.
std::int32_t corrupt_draft_token(std::int32_t token, std::int32_t vocab);

// Called by the speculative decoder on every freshly computed draft-model
// logits row (own counter). Returns true on the armed draft_nan call; the
// caller poisons the draft logits and the round degrades to a target-only
// step instead of failing the request.
bool should_poison_draft_logits();

}  // namespace sdd::fault
