#include "util/hash.hpp"

#include <array>

namespace sdd {

std::string hash_hex(std::uint64_t hash) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::array<char, 16> buffer{};
  for (int i = 15; i >= 0; --i) {
    buffer[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return std::string{buffer.data(), buffer.size()};
}

}  // namespace sdd
