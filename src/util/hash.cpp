#include "util/hash.hpp"

#include <array>
#include <cstring>

namespace sdd {
namespace {

constexpr std::uint64_t kXxhPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kXxhPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kXxhPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kXxhPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kXxhPrime5 = 0x27D4EB2F165667C5ULL;

constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

std::uint64_t read_u64le(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t read_u32le(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

constexpr std::uint64_t xxh_round(std::uint64_t acc, std::uint64_t input) noexcept {
  acc += input * kXxhPrime2;
  acc = rotl64(acc, 31);
  return acc * kXxhPrime1;
}

constexpr std::uint64_t xxh_merge_round(std::uint64_t acc, std::uint64_t val) noexcept {
  acc ^= xxh_round(0, val);
  return acc * kXxhPrime1 + kXxhPrime4;
}

}  // namespace

std::string hash_hex(std::uint64_t hash) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::array<char, 16> buffer{};
  for (int i = 15; i >= 0; --i) {
    buffer[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return std::string{buffer.data(), buffer.size()};
}

std::uint64_t xxh64(std::span<const std::byte> bytes, std::uint64_t seed) noexcept {
  const std::byte* p = bytes.data();
  const std::byte* const end = p + bytes.size();
  std::uint64_t h;

  if (bytes.size() >= 32) {
    std::uint64_t v1 = seed + kXxhPrime1 + kXxhPrime2;
    std::uint64_t v2 = seed + kXxhPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kXxhPrime1;
    const std::byte* const limit = end - 32;
    do {
      v1 = xxh_round(v1, read_u64le(p));
      v2 = xxh_round(v2, read_u64le(p + 8));
      v3 = xxh_round(v3, read_u64le(p + 16));
      v4 = xxh_round(v4, read_u64le(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = xxh_merge_round(h, v1);
    h = xxh_merge_round(h, v2);
    h = xxh_merge_round(h, v3);
    h = xxh_merge_round(h, v4);
  } else {
    h = seed + kXxhPrime5;
  }

  h += static_cast<std::uint64_t>(bytes.size());

  while (p + 8 <= end) {
    h ^= xxh_round(0, read_u64le(p));
    h = rotl64(h, 27) * kXxhPrime1 + kXxhPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read_u32le(p)) * kXxhPrime1;
    h = rotl64(h, 23) * kXxhPrime2 + kXxhPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kXxhPrime5;
    h = rotl64(h, 11) * kXxhPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kXxhPrime2;
  h ^= h >> 29;
  h *= kXxhPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace sdd
