// Small hashing utilities used for experiment cache keys.
//
// Cache keys must be stable across runs and across rebuilds, so we use FNV-1a
// (fixed algorithm) rather than std::hash (implementation defined).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace sdd {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

inline std::uint64_t fnv1a_bytes(std::span<const std::byte> bytes,
                                 std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t hash = seed;
  for (std::byte b : bytes) {
    hash ^= static_cast<unsigned char>(b);
    hash *= kFnvPrime;
  }
  return hash;
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  // boost-style mix adapted to 64 bits.
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

// Hash of a trivially copyable value (used for config structs' scalar fields).
template <typename T>
std::uint64_t fnv1a_value(const T& value, std::uint64_t seed = kFnvOffset) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* bytes = reinterpret_cast<const std::byte*>(&value);
  return fnv1a_bytes({bytes, sizeof(T)}, seed);
}

// Short hex string form for file names.
std::string hash_hex(std::uint64_t hash);

// XXH64 (Collet) one-shot hash. Used as the content checksum in serialized
// artifact footers: unlike FNV-1a it diffuses single-bit flips across the
// whole word, so torn writes and media corruption are detected reliably.
std::uint64_t xxh64(std::span<const std::byte> bytes, std::uint64_t seed = 0) noexcept;

inline std::uint64_t xxh64(std::string_view bytes, std::uint64_t seed = 0) noexcept {
  return xxh64(std::span<const std::byte>{
                   reinterpret_cast<const std::byte*>(bytes.data()), bytes.size()},
               seed);
}

}  // namespace sdd
