#include "util/ipc.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/proc.hpp"

namespace sdd::ipc {
namespace {

// Wire layout: | u32 magic | u8 type | u8[3] reserved=0 | u64 payload_len |
// then payload_len payload bytes, then u64 xxh64(payload, seed=type).
constexpr std::uint32_t kMagic = 0x53444449;  // "SDDI"
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kChecksumBytes = 8;

// Once a frame has started, the remainder must arrive within this budget; a
// writer that died or wedged mid-frame is indistinguishable from a torn write
// and both are classified worker_lost.
constexpr std::int64_t kContinuationBudgetMs = 2000;

[[noreturn]] void throw_lost(const std::string& what) {
  throw Error(ErrorKind::kWorkerLost, "ipc: " + what);
}

// Blocks until `fd` is readable or `deadline` (monotonic_ms) passes. POLLHUP
// and POLLERR count as readable so the subsequent read() observes EOF/error.
bool wait_readable(int fd, std::int64_t deadline) {
  for (;;) {
    const std::int64_t remain = deadline - proc::monotonic_ms();
    if (remain <= 0) return false;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc =
        ::poll(&pfd, 1, static_cast<int>(remain > 1000 ? 1000 : remain));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_lost(std::string{"poll failed: "} + std::strerror(errno));
    }
    if (rc > 0) return true;
  }
}

// Reads exactly `len` bytes of an already-started frame; EOF or a stall here
// means the frame tore.
void read_rest(int fd, void* buf, std::size_t len, std::int64_t deadline,
               const char* stage) {
  auto* out = static_cast<unsigned char*>(buf);
  while (len > 0) {
    if (!wait_readable(fd, deadline)) {
      throw_lost(std::string{"torn frame (writer stalled mid-"} + stage + ")");
    }
    const ssize_t got = ::read(fd, out, len);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw_lost(std::string{"read failed: "} + std::strerror(errno));
    }
    if (got == 0) {
      throw_lost(std::string{"torn frame (EOF mid-"} + stage + ")");
    }
    out += got;
    len -= static_cast<std::size_t>(got);
  }
}

void write_all(int fd, const void* buf, std::size_t len) {
  const auto* data = static_cast<const unsigned char*>(buf);
  while (len > 0) {
    const ssize_t wrote = ::write(fd, data, len);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw_lost(std::string{"write failed: "} + std::strerror(errno));
    }
    data += wrote;
    len -= static_cast<std::size_t>(wrote);
  }
}

std::string build_header(std::uint8_t type, std::uint64_t payload_len) {
  std::string header(kHeaderBytes, '\0');
  std::memcpy(header.data(), &kMagic, sizeof(kMagic));
  header[4] = static_cast<char>(type);
  std::memcpy(header.data() + 8, &payload_len, sizeof(payload_len));
  return header;
}

}  // namespace

SocketPair socket_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    throw_lost(std::string{"socketpair failed: "} + std::strerror(errno));
  }
  return SocketPair{fds[0], fds[1]};
}

void write_frame(int fd, std::uint8_t type, std::string_view payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw Error(ErrorKind::kFatal,
                "ipc: payload exceeds frame cap: " +
                    std::to_string(payload.size()) + " bytes");
  }
  // One contiguous buffer so a frame is a single write() on the fast path;
  // callers still serialize concurrent writers with their own mutex.
  std::string wire = build_header(type, payload.size());
  wire.append(payload);
  const std::uint64_t checksum = xxh64(payload, type);
  wire.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  write_all(fd, wire.data(), wire.size());
}

void write_torn_frame(int fd, std::uint8_t type, std::string_view payload) {
  std::string wire = build_header(type, payload.size());
  wire.append(payload.substr(0, payload.size() / 2));
  write_all(fd, wire.data(), wire.size());
}

ReadStatus read_frame(int fd, Frame* out, std::int64_t timeout_ms) {
  if (timeout_ms < 0) timeout_ms = 0;
  unsigned char header[kHeaderBytes];
  if (!wait_readable(fd, proc::monotonic_ms() + timeout_ms)) {
    return ReadStatus::kTimeout;
  }
  // First read: zero bytes here is the one place EOF is clean (frame
  // boundary). Any bytes after that commit us to a whole frame.
  ssize_t got = 0;
  for (;;) {
    got = ::read(fd, header, sizeof(header));
    if (got >= 0) break;
    if (errno == EINTR) continue;
    throw_lost(std::string{"read failed: "} + std::strerror(errno));
  }
  if (got == 0) return ReadStatus::kClosed;

  const std::int64_t deadline = proc::monotonic_ms() + kContinuationBudgetMs;
  read_rest(fd, header + got, sizeof(header) - static_cast<std::size_t>(got),
            deadline, "header");

  std::uint32_t magic = 0;
  std::memcpy(&magic, header, sizeof(magic));
  if (magic != kMagic || header[5] != 0 || header[6] != 0 || header[7] != 0) {
    throw_lost("bad frame magic (stream desynchronized or corrupt)");
  }
  std::uint64_t payload_len = 0;
  std::memcpy(&payload_len, header + 8, sizeof(payload_len));
  if (payload_len > kMaxPayloadBytes) {
    throw_lost("oversized frame length " + std::to_string(payload_len) +
               " (corrupt header)");
  }

  out->type = header[4];
  out->payload.resize(payload_len);
  if (payload_len > 0) {
    read_rest(fd, out->payload.data(), payload_len, deadline, "payload");
  }
  std::uint64_t claimed = 0;
  read_rest(fd, &claimed, kChecksumBytes, deadline, "checksum");
  const std::uint64_t actual = xxh64(out->payload, out->type);
  if (claimed != actual) {
    throw_lost("frame checksum mismatch (torn or corrupt payload)");
  }
  return ReadStatus::kFrame;
}

// ---- payload codec ---------------------------------------------------------
//
// Host byte order throughout: both ends of the socketpair are the same binary
// on the same machine.

namespace {
template <typename T>
void append_raw(std::string& buffer, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  buffer.append(reinterpret_cast<const char*>(&value), sizeof(value));
}
}  // namespace

void PayloadWriter::u8(std::uint8_t value) { append_raw(buffer_, value); }
void PayloadWriter::i32(std::int32_t value) { append_raw(buffer_, value); }
void PayloadWriter::i64(std::int64_t value) { append_raw(buffer_, value); }
void PayloadWriter::u64(std::uint64_t value) { append_raw(buffer_, value); }
void PayloadWriter::f32(float value) { append_raw(buffer_, value); }

void PayloadWriter::str(std::string_view value) {
  u64(value.size());
  buffer_.append(value);
}

void PayloadWriter::vec_i32(const std::vector<std::int32_t>& values) {
  u64(values.size());
  buffer_.append(reinterpret_cast<const char*>(values.data()),
                 values.size() * sizeof(std::int32_t));
}

void PayloadReader::need(std::size_t bytes) {
  if (payload_.size() - pos_ < bytes) {
    throw Error(ErrorKind::kWorkerLost, "ipc: truncated payload");
  }
}

std::uint8_t PayloadReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(payload_[pos_++]);
}

std::int32_t PayloadReader::i32() {
  need(sizeof(std::int32_t));
  std::int32_t value = 0;
  std::memcpy(&value, payload_.data() + pos_, sizeof(value));
  pos_ += sizeof(value);
  return value;
}

std::int64_t PayloadReader::i64() {
  need(sizeof(std::int64_t));
  std::int64_t value = 0;
  std::memcpy(&value, payload_.data() + pos_, sizeof(value));
  pos_ += sizeof(value);
  return value;
}

std::uint64_t PayloadReader::u64() {
  need(sizeof(std::uint64_t));
  std::uint64_t value = 0;
  std::memcpy(&value, payload_.data() + pos_, sizeof(value));
  pos_ += sizeof(value);
  return value;
}

float PayloadReader::f32() {
  need(sizeof(float));
  float value = 0;
  std::memcpy(&value, payload_.data() + pos_, sizeof(value));
  pos_ += sizeof(value);
  return value;
}

std::string PayloadReader::str() {
  const std::uint64_t len = u64();
  need(len);
  std::string value{payload_.substr(pos_, len)};
  pos_ += len;
  return value;
}

std::vector<std::int32_t> PayloadReader::vec_i32() {
  const std::uint64_t count = u64();
  if (count > kMaxPayloadBytes / sizeof(std::int32_t)) {
    throw Error(ErrorKind::kWorkerLost, "ipc: truncated payload");
  }
  need(count * sizeof(std::int32_t));
  std::vector<std::int32_t> values(count);
  std::memcpy(values.data(), payload_.data() + pos_,
              count * sizeof(std::int32_t));
  pos_ += count * sizeof(std::int32_t);
  return values;
}

}  // namespace sdd::ipc
