// Framed inter-process messaging for cross-process serving replicas.
//
// A frame is a 16-byte header (magic, type byte, payload length), the
// payload, and an XXH64 checksum trailer seeded with the type byte. Framing
// errors — short reads, a torn trailer, a checksum mismatch, an oversized
// length — all throw Error{kWorkerLost} (retryable): a mangled frame means
// the peer process died mid-write or the channel is corrupt, and the caller's
// recovery is the same either way (fail the in-flight work over, reap, and
// respawn). A clean EOF at a frame boundary is NOT an error; it is the
// orderly-close signal (ReadStatus::kClosed).
//
// All reads and writes are EINTR-safe: the fleet/serving processes install
// SIGTERM handlers, and a frame must never tear just because a signal landed
// mid-syscall. Writers should ignore_sigpipe() (util/signals) so a vanished
// peer surfaces as a thrown Error, not SIGPIPE.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sdd::ipc {

// Hard cap on a frame payload; a length beyond this is treated as a torn or
// corrupt header (Error{kWorkerLost}), not an allocation request.
inline constexpr std::uint64_t kMaxPayloadBytes = 64ULL << 20;

struct Frame {
  std::uint8_t type = 0;
  std::string payload;
};

enum class ReadStatus {
  kFrame,    // a whole, checksum-verified frame landed in *out
  kTimeout,  // no frame started within timeout_ms; nothing consumed
  kClosed,   // clean EOF at a frame boundary (peer closed in good order)
};

// Connected AF_UNIX stream pair. Both ends are CLOEXEC; proc::spawn's
// inherit_fds clears the flag on the child's end between fork and exec.
struct SocketPair {
  int parent_fd = -1;
  int child_fd = -1;
};
SocketPair socket_pair();

// Writes one complete frame; loops over partial writes and EINTR. Throws
// Error{kWorkerLost} when the peer is gone (EPIPE/ECONNRESET) or any write
// fails.
void write_frame(int fd, std::uint8_t type, std::string_view payload);

// Chaos helper (fault `ipc_torn_frame`): writes the header and roughly half
// the payload, then returns — the caller is expected to die, leaving the
// reader a torn frame to classify as worker_lost.
void write_torn_frame(int fd, std::uint8_t type, std::string_view payload);

// Reads one frame. `timeout_ms` bounds the wait for the frame to *start*;
// once the first header byte arrives the rest must follow within an internal
// continuation budget (a writer that dies or wedges mid-frame surfaces as
// Error{kWorkerLost, "torn frame"}). Returns kTimeout when nothing arrived,
// kClosed on EOF at a frame boundary. Throws Error{kWorkerLost} on torn or
// corrupt frames and on read errors.
ReadStatus read_frame(int fd, Frame* out, std::int64_t timeout_ms);

// ---- payload codec ---------------------------------------------------------
//
// Little-endian, append-only encoders and bounds-checked decoders for frame
// payloads. Reader overruns throw Error{kWorkerLost} ("truncated payload"):
// a short payload inside a checksum-valid frame still means the peer and we
// disagree on the schema, and the transport treats it as a lost worker.

class PayloadWriter {
 public:
  void u8(std::uint8_t value);
  void i32(std::int32_t value);
  void i64(std::int64_t value);
  void u64(std::uint64_t value);
  void f32(float value);
  void str(std::string_view value);
  void vec_i32(const std::vector<std::int32_t>& values);

  const std::string& bytes() const { return buffer_; }

 private:
  std::string buffer_;
};

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : payload_{payload} {}

  std::uint8_t u8();
  std::int32_t i32();
  std::int64_t i64();
  std::uint64_t u64();
  float f32();
  std::string str();
  std::vector<std::int32_t> vec_i32();

  bool exhausted() const { return pos_ == payload_.size(); }

 private:
  void need(std::size_t bytes);

  std::string_view payload_;
  std::size_t pos_ = 0;
};

}  // namespace sdd::ipc
