#include "util/json.hpp"

#include <cstdio>
#include <stdexcept>

namespace sdd {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == 'o') {
    throw std::logic_error("JsonWriter: value requires a key inside an object");
  }
  if (needs_comma_) out_ << ',';
  if (!stack_.empty() && stack_.back() == 'v') {
    stack_.back() = 'o';       // value consumed; next comes a key
    needs_comma_ = true;
    return;
  }
  needs_comma_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back('o');
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != 'o') {
    throw std::logic_error("JsonWriter: end_object outside object");
  }
  stack_.pop_back();
  out_ << '}';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back('a');
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != 'a') {
    throw std::logic_error("JsonWriter: end_array outside array");
  }
  stack_.pop_back();
  out_ << ']';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != 'o') {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (needs_comma_) out_ << ',';
  out_ << '"' << escape(name) << "\":";
  stack_.back() = 'v';
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ << '"' << escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", number);
  out_ << buffer;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: unterminated containers");
  }
  return out_.str();
}

}  // namespace sdd
