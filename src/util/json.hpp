// Minimal JSON writer for machine-readable experiment reports.
//
// Only what the report module needs: objects, arrays, strings, numbers,
// booleans, correct escaping, and stable formatting. No parsing.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace sdd {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Keys are only legal inside objects; values inside arrays or after a key.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view{text}); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  // Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  // Finished document (throws if containers are still open).
  std::string str() const;

  static std::string escape(std::string_view text);

 private:
  void before_value();

  std::ostringstream out_;
  // Container stack: 'o' = object (expecting key), 'v' = object (expecting
  // value), 'a' = array.
  std::vector<char> stack_;
  bool needs_comma_ = false;
};

}  // namespace sdd
