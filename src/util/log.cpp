#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace sdd {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("SDD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  const std::string_view value{env};
  if (value == "debug") return LogLevel::kDebug;
  if (value == "info") return LogLevel::kInfo;
  if (value == "warn") return LogLevel::kWarn;
  if (value == "error") return LogLevel::kError;
  if (value == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_storage() noexcept {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

constexpr const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?    ";
}

}  // namespace

LogLevel log_level() noexcept { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  level_storage().store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, std::string_view message) {
  static std::mutex mutex;
  const auto now = std::chrono::system_clock::now();
  const auto seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                           now.time_since_epoch())
                           .count();
  const std::lock_guard<std::mutex> lock{mutex};
  std::fprintf(stderr, "[%12.3f] %s %.*s\n", seconds, level_tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace sdd
