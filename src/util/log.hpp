// Minimal leveled logger.
//
// Benches and examples use this to narrate long-running pipelines; tests keep
// it quiet by default via SDD_LOG_LEVEL.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace sdd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold. Initialized from the SDD_LOG_LEVEL environment variable
// (debug|info|warn|error|off); defaults to info.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

void log_message(LogLevel level, std::string_view message);

// RAII override of the global threshold; restores the previous level on scope
// exit. Tests use this to silence warnings from intentionally-corrupted
// artifacts, and the soak runner to keep fault chatter out of its reports.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_{log_level()} {
    set_log_level(level);
  }
  ~ScopedLogLevel() { set_log_level(previous_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream out;
  (out << ... << args);
  log_message(level, out.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace sdd
