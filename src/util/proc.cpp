#include "util/proc.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "util/error.hpp"

extern char** environ;

namespace sdd::proc {

std::int64_t monotonic_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1'000'000;
}

std::filesystem::path self_exe() {
  std::error_code ec;
  const auto path = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) {
    throw Error(ErrorKind::kFatal,
                "proc: cannot resolve /proc/self/exe: " + ec.message());
  }
  return path;
}

std::int64_t spawn(const std::vector<std::string>& argv,
                   const std::vector<std::string>& env_overrides,
                   const std::vector<int>& inherit_fds) {
  if (argv.empty()) {
    throw Error(ErrorKind::kFatal, "proc: spawn with empty argv");
  }
  // Build the child argv/envp before forking: only async-signal-safe calls
  // are allowed between fork and exec in a multi-threaded parent.
  std::vector<std::string> env;
  for (char** e = environ; *e != nullptr; ++e) {
    const std::string entry{*e};
    const std::string key = entry.substr(0, entry.find('='));
    bool overridden = false;
    for (const std::string& override_entry : env_overrides) {
      if (override_entry.rfind(key + "=", 0) == 0) {
        overridden = true;
        break;
      }
    }
    if (!overridden) env.push_back(entry);
  }
  env.insert(env.end(), env_overrides.begin(), env_overrides.end());

  std::vector<char*> argv_ptrs;
  argv_ptrs.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    argv_ptrs.push_back(const_cast<char*>(arg.c_str()));
  }
  argv_ptrs.push_back(nullptr);
  std::vector<char*> env_ptrs;
  env_ptrs.reserve(env.size() + 1);
  for (const std::string& entry : env) {
    env_ptrs.push_back(const_cast<char*>(entry.c_str()));
  }
  env_ptrs.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw Error(ErrorKind::kWorkerLost,
                std::string{"proc: fork failed: "} + std::strerror(errno));
  }
  if (pid == 0) {
    // Clear FD_CLOEXEC on the fds this child must keep (fcntl is
    // async-signal-safe); every other CLOEXEC fd — including the socketpair
    // ends of concurrently spawned siblings — closes at exec.
    for (const int fd : inherit_fds) {
      ::fcntl(fd, F_SETFD, 0);
    }
    ::execve(argv_ptrs[0], argv_ptrs.data(), env_ptrs.data());
    // exec failed; 127 is the shell convention for "command not runnable".
    ::_exit(127);
  }
  return pid;
}

bool alive(std::int64_t pid) {
  if (pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

void send_signal(std::int64_t pid, int signum) noexcept {
  // pid 0 / -1 / -pgid forms of kill() signal whole groups; a stale pid
  // sentinel must never fan out like that. pid 1 is refused for the same
  // defence-in-depth reason (containers run us as init's descendants).
  if (pid > 1) ::kill(static_cast<pid_t>(pid), signum);
}

std::optional<ExitStatus> try_reap(std::int64_t pid) {
  if (pid <= 1) {
    throw Error(ErrorKind::kFatal,
                "proc: refusing to reap pid " + std::to_string(pid) +
                    " (waitpid would collect an arbitrary child)");
  }
  int status = 0;
  const pid_t reaped = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
  if (reaped == 0) return std::nullopt;
  if (reaped < 0) {
    throw Error(ErrorKind::kWorkerLost,
                "proc: waitpid(" + std::to_string(pid) +
                    ") failed: " + std::strerror(errno));
  }
  ExitStatus result;
  result.pid = reaped;
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.term_signal = WTERMSIG(status);
  }
  return result;
}

std::optional<ExitStatus> wait_reap(std::int64_t pid, std::int64_t timeout_ms) {
  const std::int64_t deadline = monotonic_ms() + timeout_ms;
  for (;;) {
    if (auto status = try_reap(pid)) return status;
    if (monotonic_ms() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
}

ExitStatus terminate(std::int64_t pid, std::int64_t grace_ms) {
  if (pid <= 1) {
    throw Error(ErrorKind::kFatal,
                "proc: refusing to terminate pid " + std::to_string(pid) +
                    " (stale sentinel would signal the whole session)");
  }
  send_signal(pid, SIGTERM);
  if (auto status = wait_reap(pid, grace_ms)) return *status;
  send_signal(pid, SIGKILL);
  // SIGKILL cannot be blocked; the bounded wait is belt-and-braces against a
  // child stuck in an uninterruptible state.
  if (auto status = wait_reap(pid, 10'000)) return *status;
  ExitStatus lost;
  lost.pid = pid;
  lost.term_signal = SIGKILL;
  return lost;
}

}  // namespace sdd::proc
