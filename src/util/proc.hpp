// Minimal POSIX process helpers for the multi-process fleet orchestrator.
//
// The orchestrator forks/execs worker processes, reaps them without blocking,
// and escalates SIGTERM -> SIGKILL when a worker overstays its lease. All
// helpers throw sdd::Error (util/error.hpp) so callers can classify failures;
// a spawn failure is kWorkerLost (retryable: the orchestrator respawns).
//
// monotonic_ms() is CLOCK_MONOTONIC, which is comparable across processes on
// the same machine — the lease/heartbeat protocol (fleet/queue) depends on
// that, and deliberately avoids the wall clock so an NTP step can never
// expire every lease at once.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace sdd::proc {

// Milliseconds on CLOCK_MONOTONIC (since boot). Cross-process comparable.
std::int64_t monotonic_ms();

// Path of the running executable (/proc/self/exe). The orchestrator re-execs
// itself with a worker subcommand, so workers always run the same binary.
std::filesystem::path self_exe();

// fork + execve. `argv[0]` is the program path; `env_overrides` are KEY=VALUE
// strings appended to (and overriding) the inherited environment.
// `inherit_fds` are descriptors that survive the exec: they are opened
// CLOEXEC in the parent (so concurrently spawned siblings never leak them)
// and the child clears the flag on its own copies between fork and exec.
// Returns the child pid; throws Error{kWorkerLost} when the fork fails. An
// exec failure inside the child exits 127.
std::int64_t spawn(const std::vector<std::string>& argv,
                   const std::vector<std::string>& env_overrides = {},
                   const std::vector<int>& inherit_fds = {});

// True when `pid` still exists (kill(pid, 0) semantics).
bool alive(std::int64_t pid);

// Best-effort signal delivery; never throws. Refuses pid <= 1: a stale
// sentinel (-1 or 0) passed to kill() would signal the whole process group
// or session — silently doing nothing is the only safe interpretation.
void send_signal(std::int64_t pid, int signum) noexcept;

struct ExitStatus {
  std::int64_t pid = -1;
  int exit_code = -1;     // valid when exited normally, else -1
  int term_signal = 0;    // terminating signal, 0 when exited normally
  bool clean() const { return term_signal == 0 && exit_code == 0; }
};

// Non-blocking reap of one child. nullopt while the child is still running;
// throws Error{kWorkerLost} if `pid` is not a child of this process and
// Error{kFatal} on pid <= 1 (waitpid(-1) would reap an arbitrary child).
std::optional<ExitStatus> try_reap(std::int64_t pid);

// Polls try_reap until the child exits or `timeout_ms` elapses.
std::optional<ExitStatus> wait_reap(std::int64_t pid, std::int64_t timeout_ms);

// SIGTERM, wait up to `grace_ms`, then SIGKILL and reap. Used for fleet
// shutdown so workers get a chance to run their graceful-signal path.
// Throws Error{kFatal} on pid <= 1 — a stale sentinel here would
// kill(-1, SIGKILL) everything the user owns.
ExitStatus terminate(std::int64_t pid, std::int64_t grace_ms);

}  // namespace sdd::proc
