// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every experiment in this repository is seeded; the same seed always produces
// the same corpus, the same initialization, and the same decoding choices.
// We use xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is
// fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sdd {

// SplitMix64: used to expand a single 64-bit seed into the xoshiro state.
// Also usable directly as a tiny stateless mixer for hashing-like needs.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xoshiro256** random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Full generator state, exposed so training checkpoints can capture and
  // restore the stream position exactly (bit-identical resume).
  struct State {
    std::uint64_t words[4]{};
    double cached_gaussian = 0.0;
    bool cached_gaussian_valid = false;
  };

  explicit Rng(std::uint64_t seed = 0x5DDD5EEDULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    cached_gaussian_valid_ = false;
  }

  [[nodiscard]] State state() const noexcept {
    State s;
    for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
    s.cached_gaussian = cached_gaussian_;
    s.cached_gaussian_valid = cached_gaussian_valid_;
    return s;
  }

  void set_state(const State& s) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = s.words[i];
    cached_gaussian_ = s.cached_gaussian;
    cached_gaussian_valid_ = s.cached_gaussian_valid;
  }

  // Derive an independent child generator; `stream` distinguishes siblings.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept {
    std::uint64_t mix = state_[0] ^ (state_[3] + 0x9E3779B97F4A7C15ULL * (stream + 1));
    return Rng{mix};
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  std::uint64_t operator()() noexcept { return next_u64(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  float uniform_float(float lo, float hi) noexcept {
    return static_cast<float>(uniform(lo, hi));
  }

  // Uniform integer in [lo, hi] (inclusive). Uses Lemire-style rejection-free
  // multiply-shift; bias is negligible for the ranges used here.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1ULL;
    const auto value = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * range) >> 64);
    return lo + static_cast<std::int64_t>(value);
  }

  std::size_t index(std::size_t n) noexcept {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  // Standard normal via Box-Muller with one cached deviate.
  double gaussian() noexcept {
    if (cached_gaussian_valid_) {
      cached_gaussian_valid_ = false;
      return cached_gaussian_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = radius * std::sin(angle);
    cached_gaussian_valid_ = true;
    return radius * std::cos(angle);
  }

  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  float gaussian_float(float mean, float stddev) noexcept {
    return static_cast<float>(gaussian(mean, stddev));
  }

  // Sample an index proportionally to non-negative weights.
  std::size_t weighted_index(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) throw std::invalid_argument("weighted_index: weights sum to zero");
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) return i;
    }
    return weights.size() - 1;
  }

  std::size_t weighted_index(std::span<const float> weights) {
    std::vector<double> as_double(weights.begin(), weights.end());
    return weighted_index(std::span<const double>{as_double});
  }

  template <typename T>
  const T& choice(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("choice: empty span");
    return items[index(items.size())];
  }

  template <typename T>
  const T& choice(const std::vector<T>& items) {
    return choice(std::span<const T>{items});
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  // Sample `k` distinct indices from [0, n) in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    if (k > n) throw std::invalid_argument("sample_indices: k > n");
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    // Partial Fisher-Yates: only the first k slots need to be randomized.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + index(n - i);
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_gaussian_ = 0.0;
  bool cached_gaussian_valid_ = false;
};

}  // namespace sdd
