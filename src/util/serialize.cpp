#include "util/serialize.hpp"

namespace sdd {

BinaryWriter::BinaryWriter(const std::filesystem::path& path)
    : out_{path, std::ios::binary | std::ios::trunc}, path_{path} {
  if (!out_) throw SerializeError("cannot open for writing: " + path.string());
}

void BinaryWriter::write_magic(std::string_view magic, std::uint32_t version) {
  out_.write(magic.data(), static_cast<std::streamsize>(magic.size()));
  write_u32(version);
  check("write_magic");
}

void BinaryWriter::write_string(std::string_view s) {
  write_u64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  check("write_string");
}

void BinaryWriter::flush() {
  out_.flush();
  check("flush");
}

void BinaryWriter::check(const char* what) {
  if (!out_) {
    throw SerializeError(std::string{"write failure ("} + what + ") on " + path_.string());
  }
}

BinaryReader::BinaryReader(const std::filesystem::path& path)
    : in_{path, std::ios::binary}, path_{path} {
  if (!in_) throw SerializeError("cannot open for reading: " + path.string());
}

void BinaryReader::expect_magic(std::string_view magic, std::uint32_t version) {
  std::string found(magic.size(), '\0');
  in_.read(found.data(), static_cast<std::streamsize>(magic.size()));
  check("expect_magic");
  if (found != magic) {
    throw SerializeError("bad magic in " + path_.string() + ": expected '" +
                         std::string{magic} + "', found '" + found + "'");
  }
  const std::uint32_t file_version = read_u32();
  if (file_version != version) {
    throw SerializeError("version mismatch in " + path_.string() + ": expected " +
                         std::to_string(version) + ", found " +
                         std::to_string(file_version));
  }
}

std::string BinaryReader::read_string() {
  const std::uint64_t size = read_u64();
  if (size > (1ULL << 30)) throw SerializeError("read_string: absurd size, corrupt file");
  std::string s(size, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(size));
  check("read_string");
  return s;
}

void BinaryReader::check(const char* what) {
  if (!in_) {
    throw SerializeError(std::string{"read failure ("} + what + ") on " + path_.string());
  }
}

}  // namespace sdd
