#include "util/serialize.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <fstream>

#include "util/fault.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace sdd {
namespace detail {

namespace {

class Fd {
 public:
  explicit Fd(int fd) : fd_{fd} {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }
  // Returns the close() result; the descriptor is released either way.
  int close_now() {
    const int rc = ::close(fd_);
    fd_ = -1;
    return rc;
  }

 private:
  int fd_;
};

[[noreturn]] void throw_errno(const std::string& what,
                              const std::filesystem::path& path) {
  // Write-path syscall failures are classified transient (retryable); disk
  // exhaustion gets its own kind so callers can distinguish it.
  const ErrorKind kind = errno == ENOSPC || errno == EDQUOT
                             ? ErrorKind::kResourceExhausted
                             : ErrorKind::kTransientIo;
  throw SerializeError(what + " " + path.string() + ": " + std::strerror(errno),
                       kind);
}

}  // namespace

void write_file_durable(const std::filesystem::path& path,
                        std::span<const std::byte> bytes, bool sync) {
  Fd fd{::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644)};
  if (fd.get() < 0) throw_errno("cannot open for writing", path);
  const std::byte* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd.get(), p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write failure on", path);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (sync && ::fsync(fd.get()) != 0) throw_errno("fsync failure on", path);
  if (fd.close_now() != 0) throw_errno("close failure on", path);
}

void fsync_parent_dir(const std::filesystem::path& path) {
  const std::filesystem::path parent =
      path.has_parent_path() ? path.parent_path() : std::filesystem::path{"."};
  const Fd fd{::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC)};
  if (fd.get() < 0) return;
  ::fsync(fd.get());  // best effort: some filesystems reject directory fsync
}

}  // namespace detail

void atomic_write_text(const std::filesystem::path& path, std::string_view text) {
  fault::io_delay(path);
  if (fault::should_fail_io(path)) {
    throw SerializeError("injected io failure writing " + path.string(),
                         ErrorKind::kTransientIo);
  }
  const std::filesystem::path tmp{path.string() + ".tmp"};
  detail::write_file_durable(
      tmp,
      {reinterpret_cast<const std::byte*>(text.data()), text.size()},
      /*sync=*/true);
  fault::on_io_commit(path);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw SerializeError("rename failure publishing " + path.string() + ": " +
                             ec.message(),
                         ErrorKind::kTransientIo);
  }
  detail::fsync_parent_dir(path);
}

void quarantine_artifact(const std::filesystem::path& path) noexcept {
  std::error_code ec;
  std::filesystem::rename(path, std::filesystem::path{path.string() + ".corrupt"},
                          ec);
  if (ec) std::filesystem::remove(path, ec);
}

BinaryWriter::BinaryWriter(std::filesystem::path path)
    : path_{std::move(path)}, uncaught_at_ctor_{std::uncaught_exceptions()} {}

BinaryWriter::~BinaryWriter() {
  // Commit on scope exit for convenience, but never while unwinding from an
  // exception: a half-serialized artifact must not be published.
  if (committed_ || std::uncaught_exceptions() > uncaught_at_ctor_) return;
  try {
    flush();
  } catch (const std::exception& e) {
    log_error("serialize: commit of ", path_.string(),
              " failed in destructor: ", e.what());
  }
}

void BinaryWriter::write_magic(std::string_view magic, std::uint32_t version) {
  append(magic.data(), magic.size());
  write_u32(version);
}

void BinaryWriter::write_string(std::string_view s) {
  write_u64(s.size());
  append(s.data(), s.size());
}

void BinaryWriter::append(const void* data, std::size_t size) {
  if (committed_) {
    throw SerializeError("write after flush() on " + path_.string());
  }
  buffer_.append(static_cast<const char*>(data), size);
}

void BinaryWriter::flush() {
  if (committed_) return;
  committed_ = true;

  fault::io_delay(path_);
  if (fault::should_fail_io(path_)) {
    throw SerializeError("injected io failure writing " + path_.string(),
                         ErrorKind::kTransientIo);
  }

  const std::uint64_t checksum = xxh64(std::string_view{buffer_});
  const std::uint64_t payload_size = buffer_.size();
  std::string blob = std::move(buffer_);
  blob.append(kArtifactFooterMagic);
  blob.append(reinterpret_cast<const char*>(&payload_size), sizeof(payload_size));
  blob.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));

  const auto as_bytes = [](const std::string& s, std::size_t n) {
    return std::span<const std::byte>{
        reinterpret_cast<const std::byte*>(s.data()), n};
  };

  if (fault::should_truncate_write(path_)) {
    // Simulate the torn write of a non-atomic store: half the blob lands
    // directly at the final path. Readers must detect this via the footer.
    detail::write_file_durable(path_, as_bytes(blob, blob.size() / 2),
                               /*sync=*/false);
    fault::on_io_commit(path_);
    return;
  }

  const std::filesystem::path tmp{path_.string() + ".tmp"};
  detail::write_file_durable(tmp, as_bytes(blob, blob.size()), /*sync=*/true);
  fault::on_io_commit(path_);
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    throw SerializeError("rename failure publishing " + path_.string() + ": " +
                             ec.message(),
                         ErrorKind::kTransientIo);
  }
  detail::fsync_parent_dir(path_);
}

BinaryReader::BinaryReader(const std::filesystem::path& path) : path_{path} {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw SerializeError("cannot open for reading: " + path.string());
  std::string blob{std::istreambuf_iterator<char>{in},
                   std::istreambuf_iterator<char>{}};
  if (in.bad()) throw SerializeError("read failure on " + path.string());

  if (blob.size() < kArtifactFooterSize) {
    throw SerializeError("truncated artifact (no footer): " + path.string());
  }
  const std::size_t footer = blob.size() - kArtifactFooterSize;
  if (std::string_view{blob}.substr(footer, kArtifactFooterMagic.size()) !=
      kArtifactFooterMagic) {
    throw SerializeError("missing checksum footer in " + path.string());
  }
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
  std::memcpy(&payload_size, blob.data() + footer + kArtifactFooterMagic.size(),
              sizeof(payload_size));
  std::memcpy(&checksum,
              blob.data() + footer + kArtifactFooterMagic.size() +
                  sizeof(payload_size),
              sizeof(checksum));
  if (payload_size != footer) {
    throw SerializeError("truncated artifact (size mismatch): " + path.string());
  }
  blob.resize(footer);
  if (xxh64(std::string_view{blob}) != checksum) {
    throw SerializeError("checksum mismatch in " + path.string());
  }
  payload_ = std::move(blob);
}

void BinaryReader::expect_magic(std::string_view magic, std::uint32_t version) {
  std::string found(magic.size(), '\0');
  extract(found.data(), found.size(), "expect_magic");
  if (found != magic) {
    throw SerializeError("bad magic in " + path_.string() + ": expected '" +
                         std::string{magic} + "', found '" + found + "'");
  }
  const std::uint32_t file_version = read_u32();
  if (file_version != version) {
    throw SerializeError("version mismatch in " + path_.string() + ": expected " +
                         std::to_string(version) + ", found " +
                         std::to_string(file_version));
  }
}

std::string BinaryReader::read_string() {
  const std::uint64_t size = read_u64();
  if (size > remaining()) {
    throw SerializeError("read_string: length " + std::to_string(size) +
                         " exceeds payload in " + path_.string());
  }
  std::string s(size, '\0');
  extract(s.data(), size, "read_string");
  return s;
}

void BinaryReader::extract(void* out, std::size_t size, const char* what) {
  if (size > remaining()) {
    throw SerializeError(std::string{"unexpected end of payload ("} + what +
                         ") in " + path_.string());
  }
  std::memcpy(out, payload_.data() + pos_, size);
  pos_ += size;
}

}  // namespace sdd
