// Versioned, checksummed, crash-safe binary serialization for model
// checkpoints and cached artifacts.
//
// The format is deliberately simple: little-endian POD fields, length-prefixed
// strings and vectors, and a magic/version header per artifact kind so stale
// cache files are rejected instead of misread. Every file additionally ends
// with a 24-byte footer — footer magic, payload size, and an XXH64 content
// checksum — so truncated or bit-flipped files are detected at open time.
//
// Durability: BinaryWriter buffers the payload in memory and publishes it
// atomically on flush(): write to `<path>.tmp`, fsync, rename over the final
// path, fsync the parent directory. A crash at any point leaves either the
// old artifact or no artifact — never a torn one. Commits are also fault-
// injection points (see util/fault.hpp).
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace sdd {

// Serialization failures carry the error taxonomy (util/error.hpp) so the
// supervision layer can tell a retryable write hiccup (transient_io) from a
// corrupt artifact that needs quarantine + recompute (corrupt_artifact, the
// default: every read-side failure means the bytes on disk are bad).
class SerializeError : public Error {
 public:
  explicit SerializeError(const std::string& message,
                          ErrorKind kind = ErrorKind::kCorruptArtifact)
      : Error(kind, message) {}
};

// Footer layout (appended after the payload): 8-byte magic, u64 payload
// size, u64 XXH64(payload).
inline constexpr std::string_view kArtifactFooterMagic = "SDDCKSM1";
inline constexpr std::size_t kArtifactFooterSize = 24;

namespace detail {
// Writes `bytes` to `path` (O_TRUNC) and optionally fsyncs before closing.
// Throws SerializeError on any failure.
void write_file_durable(const std::filesystem::path& path,
                        std::span<const std::byte> bytes, bool sync);
// Best-effort fsync of the directory containing `path` (makes a rename
// durable); ignored on filesystems that reject directory fsync.
void fsync_parent_dir(const std::filesystem::path& path);
}  // namespace detail

// Atomically publishes `text` at `path` (tmp + fsync + rename). Used for the
// small human-readable artifacts (metrics) that do not need the binary
// framing. Honors the same io_fail fault hook as BinaryWriter.
void atomic_write_text(const std::filesystem::path& path, std::string_view text);

// Moves a corrupt artifact aside to `<path>.corrupt` (falling back to plain
// removal) so the slot is free for recomputation while the evidence is kept
// for post-mortems. Best effort; never throws.
void quarantine_artifact(const std::filesystem::path& path) noexcept;

class BinaryWriter {
 public:
  explicit BinaryWriter(std::filesystem::path path);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void write_magic(std::string_view magic, std::uint32_t version);

  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    append(&value, sizeof(T));
  }

  void write_u32(std::uint32_t v) { write_pod(v); }
  void write_u64(std::uint64_t v) { write_pod(v); }
  void write_i64(std::int64_t v) { write_pod(v); }
  void write_f32(float v) { write_pod(v); }
  void write_f64(double v) { write_pod(v); }
  void write_bool(bool v) { write_pod(static_cast<std::uint8_t>(v ? 1 : 0)); }

  void write_string(std::string_view s);

  template <typename T>
  void write_vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_u64(values.size());
    if (!values.empty()) append(values.data(), values.size() * sizeof(T));
  }

  // Appends the checksum footer and atomically publishes the artifact.
  // Idempotent; also invoked by the destructor if never called explicitly.
  void flush();

 private:
  void append(const void* data, std::size_t size);

  std::filesystem::path path_;
  std::string buffer_;
  bool committed_ = false;
  int uncaught_at_ctor_ = 0;
};

class BinaryReader {
 public:
  // Reads the whole file, verifies the footer checksum, and serves reads
  // from memory with bounds checking. Throws SerializeError when the file is
  // missing, truncated, or fails the checksum.
  explicit BinaryReader(const std::filesystem::path& path);

  // Throws SerializeError if the magic or version does not match.
  void expect_magic(std::string_view magic, std::uint32_t version);

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    extract(&value, sizeof(T), "read_pod");
    return value;
  }

  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  float read_f32() { return read_pod<float>(); }
  double read_f64() { return read_pod<double>(); }
  bool read_bool() { return read_pod<std::uint8_t>() != 0; }

  std::string read_string();

  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t size = read_u64();
    // An element count that exceeds the bytes left in the payload is a
    // corrupt or hostile header; reject it before allocating.
    if (size > remaining() / sizeof(T)) {
      throw SerializeError("read_vector: length " + std::to_string(size) +
                           " exceeds payload in " + path_.string());
    }
    std::vector<T> values(size);
    if (size > 0) extract(values.data(), size * sizeof(T), "read_vector");
    return values;
  }

  // Payload bytes not yet consumed.
  std::size_t remaining() const { return payload_.size() - pos_; }

 private:
  void extract(void* out, std::size_t size, const char* what);

  std::filesystem::path path_;
  std::string payload_;
  std::size_t pos_ = 0;
};

}  // namespace sdd
