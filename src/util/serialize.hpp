// Versioned binary serialization for model checkpoints and cached artifacts.
//
// The format is deliberately simple: little-endian POD fields, length-prefixed
// strings and vectors, and a magic/version header per artifact kind so stale
// cache files are rejected instead of misread.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace sdd {

class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::filesystem::path& path);

  void write_magic(std::string_view magic, std::uint32_t version);

  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
    check("write_pod");
  }

  void write_u32(std::uint32_t v) { write_pod(v); }
  void write_u64(std::uint64_t v) { write_pod(v); }
  void write_i64(std::int64_t v) { write_pod(v); }
  void write_f32(float v) { write_pod(v); }
  void write_f64(double v) { write_pod(v); }
  void write_bool(bool v) { write_pod(static_cast<std::uint8_t>(v ? 1 : 0)); }

  void write_string(std::string_view s);

  template <typename T>
  void write_vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_u64(values.size());
    if (!values.empty()) {
      out_.write(reinterpret_cast<const char*>(values.data()),
                 static_cast<std::streamsize>(values.size() * sizeof(T)));
    }
    check("write_vector");
  }

  void flush();

 private:
  void check(const char* what);

  std::ofstream out_;
  std::filesystem::path path_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::filesystem::path& path);

  // Throws SerializeError if the magic or version does not match.
  void expect_magic(std::string_view magic, std::uint32_t version);

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    check("read_pod");
    return value;
  }

  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  float read_f32() { return read_pod<float>(); }
  double read_f64() { return read_pod<double>(); }
  bool read_bool() { return read_pod<std::uint8_t>() != 0; }

  std::string read_string();

  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t size = read_u64();
    if (size > (1ULL << 33)) throw SerializeError("read_vector: absurd size, corrupt file");
    std::vector<T> values(size);
    if (size > 0) {
      in_.read(reinterpret_cast<char*>(values.data()),
               static_cast<std::streamsize>(size * sizeof(T)));
    }
    check("read_vector");
    return values;
  }

 private:
  void check(const char* what);

  std::ifstream in_;
  std::filesystem::path path_;
};

}  // namespace sdd
