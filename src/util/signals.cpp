#include "util/signals.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace sdd::signals {
namespace {

std::atomic<int> g_interrupt_signal{0};

// Async-signal-safe: one atomic store on the first signal, _Exit on the
// second. No locks, no allocation, no stdio.
void on_signal(int signum) {
  int expected = 0;
  if (!g_interrupt_signal.compare_exchange_strong(expected, signum,
                                                  std::memory_order_relaxed)) {
    std::_Exit(128 + signum);
  }
}

}  // namespace

void install_graceful_shutdown() {
  struct sigaction action = {};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: blocking syscalls return EINTR so poll loops wake
  // promptly instead of sleeping out their full timeout.
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

bool interrupt_requested() noexcept {
  return g_interrupt_signal.load(std::memory_order_relaxed) != 0;
}

int interrupt_signal() noexcept {
  return g_interrupt_signal.load(std::memory_order_relaxed);
}

void reset_interrupt_for_test() noexcept {
  g_interrupt_signal.store(0, std::memory_order_relaxed);
}

void ignore_sigpipe() {
  struct sigaction action = {};
  action.sa_handler = SIG_IGN;
  sigemptyset(&action.sa_mask);
  sigaction(SIGPIPE, &action, nullptr);
}

}  // namespace sdd::signals
