// Graceful signal handling for the CLI binaries and fleet workers.
//
// install_graceful_shutdown() routes SIGTERM/SIGINT into a cooperative
// cancellation flag instead of the default die-mid-write behavior: the
// handler only sets an atomic, and long-running loops observe it at their
// next supervisor::heartbeat() (training steps, eval items, fleet claim
// polls), unwind with Error{kInterrupted}, and exit through the normal typed
// exit-code path (error_kind_exit_code -> 72). In-flight artifact commits
// finish atomically, checkpoints land on their usual cadence, and a restart
// resumes from them. A second signal while the first is still being honored
// hard-exits with the shell convention 128+signo — an escape hatch for a
// wedged process.
//
// Library code never installs handlers; only binaries' main() opt in, so
// tests and embedders keep default signal semantics. interrupt_requested()
// is a single relaxed atomic load and always false when nothing was
// installed.
#pragma once

namespace sdd::signals {

// Installs SIGTERM/SIGINT handlers (idempotent).
void install_graceful_shutdown();

// True once SIGTERM or SIGINT arrived after install_graceful_shutdown().
bool interrupt_requested() noexcept;

// The signal number behind interrupt_requested(), 0 when none.
int interrupt_signal() noexcept;

// Test seam: clears the interrupt flag (handlers stay installed).
void reset_interrupt_for_test() noexcept;

// SIG_IGN for SIGPIPE: a serving process must see EPIPE from a vanished
// peer as an error return, not a process-killing signal. Idempotent.
void ignore_sigpipe();

}  // namespace sdd::signals
