#include "util/supervisor.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/env.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/signals.hpp"

namespace sdd::supervisor {
namespace {

using Clock = std::chrono::steady_clock;

// Per-attempt liveness state shared between the stage thread and its
// watchdog. Stages nest (a supervised recover stage calls the supervised
// distill stage), so contexts form a per-thread stack; heartbeat() touches
// the innermost one and walks outward so an outer deadline still cancels a
// busy inner stage.
struct StageContext {
  const std::string* name = nullptr;
  std::atomic<Clock::rep> last_beat_ns{0};
  std::atomic<bool> cancelled{false};
  const char* cancel_reason = "";
  StageContext* parent = nullptr;

  // Watchdog parking / shutdown handshake, also used by
  // wait_for_cancellation.
  std::mutex mutex;
  std::condition_variable cv;
  bool finished = false;
};

thread_local StageContext* t_stage = nullptr;

Clock::rep now_ns() { return Clock::now().time_since_epoch().count(); }

void watchdog_loop(StageContext* ctx, const SupervisorConfig config,
                   const Clock::time_point started) {
  // Wake at a fraction of the tightest threshold so firing latency stays
  // small relative to the configured budget.
  std::int64_t tick_ms = 50;
  if (config.hang_ms > 0) tick_ms = std::min(tick_ms, std::max<std::int64_t>(1, config.hang_ms / 4));
  if (config.deadline_ms > 0) {
    tick_ms = std::min(tick_ms, std::max<std::int64_t>(1, config.deadline_ms / 4));
  }
  std::unique_lock<std::mutex> lock{ctx->mutex};
  while (!ctx->finished) {
    ctx->cv.wait_for(lock, std::chrono::milliseconds{tick_ms});
    if (ctx->finished || ctx->cancelled.load(std::memory_order_acquire)) break;
    const Clock::time_point now = Clock::now();
    if (config.deadline_ms > 0 &&
        now - started >= std::chrono::milliseconds{config.deadline_ms}) {
      ctx->cancel_reason = "deadline exceeded";
    } else if (config.hang_ms > 0) {
      const auto silence = std::chrono::nanoseconds{
          now.time_since_epoch().count() -
          ctx->last_beat_ns.load(std::memory_order_acquire)};
      if (silence >= std::chrono::milliseconds{config.hang_ms}) {
        ctx->cancel_reason = "heartbeat silence (hang)";
      } else {
        continue;
      }
    } else {
      continue;
    }
    log_warn("supervisor: watchdog cancelling stage '", *ctx->name, "': ",
             ctx->cancel_reason);
    ctx->cancelled.store(true, std::memory_order_release);
    ctx->cv.notify_all();  // release any wait_for_cancellation parkers
    break;
  }
}

[[noreturn]] void throw_cancelled(const StageContext& ctx) {
  throw Error(ErrorKind::kTimeout, "stage '" + *ctx.name +
                                       "' cancelled by watchdog: " +
                                       ctx.cancel_reason);
}

void backoff_sleep(const SupervisorConfig& config, std::chrono::milliseconds delay) {
  if (config.sleep_fn) {
    config.sleep_fn(delay);
  } else {
    std::this_thread::sleep_for(delay);
  }
}

}  // namespace

SupervisorConfig SupervisorConfig::from_env() {
  SupervisorConfig config;
  config.retry_max = env_int("SDD_RETRY_MAX", config.retry_max);
  config.backoff_ms = env_int("SDD_BACKOFF_MS", config.backoff_ms);
  config.deadline_ms = env_int("SDD_STAGE_DEADLINE_SEC", 0) * 1000;
  config.hang_ms = env_int("SDD_STAGE_HANG_SEC", 0) * 1000;
  return config;
}

std::int64_t backoff_delay_ms(const SupervisorConfig& config,
                              std::string_view stage, std::int64_t attempt) {
  double base = static_cast<double>(config.backoff_ms);
  for (std::int64_t i = 0; i < attempt; ++i) base *= config.backoff_factor;
  const auto cap = static_cast<double>(config.backoff_cap_ms);
  if (base > cap) base = cap;
  // Deterministic jitter in [0, backoff_ms): hash of (seed, stage, attempt)
  // through SplitMix64, so the same stage retries on the same schedule every
  // run while distinct stages decorrelate.
  std::uint64_t mix = config.jitter_seed ^ fnv1a(stage) ^
                      (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(attempt + 1));
  const std::uint64_t bits = splitmix64(mix);
  const std::int64_t jitter =
      config.backoff_ms > 0
          ? static_cast<std::int64_t>(bits % static_cast<std::uint64_t>(config.backoff_ms))
          : 0;
  return static_cast<std::int64_t>(base) + jitter;
}

StageReport run_stage(const std::string& name, const SupervisorConfig& config,
                      const std::function<void()>& fn) {
  StageReport report;
  for (std::int64_t attempt = 0;; ++attempt) {
    ++report.attempts;
    StageContext ctx;
    ctx.name = &name;
    ctx.parent = t_stage;
    ctx.last_beat_ns.store(now_ns(), std::memory_order_release);

    std::thread watchdog;
    if (config.watchdog_enabled()) {
      watchdog = std::thread{watchdog_loop, &ctx, config, Clock::now()};
    }
    t_stage = &ctx;

    const auto finish = [&] {
      t_stage = ctx.parent;
      if (watchdog.joinable()) {
        {
          const std::lock_guard<std::mutex> lock{ctx.mutex};
          ctx.finished = true;
        }
        ctx.cv.notify_all();
        watchdog.join();
      }
    };

    try {
      fn();
      finish();
      return report;
    } catch (const Error& e) {
      finish();
      if (e.kind() == ErrorKind::kTimeout) ++report.timeouts;
      const bool out_of_budget = attempt >= config.retry_max;
      if (!e.retryable() || out_of_budget) {
        if (out_of_budget && e.retryable()) {
          log_error("supervisor: stage '", name, "' failed after ",
                    report.attempts, " attempt(s): ", e.what());
        }
        throw;
      }
      ++report.retries;
      const std::int64_t delay = backoff_delay_ms(config, name, attempt);
      log_warn("supervisor: stage '", name, "' attempt ", attempt + 1,
               " failed (", e.what(), "); retrying in ", delay, " ms");
      backoff_sleep(config, std::chrono::milliseconds{delay});
    } catch (...) {
      // Foreign exception types (FaultCrash, std::invalid_argument, ...) are
      // outside the taxonomy: never retried.
      finish();
      throw;
    }
  }
}

void heartbeat() {
  // Graceful-shutdown check first, before the null-ctx early return, so
  // unsupervised loops (CLI stages outside run_stage, fleet worker polling)
  // also honor SIGTERM/SIGINT. kInterrupted is non-retryable, so run_stage
  // propagates it straight out instead of burning retry budget.
  if (signals::interrupt_requested()) {
    throw Error(ErrorKind::kInterrupted,
                "shutdown requested by signal " +
                    std::to_string(signals::interrupt_signal()));
  }
  StageContext* ctx = t_stage;
  if (ctx == nullptr) return;
  const Clock::rep now = now_ns();
  for (StageContext* c = ctx; c != nullptr; c = c->parent) {
    if (c->cancelled.load(std::memory_order_acquire)) throw_cancelled(*c);
    c->last_beat_ns.store(now, std::memory_order_release);
  }
}

bool cancellation_requested() {
  for (StageContext* c = t_stage; c != nullptr; c = c->parent) {
    if (c->cancelled.load(std::memory_order_acquire)) return true;
  }
  return false;
}

bool wait_for_cancellation(std::chrono::milliseconds max_wait) {
  StageContext* ctx = t_stage;
  if (ctx == nullptr) {
    // No supervised stage: a plain bounded sleep keeps unsupervised test
    // runs finite.
    std::this_thread::sleep_for(max_wait);
    return false;
  }
  // Wait in short slices so a cancellation on an *outer* nested stage (whose
  // cv we are not parked on) is still observed promptly.
  const Clock::time_point end = Clock::now() + max_wait;
  std::unique_lock<std::mutex> lock{ctx->mutex};
  while (!cancellation_requested()) {
    const Clock::time_point now = Clock::now();
    if (now >= end) break;
    const auto slice = std::min<Clock::duration>(end - now,
                                                 std::chrono::milliseconds{20});
    ctx->cv.wait_for(lock, slice);
  }
  return cancellation_requested();
}

}  // namespace sdd::supervisor
