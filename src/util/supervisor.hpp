// Stage supervision: bounded retries with deterministic exponential backoff,
// a per-stage deadline, and a heartbeat-based hang watchdog.
//
// run_stage(name, config, fn) executes fn on the calling thread. When fn
// throws an Error with a retryable kind (see util/error.hpp) the supervisor
// sleeps for a deterministic backoff and runs fn again, up to
// config.retry_max retries. Non-retryable errors and foreign exception types
// (including fault::FaultCrash) propagate immediately.
//
// Liveness is cooperative: supervised code calls heartbeat() at natural
// progress points (training loops do so once per step). When deadline_ms or
// hang_ms is set, run_stage spawns a watchdog thread that requests
// cancellation once the stage has run past its deadline or been silent past
// the hang threshold; the next heartbeat() (or a fault-injected hang parked
// in wait_for_cancellation) observes the request and throws
// Error{kTimeout}, which the retry loop treats like any other retryable
// failure. With both thresholds at 0 no thread is spawned and heartbeat() is
// a single thread-local load — supervision is free when disabled.
//
// Env knobs (read by SupervisorConfig::from_env, registered in util/env
// docs): SDD_RETRY_MAX, SDD_BACKOFF_MS, SDD_STAGE_DEADLINE_SEC,
// SDD_STAGE_HANG_SEC.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "util/error.hpp"

namespace sdd::supervisor {

struct SupervisorConfig {
  std::int64_t retry_max = 3;         // retries after the first attempt
  std::int64_t backoff_ms = 100;      // base delay before the first retry
  double backoff_factor = 2.0;        // exponential growth per retry
  std::int64_t backoff_cap_ms = 10'000;
  std::int64_t deadline_ms = 0;       // whole-stage wall-clock budget; 0 = off
  std::int64_t hang_ms = 0;           // max heartbeat silence; 0 = off
  std::uint64_t jitter_seed = 0x5DDB0FF5ULL;

  // Test seam: invoked for backoff waits instead of a real sleep when set.
  std::function<void(std::chrono::milliseconds)> sleep_fn;

  // SDD_RETRY_MAX=3, SDD_BACKOFF_MS=100, SDD_STAGE_DEADLINE_SEC=0,
  // SDD_STAGE_HANG_SEC=0.
  static SupervisorConfig from_env();

  bool watchdog_enabled() const { return deadline_ms > 0 || hang_ms > 0; }
};

// Deterministic backoff for the given (stage, attempt): exponential base
// delay plus a jitter in [0, backoff_ms) derived from hashing the stage name,
// the attempt index, and jitter_seed. Same inputs always give the same delay.
std::int64_t backoff_delay_ms(const SupervisorConfig& config,
                              std::string_view stage, std::int64_t attempt);

// Outcome bookkeeping for observability and tests.
struct StageReport {
  std::int64_t attempts = 0;   // fn invocations (>= 1 on success)
  std::int64_t retries = 0;    // attempts - 1
  std::int64_t timeouts = 0;   // watchdog/deadline cancellations observed
};

// Runs fn under the supervision policy described above. Rethrows fn's final
// error when retries are exhausted or the error is not retryable.
StageReport run_stage(const std::string& name, const SupervisorConfig& config,
                      const std::function<void()>& fn);

// Convenience wrapper returning fn's result.
template <typename F>
auto supervised(const std::string& name, const SupervisorConfig& config, F&& fn)
    -> decltype(fn()) {
  using Result = decltype(fn());
  if constexpr (std::is_void_v<Result>) {
    run_stage(name, config, [&fn] { fn(); });
  } else {
    std::optional<Result> result;
    run_stage(name, config, [&] { result.emplace(fn()); });
    return std::move(*result);
  }
}

// ---- in-stage liveness API -------------------------------------------------

// Marks the supervised stage on this thread as alive. Throws Error{kTimeout}
// if the watchdog has requested cancellation. No-op outside a supervised
// stage or when no watchdog is armed.
void heartbeat();

// True when the innermost supervised stage on this thread has been asked to
// stop (deadline or hang watchdog fired).
bool cancellation_requested();

// Parks the calling thread until the current stage is cancelled or max_wait
// elapses; returns true when cancelled. Used by the fault injector's
// hang_at_step to simulate a hang the watchdog can actually recover from.
bool wait_for_cancellation(std::chrono::milliseconds max_wait);

}  // namespace sdd::supervisor
