#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sdd {

std::string format_float(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return std::string{buffer};
}

std::string format_percent(double fraction, int decimals) {
  return format_float(fraction * 100.0, decimals) + "%";
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_{std::move(headers)} {
  if (headers_.empty()) throw std::invalid_argument("TablePrinter: no headers");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row has " + std::to_string(cells.size()) +
                                " cells, expected " + std::to_string(headers_.size()));
  }
  rows_.push_back(Row{std::move(cells), false});
}

void TablePrinter::add_separator() { rows_.push_back(Row{{}, true}); }

std::vector<std::size_t> TablePrinter::column_widths() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  return widths;
}

std::string TablePrinter::to_ascii() const {
  const auto widths = column_widths();
  std::ostringstream out;

  const auto emit_line = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  const auto emit_rule = [&] {
    out << "+";
    for (std::size_t width : widths) out << std::string(width + 2, '-') << "+";
    out << '\n';
  };

  emit_rule();
  emit_line(headers_);
  emit_rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_rule();
    } else {
      emit_line(row.cells);
    }
  }
  emit_rule();
  return out.str();
}

std::string TablePrinter::to_markdown() const {
  std::ostringstream out;
  const auto emit_line = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (const std::string& cell : cells) out << ' ' << cell << " |";
    out << '\n';
  };
  emit_line(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << '\n';
  for (const Row& row : rows_) {
    if (!row.separator) emit_line(row.cells);
  }
  return out.str();
}

void TablePrinter::print(std::ostream& out) const { out << to_ascii(); }

}  // namespace sdd
