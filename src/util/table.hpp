// ASCII / Markdown table rendering for benchmark reports.
//
// Every bench binary prints the same rows the paper's tables/figures report;
// this utility keeps their formatting consistent and diff-friendly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sdd {

// Fixed-precision float formatting helper used throughout bench output.
std::string format_float(double value, int decimals = 2);
std::string format_percent(double fraction, int decimals = 2);  // 0.1630 -> "16.30%"

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Horizontal separator row (rendered as a dashed line in ASCII mode).
  void add_separator();

  std::size_t row_count() const noexcept { return rows_.size(); }

  // Render with aligned columns (ASCII pipes) or GitHub-flavored markdown.
  std::string to_ascii() const;
  std::string to_markdown() const;

  void print(std::ostream& out) const;  // ASCII

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::size_t> column_widths() const;

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace sdd
