#include "util/threadpool.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace sdd {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == kAutoWorkers) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 1 ? hw - 1 : 0;
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_range(const Task& task) {
  for (std::size_t i = task.begin; i < task.end; ++i) task.fn(i);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t parts = std::min(total, workers_.size() + 1);
  if (parts <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = parts - 1;  // caller runs the last chunk itself

  const std::size_t chunk = (total + parts - 1) / parts;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    for (std::size_t p = 0; p + 1 < parts; ++p) {
      Task task;
      task.fn = fn;
      task.begin = begin + p * chunk;
      task.end = std::min(end, task.begin + chunk);
      task.remaining = &remaining;
      task.done_mutex = &done_mutex;
      task.done_cv = &done_cv;
      queue_.push(std::move(task));
    }
  }
  cv_.notify_all();

  // Caller's own chunk.
  const std::size_t own_begin = begin + (parts - 1) * chunk;
  for (std::size_t i = own_begin; i < end; ++i) fn(i);

  std::unique_lock<std::mutex> lock{done_mutex};
  done_cv.wait(lock, [&] { return remaining == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    run_range(task);
    {
      // Notify while still holding done_mutex: the waiting caller owns the
      // counter/cv on its stack and may destroy them the instant it observes
      // remaining == 0, so the signal must complete before that can happen.
      const std::lock_guard<std::mutex> lock{*task.done_mutex};
      --*task.remaining;
      task.done_cv->notify_one();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool{[] {
    const std::int64_t requested = env_int("SDD_THREADS", 0);
    if (requested > 0) return static_cast<std::size_t>(requested - 1);
    return kAutoWorkers;
  }()};
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace sdd
