// Tiny work-stealing-free thread pool with a parallel_for helper.
//
// On single-core machines (the default evaluation environment for this repo)
// the pool degenerates to inline execution with zero thread overhead; on
// multi-core machines GEMM and evaluation sharding use it transparently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sdd {

class ThreadPool {
 public:
  // `threads == 0` selects hardware_concurrency() - 1 (inline execution when
  // that is zero, i.e. on a single-core host).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  // Run fn(i) for i in [begin, end). Blocks until all iterations finish.
  // Work is split into contiguous chunks, one per participating thread
  // (including the caller), to keep cache locality for GEMM row blocks.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  // Process-wide default pool.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void(std::size_t)> fn;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t* remaining = nullptr;
    std::mutex* done_mutex = nullptr;
    std::condition_variable* done_cv = nullptr;
  };

  void worker_loop();
  static void run_range(const Task& task);

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

// Convenience wrapper over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace sdd
