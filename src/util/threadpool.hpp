// Tiny work-stealing-free thread pool with a parallel_for helper.
//
// On single-core machines (the default evaluation environment for this repo)
// the pool degenerates to inline execution with zero thread overhead; on
// multi-core machines GEMM and evaluation sharding use it transparently.
// The global pool size is controlled by SDD_THREADS (total compute threads
// including the caller; unset or 0 = hardware_concurrency()).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <limits>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sdd {

class ThreadPool {
 public:
  // Sentinel selecting hardware_concurrency() - 1 workers (inline execution
  // when that is zero, i.e. on a single-core host).
  static constexpr std::size_t kAutoWorkers = std::numeric_limits<std::size_t>::max();

  // `workers` is the exact number of pool threads to spawn; the caller always
  // participates in parallel_for, so total parallelism is `workers + 1`.
  explicit ThreadPool(std::size_t workers = kAutoWorkers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  // Run fn(i) for i in [begin, end). Blocks until all iterations finish.
  // Work is split into contiguous chunks, one per participating thread
  // (including the caller), to keep cache locality for GEMM row blocks.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  // Process-wide default pool. Sized from SDD_THREADS on first use: a value
  // N > 0 means N total compute threads (N - 1 pool workers); unset/0 means
  // auto-detect from hardware_concurrency().
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void(std::size_t)> fn;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t* remaining = nullptr;
    std::mutex* done_mutex = nullptr;
    std::condition_variable* done_cv = nullptr;
  };

  void worker_loop();
  static void run_range(const Task& task);

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

// Convenience wrapper over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace sdd
