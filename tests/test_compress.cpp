// Tests for the compression extensions: weight quantization and unstructured
// magnitude sparsification.
#include <cmath>

#include <gtest/gtest.h>

#include "core/quant.hpp"
#include "core/sparsify.hpp"
#include "test_helpers.hpp"

namespace sdd::core {
namespace {

using sdd::testing::tiny_config;

TEST(Quant, RoundTripErrorBoundedByHalfStep) {
  Rng rng{1};
  std::vector<float> values(256);
  for (float& v : values) v = rng.gaussian_float(0.0F, 0.5F);
  float max_abs = 0.0F;
  for (float v : values) max_abs = std::max(max_abs, std::fabs(v));

  QuantStats stats;
  quantize_dequantize(values, 256, /*bits=*/8, &stats);
  // Symmetric 8-bit: step = max_abs/127, error <= step/2 (plus fp rounding).
  EXPECT_LE(stats.max_abs_error, max_abs / 127.0 * 0.51 + 1e-6);
  EXPECT_EQ(stats.values_quantized, 256);
}

TEST(Quant, FewerBitsMoreError) {
  Rng rng{2};
  std::vector<float> base(512);
  for (float& v : base) v = rng.gaussian_float(0.0F, 1.0F);

  double previous_error = 0.0;
  for (const int bits : {8, 6, 4, 2}) {
    std::vector<float> values = base;
    QuantStats stats;
    quantize_dequantize(values, 64, bits, &stats);
    EXPECT_GT(stats.mean_abs_error, previous_error);
    previous_error = stats.mean_abs_error;
  }
}

TEST(Quant, IdempotentOnQuantizedValues) {
  Rng rng{3};
  std::vector<float> values(128);
  for (float& v : values) v = rng.gaussian_float(0.0F, 1.0F);
  quantize_dequantize(values, 128, 8, nullptr);
  std::vector<float> again = values;
  quantize_dequantize(again, 128, 8, nullptr);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(again[i], values[i], 1e-6F);
  }
}

TEST(Quant, RejectsBadArguments) {
  std::vector<float> values(8);
  EXPECT_THROW(quantize_dequantize(values, 8, 1, nullptr), std::invalid_argument);
  EXPECT_THROW(quantize_dequantize(values, 8, 9, nullptr), std::invalid_argument);
  EXPECT_THROW(quantize_dequantize(values, 3, 8, nullptr), std::invalid_argument);
}

TEST(Quant, ModelQuantizationPreservesShapeAndRuns) {
  const nn::TransformerLM model{tiny_config(2), 5};
  QuantStats stats;
  const nn::TransformerLM quantized = quantize_model(model, QuantConfig{}, &stats);
  EXPECT_GT(stats.tensors_quantized, 0);
  EXPECT_GT(stats.values_quantized, 0);
  EXPECT_NE(quantized.weight_hash(), model.weight_hash());
  EXPECT_EQ(quantized.param_count(), model.param_count());

  // 8-bit model output should stay close to fp32 output.
  NoGradGuard no_grad;
  std::vector<std::int32_t> ids{1, 2, 3, 4, 5};
  const Tensor full = model.forward(ids, 1, 5);
  const Tensor quant = quantized.forward(ids, 1, 5);
  double max_diff = 0.0;
  for (std::int64_t i = 0; i < full.numel(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(static_cast<double>(full.data()[i]) -
                                  quant.data()[i]));
  }
  EXPECT_LT(max_diff, 1.0);  // logit drift stays small at 8 bits
}

TEST(Quant, EmbeddingCanBeExcluded) {
  const nn::TransformerLM model{tiny_config(2), 6};
  QuantConfig config;
  config.quantize_embedding = false;
  const nn::TransformerLM quantized = quantize_model(model, config);
  const auto original = model.token_embedding().data();
  const auto result = quantized.token_embedding().data();
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i], result[i]);
  }
}

TEST(Sparsify, AchievesRequestedSparsity) {
  const nn::TransformerLM model{tiny_config(3), 7};
  SparsifyStats stats;
  const nn::TransformerLM sparse = sparsify_model(model, 0.5, &stats);
  EXPECT_NEAR(stats.achieved_sparsity, 0.5, 0.02);
  EXPECT_NEAR(measured_sparsity(sparse), 0.5, 0.02);
  EXPECT_LT(measured_sparsity(model), 0.01);
}

TEST(Sparsify, KeepsLargestMagnitudes) {
  nn::TransformerLM model{tiny_config(1), 8};
  const nn::TransformerLM sparse = sparsify_model(model, 0.25);
  // Every surviving weight must be at least as large (in magnitude) as every
  // zeroed one, per tensor.
  const auto original_params = model.parameters();
  const auto sparse_params = sparse.parameters();
  for (std::size_t p = 0; p < sparse_params.size(); ++p) {
    if (sparse_params[p].tensor.shape().size() != 2) continue;
    const auto before = original_params[p].tensor.data();
    const auto after = sparse_params[p].tensor.data();
    float max_zeroed = 0.0F, min_kept = 1e30F;
    for (std::size_t i = 0; i < after.size(); ++i) {
      if (after[i] == 0.0F) {
        max_zeroed = std::max(max_zeroed, std::fabs(before[i]));
      } else {
        min_kept = std::min(min_kept, std::fabs(after[i]));
      }
    }
    EXPECT_LE(max_zeroed, min_kept + 1e-6F) << sparse_params[p].name;
  }
}

TEST(Sparsify, ZeroSparsityIsIdentity) {
  const nn::TransformerLM model{tiny_config(2), 9};
  const nn::TransformerLM sparse = sparsify_model(model, 0.0);
  EXPECT_EQ(sparse.weight_hash(), model.weight_hash());
}

TEST(Sparsify, RejectsBadFraction) {
  const nn::TransformerLM model{tiny_config(2), 10};
  EXPECT_THROW(sparsify_model(model, 1.0), std::invalid_argument);
  EXPECT_THROW(sparsify_model(model, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace sdd::core
