// Configuration-surface tests: env overrides, cache-key hash sensitivity,
// and few-shot prompt budgeting.
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "data/corpus.hpp"
#include "eval/harness.hpp"
#include "eval/suite.hpp"
#include "test_helpers.hpp"

namespace sdd {
namespace {

TEST(StandardConfig, ReadsEnvironmentOverrides) {
  ::setenv("SDD_LAYERS", "8", 1);
  ::setenv("SDD_DMODEL", "32", 1);
  ::setenv("SDD_SFT_MAX_STEPS", "7", 1);
  const core::PipelineConfig config = core::PipelineConfig::standard();
  EXPECT_EQ(config.model.n_layers, 8);
  EXPECT_EQ(config.model.d_model, 32);
  EXPECT_EQ(config.sft.max_steps, 7);
  ::unsetenv("SDD_LAYERS");
  ::unsetenv("SDD_DMODEL");
  ::unsetenv("SDD_SFT_MAX_STEPS");

  const core::PipelineConfig defaults = core::PipelineConfig::standard();
  EXPECT_EQ(defaults.model.n_layers, 16);
  EXPECT_EQ(defaults.model.vocab_size, data::Vocab::instance().size());
}

TEST(Hashing, ModelConfigSensitivity) {
  nn::ModelConfig a = testing::tiny_config();
  nn::ModelConfig b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.n_layers += 1;
  EXPECT_NE(a.hash(), b.hash());
  b = a;
  b.rope_base = 500.0F;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Hashing, TrainAndDistillConfigSensitivity) {
  train::SftTrainConfig sft_a;
  train::SftTrainConfig sft_b = sft_a;
  EXPECT_EQ(sft_a.hash(), sft_b.hash());
  sft_b.optimizer.lr *= 2.0F;
  EXPECT_NE(sft_a.hash(), sft_b.hash());

  core::DistillConfig distill_a;
  core::DistillConfig distill_b = distill_a;
  distill_b.condition_on_reference = true;
  EXPECT_NE(distill_a.hash(), distill_b.hash());

  core::KdConfig kd_a;
  core::KdConfig kd_b = kd_a;
  kd_b.temperature = 4.0F;
  EXPECT_NE(kd_a.hash(), kd_b.hash());

  nn::LoraConfig lora_a;
  nn::LoraConfig lora_b = lora_a;
  lora_b.rank = 16;
  EXPECT_NE(lora_a.hash(), lora_b.hash());
}

TEST(Hashing, CorpusConfigSensitivity) {
  data::CorpusConfig a;
  data::CorpusConfig b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.myth_rate += 0.1;
  EXPECT_NE(a.hash(), b.hash());
  b = a;
  b.n_documents += 1;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Hashing, BaseKeyChangesWithEveryStage) {
  core::PipelineConfig a;
  a.model = testing::tiny_real_vocab_config(2);
  core::PipelineConfig b = a;
  EXPECT_EQ(a.base_key(), b.base_key());
  b.pretrain.optimizer.lr *= 2.0F;
  EXPECT_NE(a.base_key(), b.base_key());
  b = a;
  b.world_seed += 1;
  EXPECT_NE(a.base_key(), b.base_key());
  b = a;
  b.version += 1;
  EXPECT_NE(a.base_key(), b.base_key());
}

TEST(FewShot, PromptsNeverExceedContextWindow) {
  // Even with an absurd shot request the assembled MC context plus longest
  // option must fit the model's window (exemplars are dropped from the
  // front).
  nn::ModelConfig config = testing::tiny_real_vocab_config(1);
  config.max_seq_len = 48;  // very tight
  const nn::TransformerLM model{config, 71};
  const data::World world{42};
  const data::McTask task = data::make_mmlu_task(world, 6, 3);
  eval::EvalOptions options;
  options.shots = 50;
  EXPECT_NO_THROW(eval::evaluate_mc(model, task, options));
}

TEST(FewShot, GenerativePromptRespectsWindow) {
  nn::ModelConfig config = testing::tiny_real_vocab_config(1);
  config.max_seq_len = 72;
  const nn::TransformerLM model{config, 72};
  const data::GenTask task = data::make_gsm8k_eval_task(4, 7);
  eval::EvalOptions options;
  options.shots = 50;
  EXPECT_NO_THROW(eval::evaluate_gen(model, task, options));
}

TEST(SuiteSpecHash, Sensitivity) {
  eval::SuiteSpec a;
  eval::SuiteSpec b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.mc_items += 1;
  EXPECT_NE(a.hash(), b.hash());
  b = a;
  b.options.shots = 1;
  EXPECT_NE(a.hash(), b.hash());
}

}  // namespace
}  // namespace sdd
