// Tests for the paper's core machinery: pruning metrics + Algorithm 1,
// self-data distillation with conditional selection, SLERP merging, and the
// experiment cache.
#include <filesystem>

#include <gtest/gtest.h>

#include "core/cache.hpp"
#include "core/distill.hpp"
#include "core/merge.hpp"
#include "core/prune.hpp"
#include "data/corpus.hpp"
#include "test_helpers.hpp"
#include "train/trainer.hpp"

namespace sdd::core {
namespace {

using sdd::testing::tiny_config;
using sdd::testing::tiny_real_vocab_config;

std::vector<std::vector<data::TokenId>> tiny_calibration() {
  const data::World world{42};
  return data::build_calibration_set(world, 3, 20, 77);
}

TEST(Prune, DistanceCurveShapeAndRange) {
  const nn::TransformerLM model{tiny_real_vocab_config(5), 1};
  const auto calibration = tiny_calibration();
  for (const ImportanceMetric metric :
       {ImportanceMetric::kAngularCosine, ImportanceMetric::kBlockInfluence,
        ImportanceMetric::kRelativeMagnitude}) {
    const BlockDistanceCurve curve =
        compute_block_distances(model, calibration, 2, metric);
    EXPECT_EQ(curve.distances.size(), 4U);  // L - n + 1 = 5 - 2 + 1
    EXPECT_GE(curve.best_start, 0);
    EXPECT_LE(curve.best_start, 3);
    EXPECT_EQ(curve.best_distance,
              curve.distances[static_cast<std::size_t>(curve.best_start)]);
    for (double d : curve.distances) EXPECT_GE(d, 0.0);
    if (metric == ImportanceMetric::kAngularCosine) {
      for (double d : curve.distances) EXPECT_LE(d, 1.0);  // arccos/pi in [0,1]
    }
  }
}

TEST(Prune, ArgminIsActuallyMinimal) {
  const nn::TransformerLM model{tiny_real_vocab_config(6), 2};
  const auto calibration = tiny_calibration();
  const BlockDistanceCurve curve = compute_block_distances(
      model, calibration, 3, ImportanceMetric::kAngularCosine);
  for (double d : curve.distances) EXPECT_GE(d, curve.best_distance);
}

TEST(Prune, IdentityLikeBlockIsSelected) {
  // Shrink one block's output projections toward zero: the block becomes a
  // near-identity (residual passthrough) and should be the pruning choice.
  nn::TransformerLM model{tiny_real_vocab_config(5), 3};
  const std::int64_t victim = 2;
  auto& block = model.block(static_cast<std::size_t>(victim));
  for (float& v : block.attention().wo().weight().data()) v *= 1e-4F;
  for (float& v : block.mlp().w_down().weight().data()) v *= 1e-4F;

  const auto calibration = tiny_calibration();
  const BlockDistanceCurve curve = compute_block_distances(
      model, calibration, 1, ImportanceMetric::kAngularCosine);
  EXPECT_EQ(curve.best_start, victim);
}

TEST(Prune, PruneModelRemovesSelectedBlock) {
  const nn::TransformerLM model{tiny_real_vocab_config(5), 4};
  const auto calibration = tiny_calibration();
  const PruneResult result = prune_model(model, calibration, 2);
  EXPECT_EQ(result.model.n_layers(), 3);
  EXPECT_EQ(result.block_size, 2);
  EXPECT_EQ(result.start, result.curve.best_start);
}

TEST(Prune, LayerImportanceHasOneEntryPerLayer) {
  const nn::TransformerLM model{tiny_real_vocab_config(4), 5};
  const auto importance = layer_importance(model, tiny_calibration(),
                                           ImportanceMetric::kBlockInfluence);
  EXPECT_EQ(importance.size(), 4U);
}

TEST(Prune, RejectsBadInput) {
  const nn::TransformerLM model{tiny_real_vocab_config(3), 6};
  const auto calibration = tiny_calibration();
  EXPECT_THROW(compute_block_distances(model, calibration, 0,
                                       ImportanceMetric::kAngularCosine),
               std::invalid_argument);
  EXPECT_THROW(compute_block_distances(model, calibration, 3,
                                       ImportanceMetric::kAngularCosine),
               std::invalid_argument);
  EXPECT_THROW(compute_block_distances(model, {}, 1,
                                       ImportanceMetric::kAngularCosine),
               std::invalid_argument);
}

// ------------------------------- distill ---------------------------------

TEST(Distill, FallsBackWhenTeacherIsWrong) {
  // An untrained tiny model will essentially never produce the right number:
  // the conditional selection must keep every original target.
  const nn::TransformerLM model{tiny_config(2), 7};
  const data::World world{42};
  // NOTE: tiny_config vocab (50) is smaller than the real Vocab, so build the
  // dataset against the real vocab and a model with the real vocab size.
  nn::ModelConfig config = tiny_config(2);
  config.vocab_size = data::Vocab::instance().size();
  const nn::TransformerLM teacher{config, 8};
  const data::SftDataset dataset = data::make_gsm8k_dataset(world, 10, 5);

  DistillConfig distill_config;
  distill_config.max_new_tokens = 12;
  DistillStats stats;
  const data::SftDataset distilled =
      self_distill_dataset(teacher, dataset, distill_config, &stats);

  EXPECT_EQ(stats.total, 10);
  EXPECT_EQ(stats.accepted + stats.fallback, 10);
  ASSERT_EQ(distilled.examples.size(), dataset.examples.size());
  for (std::size_t i = 0; i < distilled.examples.size(); ++i) {
    // Prompts always preserved.
    EXPECT_EQ(distilled.examples[i].prompt, dataset.examples[i].prompt);
    // Either the rewrite was accepted (and thus verifies) or the target is
    // byte-identical to the original.
    EXPECT_TRUE(data::response_matches(data::Vocab::instance(),
                                       distilled.examples[i],
                                       distilled.examples[i].target));
  }
  EXPECT_EQ(distilled.name, "gsm8k+selfdistilled");
}

TEST(Distill, OpenEndedRewritesAreAccepted) {
  // Dolly-style examples accept any non-degenerate rewrite, so acceptance
  // should be high even for an untrained teacher (as long as it emits >= 3
  // tokens before <eos>).
  nn::ModelConfig config = tiny_config(2);
  config.vocab_size = data::Vocab::instance().size();
  const nn::TransformerLM teacher{config, 9};
  const data::World world{42};
  const data::SftDataset dataset = data::make_dolly_dataset(world, 8, 6);
  DistillStats stats;
  const data::SftDataset distilled =
      self_distill_dataset(teacher, dataset, {}, &stats);
  EXPECT_EQ(stats.total, 8);
  // All outputs verify their own keys by construction.
  for (const data::SftExample& example : distilled.examples) {
    EXPECT_TRUE(
        data::response_matches(data::Vocab::instance(), example, example.target));
  }
}

// -------------------------------- merge -----------------------------------

TEST(Merge, SlerpEndpoints) {
  const std::vector<float> a{1.0F, 0.0F, 2.0F};
  const std::vector<float> b{0.0F, 1.0F, -1.0F};
  const auto at0 = slerp(a, b, 0.0F);
  const auto at1 = slerp(a, b, 1.0F);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(at0[i], a[i], 1e-5F);
    EXPECT_NEAR(at1[i], b[i], 1e-5F);
  }
}

TEST(Merge, SlerpOnUnitCircleStaysOnCircle) {
  // 2-D unit vectors at 90 degrees: slerp(t=0.5) must be the 45-degree unit
  // vector — the defining property of spherical interpolation.
  const std::vector<float> a{1.0F, 0.0F};
  const std::vector<float> b{0.0F, 1.0F};
  const auto mid = slerp(a, b, 0.5F);
  const float inv_sqrt2 = 1.0F / std::sqrt(2.0F);
  EXPECT_NEAR(mid[0], inv_sqrt2, 1e-5F);
  EXPECT_NEAR(mid[1], inv_sqrt2, 1e-5F);
  // Linear interpolation would give 0.5/0.5 with norm < 1.
  const auto linear = lerp(a, b, 0.5F);
  EXPECT_LT(std::hypot(linear[0], linear[1]), 1.0F);
}

TEST(Merge, SlerpParallelVectorsFallsBackToLerp) {
  const std::vector<float> a{1.0F, 2.0F};
  const std::vector<float> b{2.0F, 4.0F};  // parallel to a
  const auto mid = slerp(a, b, 0.5F);
  EXPECT_NEAR(mid[0], 1.5F, 1e-4F);
  EXPECT_NEAR(mid[1], 3.0F, 1e-4F);
}

TEST(Merge, ModelEndpointsReproduceInputs) {
  const nn::TransformerLM a{tiny_config(2), 10};
  const nn::TransformerLM b{tiny_config(2), 11};
  const nn::TransformerLM at0 = merge_models(a, b, 0.0F);
  const nn::TransformerLM at1 = merge_models(a, b, 1.0F);
  EXPECT_EQ(at0.weight_hash(), a.weight_hash());
  EXPECT_EQ(at1.weight_hash(), b.weight_hash());
}

TEST(Merge, MidpointDiffersFromBoth) {
  const nn::TransformerLM a{tiny_config(2), 12};
  const nn::TransformerLM b{tiny_config(2), 13};
  for (const MergeMode mode : {MergeMode::kSlerpPerTensor, MergeMode::kSlerpWholeModel,
                               MergeMode::kLerp}) {
    const nn::TransformerLM mid = merge_models(a, b, 0.5F, mode);
    EXPECT_NE(mid.weight_hash(), a.weight_hash());
    EXPECT_NE(mid.weight_hash(), b.weight_hash());
  }
}

TEST(Merge, RejectsMismatchedArchitectures) {
  const nn::TransformerLM a{tiny_config(2), 14};
  const nn::TransformerLM b{tiny_config(3), 15};
  EXPECT_THROW(merge_models(a, b, 0.5F), std::invalid_argument);
  const nn::TransformerLM c{tiny_config(2), 16};
  EXPECT_THROW(merge_models(a, c, 1.5F), std::invalid_argument);
}

// -------------------------------- cache -----------------------------------

TEST(Cache, ModelRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "sdd_cache_test";
  std::filesystem::remove_all(dir);
  ExperimentCache cache{dir};
  EXPECT_FALSE(cache.load_model(1).has_value());

  const nn::TransformerLM model{tiny_config(2), 17};
  cache.store_model(1, model);
  const auto loaded = cache.load_model(1);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->weight_hash(), model.weight_hash());
  std::filesystem::remove_all(dir);
}

TEST(Cache, DatasetRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "sdd_cache_test2";
  std::filesystem::remove_all(dir);
  ExperimentCache cache{dir};
  const data::World world{42};
  const data::SftDataset dataset = data::make_alpaca_dataset(world, 15, 3);
  cache.store_dataset(9, dataset);
  const auto loaded = cache.load_dataset(9);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->hash(), dataset.hash());
  EXPECT_EQ(loaded->name, dataset.name);
  EXPECT_EQ(static_cast<int>(loaded->family), static_cast<int>(dataset.family));
  std::filesystem::remove_all(dir);
}

TEST(Cache, MetricRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "sdd_cache_test3";
  std::filesystem::remove_all(dir);
  ExperimentCache cache{dir};
  EXPECT_FALSE(cache.load_metric(5).has_value());
  cache.store_metric(5, 0.8125);
  EXPECT_DOUBLE_EQ(cache.load_metric(5).value(), 0.8125);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sdd::core
