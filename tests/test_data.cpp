// Tests for the synthetic language: vocabulary, world, task grammars,
// datasets, evaluation items, and the pre-training corpus.
#include <set>

#include <gtest/gtest.h>

#include "data/corpus.hpp"
#include "data/evalset.hpp"
#include "data/kb_gen.hpp"
#include "data/math_gen.hpp"
#include "data/sft.hpp"
#include "data/vocab.hpp"
#include "data/world.hpp"

namespace sdd::data {
namespace {

TEST(Vocab, EncodeDecodeRoundTrip) {
  const Vocab& vocab = Vocab::instance();
  const std::string text = "q : tom has 7 apples . how many apples does tom have ?";
  const auto ids = vocab.encode(text);
  EXPECT_EQ(vocab.decode(ids), text);
}

TEST(Vocab, UnknownWordThrows) {
  const Vocab& vocab = Vocab::instance();
  EXPECT_THROW(vocab.id("unknownword"), std::invalid_argument);
  EXPECT_FALSE(vocab.try_id("unknownword").has_value());
  EXPECT_TRUE(vocab.try_id("tom").has_value());
}

TEST(Vocab, NumberTokensBijective) {
  const Vocab& vocab = Vocab::instance();
  for (std::int64_t n = 0; n <= Vocab::kMaxNumber; ++n) {
    const TokenId id = vocab.number_token(n);
    EXPECT_EQ(vocab.token_number(id), n);
    EXPECT_EQ(vocab.word(id), std::to_string(n));
  }
  EXPECT_THROW(vocab.number_token(100), std::out_of_range);
  EXPECT_FALSE(vocab.token_number(vocab.bos()).has_value());
}

TEST(Vocab, SpecialsDistinct) {
  const Vocab& vocab = Vocab::instance();
  const std::set<TokenId> specials{vocab.pad(), vocab.bos(), vocab.eos(), vocab.sep()};
  EXPECT_EQ(specials.size(), 4U);
}

TEST(Vocab, LastNumberExtraction) {
  const Vocab& vocab = Vocab::instance();
  const auto ids = vocab.encode("we compute 3 + 4 = 7 . ans 7");
  EXPECT_EQ(last_number(vocab, ids), 7);
  const auto none = vocab.encode("the cat meows .");
  EXPECT_FALSE(last_number(vocab, none).has_value());
}

TEST(World, DeterministicPerSeed) {
  const World a{42}, b{42}, c{43};
  EXPECT_EQ(a.sound_of("cat"), b.sound_of("cat"));
  EXPECT_EQ(a.cause_effects()[5].effect, b.cause_effects()[5].effect);
  // Different seeds should differ somewhere in the fact tables.
  bool any_different = false;
  for (std::size_t i = 0; i < a.cause_effects().size(); ++i) {
    if (a.cause_effects()[i].effect != c.cause_effects()[i].effect) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(World, CompleteFactFamilies) {
  const World world{42};
  EXPECT_EQ(world.animals().size(), 8U);
  EXPECT_EQ(world.cause_effects().size(), 4U * 8U);
  EXPECT_EQ(world.classifications().size(), 4U * 8U);
  EXPECT_FALSE(world.routines().empty());
  for (const Routine& routine : world.routines()) {
    EXPECT_EQ(routine.actions.size(), 4U);
  }
  for (const ColorFact& fact : world.color_facts()) {
    EXPECT_NE(fact.color, fact.popular_error);
  }
}

TEST(World, SoundBijection) {
  const World world{42};
  std::set<std::string> sounds;
  for (const std::string& animal : world.animals()) {
    sounds.insert(world.sound_of(animal));
  }
  EXPECT_EQ(sounds.size(), world.animals().size());
  EXPECT_THROW(world.sound_of("zebra"), std::invalid_argument);
}

TEST(MathGen, ProblemsAreArithmeticallyConsistent) {
  Rng rng{1};
  for (int i = 0; i < 500; ++i) {
    const MathProblem problem = make_math_problem(rng, {.min_steps = 1, .max_steps = 4});
    std::int64_t value = problem.start;
    for (const MathStep& step : problem.steps) {
      EXPECT_EQ(step.before, value);
      switch (step.op) {
        case MathOp::kAdd:
          value += step.operand;
          break;
        case MathOp::kSub:
          value -= step.operand;
          break;
        case MathOp::kDouble:
          value *= 2;
          break;
      }
      EXPECT_EQ(step.after, value);
      EXPECT_GE(value, 0);
      EXPECT_LE(value, Vocab::kMaxNumber);
    }
    EXPECT_EQ(problem.answer, value);
  }
}

TEST(MathGen, AllRenderingsEncodeAndEndInAnswer) {
  const Vocab& vocab = Vocab::instance();
  Rng rng{2};
  for (int i = 0; i < 200; ++i) {
    const MathProblem problem = make_math_problem(rng, {.min_steps = 1, .max_steps = 4});
    const auto question_ids = vocab.encode(render_math_question(problem));
    EXPECT_FALSE(question_ids.empty());
    for (SolutionStyle style :
         {SolutionStyle::kModel, SolutionStyle::kHuman, SolutionStyle::kHumanAlt}) {
      const auto ids = vocab.encode(render_math_solution(problem, style));
      EXPECT_EQ(last_number(vocab, ids), problem.answer)
          << render_math_solution(problem, style);
    }
  }
}

TEST(MathGen, StylesDiffer) {
  Rng rng{3};
  const MathProblem problem = make_math_problem(rng, {.min_steps = 2, .max_steps = 2});
  const std::string model_style = render_math_solution(problem, SolutionStyle::kModel);
  const std::string human_style = render_math_solution(problem, SolutionStyle::kHuman);
  const std::string alt_style = render_math_solution(problem, SolutionStyle::kHumanAlt);
  EXPECT_NE(model_style, human_style);
  EXPECT_NE(model_style, alt_style);
  EXPECT_NE(human_style, alt_style);
}

TEST(MathGen, EquationDrillsAreValid) {
  const Vocab& vocab = Vocab::instance();
  Rng rng{4};
  for (int i = 0; i < 200; ++i) {
    const auto ids = vocab.encode(render_equation_drill(rng));
    ASSERT_EQ(ids.size(), 5U);  // "a op b = c"
    const auto a = vocab.token_number(ids[0]);
    const auto b = vocab.token_number(ids[2]);
    const auto c = vocab.token_number(ids[4]);
    ASSERT_TRUE(a && b && c);
    const std::string op = vocab.word(ids[1]);
    if (op == "+") {
      EXPECT_EQ(*a + *b, *c);
    } else {
      ASSERT_EQ(op, "-");
      EXPECT_EQ(*a - *b, *c);
    }
  }
}

TEST(KbGen, AllRenderersProduceVocabWords) {
  const Vocab& vocab = Vocab::instance();
  const World world{42};
  Rng rng{5};
  for (int i = 0; i < 300; ++i) {
    EXPECT_NO_THROW(vocab.encode(render_fact_statement(world, rng)));
    EXPECT_NO_THROW(vocab.encode(render_color_statement(world, rng, 0.3)));
    const QaPair qa = render_kb_qa(world, rng);
    EXPECT_NO_THROW(vocab.encode(qa.question));
    EXPECT_NO_THROW(vocab.encode(qa.answer));
    const DollyExample dolly = make_dolly_example(world, rng);
    EXPECT_NO_THROW(vocab.encode(dolly.question));
    EXPECT_NO_THROW(vocab.encode(dolly.response_model));
    EXPECT_NO_THROW(vocab.encode(dolly.response_human));
    const AlpacaExample alpaca = make_alpaca_example(world, rng);
    EXPECT_NO_THROW(vocab.encode(alpaca.question));
    EXPECT_NO_THROW(vocab.encode(alpaca.response_model));
    EXPECT_NO_THROW(vocab.encode(alpaca.response_human));
  }
}

TEST(KbGen, AlpacaKeysAppearInBothResponses) {
  const Vocab& vocab = Vocab::instance();
  const World world{42};
  Rng rng{6};
  for (int i = 0; i < 200; ++i) {
    const AlpacaExample example = make_alpaca_example(world, rng);
    EXPECT_NE(example.response_model.find(example.answer_key), std::string::npos)
        << example.response_model << " // " << example.answer_key;
    EXPECT_NE(example.response_human.find(example.answer_key), std::string::npos);
    (void)vocab;
  }
}

TEST(Sft, DatasetsHaveRequestedSizeAndValidKeys) {
  const World world{42};
  for (const std::string name : {"gsm8k", "openmathinstruct", "dolly", "alpaca"}) {
    const SftDataset dataset = make_dataset_by_name(world, name, 40, 9);
    EXPECT_EQ(dataset.examples.size(), 40U);
    EXPECT_EQ(dataset.name, name);
    for (const SftExample& example : dataset.examples) {
      EXPECT_FALSE(example.prompt.empty());
      EXPECT_FALSE(example.target.empty());
      EXPECT_EQ(example.prompt.front(), Vocab::instance().bos());
      EXPECT_EQ(example.prompt.back(), Vocab::instance().sep());
      EXPECT_EQ(example.target.back(), Vocab::instance().eos());
    }
  }
  EXPECT_THROW(make_dataset_by_name(world, "bogus", 10, 9), std::invalid_argument);
}

TEST(Sft, GroundTruthTargetsPassTheirOwnExtraction) {
  // Every dataset's reference target must satisfy response_matches — the
  // invariant the self-data distillation fallback relies on.
  const World world{42};
  const Vocab& vocab = Vocab::instance();
  for (const std::string name : {"gsm8k", "openmathinstruct", "dolly", "alpaca"}) {
    const SftDataset dataset = make_dataset_by_name(world, name, 60, 10);
    for (const SftExample& example : dataset.examples) {
      EXPECT_TRUE(response_matches(vocab, example, example.target)) << name;
    }
  }
}

TEST(Sft, ExtractionRules) {
  const Vocab& vocab = Vocab::instance();
  SftExample numeric;
  numeric.extract = ExtractKind::kNumeric;
  numeric.numeric_answer = 12;
  EXPECT_TRUE(response_matches(vocab, numeric, vocab.encode("so the answer is 12")));
  EXPECT_FALSE(response_matches(vocab, numeric, vocab.encode("so the answer is 13")));
  EXPECT_FALSE(response_matches(vocab, numeric, vocab.encode("the cat meows .")));

  SftExample contains;
  contains.extract = ExtractKind::kContains;
  contains.answer_key = vocab.encode("gold gold");
  EXPECT_TRUE(response_matches(vocab, contains, vocab.encode("a : gold gold .")));
  EXPECT_FALSE(response_matches(vocab, contains, vocab.encode("a : gold .")));

  SftExample open;
  open.extract = ExtractKind::kOpenEnded;
  EXPECT_TRUE(response_matches(vocab, open, vocab.encode("the cat meows .")));
  EXPECT_FALSE(response_matches(vocab, open, vocab.encode("the")));
}

TEST(Sft, HashChangesWithContent) {
  const World world{42};
  const SftDataset a = make_gsm8k_dataset(world, 20, 1);
  const SftDataset b = make_gsm8k_dataset(world, 20, 1);
  const SftDataset c = make_gsm8k_dataset(world, 20, 2);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
}

TEST(EvalSet, McItemsWellFormed) {
  const World world{42};
  const auto check = [](const McTask& task, std::size_t expected_options) {
    EXPECT_FALSE(task.items.empty());
    EXPECT_FALSE(task.fewshot_pool.empty());
    for (const McItem& item : task.items) {
      EXPECT_EQ(item.options.size(), expected_options);
      EXPECT_LT(item.correct, item.options.size());
      // Options must be distinct.
      std::set<std::vector<TokenId>> unique(item.options.begin(), item.options.end());
      EXPECT_EQ(unique.size(), item.options.size());
    }
  };
  check(make_arc_task(world, 20, 1), 4);
  check(make_hellaswag_task(world, 20, 1), 4);
  check(make_truthfulqa_task(world, 20, 1), 4);
  check(make_mmlu_task(world, 20, 1), 4);
  check(make_winogrande_task(world, 20, 1), 2);
}

TEST(EvalSet, CorrectOptionsMatchWorldFacts) {
  const World world{42};
  const Vocab& vocab = Vocab::instance();
  const McTask arc = make_arc_task(world, 30, 2);
  for (const McItem& item : arc.items) {
    const std::string question = vocab.decode(item.context);
    const std::string answer = vocab.decode(item.options[item.correct]);
    // Recover the fact from the question and verify the gold option.
    bool found = false;
    for (const CauseEffectFact& fact : world.cause_effects()) {
      if (question.find(fact.process + " " + fact.substance) != std::string::npos) {
        EXPECT_NE(answer.find(fact.effect), std::string::npos) << question;
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << question;
  }
}

TEST(EvalSet, GsmEvalAnswersConsistent) {
  const Vocab& vocab = Vocab::instance();
  const GenTask task = make_gsm8k_eval_task(25, 3);
  EXPECT_EQ(task.items.size(), 25U);
  for (const GenItem& item : task.items) {
    EXPECT_EQ(last_number(vocab, item.reference), item.answer);
    EXPECT_EQ(item.prompt.back(), vocab.sep());
  }
}

TEST(EvalSet, SeedChangesItems) {
  const World world{42};
  const McTask a = make_mmlu_task(world, 10, 1);
  const McTask b = make_mmlu_task(world, 10, 2);
  bool any_different = false;
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    if (a.items[i].context != b.items[i].context) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Corpus, StreamStructure) {
  const World world{42};
  CorpusConfig config;
  config.n_documents = 200;
  const auto stream = build_pretraining_stream(world, config);
  const Vocab& vocab = Vocab::instance();
  EXPECT_EQ(stream.front(), vocab.bos());
  EXPECT_EQ(stream.back(), vocab.eos());
  // Count documents by <bos> markers.
  std::int64_t docs = 0;
  for (TokenId id : stream) {
    if (id == vocab.bos()) ++docs;
  }
  EXPECT_EQ(docs, 200);
}

TEST(Corpus, DeterministicAndSeedSensitive) {
  const World world{42};
  CorpusConfig config;
  config.n_documents = 50;
  const auto a = build_pretraining_stream(world, config);
  const auto b = build_pretraining_stream(world, config);
  EXPECT_EQ(a, b);
  config.seed = 8;
  const auto c = build_pretraining_stream(world, config);
  EXPECT_NE(a, c);
}

TEST(Corpus, CalibrationSetShape) {
  const World world{42};
  const auto calibration = build_calibration_set(world, 6, 32, 11);
  EXPECT_EQ(calibration.size(), 6U);
  for (const auto& sample : calibration) EXPECT_EQ(sample.size(), 32U);
}

}  // namespace
}  // namespace sdd::data
