// Tests for the evaluation harness, suites, embedding diagnostics, and FLOPs
// accounting.
#include <gtest/gtest.h>

#include "eval/embedding.hpp"
#include "eval/flops.hpp"
#include "eval/harness.hpp"
#include "eval/suite.hpp"
#include "test_helpers.hpp"

namespace sdd::eval {
namespace {

nn::ModelConfig real_vocab_config(std::int64_t layers = 2) {
  nn::ModelConfig config = sdd::testing::tiny_config(layers);
  config.vocab_size = data::Vocab::instance().size();
  config.max_seq_len = 160;
  return config;
}

TEST(Harness, McAccuracyBoundsAndCounts) {
  const nn::TransformerLM model{real_vocab_config(), 1};
  const data::World world{42};
  const data::McTask task = data::make_winogrande_task(world, 12, 5);
  const TaskResult result = evaluate_mc(model, task, {.shots = 0});
  EXPECT_EQ(result.n_items, 12);
  EXPECT_GE(result.accuracy, 0.0);
  EXPECT_LE(result.accuracy, 1.0);
  EXPECT_EQ(result.task, "winogrande");
}

TEST(Harness, McRespectsMaxItems) {
  const nn::TransformerLM model{real_vocab_config(), 2};
  const data::World world{42};
  const data::McTask task = data::make_arc_task(world, 20, 5);
  const TaskResult result = evaluate_mc(model, task, {.shots = 0, .max_items = 4});
  EXPECT_EQ(result.n_items, 4);
}

TEST(Harness, McDeterministicForFixedSeed) {
  const nn::TransformerLM model{real_vocab_config(), 3};
  const data::World world{42};
  const data::McTask task = data::make_mmlu_task(world, 10, 5);
  const TaskResult a = evaluate_mc(model, task, {.shots = 2, .seed = 9});
  const TaskResult b = evaluate_mc(model, task, {.shots = 2, .seed = 9});
  EXPECT_EQ(a.n_correct, b.n_correct);
}

TEST(Harness, BiasedModelScoresPerfect) {
  // A model strongly biased toward a specific token sequence should pick the
  // option containing it. We simulate by fine-tuning? Too slow — instead use
  // an item whose gold option is the repetition of the context's last tokens,
  // which even a random model can't reliably do. Instead: verify the scorer
  // itself by feeding a single-option item (degenerate but exercises paths).
  const nn::TransformerLM model{real_vocab_config(), 4};
  data::McTask task;
  task.name = "degenerate";
  data::McItem item;
  const data::Vocab& vocab = data::Vocab::instance();
  item.context = vocab.encode("q : what does the cat say ?");
  item.context.push_back(vocab.sep());
  item.options = {vocab.encode("a : the cat meows .")};
  item.correct = 0;
  task.items.push_back(item);
  const TaskResult result = evaluate_mc(model, task, {.shots = 0});
  EXPECT_EQ(result.n_correct, 1);
}

TEST(Harness, GenerativeEvalExtractsAnswer) {
  const nn::TransformerLM model{real_vocab_config(), 5};
  const data::GenTask task = data::make_gsm8k_eval_task(5, 3);
  const TaskResult result = evaluate_gen(model, task, {.shots = 0});
  EXPECT_EQ(result.n_items, 5);
  EXPECT_GE(result.accuracy, 0.0);
  EXPECT_LE(result.accuracy, 1.0);
}

TEST(Harness, AnswerGenerativeStopsAtQuestionMarker) {
  const nn::TransformerLM model{real_vocab_config(), 6};
  const data::Vocab& vocab = data::Vocab::instance();
  std::vector<data::TokenId> prompt{vocab.bos()};
  const auto q = vocab.encode("q : what does the dog say ?");
  prompt.insert(prompt.end(), q.begin(), q.end());
  prompt.push_back(vocab.sep());
  const auto out = answer_generative(model, prompt, 20);
  EXPECT_LE(out.size(), 20U);
  for (const data::TokenId token : out) {
    EXPECT_NE(token, vocab.eos());
    EXPECT_NE(token, vocab.id("q"));
  }
}

TEST(Suite, TaskListsMatchPaper) {
  EXPECT_EQ(openllm_v1_tasks().size(), 6U);
  EXPECT_EQ(core_tasks(),
            (std::vector<std::string>{"arc_c", "gsm8k", "mmlu"}));
}

TEST(Suite, EvaluateSuiteAveragesTasks) {
  const nn::TransformerLM model{real_vocab_config(), 7};
  const data::World world{42};
  SuiteSpec spec;
  spec.mc_items = 4;
  spec.gen_items = 2;
  const SuiteScores scores = evaluate_suite(model, world, core_tasks(), spec);
  ASSERT_EQ(scores.tasks.size(), 3U);
  double manual = 0.0;
  for (const auto& [name, acc] : scores.tasks) manual += acc;
  EXPECT_NEAR(scores.average, manual / 3.0, 1e-9);
  EXPECT_NO_THROW(scores.task("gsm8k"));
  EXPECT_THROW(scores.task("nope"), std::invalid_argument);
}

TEST(Suite, RecoveryPercent) {
  SuiteScores baseline;
  baseline.average = 0.6;
  SuiteScores pruned;
  pruned.average = 0.45;
  EXPECT_NEAR(recovery_percent(pruned, baseline), 75.0, 1e-9);
  SuiteScores zero;
  EXPECT_THROW(recovery_percent(pruned, zero), std::invalid_argument);
}

TEST(Suite, UnknownTaskThrows) {
  const nn::TransformerLM model{real_vocab_config(), 8};
  const data::World world{42};
  EXPECT_THROW(evaluate_named_task(model, world, "bogus", {}),
               std::invalid_argument);
}

TEST(Embedding, CosineProperties) {
  const std::vector<float> a{1.0F, 0.0F};
  const std::vector<float> b{0.0F, 2.0F};
  EXPECT_NEAR(cosine_similarity(a, a), 1.0, 1e-6);
  EXPECT_NEAR(cosine_similarity(a, b), 0.0, 1e-6);
  const std::vector<float> neg{-1.0F, 0.0F};
  EXPECT_NEAR(cosine_similarity(a, neg), -1.0, 1e-6);
}

TEST(Embedding, SentenceEmbeddingShapeAndDeterminism) {
  const nn::TransformerLM model{real_vocab_config(), 9};
  const auto ids = data::Vocab::instance().encode("the cat meows .");
  const auto e1 = sentence_embedding(model, ids);
  const auto e2 = sentence_embedding(model, ids);
  EXPECT_EQ(e1.size(), static_cast<std::size_t>(model.config().d_model));
  EXPECT_EQ(e1, e2);
}

TEST(Embedding, IdenticalModelsHaveSimilarityOne) {
  const nn::TransformerLM model{real_vocab_config(), 10};
  const data::GenTask task = data::make_gsm8k_eval_task(3, 4);
  const SimilarityStats stats = embedding_shift(model, model, model, task, 3);
  ASSERT_EQ(stats.values.size(), 3U);
  for (double v : stats.values) EXPECT_NEAR(v, 1.0, 1e-5);
  EXPECT_NEAR(stats.mean, 1.0, 1e-5);
  EXPECT_NEAR(stats.stddev, 0.0, 1e-5);
}

TEST(Embedding, SummarizeStats) {
  const SimilarityStats stats = summarize({0.2, 0.4, 0.6});
  EXPECT_NEAR(stats.mean, 0.4, 1e-9);
  EXPECT_NEAR(stats.min, 0.2, 1e-9);
  EXPECT_NEAR(stats.max, 0.6, 1e-9);
  EXPECT_GT(stats.stddev, 0.0);
}

TEST(Embedding, HistogramNormalized) {
  const SimilarityStats stats = summarize({0.05, 0.15, 0.95, 0.95});
  const auto hist = stats.histogram(10);
  ASSERT_EQ(hist.size(), 10U);
  double total = 0.0;
  for (double h : hist) total += h;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(hist[9], 0.5, 1e-9);
  EXPECT_THROW(stats.histogram(0), std::invalid_argument);
}

TEST(Flops, AnalyticParamCountMatchesModel) {
  const nn::ModelConfig config = real_vocab_config(3);
  const nn::TransformerLM model{config, 11};
  EXPECT_EQ(analytic_param_count(config), model.param_count());
}

TEST(Flops, PruningSavingsScaleWithBlocks) {
  nn::ModelConfig base = real_vocab_config(16);
  nn::ModelConfig pruned = base;
  // Paper mapping: our block 3 of 16 corresponds to 6 of 32 -> 16.30% FLOPs.
  pruned.n_layers = 13;
  const double savings = param_savings(base, pruned);
  EXPECT_GT(savings, 0.10);
  EXPECT_LT(savings, 0.19);
  nn::ModelConfig pruned_more = base;
  pruned_more.n_layers = 11;
  EXPECT_GT(param_savings(base, pruned_more), savings);
  EXPECT_GT(flop_savings(base, pruned_more, 64), flop_savings(base, pruned, 64));
}

TEST(Flops, FlopsGrowWithContext) {
  const nn::ModelConfig config = real_vocab_config(4);
  EXPECT_GT(flops_per_token(config, 128), flops_per_token(config, 16));
  EXPECT_THROW(flops_per_token(config, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sdd::eval
