// Tests for the extension modules: width pruning, teacher-logit KD, the
// soft cross-entropy op, and the replay baseline.
#include <gtest/gtest.h>

#include "core/kd.hpp"
#include "core/pipeline.hpp"
#include "core/width_prune.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"

namespace sdd::core {
namespace {

using sdd::testing::tiny_config;
using sdd::testing::tiny_real_vocab_config;

TEST(SoftCrossEntropy, MatchesHardCeOnOneHotTargets) {
  Rng rng{1};
  const std::int64_t rows = 3, vocab = 7;
  Tensor logits = Tensor::randn(rng, {rows, vocab}, 1.0F, true);
  const std::vector<std::int32_t> targets{2, 5, 0};
  const std::vector<float> weights{1.0F, 2.0F, 1.0F};
  std::vector<float> one_hot(static_cast<std::size_t>(rows * vocab), 0.0F);
  for (std::int64_t r = 0; r < rows; ++r) {
    one_hot[static_cast<std::size_t>(r * vocab + targets[static_cast<std::size_t>(r)])] =
        1.0F;
  }
  const float hard = ops::cross_entropy(logits, targets, weights).item();
  const float soft = ops::soft_cross_entropy(logits, one_hot, weights).item();
  EXPECT_NEAR(hard, soft, 1e-5F);
}

TEST(SoftCrossEntropy, GradCheck) {
  Rng rng{2};
  const std::int64_t rows = 2, vocab = 5;
  Tensor logits = Tensor::randn(rng, {rows, vocab}, 1.0F, true);
  // Random teacher distribution.
  std::vector<float> teacher(static_cast<std::size_t>(rows * vocab));
  for (std::int64_t r = 0; r < rows; ++r) {
    float sum = 0.0F;
    for (std::int64_t v = 0; v < vocab; ++v) {
      teacher[static_cast<std::size_t>(r * vocab + v)] =
          rng.uniform_float(0.01F, 1.0F);
      sum += teacher[static_cast<std::size_t>(r * vocab + v)];
    }
    for (std::int64_t v = 0; v < vocab; ++v) {
      teacher[static_cast<std::size_t>(r * vocab + v)] /= sum;
    }
  }
  const std::vector<float> weights{1.0F, 0.5F};
  sdd::testing::expect_gradients_close(
      logits, [&] { return ops::soft_cross_entropy(logits, teacher, weights); },
      5e-3F);
}

TEST(SoftCrossEntropy, MinimizedWhenStudentMatchesTeacher) {
  // Cross-entropy H(t, p) >= H(t, t): matching the teacher gives the lowest
  // achievable value.
  const std::vector<float> teacher{0.7F, 0.2F, 0.1F};
  const std::vector<float> weights{1.0F};
  Tensor matching = Tensor::from_data(
      {std::log(0.7F), std::log(0.2F), std::log(0.1F)}, {1, 3});
  Tensor off = Tensor::from_data({2.0F, 0.0F, -1.0F}, {1, 3});
  const float at_match = ops::soft_cross_entropy(matching, teacher, weights).item();
  const float at_off = ops::soft_cross_entropy(off, teacher, weights).item();
  EXPECT_LT(at_match, at_off);
}

TEST(WidthPrune, RemovesChannelsAndKeepsShapesConsistent) {
  const nn::TransformerLM model{tiny_real_vocab_config(3), 4};
  const WidthPruneResult result = width_prune_ffn(model, 0.25);
  EXPECT_GT(result.channels_removed_per_layer, 0);
  EXPECT_GT(result.param_savings, 0.0);
  EXPECT_EQ(result.model.n_layers(), model.n_layers());

  // The pruned model must still run a forward pass and decode.
  Rng rng{5};
  std::vector<std::int32_t> ids{1, 2, 3, 4};
  NoGradGuard no_grad;
  const Tensor logits = result.model.forward(ids, 1, 4);
  EXPECT_EQ(logits.shape().back(), model.config().vocab_size);
  auto state = result.model.make_decode_state();
  EXPECT_NO_THROW(result.model.decode_step(state, 1));
}

TEST(WidthPrune, ZeroFractionIsIdentity) {
  const nn::TransformerLM model{tiny_real_vocab_config(2), 6};
  const WidthPruneResult result = width_prune_ffn(model, 0.0);
  EXPECT_EQ(result.channels_removed_per_layer, 0);
  EXPECT_EQ(result.model.weight_hash(), model.weight_hash());
}

TEST(WidthPrune, KeepsHighestMagnitudeChannels) {
  // Zero out a specific channel's weights: it must be the one removed.
  nn::TransformerLM model{tiny_real_vocab_config(1), 7};
  auto& mlp = model.block(0).mlp();
  const std::int64_t d_ff = mlp.w_gate().weight().dim(0);
  const std::int64_t d_model = mlp.w_gate().weight().dim(1);
  const std::int64_t victim = 3;
  for (std::int64_t c = 0; c < d_model; ++c) {
    mlp.w_gate().weight().data()[static_cast<std::size_t>(victim * d_model + c)] = 0.0F;
  }
  const WidthPruneResult result =
      width_prune_ffn(model, 1.0 / static_cast<double>(d_ff) + 1e-6);
  EXPECT_EQ(result.channels_removed_per_layer, 1);
  const auto& pruned_mlp = result.model.block(0).mlp();
  EXPECT_EQ(pruned_mlp.w_gate().weight().dim(0), d_ff - 1);
  // The surviving gate rows must all be non-zero.
  const auto data = pruned_mlp.w_gate().weight().data();
  for (std::int64_t j = 0; j < d_ff - 1; ++j) {
    float norm = 0.0F;
    for (std::int64_t c = 0; c < d_model; ++c) {
      norm += std::fabs(data[static_cast<std::size_t>(j * d_model + c)]);
    }
    EXPECT_GT(norm, 0.0F);
  }
}

TEST(WidthPrune, MatchedFractionApproximatesDepthSavings) {
  const nn::ModelConfig config = tiny_real_vocab_config(8);
  const double fraction = width_fraction_matching_depth(config, 2);
  const nn::TransformerLM model{config, 8};
  const WidthPruneResult width = width_prune_ffn(model, fraction);
  const nn::TransformerLM depth = model.pruned(2, 2);
  const double depth_savings =
      static_cast<double>(model.param_count() - depth.param_count()) /
      static_cast<double>(model.param_count());
  EXPECT_NEAR(width.param_savings, depth_savings, 0.05);
}

TEST(WidthPrune, RejectsBadFraction) {
  const nn::TransformerLM model{tiny_real_vocab_config(2), 9};
  EXPECT_THROW(width_prune_ffn(model, 1.0), std::invalid_argument);
  EXPECT_THROW(width_prune_ffn(model, -0.1), std::invalid_argument);
}

TEST(Kd, TrainingReducesLossAndMovesTowardTeacher) {
  const data::World world{42};
  const data::SftDataset dataset = data::make_gsm8k_dataset(world, 16, 8);
  const nn::TransformerLM teacher{tiny_real_vocab_config(3), 10};
  nn::TransformerLM student{tiny_real_vocab_config(2), 11};

  train::SftTrainConfig config;
  config.epochs = 10;
  config.max_steps = 25;
  config.batch_size = 4;
  const train::TrainStats stats =
      kd_train(student, teacher, dataset, config, KdConfig{});
  EXPECT_EQ(stats.losses.size(), 25U);
  EXPECT_LT(stats.final_loss, stats.initial_loss);
}

TEST(Kd, ValidatesInputs) {
  const data::World world{42};
  const data::SftDataset dataset = data::make_gsm8k_dataset(world, 4, 9);
  const nn::TransformerLM teacher{tiny_real_vocab_config(2), 12};
  nn::TransformerLM student{tiny_real_vocab_config(2), 13};
  train::SftTrainConfig config;
  KdConfig bad;
  bad.alpha = 1.5F;
  EXPECT_THROW(kd_train(student, teacher, dataset, config, bad),
               std::invalid_argument);
  nn::TransformerLM mismatched{tiny_config(2), 14};  // different vocab
  EXPECT_THROW(kd_train(mismatched, teacher, dataset, config, KdConfig{}),
               std::invalid_argument);
  data::SftDataset empty;
  EXPECT_THROW(kd_train(student, teacher, empty, config, KdConfig{}),
               std::invalid_argument);
}

TEST(Replay, MixtureContainsRawAndReplayExamples) {
  PipelineConfig config;
  config.model = tiny_real_vocab_config(2);
  config.corpus.n_documents = 100;
  config.pretrain.steps = 2;
  config.pretrain.warmup_steps = 1;
  config.pretrain.batch_size = 2;
  config.pretrain.seq_len = 24;
  config.pretrain.log_every = 0;
  config.replay_ratio = 0.5;
  config.cache_dir =
      std::filesystem::temp_directory_path() / "sdd_replay_test_cache";
  std::filesystem::remove_all(config.cache_dir);
  Pipeline pipeline{config};

  const data::SftDataset mixture = pipeline.replay_dataset("gsm8k", 20);
  EXPECT_EQ(mixture.examples.size(), 30U);  // 20 raw + 10 replayed
  EXPECT_EQ(mixture.name, "gsm8k+replay");
  // Replayed tail must be open-ended QA examples.
  for (std::size_t i = 20; i < 30; ++i) {
    EXPECT_EQ(static_cast<int>(mixture.examples[i].extract),
              static_cast<int>(data::ExtractKind::kOpenEnded));
  }
  std::filesystem::remove_all(config.cache_dir);
}

TEST(Methods, NamesCoverNewMethods) {
  EXPECT_EQ(method_name(FtMethod::kSftReplay), "sft_replay");
  EXPECT_EQ(method_name(FtMethod::kKd), "kd");
  EXPECT_EQ(method_name(FtMethod::kSelfDataDistillKd), "self_data_distill_kd");
}

}  // namespace
}  // namespace sdd::core
