// The crash-tolerant fleet work queue (fleet/queue) and worker loop
// (fleet/orchestrator): atomic O_EXCL claims (exactly one racer wins), lease
// renewal vs. expiry, orphan reclaim after a simulated kill -9, poison-task
// quarantine, result-validation requeue, and the fleet-level fault hooks'
// once-per-run marker semantics. Suite names all start with "Fleet" so the
// TSan CI job picks them up (tests that fork are compiled out under TSan —
// fork+threads is outside TSan's model — while the thread-based races stay).
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/orchestrator.hpp"
#include "fleet/queue.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/proc.hpp"
#include "util/signals.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SDD_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define SDD_TSAN 1
#endif

namespace sdd::fleet {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("sdd_fleet_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  static inline std::atomic<int> counter_{0};
  fs::path path_;
};

TaskSpec make_task(const std::string& id) {
  TaskSpec task;
  task.id = id;
  task.fields["kind"] = "test";
  task.fields["payload"] = id + "-payload";
  return task;
}

TEST(FleetTaskSpec, SerializeParseRoundTrip) {
  TaskSpec task;
  task.id = "cell_3";
  task.fields["kind"] = "eval_cell";
  task.fields["task"] = "gsm8k";
  task.fields["size"] = "800";
  const TaskSpec parsed = TaskSpec::parse(task.id, task.serialize());
  EXPECT_EQ(parsed.id, "cell_3");
  EXPECT_EQ(parsed.fields, task.fields);
  EXPECT_EQ(parsed.field("task"), "gsm8k");
  EXPECT_EQ(parsed.field_int("size"), 800);
  EXPECT_THROW(parsed.field("missing"), Error);
  TaskSpec bad = parsed;
  bad.fields["size"] = "not-a-number";
  EXPECT_THROW(bad.field_int("size"), Error);
}

TEST(FleetQueue, LifecycleCountsAndIdempotentEnqueue) {
  TempDir tmp;
  WorkQueue queue{tmp.path()};
  EXPECT_TRUE(queue.enqueue(make_task("a")));
  EXPECT_TRUE(queue.enqueue(make_task("b")));
  EXPECT_FALSE(queue.enqueue(make_task("a")));  // duplicate is a no-op
  EXPECT_FALSE(queue.all_terminal());

  auto claim = queue.try_claim("w0");
  ASSERT_TRUE(claim.has_value());
  EXPECT_EQ(queue.counts().claimed, 1);
  queue.complete(claim->id, "w0");
  EXPECT_TRUE(queue.is_done(claim->id));
  EXPECT_EQ(queue.counts().claimed, 0);
  EXPECT_FALSE(queue.enqueue(make_task(claim->id)));  // done: resume reuses

  auto second = queue.try_claim("w0");
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->id, claim->id);
  queue.complete(second->id, "w0");
  EXPECT_TRUE(queue.all_terminal());
  EXPECT_FALSE(queue.try_claim("w0").has_value());
  const QueueCounts counts = queue.counts();
  EXPECT_EQ(counts.tasks, 2);
  EXPECT_EQ(counts.done, 2);
  EXPECT_EQ(counts.dead, 0);
}

TEST(FleetQueue, InvalidTaskIdRejected) {
  TempDir tmp;
  WorkQueue queue{tmp.path()};
  EXPECT_THROW(queue.enqueue(make_task("../escape")), Error);
  EXPECT_THROW(queue.enqueue(make_task("")), Error);
}

// Many threads race one claim through O_CREAT|O_EXCL: exactly one wins.
TEST(FleetQueue, ConcurrentClaimExactlyOneWinner) {
  TempDir tmp;
  WorkQueue queue{tmp.path()};
  ASSERT_TRUE(queue.enqueue(make_task("contested")));

  constexpr int kRacers = 8;
  std::atomic<int> winners{0};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> racers;
  racers.reserve(kRacers);
  for (int i = 0; i < kRacers; ++i) {
    racers.emplace_back([&, i] {
      WorkQueue local{tmp.path()};
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      if (local.try_claim("w" + std::to_string(i)).has_value()) {
        winners.fetch_add(1);
      }
    });
  }
  while (ready.load() < kRacers) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (std::thread& t : racers) t.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(queue.counts().claimed, 1);
}

// Same race with the claim_race fault armed: every scanner targets the same
// task and pauses in the widened scan-to-claim window; still one winner.
TEST(FleetQueue, ClaimRaceFaultStillElectsOneWinner) {
  TempDir tmp;
  WorkQueue queue{tmp.path()};
  ASSERT_TRUE(queue.enqueue(make_task("contested")));

  fault::FaultConfig config;
  config.claim_race = true;
  fault::configure(config);
  ASSERT_TRUE(fault::claim_race_armed());

  constexpr int kRacers = 6;
  std::atomic<int> winners{0};
  std::vector<std::thread> racers;
  for (int i = 0; i < kRacers; ++i) {
    racers.emplace_back([&, i] {
      WorkQueue local{tmp.path()};
      if (local.try_claim("w" + std::to_string(i)).has_value()) {
        winners.fetch_add(1);
      }
    });
  }
  for (std::thread& t : racers) t.join();
  fault::reset();
  EXPECT_EQ(winners.load(), 1);
}

// A lease whose renewal straddles the expiry window: a freshly renewed claim
// must survive reclaim, and the same claim left silent must be reclaimed
// (counting one failure against the task).
TEST(FleetQueue, LeaseRenewalStraddlesExpiry) {
  TempDir tmp;
  WorkQueue queue{tmp.path()};
  ASSERT_TRUE(queue.enqueue(make_task("leased")));
  auto claim = queue.try_claim("w0");
  ASSERT_TRUE(claim.has_value());

  // Fabricate an old beat, then renew: the beat must be fresh again and the
  // lease must survive a reclaim pass.
  auto info = queue.read_claim("leased");
  ASSERT_TRUE(info.has_value());
  std::ofstream out{queue.claim_path("leased")};
  out << "pid=" << info->pid << "\nworker=w0\nbeat=" << (info->beat_ms - 10'000)
      << "\n";
  out.close();
  queue.renew("leased", "w0");
  info = queue.read_claim("leased");
  ASSERT_TRUE(info.has_value());
  EXPECT_GT(info->beat_ms, proc::monotonic_ms() - 5'000);
  EXPECT_TRUE(queue.reclaim_stale(/*lease_ms=*/60'000, /*retry_budget=*/3)
                  .empty());
  EXPECT_EQ(queue.attempts("leased"), 0);

  // Now let the lease go stale: reclaim must break it and count a failure.
  std::ofstream stale{queue.claim_path("leased")};
  stale << "pid=" << info->pid << "\nworker=w0\nbeat="
        << (proc::monotonic_ms() - 10'000) << "\n";
  stale.close();
  const auto reclaimed = queue.reclaim_stale(/*lease_ms=*/1'000, 3);
  ASSERT_EQ(reclaimed.size(), 1U);
  EXPECT_EQ(reclaimed[0].id, "leased");
  EXPECT_EQ(reclaimed[0].claim.worker, "w0");
  EXPECT_FALSE(reclaimed[0].quarantined);
  EXPECT_EQ(queue.attempts("leased"), 1);
  EXPECT_FALSE(queue.read_claim("leased").has_value());

  // A renewal from the evicted owner must not resurrect the claim, and the
  // task must be claimable again.
  queue.renew("leased", "w0");
  EXPECT_FALSE(queue.read_claim("leased").has_value());
  EXPECT_TRUE(queue.try_claim("w1").has_value());
}

// A claim on a task that is already done (crash between the done marker and
// the claim release) is dropped without counting a failure.
TEST(FleetQueue, ReclaimOfDoneTaskDropsClaimSilently) {
  TempDir tmp;
  WorkQueue queue{tmp.path()};
  ASSERT_TRUE(queue.enqueue(make_task("t")));
  ASSERT_TRUE(queue.try_claim("w0").has_value());
  // Simulate the crash window: done marker published, claim never released.
  std::ofstream out{queue.done_path("t")};
  out << "worker=w0\n";
  out.close();
  std::ofstream stale{queue.claim_path("t")};
  stale << "pid=1\nworker=w0\nbeat=0\n";
  stale.close();
  EXPECT_TRUE(queue.reclaim_stale(/*lease_ms=*/1, 3).empty());
  EXPECT_FALSE(queue.read_claim("t").has_value());
  EXPECT_EQ(queue.attempts("t"), 0);
  EXPECT_TRUE(queue.all_terminal());
}

TEST(FleetQueue, PoisonTaskQuarantinesAfterBudget) {
  TempDir tmp;
  WorkQueue queue{tmp.path()};
  ASSERT_TRUE(queue.enqueue(make_task("poison")));
  for (int attempt = 1; attempt <= 3; ++attempt) {
    auto claim = queue.try_claim("w0");
    ASSERT_TRUE(claim.has_value()) << "attempt " << attempt;
    const bool dead =
        queue.release_failed("poison", /*retry_budget=*/3, "synthetic failure");
    EXPECT_EQ(dead, attempt == 3);
  }
  const QueueCounts counts = queue.counts();
  EXPECT_EQ(counts.tasks, 0);
  EXPECT_EQ(counts.dead, 1);
  EXPECT_TRUE(fs::exists(queue.dead_path("poison")));
  EXPECT_TRUE(fs::exists(tmp.path() / "dead" / "poison.reason"));
  EXPECT_FALSE(queue.try_claim("w0").has_value());
  EXPECT_TRUE(queue.all_terminal());  // dead tasks left the live queue
  EXPECT_FALSE(queue.enqueue(make_task("poison")));  // stays quarantined
}

TEST(FleetQueue, RequeueDoneRejectsPublishedResult) {
  TempDir tmp;
  WorkQueue queue{tmp.path()};
  ASSERT_TRUE(queue.enqueue(make_task("t")));
  auto claim = queue.try_claim("w0");
  ASSERT_TRUE(claim.has_value());
  queue.complete("t", "w0");
  ASSERT_TRUE(queue.is_done("t"));
  EXPECT_FALSE(queue.requeue_done("t", /*retry_budget=*/3, "bad checksum"));
  EXPECT_FALSE(queue.is_done("t"));
  EXPECT_EQ(queue.attempts("t"), 1);
  EXPECT_TRUE(queue.try_claim("w1").has_value());  // claimable again
}

// In-process worker loop with an injected executor: drains the queue, counts
// failures, quarantines a poison task, and completes the rest.
TEST(FleetWorker, DrainsQueueAndQuarantinesPoison) {
  TempDir tmp;
  WorkQueue queue{tmp.path()};
  for (const char* id : {"good_a", "good_b", "bad"}) {
    ASSERT_TRUE(queue.enqueue(make_task(id)));
  }
  FleetConfig config;
  config.workers = 1;
  config.lease_ms = 200;
  config.task_retry = 2;
  config.poll_ms = 5;

  std::atomic<int> executed{0};
  const int rc = worker_main(tmp.path(), "w0", config, [&](const TaskSpec& t) {
    executed.fetch_add(1);
    if (t.id == "bad") throw Error(ErrorKind::kFatal, "poison");
  });
  EXPECT_EQ(rc, 0);
  const QueueCounts counts = queue.counts();
  EXPECT_EQ(counts.done, 2);
  EXPECT_EQ(counts.dead, 1);
  EXPECT_EQ(counts.claimed, 0);
  // good_a + good_b once each, bad twice (retry budget 2).
  EXPECT_EQ(executed.load(), 4);
  EXPECT_TRUE(queue.is_done("good_a"));
  EXPECT_TRUE(queue.is_done("good_b"));
  EXPECT_TRUE(fs::exists(queue.dead_path("bad")));
}

// Two in-process workers share one queue; every task is executed exactly
// once (claims are exclusive) and both exit once the queue is terminal.
TEST(FleetWorker, TwoWorkersPartitionTheQueue) {
  TempDir tmp;
  WorkQueue queue{tmp.path()};
  constexpr int kTasks = 12;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(queue.enqueue(make_task("t" + std::to_string(i))));
  }
  FleetConfig config;
  config.workers = 2;
  config.lease_ms = 500;
  config.poll_ms = 5;

  std::atomic<int> executions{0};
  const auto executor = [&](const TaskSpec&) {
    executions.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds{2});
  };
  std::thread other{[&] { worker_main(tmp.path(), "w1", config, executor); }};
  const int rc = worker_main(tmp.path(), "w0", config, executor);
  other.join();
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(executions.load(), kTasks);
  EXPECT_EQ(queue.counts().done, kTasks);
}

TEST(FleetWorker, GracefulShutdownReleasesClaimWithoutFailure) {
  TempDir tmp;
  WorkQueue queue{tmp.path()};
  ASSERT_TRUE(queue.enqueue(make_task("t")));
  FleetConfig config;
  config.workers = 1;
  config.poll_ms = 5;

  // Install the graceful handler (flag-setting, idempotent) so the raised
  // SIGTERM below doesn't tear the test binary down with the default
  // disposition.
  signals::install_graceful_shutdown();
  signals::reset_interrupt_for_test();
  bool interrupted = false;
  try {
    worker_main(tmp.path(), "w0", config, [&](const TaskSpec&) {
      // Simulate SIGTERM arriving mid-execution; the worker observes it via
      // the supervisor heartbeat and unwinds with kInterrupted.
      ::raise(SIGTERM);
      throw Error(ErrorKind::kInterrupted, "shutdown requested by signal 15");
    });
  } catch (const Error& e) {
    interrupted = e.kind() == ErrorKind::kInterrupted;
  }
  signals::reset_interrupt_for_test();
  EXPECT_TRUE(interrupted);
  // The claim was released and no failure was counted: a respawned worker
  // can pick the task right back up.
  EXPECT_EQ(queue.counts().claimed, 0);
  EXPECT_EQ(queue.attempts("t"), 0);
  EXPECT_FALSE(queue.is_done("t"));
}

// The worker_kill9 marker fires at most once per fleet run even when several
// workers reach the armed claim count (mode:throw keeps it in-process).
TEST(FleetFaults, WorkerKill9FiresOncePerRun) {
  TempDir tmp;
  fault::FaultConfig config;
  config.worker_kill9_at = 0;
  config.mode = fault::CrashMode::kThrow;
  fault::configure(config);

  int fired = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    // Each loop simulates a freshly respawned worker process: reset re-arms
    // the per-process claim counter, but the on-disk marker persists.
    fault::configure(config);
    try {
      fault::on_fleet_claim(tmp.path());
    } catch (const fault::FaultCrash&) {
      ++fired;
    }
  }
  fault::reset();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(fs::exists(tmp.path() / ".fault_worker_kill9"));
}

TEST(FleetFaults, FaultSpecParsesFleetDirectives) {
  const fault::FaultConfig config = fault::parse_fault_spec(
      "worker_kill9:at=2,worker_stall:1,claim_race,orch_crash:4,mode:throw");
  EXPECT_EQ(config.worker_kill9_at, 2);
  EXPECT_EQ(config.worker_stall_at, 1);
  EXPECT_TRUE(config.claim_race);
  EXPECT_EQ(config.orch_crash_at, 4);
  EXPECT_TRUE(config.any());
  EXPECT_EQ(fault::parse_fault_spec("worker_kill9:1").worker_kill9_at, 1);
  EXPECT_THROW(fault::parse_fault_spec("worker_kill9:at=x"),
               std::invalid_argument);
}

TEST(FleetFaults, OrchCrashFiresAtNthCompletion) {
  fault::FaultConfig config;
  config.orch_crash_at = 2;
  config.mode = fault::CrashMode::kThrow;
  fault::configure(config);
  fault::on_fleet_completion();  // #0
  fault::on_fleet_completion();  // #1
  EXPECT_THROW(fault::on_fleet_completion(), fault::FaultCrash);  // #2
  fault::reset();
}

TEST(FleetErrorTaxonomy, NewKindsAreWired) {
  EXPECT_EQ(error_kind_name(ErrorKind::kWorkerLost), "worker_lost");
  EXPECT_EQ(error_kind_name(ErrorKind::kInterrupted), "interrupted");
  EXPECT_TRUE(error_kind_retryable(ErrorKind::kWorkerLost));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::kInterrupted));
  EXPECT_EQ(error_kind_exit_code(ErrorKind::kWorkerLost), 71);
  EXPECT_EQ(error_kind_exit_code(ErrorKind::kInterrupted), 72);
}

#if !defined(SDD_TSAN)
// Orphan reclaim after a real kill -9: a forked child claims the task and
// dies without releasing; the parent reclaims the stale lease and re-runs
// the task. (fork + threads is outside TSan's model, so TSan builds skip
// this one; the lease logic itself is covered thread-only above.)
TEST(FleetOrphan, ReclaimAfterKill9) {
  TempDir tmp;
  WorkQueue queue{tmp.path()};
  ASSERT_TRUE(queue.enqueue(make_task("orphaned")));

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: claim, then die like SIGKILL — no release, no unwind.
    WorkQueue mine{tmp.path()};
    const auto claim = mine.try_claim("doomed");
    ::_exit(claim.has_value() ? 0 : 3);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  // The orphaned lease is held by a dead pid and never renews.
  auto info = queue.read_claim("orphaned");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->worker, "doomed");
  EXPECT_FALSE(queue.try_claim("w1").has_value());  // still locked out

  // Wait out the (tiny) lease, then reclaim and finish the task.
  std::this_thread::sleep_for(std::chrono::milliseconds{30});
  const auto reclaimed = queue.reclaim_stale(/*lease_ms=*/10, 3);
  ASSERT_EQ(reclaimed.size(), 1U);
  EXPECT_EQ(reclaimed[0].id, "orphaned");
  EXPECT_EQ(reclaimed[0].claim.pid, static_cast<std::int64_t>(child));
  EXPECT_EQ(queue.attempts("orphaned"), 1);

  auto claim = queue.try_claim("w1");
  ASSERT_TRUE(claim.has_value());
  queue.complete(claim->id, "w1");
  EXPECT_TRUE(queue.all_terminal());
}

// proc helpers against a real child process.
TEST(FleetProc, SpawnReapAndTerminate) {
  const std::int64_t pid =
      proc::spawn({"/bin/sh", "-c", "exit 7"});
  const auto status = proc::wait_reap(pid, 5'000);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->exit_code, 7);
  EXPECT_EQ(status->term_signal, 0);
  EXPECT_FALSE(status->clean());

  const std::int64_t sleeper =
      proc::spawn({"/bin/sh", "-c", "sleep 30"});
  EXPECT_TRUE(proc::alive(sleeper));
  const auto killed = proc::terminate(sleeper, /*grace_ms=*/200);
  EXPECT_TRUE(killed.term_signal == SIGTERM || killed.term_signal == SIGKILL);
  EXPECT_FALSE(proc::alive(sleeper));
}
#endif  // !SDD_TSAN

}  // namespace
}  // namespace sdd::fleet
