// Shared test utilities: finite-difference gradient checking and tiny model
// factories.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "nn/transformer.hpp"
#include "tensor/tensor.hpp"

namespace sdd::testing {

// Compare analytic gradients of `x` against central finite differences of the
// scalar produced by `loss_fn` (which must read x's current values each call).
inline void expect_gradients_close(Tensor x, const std::function<Tensor()>& loss_fn,
                                   float eps = 1e-2F, float abs_tol = 3e-2F,
                                   float rel_tol = 6e-2F) {
  x.zero_grad();
  Tensor loss = loss_fn();
  loss.backward();
  const std::vector<float> analytic(x.grad().begin(), x.grad().end());

  auto data = x.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float original = data[i];
    data[i] = original + eps;
    const float loss_plus = loss_fn().item();
    data[i] = original - eps;
    const float loss_minus = loss_fn().item();
    data[i] = original;

    const float numeric = (loss_plus - loss_minus) / (2.0F * eps);
    const float diff = std::fabs(numeric - analytic[i]);
    const float scale = std::max({1.0F, std::fabs(numeric), std::fabs(analytic[i])});
    EXPECT_LE(diff, std::max(abs_tol, rel_tol * scale))
        << "gradient mismatch at flat index " << i << ": analytic=" << analytic[i]
        << " numeric=" << numeric;
  }
}

// Tiny config with a synthetic 50-token vocab: for pure-tensor tests that
// never touch the real datasets.
inline nn::ModelConfig tiny_config(std::int64_t layers = 3) {
  nn::ModelConfig config;
  config.vocab_size = 50;
  config.d_model = 16;
  config.n_heads = 2;
  config.n_layers = layers;
  config.d_ff = 24;
  config.max_seq_len = 48;
  return config;
}

// Tiny config sized for the real Vocab: for tests that run real corpora,
// datasets, or eval tasks through a model.
nn::ModelConfig tiny_real_vocab_config(std::int64_t layers = 3);

}  // namespace sdd::testing
#include "data/vocab.hpp"

namespace sdd::testing {
inline nn::ModelConfig tiny_real_vocab_config(std::int64_t layers) {
  nn::ModelConfig config = tiny_config(layers);
  config.vocab_size = data::Vocab::instance().size();
  config.max_seq_len = 160;
  return config;
}
}  // namespace sdd::testing
