// End-to-end integration tests: the full pipeline (pretrain -> prune ->
// {No FT | SFT | SDD | merge} -> eval) at micro scale, including the on-disk
// experiment cache semantics benches rely on.
#include <unistd.h>

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "eval/suite.hpp"
#include "test_helpers.hpp"

namespace sdd::core {
namespace {

// Micro pipeline: everything tuned to run in a couple of seconds.
PipelineConfig micro_config(const std::filesystem::path& cache_dir) {
  PipelineConfig config;
  config.model = sdd::testing::tiny_real_vocab_config(4);
  config.corpus.n_documents = 400;
  config.pretrain.steps = 25;
  config.pretrain.warmup_steps = 3;
  config.pretrain.batch_size = 4;
  config.pretrain.seq_len = 32;
  config.pretrain.log_every = 0;
  config.sft.epochs = 1;
  config.sft.max_steps = 6;
  config.sft.batch_size = 4;
  config.distill.max_new_tokens = 10;
  config.calib_samples = 2;
  config.calib_seq = 24;
  config.cache_dir = cache_dir;
  return config;
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-suffixed so concurrent `ctest -j` case processes of this fixture
    // cannot remove_all each other's live cache.
    cache_dir_ = std::filesystem::temp_directory_path() /
                 ("sdd_pipeline_test_cache_" + std::to_string(::getpid()));
    std::filesystem::remove_all(cache_dir_);
  }
  void TearDown() override { std::filesystem::remove_all(cache_dir_); }

  std::filesystem::path cache_dir_;
};

TEST_F(PipelineTest, BaseModelIsCachedAcrossPipelines) {
  PipelineConfig config = micro_config(cache_dir_);
  Pipeline first{config};
  const std::uint64_t hash = first.base_model().weight_hash();

  // A second pipeline with the same config must load the identical weights
  // from disk (no re-training).
  Pipeline second{config};
  EXPECT_EQ(second.base_model().weight_hash(), hash);

  // Changing a pre-training knob must yield a different key (fresh model).
  PipelineConfig other = config;
  other.pretrain.steps = 26;
  EXPECT_NE(other.base_key(), config.base_key());
}

TEST_F(PipelineTest, PruneIsMemoizedAndConsistent) {
  Pipeline pipeline{micro_config(cache_dir_)};
  const PruneResult& a = pipeline.prune(1);
  const PruneResult& b = pipeline.prune(1);
  EXPECT_EQ(&a, &b);  // memoized
  EXPECT_EQ(a.model.n_layers(), pipeline.base_model().n_layers() - 1);
}

TEST_F(PipelineTest, RecoveredModelsAreCachedAndMethodDependent) {
  Pipeline pipeline{micro_config(cache_dir_)};
  const nn::TransformerLM sft =
      pipeline.recovered(1, FtMethod::kSft, "gsm8k", 12);
  const nn::TransformerLM sft_again =
      pipeline.recovered(1, FtMethod::kSft, "gsm8k", 12);
  EXPECT_EQ(sft.weight_hash(), sft_again.weight_hash());

  const nn::TransformerLM sdd =
      pipeline.recovered(1, FtMethod::kSelfDataDistill, "gsm8k", 12);
  EXPECT_NE(sdd.weight_hash(), sft.weight_hash());

  const nn::TransformerLM none = pipeline.recovered(1, FtMethod::kNone, "", 0);
  EXPECT_NE(none.weight_hash(), sft.weight_hash());
  EXPECT_EQ(none.n_layers(), sft.n_layers());
}

TEST_F(PipelineTest, RecoveredKeysDistinguishEverything) {
  Pipeline pipeline{micro_config(cache_dir_)};
  const auto key = [&](std::int64_t block, FtMethod method, const std::string& name,
                       std::int64_t size) {
    return pipeline.recovered_key(block, method, name, size);
  };
  EXPECT_NE(key(1, FtMethod::kSft, "gsm8k", 12), key(2, FtMethod::kSft, "gsm8k", 12));
  EXPECT_NE(key(1, FtMethod::kSft, "gsm8k", 12),
            key(1, FtMethod::kSelfDataDistill, "gsm8k", 12));
  EXPECT_NE(key(1, FtMethod::kSft, "gsm8k", 12), key(1, FtMethod::kSft, "dolly", 12));
  EXPECT_NE(key(1, FtMethod::kSft, "gsm8k", 12), key(1, FtMethod::kSft, "gsm8k", 13));
}

TEST_F(PipelineTest, DistilledDatasetCachedOnDisk) {
  Pipeline pipeline{micro_config(cache_dir_)};
  DistillStats stats;
  const data::SftDataset first = pipeline.distilled_dataset("gsm8k", 8, &stats);
  EXPECT_EQ(stats.total, 8);
  const data::SftDataset second = pipeline.distilled_dataset("gsm8k", 8);
  EXPECT_EQ(first.hash(), second.hash());
}

TEST_F(PipelineTest, MergedModelHasPrunedArchitecture) {
  Pipeline pipeline{micro_config(cache_dir_)};
  const nn::TransformerLM merged = pipeline.merged(1, "gsm8k", 8, "alpaca", 8, 0.5F);
  EXPECT_EQ(merged.n_layers(), pipeline.base_model().n_layers() - 1);
}

TEST_F(PipelineTest, EndToEndEvalRuns) {
  Pipeline pipeline{micro_config(cache_dir_)};
  eval::SuiteSpec spec;
  spec.mc_items = 4;
  spec.gen_items = 2;
  const auto baseline = eval::evaluate_suite(pipeline.base_model(), pipeline.world(),
                                             eval::core_tasks(), spec);
  const nn::TransformerLM sdd =
      pipeline.recovered(1, FtMethod::kSelfDataDistill, "gsm8k", 8);
  const auto scores =
      eval::evaluate_suite(sdd, pipeline.world(), eval::core_tasks(), spec);
  // Sanity: recovery is a finite, positive number.
  if (baseline.average > 0.0) {
    const double recovery = eval::recovery_percent(scores, baseline);
    EXPECT_GE(recovery, 0.0);
    EXPECT_LT(recovery, 500.0);
  }
}

TEST_F(PipelineTest, SftTrainingMovesLossDownOnItsDataset) {
  Pipeline pipeline{micro_config(cache_dir_)};
  const data::SftDataset dataset = pipeline.raw_dataset("gsm8k", 16);
  const float before =
      train::sft_loss(pipeline.prune(1).model, dataset, 16);
  const nn::TransformerLM tuned = pipeline.recovered(1, FtMethod::kSft, "gsm8k", 16);
  const float after = train::sft_loss(tuned, dataset, 16);
  EXPECT_LT(after, before);
}

TEST_F(PipelineTest, MethodNames) {
  EXPECT_EQ(method_name(FtMethod::kNone), "no_ft");
  EXPECT_EQ(method_name(FtMethod::kSft), "sft");
  EXPECT_EQ(method_name(FtMethod::kSelfDataDistill), "self_data_distill");
}

}  // namespace
}  // namespace sdd::core
