// Additional cross-module invariants: pruning composition, loss-weight
// scale invariance, optimizer determinism, and world-consistency checks.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/prune.hpp"
#include "nn/decode.hpp"
#include "data/evalset.hpp"
#include "data/world.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"
#include "train/trainer.hpp"

namespace sdd {
namespace {

TEST(PruneComposition, PrunedForwardEqualsManualBlockComposition) {
  // pruned(start=1, n=2) of a 5-layer model must compute exactly
  // blocks {0, 3, 4} — verify the full residual stream, not just a prefix.
  const nn::TransformerLM model{testing::tiny_config(5), 41};
  const nn::TransformerLM pruned = model.pruned(1, 2);

  Rng rng{7};
  std::vector<std::int32_t> ids(8);
  for (auto& id : ids) {
    id = static_cast<std::int32_t>(rng.uniform_int(0, model.config().vocab_size - 1));
  }
  const auto pruned_states =
      pruned.hidden_states(ids, 1, static_cast<std::int64_t>(ids.size()));
  const auto full_states =
      model.hidden_states(ids, 1, static_cast<std::int64_t>(ids.size()));

  // pruned block 0 == full block 0; pruned blocks 1,2 recompute full blocks
  // 3,4 but on the REWIRED stream, so only block 0's output can be compared
  // directly...
  EXPECT_EQ(pruned_states[1], full_states[1]);

  // ...and the rewired deeper blocks must equal applying the original block
  // objects 3 and 4 manually to the rewired stream.
  NoGradGuard no_grad;
  Tensor x = Tensor::from_data(
      std::vector<float>(pruned_states[1].begin(), pruned_states[1].end()),
      {1, static_cast<std::int64_t>(ids.size()), model.config().d_model});
  Tensor after3 = model.block(3).forward(x);
  Tensor after4 = model.block(4).forward(after3);
  const auto& final_state = pruned_states.back();
  for (std::int64_t i = 0; i < after4.numel(); ++i) {
    EXPECT_NEAR(after4.data()[static_cast<std::size_t>(i)],
                final_state[static_cast<std::size_t>(i)], 1e-4F);
  }
}

TEST(CrossEntropy, WeightScaleInvariance) {
  Rng rng{8};
  Tensor logits = Tensor::randn(rng, {3, 6}, 1.0F);
  const std::vector<std::int32_t> targets{0, 2, 5};
  const std::vector<float> w1{1.0F, 2.0F, 0.5F};
  std::vector<float> w2;
  for (float w : w1) w2.push_back(w * 7.0F);
  EXPECT_NEAR(ops::cross_entropy(logits, targets, w1).item(),
              ops::cross_entropy(logits, targets, w2).item(), 1e-5F);
}

TEST(AdamW, DeterministicAcrossRuns) {
  const auto run = [] {
    Tensor x = Tensor::full({3}, 1.0F, /*requires_grad=*/true);
    train::AdamW optimizer{{{"x", x}}, {}};
    for (int i = 0; i < 10; ++i) {
      Tensor loss = ops::sum(ops::mul(x, x));
      optimizer.zero_grad();
      loss.backward();
      optimizer.step(0.01F);
    }
    return std::vector<float>(x.data().begin(), x.data().end());
  };
  EXPECT_EQ(run(), run());
}

TEST(RmsNorm, EpsPreventsDivisionBlowup) {
  Tensor x = Tensor::zeros({1, 4});
  Tensor w = Tensor::full({4}, 1.0F);
  const Tensor y = ops::rmsnorm(x, w, 1e-5F);
  for (float v : y.data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(v, 0.0F);
  }
}

TEST(World, ClassificationsUseDomainClassesOnly) {
  const data::World world{42};
  // Each domain owns exactly two classes (world.cpp pairs them 2d, 2d+1).
  std::map<std::string, std::set<std::string>> by_domain;
  for (const auto& fact : world.classifications()) {
    by_domain[fact.domain].insert(fact.klass);
  }
  for (const auto& [domain, classes] : by_domain) {
    EXPECT_LE(classes.size(), 2U) << domain;
  }
}

TEST(World, RoutineActionsAreDistinctWithinRoutine) {
  const data::World world{42};
  for (const auto& routine : world.routines()) {
    std::set<std::string> unique(routine.actions.begin(), routine.actions.end());
    EXPECT_EQ(unique.size(), routine.actions.size());
  }
}

TEST(EvalSet, FewshotPoolDisjointSeedsFromItems) {
  // Few-shot exemplars are drawn before items from the same stream, so the
  // first item differs from the first exemplar (no leakage of identical
  // item+distractor sets in the common case).
  const data::World world{42};
  const data::McTask task = data::make_arc_task(world, 10, 9);
  bool any_difference = false;
  for (const auto& item : task.items) {
    if (item.context != task.fewshot_pool.front().context ||
        item.options != task.fewshot_pool.front().options) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Tensor, CloneSharesNothing) {
  Tensor a = Tensor::full({4}, 2.0F, /*requires_grad=*/true);
  Tensor b = a.clone();
  b.data()[0] = 99.0F;
  EXPECT_EQ(a.data()[0], 2.0F);
  b.grad()[0] = 1.0F;
  EXPECT_FALSE(a.has_grad());
}

TEST(Generate, StopTokenTerminatesEarly) {
  const nn::TransformerLM model{testing::tiny_config(2), 55};
  const std::vector<std::int32_t> prompt{1, 2, 3};
  nn::GenerateOptions unrestricted;
  unrestricted.max_new_tokens = 12;
  const auto full = nn::generate(model, prompt, unrestricted);
  ASSERT_FALSE(full.empty());
  // Stop at the first generated token: output must be empty.
  nn::GenerateOptions stopped = unrestricted;
  stopped.stop_token = full.front();
  const auto cut = nn::generate(model, prompt, stopped);
  EXPECT_TRUE(cut.empty());
}

}  // namespace
}  // namespace sdd
