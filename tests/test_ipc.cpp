// Tests for the framed IPC transport (src/util/ipc) and the POSIX process
// helpers (src/util/proc): frame round-trips, torn/corrupt frame
// classification, payload codec bounds, the pid<=1 guard rails, and — in
// non-TSan builds — real fork/exec behaviour (env_overrides precedence,
// exec-failure exit 127, SIGTERM -> SIGKILL escalation, non-child reaps).
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/ipc.hpp"
#include "util/proc.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SDD_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define SDD_TSAN 1
#endif

namespace sdd {
namespace {

// A socketpair that closes whatever ends are still open on scope exit.
struct Pair {
  Pair() {
    const ipc::SocketPair p = ipc::socket_pair();
    a = p.parent_fd;
    b = p.child_fd;
  }
  ~Pair() {
    close_a();
    close_b();
  }
  void close_a() {
    if (a >= 0) ::close(a);
    a = -1;
  }
  void close_b() {
    if (b >= 0) ::close(b);
    b = -1;
  }
  int a = -1;
  int b = -1;
};

ErrorKind thrown_kind(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected an sdd::Error";
  return ErrorKind::kFatal;
}

TEST(Ipc, FrameRoundTrip) {
  Pair p;
  const std::string payload = "hello across the boundary";
  ipc::write_frame(p.a, 7, payload);

  ipc::Frame frame;
  ASSERT_EQ(ipc::read_frame(p.b, &frame, 1000), ipc::ReadStatus::kFrame);
  EXPECT_EQ(frame.type, 7);
  EXPECT_EQ(frame.payload, payload);
}

TEST(Ipc, EmptyPayloadAndBackToBackFramesKeepBoundaries) {
  Pair p;
  ipc::write_frame(p.a, 1, "");
  ipc::write_frame(p.a, 2, "second");
  ipc::write_frame(p.a, 3, std::string(4096, 'x'));

  ipc::Frame frame;
  ASSERT_EQ(ipc::read_frame(p.b, &frame, 1000), ipc::ReadStatus::kFrame);
  EXPECT_EQ(frame.type, 1);
  EXPECT_TRUE(frame.payload.empty());
  ASSERT_EQ(ipc::read_frame(p.b, &frame, 1000), ipc::ReadStatus::kFrame);
  EXPECT_EQ(frame.type, 2);
  EXPECT_EQ(frame.payload, "second");
  ASSERT_EQ(ipc::read_frame(p.b, &frame, 1000), ipc::ReadStatus::kFrame);
  EXPECT_EQ(frame.type, 3);
  EXPECT_EQ(frame.payload.size(), 4096U);
}

TEST(Ipc, TimeoutWhenNothingArrives) {
  Pair p;
  ipc::Frame frame;
  EXPECT_EQ(ipc::read_frame(p.b, &frame, 30), ipc::ReadStatus::kTimeout);
}

TEST(Ipc, CleanEofAtFrameBoundaryIsClosedNotError) {
  Pair p;
  ipc::write_frame(p.a, 4, "last words");
  p.close_a();

  ipc::Frame frame;
  ASSERT_EQ(ipc::read_frame(p.b, &frame, 1000), ipc::ReadStatus::kFrame);
  EXPECT_EQ(frame.payload, "last words");
  EXPECT_EQ(ipc::read_frame(p.b, &frame, 1000), ipc::ReadStatus::kClosed);
}

TEST(Ipc, TornFrameThenEofIsWorkerLost) {
  Pair p;
  ipc::write_torn_frame(p.a, 4, "this frame will never finish");
  p.close_a();  // the writer "dies" mid-frame

  ipc::Frame frame;
  EXPECT_EQ(thrown_kind([&] { ipc::read_frame(p.b, &frame, 1000); }),
            ErrorKind::kWorkerLost);
}

// Capture one valid frame's raw bytes so corruption tests mangle the real
// wire format instead of duplicating the header layout here.
std::string raw_frame_bytes(std::uint8_t type, const std::string& payload) {
  Pair p;
  ipc::write_frame(p.a, type, payload);
  std::string raw(payload.size() + 64, '\0');
  const ssize_t n = ::read(p.b, raw.data(), raw.size());
  EXPECT_GT(n, 0);
  raw.resize(static_cast<std::size_t>(n));
  return raw;
}

void write_raw(int fd, const std::string& bytes) {
  ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
}

TEST(Ipc, CorruptedPayloadFailsChecksum) {
  std::string raw = raw_frame_bytes(9, "checksummed payload");
  raw[20] ^= 0x5A;  // flip a payload byte; header stays valid

  Pair p;
  write_raw(p.a, raw);
  ipc::Frame frame;
  EXPECT_EQ(thrown_kind([&] { ipc::read_frame(p.b, &frame, 1000); }),
            ErrorKind::kWorkerLost);
}

TEST(Ipc, CorruptedMagicIsWorkerLost) {
  std::string raw = raw_frame_bytes(9, "payload");
  raw[0] ^= 0xFF;

  Pair p;
  write_raw(p.a, raw);
  ipc::Frame frame;
  EXPECT_EQ(thrown_kind([&] { ipc::read_frame(p.b, &frame, 1000); }),
            ErrorKind::kWorkerLost);
}

TEST(Ipc, OversizedLengthIsRejectedNotAllocated) {
  std::string raw = raw_frame_bytes(9, "payload");
  // Length field: bytes 8..15 of the header, little-endian. Max it out so a
  // naive reader would try to allocate ~2^64 bytes.
  for (int i = 8; i < 16; ++i) raw[static_cast<std::size_t>(i)] = '\xFF';

  Pair p;
  write_raw(p.a, raw);
  ipc::Frame frame;
  EXPECT_EQ(thrown_kind([&] { ipc::read_frame(p.b, &frame, 1000); }),
            ErrorKind::kWorkerLost);
}

TEST(Ipc, PayloadCodecRoundTrip) {
  ipc::PayloadWriter w;
  w.u8(0xAB);
  w.i32(-123456);
  w.i64(-987654321012345LL);
  w.u64(0xDEADBEEFCAFEF00DULL);
  w.f32(3.5F);
  w.str("variant-name");
  w.vec_i32({1, -2, 3, -4});

  ipc::PayloadReader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.i32(), -123456);
  EXPECT_EQ(r.i64(), -987654321012345LL);
  EXPECT_EQ(r.u64(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(r.f32(), 3.5F);
  EXPECT_EQ(r.str(), "variant-name");
  EXPECT_EQ(r.vec_i32(), (std::vector<std::int32_t>{1, -2, 3, -4}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Ipc, PayloadReaderOverrunIsWorkerLost) {
  ipc::PayloadWriter w;
  w.i32(42);
  ipc::PayloadReader r{w.bytes()};
  EXPECT_EQ(r.i32(), 42);
  EXPECT_EQ(thrown_kind([&] { r.u64(); }), ErrorKind::kWorkerLost);
}

// ---- pid guard rails (no fork needed) --------------------------------------

TEST(ProcGuard, SendSignalRefusesSentinelPids) {
  // kill(-1)/kill(0) would signal the whole group/session; the guard turns a
  // stale sentinel into a silent no-op. Surviving these calls IS the test.
  proc::send_signal(-1, SIGTERM);
  proc::send_signal(0, SIGTERM);
  proc::send_signal(1, SIGTERM);
}

TEST(ProcGuard, TryReapRefusesSentinelPids) {
  EXPECT_EQ(thrown_kind([] { proc::try_reap(-1); }), ErrorKind::kFatal);
  EXPECT_EQ(thrown_kind([] { proc::try_reap(0); }), ErrorKind::kFatal);
  EXPECT_EQ(thrown_kind([] { proc::try_reap(1); }), ErrorKind::kFatal);
}

TEST(ProcGuard, TerminateRefusesSentinelPids) {
  EXPECT_EQ(thrown_kind([] { proc::terminate(-1, 100); }), ErrorKind::kFatal);
  EXPECT_EQ(thrown_kind([] { proc::terminate(0, 100); }), ErrorKind::kFatal);
  EXPECT_EQ(thrown_kind([] { proc::terminate(1, 100); }), ErrorKind::kFatal);
}

#if !defined(SDD_TSAN)
// ---- fork/exec behaviour (compiled out under TSan) -------------------------

TEST(ProcFork, EnvOverridesTakePrecedenceOverInherited) {
  ASSERT_EQ(::setenv("SDD_PROC_TEST_VAR", "inherited", 1), 0);
  const std::int64_t pid = proc::spawn(
      {"/bin/sh", "-c", "test \"$SDD_PROC_TEST_VAR\" = override"},
      {"SDD_PROC_TEST_VAR=override"});
  const auto status = proc::wait_reap(pid, 5'000);
  ::unsetenv("SDD_PROC_TEST_VAR");
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->clean()) << "child saw exit " << status->exit_code;
}

TEST(ProcFork, ExecFailureExits127) {
  const std::int64_t pid = proc::spawn({"/nonexistent/sdd_no_such_binary"});
  const auto status = proc::wait_reap(pid, 5'000);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->exit_code, 127);
  EXPECT_EQ(status->term_signal, 0);
}

TEST(ProcFork, TerminateEscalatesToSigkillWhenTermIsIgnored) {
  // The child reports over an inherited fd once the trap is installed;
  // terminating earlier would race the default TERM disposition.
  Pair ready;
  const std::int64_t pid = proc::spawn(
      {"/bin/sh", "-c",
       "trap '' TERM; printf r >&" + std::to_string(ready.b) + "; sleep 30"},
      {}, {ready.b});
  char byte = 0;
  ASSERT_EQ(::read(ready.a, &byte, 1), 1);
  const auto status = proc::terminate(pid, /*grace_ms=*/300);
  EXPECT_EQ(status.term_signal, SIGKILL);
  EXPECT_FALSE(proc::alive(pid));
}

TEST(ProcFork, TryReapNonChildIsWorkerLost) {
  // Our parent process exists but is not our child: waitpid says ECHILD.
  EXPECT_EQ(thrown_kind([] { proc::try_reap(::getppid()); }),
            ErrorKind::kWorkerLost);
}

TEST(ProcFork, InheritedFdSurvivesExec) {
  Pair p;
  const std::int64_t pid = proc::spawn(
      {"/bin/sh", "-c", "printf x >&" + std::to_string(p.b)}, {}, {p.b});
  const auto status = proc::wait_reap(pid, 5'000);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->clean()) << "redirect failed: fd did not survive exec";
  char byte = 0;
  EXPECT_EQ(::read(p.a, &byte, 1), 1);
  EXPECT_EQ(byte, 'x');
}
#endif  // !SDD_TSAN

}  // namespace
}  // namespace sdd
