// Correctness tests for the raw compute kernels against naive references.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/kernels.hpp"
#include "util/rng.hpp"

namespace sdd {
namespace {

std::vector<float> random_vec(Rng& rng, std::int64_t n) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.gaussian_float(0.0F, 1.0F);
  return v;
}

void naive_gemm_nn(const float* a, const float* b, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, NnMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng{static_cast<std::uint64_t>(m * 10007 + k * 101 + n)};
  const auto a = random_vec(rng, m * k);
  const auto b = random_vec(rng, k * n);
  std::vector<float> got(static_cast<std::size_t>(m * n));
  std::vector<float> want(static_cast<std::size_t>(m * n));
  kernels::gemm_nn(a.data(), b.data(), got.data(), m, k, n, false);
  naive_gemm_nn(a.data(), b.data(), want.data(), m, k, n);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-3F);
}

TEST_P(GemmShapes, NtMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng{static_cast<std::uint64_t>(m * 7 + k * 11 + n * 13)};
  const auto a = random_vec(rng, m * k);
  const auto b = random_vec(rng, n * k);  // [n, k]
  std::vector<float> got(static_cast<std::size_t>(m * n));
  kernels::gemm_nt(a.data(), b.data(), got.data(), m, k, n, false);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[j * k + p];
      }
      EXPECT_NEAR(got[i * n + j], static_cast<float>(acc), 1e-3F);
    }
  }
}

TEST_P(GemmShapes, TnMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng{static_cast<std::uint64_t>(m + k + n)};
  const auto a = random_vec(rng, k * m);  // [k, m]
  const auto b = random_vec(rng, k * n);
  std::vector<float> got(static_cast<std::size_t>(m * n));
  kernels::gemm_tn(a.data(), b.data(), got.data(), m, k, n, false);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[p * m + i]) * b[p * n + j];
      }
      EXPECT_NEAR(got[i * n + j], static_cast<float>(acc), 1e-3F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                                           std::tuple{7, 5, 3}, std::tuple{16, 16, 16},
                                           std::tuple{33, 17, 9},
                                           std::tuple{128, 64, 96}));

TEST(Kernels, GemmAccumulateAddsIntoC) {
  const std::vector<float> a{1, 2};
  const std::vector<float> b{3, 4};
  std::vector<float> c{10.0F};
  kernels::gemm_nt(a.data(), b.data(), c.data(), 1, 2, 1, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 10.0F + 11.0F);
}

TEST(Kernels, SoftmaxRowsSumToOneAndOrderPreserved) {
  Rng rng{4};
  auto x = random_vec(rng, 6 * 9);
  auto original = x;
  kernels::softmax_rows(x.data(), 6, 9);
  for (int r = 0; r < 6; ++r) {
    float sum = 0.0F;
    for (int c = 0; c < 9; ++c) {
      sum += x[r * 9 + c];
      EXPECT_GT(x[r * 9 + c], 0.0F);
    }
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
    // Larger logits must keep larger probabilities.
    for (int c = 1; c < 9; ++c) {
      if (original[r * 9 + c] > original[r * 9 + c - 1]) {
        EXPECT_GT(x[r * 9 + c], x[r * 9 + c - 1]);
      }
    }
  }
}

TEST(Kernels, SoftmaxNumericallyStable) {
  std::vector<float> x{1000.0F, 1000.0F, -1000.0F};
  kernels::softmax_rows(x.data(), 1, 3);
  EXPECT_NEAR(x[0], 0.5F, 1e-5F);
  EXPECT_NEAR(x[1], 0.5F, 1e-5F);
  EXPECT_NEAR(x[2], 0.0F, 1e-5F);
}

TEST(Kernels, SiluDerivativeMatchesFiniteDifference) {
  for (float x : {-3.0F, -0.5F, 0.0F, 0.7F, 2.5F}) {
    const float eps = 1e-3F;
    const float numeric = (kernels::silu(x + eps) - kernels::silu(x - eps)) / (2 * eps);
    EXPECT_NEAR(kernels::silu_derivative(x), numeric, 1e-3F);
  }
}

TEST(Kernels, RopeIsNormPreservingAndInvertible) {
  Rng rng{5};
  const std::int64_t heads = 2, head_dim = 8;
  auto v = random_vec(rng, heads * head_dim);
  const auto original = v;

  double norm_before = 0.0;
  for (float x : v) norm_before += static_cast<double>(x) * x;

  kernels::rope_apply(v.data(), heads, head_dim, /*pos=*/7, 10000.0F, 1.0F);
  double norm_after = 0.0;
  for (float x : v) norm_after += static_cast<double>(x) * x;
  EXPECT_NEAR(norm_before, norm_after, 1e-3);

  kernels::rope_apply(v.data(), heads, head_dim, /*pos=*/7, 10000.0F, -1.0F);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(v[i], original[i], 1e-4F);
}

TEST(Kernels, RopePositionZeroIsIdentity) {
  Rng rng{6};
  auto v = random_vec(rng, 8);
  const auto original = v;
  kernels::rope_apply(v.data(), 1, 8, /*pos=*/0, 10000.0F, 1.0F);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FLOAT_EQ(v[i], original[i]);
}

TEST(Kernels, RopeRelativePropertyDotDependsOnDistance) {
  // <R(p) q, R(p+d) k> should depend on d, not on p.
  Rng rng{7};
  const std::int64_t head_dim = 8;
  const auto q = random_vec(rng, head_dim);
  const auto k = random_vec(rng, head_dim);
  const auto rotated_dot = [&](std::int64_t pq, std::int64_t pk) {
    auto qr = q;
    auto kr = k;
    kernels::rope_apply(qr.data(), 1, head_dim, pq, 10000.0F, 1.0F);
    kernels::rope_apply(kr.data(), 1, head_dim, pk, 10000.0F, 1.0F);
    return kernels::dot(qr.data(), kr.data(), head_dim);
  };
  EXPECT_NEAR(rotated_dot(0, 3), rotated_dot(5, 8), 1e-3F);
  EXPECT_NEAR(rotated_dot(2, 2), rotated_dot(9, 9), 1e-3F);
}

TEST(Kernels, RmsNormForwardMatchesManual) {
  const std::vector<float> x{3.0F, 4.0F};  // rms = sqrt(12.5)
  const std::vector<float> w{2.0F, 0.5F};
  std::vector<float> out(2);
  float inv_rms = 0.0F;
  kernels::rmsnorm_forward(x.data(), w.data(), out.data(), 1, 2, 0.0F, &inv_rms);
  const float rms = std::sqrt((9.0F + 16.0F) / 2.0F);
  EXPECT_NEAR(out[0], 3.0F / rms * 2.0F, 1e-5F);
  EXPECT_NEAR(out[1], 4.0F / rms * 0.5F, 1e-5F);
  EXPECT_NEAR(inv_rms, 1.0F / rms, 1e-5F);
}

TEST(Kernels, DotHandlesTailElements) {
  const std::vector<float> a{1, 2, 3, 4, 5, 6, 7};
  const std::vector<float> b{1, 1, 1, 1, 1, 1, 1};
  EXPECT_FLOAT_EQ(kernels::dot(a.data(), b.data(), 7), 28.0F);
}

}  // namespace
}  // namespace sdd
