// Correctness tests for the raw compute kernels against naive references.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/kernels.hpp"
#include "tensor/kernels_ref.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace sdd {
namespace {

std::vector<float> random_vec(Rng& rng, std::int64_t n) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.gaussian_float(0.0F, 1.0F);
  return v;
}

void naive_gemm_nn(const float* a, const float* b, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, NnMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng{static_cast<std::uint64_t>(m * 10007 + k * 101 + n)};
  const auto a = random_vec(rng, m * k);
  const auto b = random_vec(rng, k * n);
  std::vector<float> got(static_cast<std::size_t>(m * n));
  std::vector<float> want(static_cast<std::size_t>(m * n));
  kernels::gemm_nn(a.data(), b.data(), got.data(), m, k, n, false);
  naive_gemm_nn(a.data(), b.data(), want.data(), m, k, n);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-3F);
}

TEST_P(GemmShapes, NtMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng{static_cast<std::uint64_t>(m * 7 + k * 11 + n * 13)};
  const auto a = random_vec(rng, m * k);
  const auto b = random_vec(rng, n * k);  // [n, k]
  std::vector<float> got(static_cast<std::size_t>(m * n));
  kernels::gemm_nt(a.data(), b.data(), got.data(), m, k, n, false);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[j * k + p];
      }
      EXPECT_NEAR(got[i * n + j], static_cast<float>(acc), 1e-3F);
    }
  }
}

TEST_P(GemmShapes, TnMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng{static_cast<std::uint64_t>(m + k + n)};
  const auto a = random_vec(rng, k * m);  // [k, m]
  const auto b = random_vec(rng, k * n);
  std::vector<float> got(static_cast<std::size_t>(m * n));
  kernels::gemm_tn(a.data(), b.data(), got.data(), m, k, n, false);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[p * m + i]) * b[p * n + j];
      }
      EXPECT_NEAR(got[i * n + j], static_cast<float>(acc), 1e-3F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                                           std::tuple{7, 5, 3}, std::tuple{16, 16, 16},
                                           std::tuple{33, 17, 9},
                                           std::tuple{128, 64, 96}));

TEST(Kernels, GemmAccumulateAddsIntoC) {
  const std::vector<float> a{1, 2};
  const std::vector<float> b{3, 4};
  std::vector<float> c{10.0F};
  kernels::gemm_nt(a.data(), b.data(), c.data(), 1, 2, 1, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 10.0F + 11.0F);
}

TEST(Kernels, SoftmaxRowsSumToOneAndOrderPreserved) {
  Rng rng{4};
  auto x = random_vec(rng, 6 * 9);
  auto original = x;
  kernels::softmax_rows(x.data(), 6, 9);
  for (int r = 0; r < 6; ++r) {
    float sum = 0.0F;
    for (int c = 0; c < 9; ++c) {
      sum += x[r * 9 + c];
      EXPECT_GT(x[r * 9 + c], 0.0F);
    }
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
    // Larger logits must keep larger probabilities.
    for (int c = 1; c < 9; ++c) {
      if (original[r * 9 + c] > original[r * 9 + c - 1]) {
        EXPECT_GT(x[r * 9 + c], x[r * 9 + c - 1]);
      }
    }
  }
}

TEST(Kernels, SoftmaxNumericallyStable) {
  std::vector<float> x{1000.0F, 1000.0F, -1000.0F};
  kernels::softmax_rows(x.data(), 1, 3);
  EXPECT_NEAR(x[0], 0.5F, 1e-5F);
  EXPECT_NEAR(x[1], 0.5F, 1e-5F);
  EXPECT_NEAR(x[2], 0.0F, 1e-5F);
}

TEST(Kernels, SiluDerivativeMatchesFiniteDifference) {
  for (float x : {-3.0F, -0.5F, 0.0F, 0.7F, 2.5F}) {
    const float eps = 1e-3F;
    const float numeric = (kernels::silu(x + eps) - kernels::silu(x - eps)) / (2 * eps);
    EXPECT_NEAR(kernels::silu_derivative(x), numeric, 1e-3F);
  }
}

TEST(Kernels, RopeIsNormPreservingAndInvertible) {
  Rng rng{5};
  const std::int64_t heads = 2, head_dim = 8;
  auto v = random_vec(rng, heads * head_dim);
  const auto original = v;

  double norm_before = 0.0;
  for (float x : v) norm_before += static_cast<double>(x) * x;

  kernels::rope_apply(v.data(), heads, head_dim, /*pos=*/7, 10000.0F, 1.0F);
  double norm_after = 0.0;
  for (float x : v) norm_after += static_cast<double>(x) * x;
  EXPECT_NEAR(norm_before, norm_after, 1e-3);

  kernels::rope_apply(v.data(), heads, head_dim, /*pos=*/7, 10000.0F, -1.0F);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(v[i], original[i], 1e-4F);
}

TEST(Kernels, RopePositionZeroIsIdentity) {
  Rng rng{6};
  auto v = random_vec(rng, 8);
  const auto original = v;
  kernels::rope_apply(v.data(), 1, 8, /*pos=*/0, 10000.0F, 1.0F);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FLOAT_EQ(v[i], original[i]);
}

TEST(Kernels, RopeRelativePropertyDotDependsOnDistance) {
  // <R(p) q, R(p+d) k> should depend on d, not on p.
  Rng rng{7};
  const std::int64_t head_dim = 8;
  const auto q = random_vec(rng, head_dim);
  const auto k = random_vec(rng, head_dim);
  const auto rotated_dot = [&](std::int64_t pq, std::int64_t pk) {
    auto qr = q;
    auto kr = k;
    kernels::rope_apply(qr.data(), 1, head_dim, pq, 10000.0F, 1.0F);
    kernels::rope_apply(kr.data(), 1, head_dim, pk, 10000.0F, 1.0F);
    return kernels::dot(qr.data(), kr.data(), head_dim);
  };
  EXPECT_NEAR(rotated_dot(0, 3), rotated_dot(5, 8), 1e-3F);
  EXPECT_NEAR(rotated_dot(2, 2), rotated_dot(9, 9), 1e-3F);
}

TEST(Kernels, RmsNormForwardMatchesManual) {
  const std::vector<float> x{3.0F, 4.0F};  // rms = sqrt(12.5)
  const std::vector<float> w{2.0F, 0.5F};
  std::vector<float> out(2);
  float inv_rms = 0.0F;
  kernels::rmsnorm_forward(x.data(), w.data(), out.data(), 1, 2, 0.0F, &inv_rms);
  const float rms = std::sqrt((9.0F + 16.0F) / 2.0F);
  EXPECT_NEAR(out[0], 3.0F / rms * 2.0F, 1e-5F);
  EXPECT_NEAR(out[1], 4.0F / rms * 0.5F, 1e-5F);
  EXPECT_NEAR(inv_rms, 1.0F / rms, 1e-5F);
}

TEST(Kernels, DotHandlesTailElements) {
  const std::vector<float> a{1, 2, 3, 4, 5, 6, 7};
  const std::vector<float> b{1, 1, 1, 1, 1, 1, 1};
  EXPECT_FLOAT_EQ(kernels::dot(a.data(), b.data(), 7), 28.0F);
}

// ------------------------------------------------------------------------
// Equivalence against the retained naive reference (kernels_ref.cpp): the
// blocked/vectorized kernels must agree with the pre-optimization scalar
// loops to within 1e-4 on shapes that are NOT multiples of the tile sizes
// (4-row micro-tiles, 16/32-lane SIMD widths, 512-deep k-tiles), in both
// accumulate modes.

class RefEquivalence : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RefEquivalence, GemmsMatchReference) {
  const auto [m, k, n] = GetParam();
  for (const bool accumulate : {false, true}) {
    Rng rng{static_cast<std::uint64_t>(m * 31 + k * 17 + n * 7 + (accumulate ? 1 : 0))};
    const auto a_nn = random_vec(rng, m * k);   // also A for NT ([m, k])
    const auto a_tn = random_vec(rng, k * m);   // A for TN ([k, m])
    const auto b_nn = random_vec(rng, k * n);   // also B for TN ([k, n])
    const auto b_nt = random_vec(rng, n * k);   // B for NT ([n, k])
    const auto c_init = random_vec(rng, m * n);

    const auto check = [&](const char* label, auto&& fast, auto&& naive,
                           const float* a, const float* b) {
      auto got = c_init;
      auto want = c_init;
      fast(a, b, got.data(), m, k, n, accumulate);
      naive(a, b, want.data(), m, k, n, accumulate);
      float max_err = 0.0F;
      for (std::size_t i = 0; i < got.size(); ++i) {
        max_err = std::max(max_err, std::abs(got[i] - want[i]));
      }
      EXPECT_LE(max_err, 1e-4F) << label << " m=" << m << " k=" << k << " n=" << n
                                << " accumulate=" << accumulate;
    };
    check("gemm_nn", kernels::gemm_nn, kernels::ref::gemm_nn, a_nn.data(), b_nn.data());
    check("gemm_nt", kernels::gemm_nt, kernels::ref::gemm_nt, a_nn.data(), b_nt.data());
    check("gemm_tn", kernels::gemm_tn, kernels::ref::gemm_tn, a_tn.data(), b_nn.data());
  }
}

INSTANTIATE_TEST_SUITE_P(OddShapes, RefEquivalence,
                         ::testing::Values(std::tuple{5, 7, 9}, std::tuple{13, 31, 17},
                                           std::tuple{33, 65, 129},
                                           std::tuple{67, 129, 65},
                                           std::tuple{67, 515, 35},   // k-tile tail
                                           std::tuple{3, 1027, 2}));  // dot fallback

TEST(RefEquivalence, SoftmaxMatchesReference) {
  Rng rng{11};
  auto got = random_vec(rng, 7 * 33);
  auto want = got;
  kernels::softmax_rows(got.data(), 7, 33);
  kernels::ref::softmax_rows(want.data(), 7, 33);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-4F);
}

TEST(RefEquivalence, RmsNormMatchesReference) {
  Rng rng{12};
  const auto x = random_vec(rng, 9 * 65);
  const auto w = random_vec(rng, 65);
  std::vector<float> got(9 * 65), want(9 * 65), got_rms(9), want_rms(9);
  kernels::rmsnorm_forward(x.data(), w.data(), got.data(), 9, 65, 1e-5F,
                           got_rms.data());
  kernels::ref::rmsnorm_forward(x.data(), w.data(), want.data(), 9, 65, 1e-5F,
                                want_rms.data());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-4F);
  for (std::size_t i = 0; i < got_rms.size(); ++i) {
    EXPECT_NEAR(got_rms[i], want_rms[i], 1e-4F);
  }
}

TEST(RefEquivalence, RopeTableMatchesPerCallTrig) {
  Rng rng{13};
  const std::int64_t heads = 3, head_dim = 10;
  for (const std::int64_t pos : {0, 1, 7, 63, 300}) {
    for (const float sign : {1.0F, -1.0F}) {
      auto got = random_vec(rng, heads * head_dim);
      auto want = got;
      kernels::rope_apply(got.data(), heads, head_dim, pos, 10000.0F, sign);
      kernels::ref::rope_apply(want.data(), heads, head_dim, pos, 10000.0F, sign);
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], want[i], 1e-4F) << "pos=" << pos << " sign=" << sign;
      }
    }
  }
}

// ------------------------------------------------------------------------
// Determinism: the parallel paths shard disjoint output rows and keep the
// per-row reduction order fixed, so a kernel run across a thread pool must be
// BIT-identical to a serial run. This is what keeps checkpoint/resume
// bit-exact (test_robustness) regardless of SDD_THREADS.

TEST(KernelDeterminism, ParallelMatchesSerialBitExact) {
  ThreadPool pool{3};
  // Big enough that every kernel clears its parallel dispatch thresholds.
  const std::int64_t m = 131, k = 257, n = 129;
  Rng rng{14};
  const auto a = random_vec(rng, m * k);
  const auto a_t = random_vec(rng, k * m);
  const auto b = random_vec(rng, k * n);
  const auto b_t = random_vec(rng, n * k);
  const auto c_init = random_vec(rng, m * n);

  const auto run_all = [&](kernels::DispatchMode mode, ThreadPool* run_pool) {
    kernels::ScopedDispatch dispatch{mode, run_pool};
    std::vector<std::vector<float>> outs;
    for (const bool accumulate : {false, true}) {
      auto c = c_init;
      kernels::gemm_nn(a.data(), b.data(), c.data(), m, k, n, accumulate);
      outs.push_back(c);
      c = c_init;
      kernels::gemm_nt(a.data(), b_t.data(), c.data(), m, k, n, accumulate);
      outs.push_back(c);
      c = c_init;
      kernels::gemm_tn(a_t.data(), b.data(), c.data(), m, k, n, accumulate);
      outs.push_back(c);
    }
    auto soft = a;
    kernels::softmax_rows(soft.data(), m, k);
    outs.push_back(soft);
    std::vector<float> normed(static_cast<std::size_t>(m * k));
    kernels::rmsnorm_forward(a.data(), b.data(), normed.data(), m, k, 1e-5F, nullptr);
    outs.push_back(normed);
    return outs;
  };

  const auto serial = run_all(kernels::DispatchMode::kForceSerial, nullptr);
  const auto parallel = run_all(kernels::DispatchMode::kForceParallel, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t o = 0; o < serial.size(); ++o) {
    ASSERT_EQ(serial[o].size(), parallel[o].size());
    for (std::size_t i = 0; i < serial[o].size(); ++i) {
      // Exact bit equality, not a tolerance: divergence here would break
      // deterministic resume.
      ASSERT_EQ(serial[o][i], parallel[o][i])
          << "output " << o << " element " << i << " diverged across thread counts";
    }
  }
}

}  // namespace
}  // namespace sdd
